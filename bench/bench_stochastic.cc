// Expected-cost comparison under the *stochastic* TOPDOWN user (the user
// the cost model actually describes, exploring by probability instead of
// beelining to a known target): Monte-Carlo estimate of the expected
// navigation cost per strategy. This is the quantity Heuristic-ReducedOpt
// explicitly minimizes, so it should dominate here even more clearly than
// in the oracle experiment of Fig 8.
//
// Flags: --threads=N (parallel per-query Monte-Carlo batches; per-query
// seeds keep the estimates bit-identical for every thread count),
// --json=PATH.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

namespace {

constexpr int kTrials = 40;

double MeanStochasticCost(const QueryFixture& fixture,
                          const StrategyFactory& factory, uint64_t seed) {
  Rng rng(seed);
  double sum = 0;
  std::unique_ptr<ExpandStrategy> strategy =
      factory(fixture.cost_model.get());
  for (int t = 0; t < kTrials; ++t) {
    StochasticTrialResult r = SimulateTopDown(
        *fixture.nav, *fixture.cost_model, strategy.get(), &rng);
    sum += r.cost;
  }
  return sum / kTrials;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Stochastic-user expected cost, Static vs BioNav");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "Static E[cost]", "BioNav E[cost]",
                   "Improvement %"});

  struct Row {
    std::string name;
    double static_cost = 0;
    double bionav_cost = 0;
  };
  Timer timer;
  std::vector<Row> rows =
      ParallelMap<Row>(opts.threads, w.num_queries(), [&](size_t i) {
        QueryFixture f = BuildQueryFixture(w, i);
        return Row{
            f.query->spec.name,
            MeanStochasticCost(f, MakeStaticStrategyFactory(), 1000 + i),
            MeanStochasticCost(f, MakeBioNavStrategyFactory(), 2000 + i)};
      });
  double wall_ms = timer.ElapsedMillis();

  double ratio_sum = 0;
  for (const Row& row : rows) {
    double improvement = 100.0 * (1.0 - row.bionav_cost / row.static_cost);
    ratio_sum += row.bionav_cost / row.static_cost;
    table.AddRow({row.name, TextTable::Num(row.static_cost, 1),
                  TextTable::Num(row.bionav_cost, 1),
                  TextTable::Num(improvement, 1)});
  }
  std::cout << table.ToString();
  std::cout << "\nAverage improvement: "
            << TextTable::Num(
                   100.0 * (1.0 - ratio_sum /
                                      static_cast<double>(w.num_queries())),
                   1)
            << "% (" << kTrials << " sampled episodes per cell)\n";
  // 2 strategies x kTrials episodes per query.
  AppendJsonRecord(
      opts.json_path, "bench_stochastic", "default", opts.threads, wall_ms,
      PerSec(2.0 * kTrials * static_cast<double>(w.num_queries()), wall_ms));
  return 0;
}
