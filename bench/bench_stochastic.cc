// Expected-cost comparison under the *stochastic* TOPDOWN user (the user
// the cost model actually describes, exploring by probability instead of
// beelining to a known target): Monte-Carlo estimate of the expected
// navigation cost per strategy. This is the quantity Heuristic-ReducedOpt
// explicitly minimizes, so it should dominate here even more clearly than
// in the oracle experiment of Fig 8.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

namespace {

constexpr int kTrials = 40;

double MeanStochasticCost(const QueryFixture& fixture,
                          const StrategyFactory& factory, uint64_t seed) {
  Rng rng(seed);
  double sum = 0;
  std::unique_ptr<ExpandStrategy> strategy =
      factory(fixture.cost_model.get());
  for (int t = 0; t < kTrials; ++t) {
    StochasticTrialResult r = SimulateTopDown(
        *fixture.nav, *fixture.cost_model, strategy.get(), &rng);
    sum += r.cost;
  }
  return sum / kTrials;
}

}  // namespace

int main() {
  PrintPreamble("Stochastic-user expected cost, Static vs BioNav");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "Static E[cost]", "BioNav E[cost]",
                   "Improvement %"});

  double ratio_sum = 0;
  for (size_t i = 0; i < w.num_queries(); ++i) {
    QueryFixture f = BuildQueryFixture(w, i);
    double static_cost =
        MeanStochasticCost(f, MakeStaticStrategyFactory(), 1000 + i);
    double bionav_cost =
        MeanStochasticCost(f, MakeBioNavStrategyFactory(), 2000 + i);
    double improvement = 100.0 * (1.0 - bionav_cost / static_cost);
    ratio_sum += bionav_cost / static_cost;
    table.AddRow({f.query->spec.name, TextTable::Num(static_cost, 1),
                  TextTable::Num(bionav_cost, 1),
                  TextTable::Num(improvement, 1)});
  }
  std::cout << table.ToString();
  std::cout << "\nAverage improvement: "
            << TextTable::Num(
                   100.0 * (1.0 - ratio_sum /
                                      static_cast<double>(w.num_queries())),
                   1)
            << "% (" << kTrials << " sampled episodes per cell)\n";
  return 0;
}
