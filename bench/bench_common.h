#ifndef BIONAV_BENCH_BENCH_COMMON_H_
#define BIONAV_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "bionav.h"

namespace bionav::bench {

/// Scale of the shared benchmark workload. The full paper scale (48k-node
/// hierarchy, 40k background citations) is the default; BIONAV_BENCH_SCALE
/// in the environment ("small") switches to a fast configuration for CI.
WorkloadOptions BenchWorkloadOptions();

/// Lazily-built process-wide workload shared by all figure benches in one
/// binary (construction takes a few seconds at full scale).
const Workload& SharedWorkload();

/// Everything the per-query experiments need, built once per query.
struct QueryFixture {
  const GeneratedQuery* query = nullptr;
  std::unique_ptr<NavigationTree> nav;
  std::unique_ptr<CostModel> cost_model;
};

/// Builds the fixture for query `i` of the shared workload.
QueryFixture BuildQueryFixture(const Workload& workload, size_t i,
                               CostModelParams params = CostModelParams());

/// Runs the oracle target navigation for one query under the given
/// strategy factory and returns the metrics.
NavigationMetrics RunOracle(const QueryFixture& fixture,
                            const StrategyFactory& factory);

/// One timed EXPAND of a multi-target session (the per-depth JSON records
/// of bench_fig10/bench_fig11).
struct ExpandSample {
  /// EXPANDs performed before this one, across the whole session — the
  /// session depth the paper's incremental claim is measured against.
  int depth = 0;
  /// Navigation leg (one oracle descent to one target) the sample is from.
  int leg = 0;
  /// EXPAND index within the leg (0 = the root expansion).
  int step = 0;
  int revealed = 0;
  int reduced_size = 0;
  bool incremental_hit = false;
  double time_ms = 0;
};

/// Knobs of the multi-target session the timing benches run. A single
/// oracle descent never revisits a component, so cross-EXPAND reuse only
/// shows on sessions that backtrack and navigate again — the shape real
/// exploratory navigation (and the paper's Section VIII user study) has.
struct MultiTargetOptions {
  /// Full passes over the target list. Round 1 is the cold baseline;
  /// later rounds re-descend through already-memoized component shapes.
  int rounds = 3;
  /// Targets per round: the query's own target plus deep attached
  /// concepts picked deterministically from the navigation tree.
  int num_targets = 4;
  /// Off = from-scratch recompute on every EXPAND (the A/B baseline).
  bool incremental = true;
};

/// Outcome of one multi-target session.
struct MultiTargetResult {
  std::vector<ExpandSample> samples;
  int expand_actions = 0;
  int revealed_concepts = 0;
  /// FNV-1a over every (component root, cut children) sequence, in order.
  /// Incremental-on and -off runs of the same fixture must produce the
  /// same fingerprint — the CI A/B guard's byte-identity check.
  uint64_t cut_fingerprint = 0;

  int navigation_cost() const { return expand_actions + revealed_concepts; }
  double total_expand_time_ms() const {
    double t = 0;
    for (const ExpandSample& s : samples) t += s.time_ms;
    return t;
  }
  /// Mean EXPAND time over samples whose leg lies in [first_leg, last_leg].
  double MeanTimeMs(int first_leg, int last_leg) const;
};

/// Runs the multi-target session for one query fixture: for every round and
/// target, backtracks to the initial view and navigates to the target with
/// Heuristic-ReducedOpt, timing each ChooseEdgeCut. The strategy instance
/// (and with it the incremental memo) lives for the whole session.
MultiTargetResult RunMultiTargetSession(const QueryFixture& fixture,
                                        const MultiTargetOptions& options);

/// Prints the standard bench preamble (workload scale, seed).
void PrintPreamble(const std::string& bench_name);

/// Flags shared by the bench binaries.
struct BenchOptions {
  /// --threads=N: worker threads for parallel session serving (default 1;
  /// 0 selects ThreadPool::HardwareThreads()).
  int threads = 1;
  /// --json=PATH: append machine-readable records here (empty = off).
  std::string json_path;
  /// --obs=off: disable TraceSpan clock reads (SetObsEnabled(false)) so
  /// the instrumentation overhead itself can be A/B-measured.
  bool obs = true;
  /// --warmup=N: iterations (sessions, benchmark repetitions, ...) to run
  /// and discard before the measured phase. Warms allocator arenas, page
  /// cache and — for the serving bench — the query-artifact cache, so the
  /// measured numbers reflect steady state.
  int warmup = 0;
};

/// Parses --threads=N, --json=PATH, --obs=on|off and --warmup=N out of
/// argv, compacting recognized flags away (so remaining args can go to
/// another parser, e.g. google-benchmark's). Unknown args are left
/// untouched. --obs applies SetObsEnabled as a side effect.
BenchOptions ParseBenchOptions(int* argc, char** argv);

/// Sessions/sec for a batch that took `wall_ms`; 0 when the clock read 0.
double PerSec(double sessions, double wall_ms);

/// Appends one JSON-lines record
///   {"bench": ..., "config": ..., "threads": N, "wall_ms": ...,
///    "sessions_per_sec": ...[, <extra_json>]}
/// to `json_path`; no-op when the path is empty. `extra_json`, when
/// non-empty, is a raw fragment of additional key/value pairs (no braces,
/// e.g. "\"cache_hit_rate\": 0.93") spliced into the object. Future PRs
/// diff these BENCH_*.json trajectories instead of scraping tables.
void AppendJsonRecord(const std::string& json_path, const std::string& bench,
                      const std::string& config, int threads, double wall_ms,
                      double sessions_per_sec,
                      const std::string& extra_json = std::string());

/// Appends one complete raw JSON object as its own JSON-lines record (the
/// per-depth EXPAND records of fig10/fig11); no-op when the path is empty.
void AppendJsonLine(const std::string& json_path,
                    const std::string& json_object);

}  // namespace bionav::bench

#endif  // BIONAV_BENCH_BENCH_COMMON_H_
