#ifndef BIONAV_BENCH_BENCH_COMMON_H_
#define BIONAV_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "bionav.h"

namespace bionav::bench {

/// Scale of the shared benchmark workload. The full paper scale (48k-node
/// hierarchy, 40k background citations) is the default; BIONAV_BENCH_SCALE
/// in the environment ("small") switches to a fast configuration for CI.
WorkloadOptions BenchWorkloadOptions();

/// Lazily-built process-wide workload shared by all figure benches in one
/// binary (construction takes a few seconds at full scale).
const Workload& SharedWorkload();

/// Everything the per-query experiments need, built once per query.
struct QueryFixture {
  const GeneratedQuery* query = nullptr;
  std::unique_ptr<NavigationTree> nav;
  std::unique_ptr<CostModel> cost_model;
};

/// Builds the fixture for query `i` of the shared workload.
QueryFixture BuildQueryFixture(const Workload& workload, size_t i,
                               CostModelParams params = CostModelParams());

/// Runs the oracle target navigation for one query under the given
/// strategy factory and returns the metrics.
NavigationMetrics RunOracle(const QueryFixture& fixture,
                            const StrategyFactory& factory);

/// Prints the standard bench preamble (workload scale, seed).
void PrintPreamble(const std::string& bench_name);

}  // namespace bionav::bench

#endif  // BIONAV_BENCH_BENCH_COMMON_H_
