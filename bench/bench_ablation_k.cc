// Ablation A (DESIGN.md): sensitivity of navigation cost and expansion time
// to the reduced-tree size K. The paper fixes K = 10 as "the maximum tree
// size on which Opt-EdgeCut can operate in real-time"; this bench sweeps K
// and reports the cost/time trade-off that justifies the choice.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main() {
  PrintPreamble("Ablation: reduced-tree size K sweep");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"K", "Avg Cost", "Avg EXPANDs", "Avg Time/EXPAND (ms)",
                   "Improvement vs Static %"});

  // Static baseline cost, once.
  double static_cost_sum = 0;
  for (size_t i = 0; i < w.num_queries(); ++i) {
    QueryFixture f = BuildQueryFixture(w, i);
    static_cost_sum +=
        RunOracle(f, MakeStaticStrategyFactory()).navigation_cost();
  }

  for (int k : {4, 6, 8, 10, 12, 14}) {
    HeuristicReducedOptOptions options;
    options.max_partitions = k;
    double cost_sum = 0;
    double expands_sum = 0;
    TimingStats time_stats;
    for (size_t i = 0; i < w.num_queries(); ++i) {
      QueryFixture f = BuildQueryFixture(w, i);
      NavigationMetrics m = RunOracle(f, MakeBioNavStrategyFactory(options));
      cost_sum += m.navigation_cost();
      expands_sum += m.expand_actions;
      for (double t : m.expand_time_ms) time_stats.Add(t);
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({std::to_string(k), TextTable::Num(cost_sum / n, 1),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(time_stats.mean(), 3),
                  TextTable::Num(100.0 * (1.0 - cost_sum / static_cost_sum),
                                 1)});
  }
  std::cout << table.ToString();
  return 0;
}
