// Ablation A (DESIGN.md): sensitivity of navigation cost and expansion time
// to the reduced-tree size K. The paper fixes K = 10 as "the maximum tree
// size on which Opt-EdgeCut can operate in real-time"; this bench sweeps K
// and reports the cost/time trade-off that justifies the choice.
//
// Flags: --threads=N (parallel per-query sessions within each K),
// --json=PATH (one record per K).

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Ablation: reduced-tree size K sweep");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"K", "Avg Cost", "Avg EXPANDs", "Avg Time/EXPAND (ms)",
                   "Improvement vs Static %"});

  // Static baseline cost, once.
  std::vector<int> static_costs =
      ParallelMap<int>(opts.threads, w.num_queries(), [&](size_t i) {
        QueryFixture f = BuildQueryFixture(w, i);
        return RunOracle(f, MakeStaticStrategyFactory()).navigation_cost();
      });
  double static_cost_sum = 0;
  for (int c : static_costs) static_cost_sum += c;

  for (int k : {4, 6, 8, 10, 12, 14}) {
    HeuristicReducedOptOptions options;
    options.max_partitions = k;
    Timer timer;
    std::vector<NavigationMetrics> runs = ParallelMap<NavigationMetrics>(
        opts.threads, w.num_queries(), [&](size_t i) {
          QueryFixture f = BuildQueryFixture(w, i);
          return RunOracle(f, MakeBioNavStrategyFactory(options));
        });
    double wall_ms = timer.ElapsedMillis();
    double cost_sum = 0;
    double expands_sum = 0;
    TimingStats time_stats;
    for (const NavigationMetrics& m : runs) {
      cost_sum += m.navigation_cost();
      expands_sum += m.expand_actions;
      for (double t : m.expand_time_ms) time_stats.Add(t);
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({std::to_string(k), TextTable::Num(cost_sum / n, 1),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(time_stats.mean(), 3),
                  TextTable::Num(100.0 * (1.0 - cost_sum / static_cost_sum),
                                 1)});
    AppendJsonRecord(opts.json_path, "bench_ablation_k",
                     "K=" + std::to_string(k), opts.threads, wall_ms,
                     PerSec(n, wall_ms));
  }
  std::cout << table.ToString();
  return 0;
}
