// Closed-loop load generator for the navigation service (bionav::server):
// starts a NavServer on loopback over the shared bench workload and drives
// it with N client threads, each running M complete navigation sessions
// over its own TCP connection. A session is the full oracle protocol —
// QUERY, then FIND/EXPAND until the target concept is visible, then
// SHOWRESULTS and CLOSE — so every layer (wire protocol, session manager,
// query-artifact cache, thread pool, EXPAND hot path) is on the measured
// path.
//
// Query traffic is shaped like PubMed's: a fixed universe of
// --distinct-queries variants sampled per session from a seeded Zipf(s)
// popularity distribution (--zipf-s; 0 = uniform round-robin). Head
// queries repeat heavily, so with the server's artifact cache on
// (default), most QUERYs are warm hits that skip navigation-tree
// construction; --cache=off serves every QUERY cold for A/B comparison.
//
// Reports client-observed latency percentiles (p50/p95/p99) per operation
// — QUERY is split into cold (built the tree) and warm (served from the
// cache) via the response's `cached` field, since the two differ by
// orders of magnitude and one distribution would bury both tails — next
// to the server-side percentiles scraped from the STATS metrics registry,
// plus end-to-end sessions/sec and the server's cache hit rate. Verifies
// that no session below the admission limit is shed (RETRY_LATER) or
// dropped.
//
// Two load models:
//   closed loop (default): --clients blocking threads, one strict
//     request/response session at a time each — measures latency under
//     bounded concurrency.
//   open loop (--open-loop / --connections=N): N concurrent connections
//     driven as non-blocking state machines by one client-side EventLoop —
//     the connection-scaling sweep for the event-driven server. Verifies
//     the reactor sustains N concurrent clients with zero transport errors.
//
// Flags: --threads=N (server worker threads), --io-threads=N (server
// reactor threads), --clients=N (closed-loop load threads, default 4),
// --connections=N (open-loop concurrent connections; implies --open-loop),
// --open-loop (default 64 connections), --sessions=M (sessions per
// client/connection, default 8), --distinct-queries=D (query universe;
// 0 = the raw workload queries), --zipf-s=S (popularity skew, default 0 =
// round-robin), --proto=json|binary (wire encoding; binary negotiates the
// length-prefixed v2 protocol and is the A/B lever for bytes/request),
// --cache=off, --warmup=N (discarded sessions per client before the
// measured phase; closed loop only), --json=PATH, --obs=off (disable
// server-side trace spans).
//
// Behavioral load (closed loop only): --archetype=finder|browser|
// backtracker shapes each session like a user population instead of the
// pure protocol oracle — finder drills straight to the target, browser
// wanders (random result-page peeks between reveals), backtracker drills
// down and then retraces every EXPAND with BACKTRACK. --think-ms=M pauses
// a uniform 0.5-1.5x M between operations; --abandon-p=P leaves sessions
// open without CLOSE with probability P (the server's TTL/spill tier owns
// them — which is the point). --tolerate-retry-later turns the typed
// RETRY_LATER/SHUTTING_DOWN shed window into a bounded backoff-and-retry
// instead of a failure, for soaks that restart backends under load.
// --batch-expand (browser only) coalesces each step's expansions into one
// BATCH_EXPAND round trip of up to 4 frontier nodes, for A/B-ing the
// batched op's latency against repeated single EXPANDs.
//
// Durability check (drives an external --target, e.g. a bionav_route
// fleet over spill-enabled backends): --park=N --park-file=PATH opens N
// sessions, navigates a few steps, records each session's token and VIEW
// response as JSON lines, and leaves them open. A later run with
// --verify-parked=PATH replays VIEW for every recorded token and demands
// a byte-identical response — the wire-level oracle that snapshot /
// restore preserved navigation state exactly — then scrapes the
// bionav_session_restore_us p99 into the --json record
// (--stats-target=HOST:PORT points the scrape at a specific backend when
// the main target is a router, whose STATS lacks backend histograms).
//
// Sharded-tier modes: --backends=N stands up N in-process NavServer shards
// behind a NavRouter and drives the router endpoint (per-backend request
// counts and an aggregate p99 land in --json); --target=HOST:PORT skips
// the in-process tier entirely and drives an external endpoint, e.g. a
// `bionav_route --backends=auto:N` fleet started out of band.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "util/event_loop.h"

using namespace bionav;
using namespace bionav::bench;

namespace {

/// Client-observed latencies, one distribution per operation class. QUERY
/// (cold vs warm) and EXPAND are the paper-relevant ops;
/// FIND/SHOWRESULTS/CLOSE land in `other` (kept out of the headline
/// distributions).
struct OpLatencies {
  std::vector<double> query_cold_ms;
  std::vector<double> query_warm_ms;
  std::vector<double> expand_ms;
  std::vector<double> other_ms;

  void MergeFrom(const OpLatencies& o) {
    query_cold_ms.insert(query_cold_ms.end(), o.query_cold_ms.begin(),
                         o.query_cold_ms.end());
    query_warm_ms.insert(query_warm_ms.end(), o.query_warm_ms.begin(),
                         o.query_warm_ms.end());
    expand_ms.insert(expand_ms.end(), o.expand_ms.begin(), o.expand_ms.end());
    other_ms.insert(other_ms.end(), o.other_ms.begin(), o.other_ms.end());
  }
};

struct ClientResult {
  int sessions_done = 0;
  int sessions_failed = 0;
  int retry_later = 0;
  /// Routed mode only: requests a backend answered directly vs relayed
  /// through the proxy.
  int64_t direct_calls = 0;
  int64_t proxied_calls = 0;
  /// Sessions deliberately left open (no CLOSE) by --abandon-p.
  int sessions_parked = 0;
  /// Shed responses absorbed by --tolerate-retry-later's bounded retry
  /// (each one re-ran the session; not counted as shed or failed).
  int shed_retries = 0;
  OpLatencies latencies;
  std::string first_error;
};

// ---------------------------------------------------------------------------
// Behavioral archetypes (closed loop): --archetype shapes each session
// like a user population instead of the pure protocol oracle, with think
// times between operations and optional abandonment. The open-loop state
// machine stays oracle-only — it measures the reactor, not the users.
// ---------------------------------------------------------------------------

enum class Archetype { kFinder, kBrowser, kBacktracker };

const char* ArchetypeName(Archetype archetype) {
  switch (archetype) {
    case Archetype::kFinder:
      return "finder";
    case Archetype::kBrowser:
      return "browser";
    case Archetype::kBacktracker:
      return "backtracker";
  }
  return "?";
}

/// Knobs shaping closed-loop session behavior, shared by every client.
struct LoadProfile {
  Archetype archetype = Archetype::kFinder;
  /// Mean pause between operations in ms; each pause draws uniform
  /// 0.5-1.5x the mean. 0 disables thinking entirely.
  double think_ms = 0;
  /// Probability a finished session is parked open instead of CLOSEd.
  double abandon_p = 0;
  /// Treat RETRY_LATER/SHUTTING_DOWN as a bounded backoff-and-retry (the
  /// expected window while a backend warm-restarts) instead of a failure.
  bool tolerate_retry_later = false;
  /// Browser archetype only: coalesce each step's expansions into one
  /// BATCH_EXPAND round trip (up to 4 nodes) instead of a single EXPAND.
  bool batch_expand = false;
};

void Think(const LoadProfile& profile, Rng& rng) {
  if (profile.think_ms <= 0) return;
  double ms = profile.think_ms * (0.5 + rng.UniformDouble());
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(ms * 1000.0)));
}

/// The typed shed window: admission control (RETRY_LATER) or a draining /
/// warm-restarting server (SHUTTING_DOWN).
bool IsShedStatus(const Status& status) {
  return status.message().find("RETRY_LATER") != std::string::npos ||
         status.message().find("SHUTTING_DOWN") != std::string::npos;
}

/// Abandon-or-CLOSE epilogue shared by the archetypes. A parked session
/// is left open on the server — its TTL or spill tier owns it now.
/// Client is NavClient or RoutedNavClient (same typed-op surface).
template <typename Client>
Status FinishSession(Client& client, const std::string& token,
                     const LoadProfile& profile, Rng& rng,
                     OpLatencies* latencies, bool* parked) {
  if (profile.abandon_p > 0 && rng.Bernoulli(profile.abandon_p)) {
    *parked = true;
    return Status::OK();
  }
  Timer timer;
  timer.Restart();
  Status closed = client.CloseSession(token);
  latencies->other_ms.push_back(timer.ElapsedMillis());
  return closed;
}

/// One entry of the query universe the generator samples from. Variants
/// beyond the workload's distinct keywords repeat the keyword — the
/// inverted index intersects postings, so "kw kw" matches exactly what
/// "kw" does while being a distinct cache key (and wire query).
struct QueryVariant {
  std::string query;
  ConceptId target = kInvalidConcept;
};

std::vector<QueryVariant> BuildQueryUniverse(const Workload& w,
                                             int distinct_queries) {
  std::vector<QueryVariant> universe;
  size_t count = distinct_queries > 0 ? static_cast<size_t>(distinct_queries)
                                      : w.num_queries();
  universe.reserve(count);
  for (size_t d = 0; d < count; ++d) {
    const GeneratedQuery& q = w.query(d % w.num_queries());
    size_t repetitions = d / w.num_queries() + 1;
    QueryVariant v;
    v.target = q.target;
    for (size_t r = 0; r < repetitions; ++r) {
      if (r > 0) v.query.push_back(' ');
      v.query += q.spec.keyword;
    }
    universe.push_back(std::move(v));
  }
  return universe;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

/// QUERY + cold/warm latency classification; returns the session token.
template <typename Client>
Result<std::string> OpenSession(Client& client, const QueryVariant& variant,
                                OpLatencies* latencies) {
  Timer timer;
  timer.Restart();
  auto opened = client.Query(variant.query);
  double query_ms = timer.ElapsedMillis();
  if (!opened.ok()) return opened.status();
  (opened.ValueOrDie().cached ? latencies->query_warm_ms
                              : latencies->query_cold_ms)
      .push_back(query_ms);
  return opened.ValueOrDie().token;
}

/// Finder archetype — the full protocol oracle: QUERY, then FIND/EXPAND
/// the target's component until it is visible, SHOWRESULTS, CLOSE (or
/// abandon); appends per-request latencies to the matching per-op
/// distribution.
template <typename Client>
Status RunFinderSession(Client& client, const QueryVariant& variant,
                        const LoadProfile& profile, Rng& rng,
                        OpLatencies* latencies, bool* parked) {
  Timer timer;
  auto timed = [&](std::vector<double>* bucket, auto&& call) {
    timer.Restart();
    auto result = call();
    bucket->push_back(timer.ElapsedMillis());
    return result;
  };

  auto opened = OpenSession(client, variant, latencies);
  if (!opened.ok()) return opened.status();
  const std::string token = opened.ValueOrDie();

  // Oracle navigation: expand the target's component until it is visible.
  // The 64-iteration cap only guards against a protocol bug looping.
  NavNodeId target_node = kInvalidNavNode;
  for (int step = 0; step < 64; ++step) {
    Think(profile, rng);
    auto found = timed(&latencies->other_ms,
                       [&] { return client.Find(token, variant.target); });
    if (!found.ok()) return found.status();
    const NavClient::FindReply& f = found.ValueOrDie();
    if (!f.found) break;  // Target not in this result — nothing to reach.
    target_node = f.node;
    if (f.visible) break;
    auto revealed = timed(&latencies->expand_ms, [&] {
      return client.Expand(token, f.component_root);
    });
    if (!revealed.ok()) return revealed.status();
  }

  if (target_node != kInvalidNavNode) {
    auto shown = timed(&latencies->other_ms, [&] {
      return client.ShowResults(token, target_node, 0, 20);
    });
    if (!shown.ok()) return shown.status();
  }
  return FinishSession(client, token, profile, rng, latencies, parked);
}

/// Collects every node id marked expandable in a VIEW tree document.
void CollectExpandable(const JsonValue& node, std::vector<NavNodeId>* out) {
  if (!node.is_object()) return;
  if (node.BoolOr("expandable", false)) {
    NavNodeId id = static_cast<NavNodeId>(node.IntOr("node", kInvalidNavNode));
    if (id != kInvalidNavNode) out->push_back(id);
  }
  if (const JsonValue* children = node.Find("children");
      children != nullptr && children->is_array()) {
    for (const JsonValue& child : children->array_items()) {
      CollectExpandable(child, out);
    }
  }
}

/// Browser archetype — a wandering user with no destination: VIEWs the
/// tree, expands a random expandable node, peeks at a result page of a
/// freshly-revealed node, and repeats a few times. Driven entirely by
/// what the wire shows (no oracle target id), so it behaves identically
/// against an external fleet whose concept ids differ from this
/// process's in-memory workload.
template <typename Client>
Status RunBrowserSession(Client& client, const QueryVariant& variant,
                         const LoadProfile& profile, Rng& rng,
                         OpLatencies* latencies, bool* parked) {
  Timer timer;
  auto timed = [&](std::vector<double>* bucket, auto&& call) {
    timer.Restart();
    auto result = call();
    bucket->push_back(timer.ElapsedMillis());
    return result;
  };

  auto opened = OpenSession(client, variant, latencies);
  if (!opened.ok()) return opened.status();
  const std::string token = opened.ValueOrDie();

  int steps = static_cast<int>(rng.UniformInt(2, 6));
  for (int step = 0; step < steps; ++step) {
    Think(profile, rng);
    auto viewed =
        timed(&latencies->other_ms, [&] { return client.View(token); });
    if (!viewed.ok()) return viewed.status();
    auto tree = ParseJson(viewed.ValueOrDie());
    if (!tree.ok()) return Status::Internal("malformed VIEW response");
    std::vector<NavNodeId> expandable;
    CollectExpandable(tree.ValueOrDie(), &expandable);
    if (expandable.empty()) break;  // Fully revealed — nothing left to do.
    std::vector<NavNodeId> nodes;
    if (profile.batch_expand) {
      // One BATCH_EXPAND round trip covering several frontier nodes: a
      // random starting offset and stride over the expandable list, so
      // the batch spreads across the tree like repeated single EXPANDs.
      std::vector<NavNodeId> picks;
      size_t want = std::min<size_t>(4, expandable.size());
      size_t start = rng.Uniform(expandable.size());
      for (size_t k = 0; k < want; ++k) {
        picks.push_back(
            expandable[(start + k * expandable.size() / want) %
                       expandable.size()]);
      }
      auto batched = timed(&latencies->expand_ms,
                           [&] { return client.ExpandMany(token, picks); });
      if (!batched.ok()) return batched.status();
      nodes = batched.ValueOrDie().revealed;
    } else {
      NavNodeId pick = expandable[rng.Uniform(expandable.size())];
      auto revealed = timed(&latencies->expand_ms,
                            [&] { return client.Expand(token, pick); });
      if (!revealed.ok()) return revealed.status();
      nodes = revealed.ValueOrDie();
    }
    if (!nodes.empty()) {
      NavNodeId peek = nodes[rng.Uniform(nodes.size())];
      auto shown = timed(&latencies->other_ms,
                         [&] { return client.ShowResults(token, peek, 0, 5); });
      if (!shown.ok()) return shown.status();
    }
  }
  return FinishSession(client, token, profile, rng, latencies, parked);
}

/// Backtracker archetype — drills to the target like the finder, then
/// retraces every EXPAND with BACKTRACK before closing. Exercises the
/// history stack, and (against a spill-enabled server) backtracking
/// through replayed history on a restored session.
template <typename Client>
Status RunBacktrackerSession(Client& client, const QueryVariant& variant,
                             const LoadProfile& profile, Rng& rng,
                             OpLatencies* latencies, bool* parked) {
  Timer timer;
  auto timed = [&](std::vector<double>* bucket, auto&& call) {
    timer.Restart();
    auto result = call();
    bucket->push_back(timer.ElapsedMillis());
    return result;
  };

  auto opened = OpenSession(client, variant, latencies);
  if (!opened.ok()) return opened.status();
  const std::string token = opened.ValueOrDie();

  int expands = 0;
  for (int step = 0; step < 64; ++step) {
    Think(profile, rng);
    auto found = timed(&latencies->other_ms,
                       [&] { return client.Find(token, variant.target); });
    if (!found.ok()) return found.status();
    const NavClient::FindReply& f = found.ValueOrDie();
    if (!f.found || f.visible) break;
    auto revealed = timed(&latencies->expand_ms, [&] {
      return client.Expand(token, f.component_root);
    });
    if (!revealed.ok()) return revealed.status();
    ++expands;
  }
  for (int back = 0; back < expands; ++back) {
    Think(profile, rng);
    auto popped = timed(&latencies->other_ms,
                        [&] { return client.Backtrack(token); });
    if (!popped.ok()) return popped.status();
    if (!popped.ValueOrDie()) {
      return Status::Internal("BACKTRACK ran out of history early");
    }
  }
  return FinishSession(client, token, profile, rng, latencies, parked);
}

template <typename Client>
Status RunArchetypeSession(Client& client, const QueryVariant& variant,
                           const LoadProfile& profile, Rng& rng,
                           OpLatencies* latencies, bool* parked) {
  switch (profile.archetype) {
    case Archetype::kFinder:
      return RunFinderSession(client, variant, profile, rng, latencies, parked);
    case Archetype::kBrowser:
      return RunBrowserSession(client, variant, profile, rng, latencies,
                               parked);
    case Archetype::kBacktracker:
      return RunBacktrackerSession(client, variant, profile, rng, latencies,
                                   parked);
  }
  return Status::InvalidArgument("unknown archetype");
}

/// Dials the endpoint as either client flavor: a plain NavClient speaks
/// to whatever answers (server or proxy); a RoutedNavClient additionally
/// learns the ring from a router endpoint and goes shard-direct.
template <typename Client>
Result<std::unique_ptr<Client>> DialClient(const std::string& host, int port,
                                           const NavClientOptions& options) {
  if constexpr (std::is_same_v<Client, RoutedNavClient>) {
    RoutedNavClientOptions routed_options;
    routed_options.client = options;
    return RoutedNavClient::Connect(host, port, routed_options);
  } else {
    return NavClient::Connect(host, port, options);
  }
}

/// Routed clients report their direct/proxied split; plain ones have none.
void HarvestRouting(const NavClient&, ClientResult*) {}
void HarvestRouting(const RoutedNavClient& client, ClientResult* r) {
  r->direct_calls += client.direct_calls();
  r->proxied_calls += client.proxied_calls();
}

/// Runs `sessions` archetype sessions on one connection; results
/// (including failures) accumulate into `r`. `phase_salt` decorrelates
/// the warmup RNG stream from the measured one.
template <typename Client>
void RunClient(const std::vector<QueryVariant>& universe, double zipf_s,
               int client_index, uint64_t phase_salt, int sessions,
               const std::string& host, int port, WireProto proto,
               const LoadProfile& profile, ClientResult* r) {
  NavClientOptions client_options;
  client_options.proto = proto;
  // Under --tolerate-retry-later a backend may be mid-exec when we
  // (re)connect; ride the listen-backlog window out.
  if (profile.tolerate_retry_later) client_options.connect_retries = 10;
  auto connected = DialClient<Client>(host, port, client_options);
  if (!connected.ok()) {
    r->first_error = connected.status().ToString();
    r->sessions_failed += sessions;
    return;
  }
  std::unique_ptr<Client> client = std::move(connected.ValueOrDie());
  // Seeded per client (and phase): runs are reproducible, clients draw
  // decorrelated Zipf streams.
  Rng rng(0x9e3779b97f4a7c15ULL ^ phase_salt ^
          static_cast<uint64_t>(client_index));
  for (int s = 0; s < sessions; ++s) {
    size_t vi;
    if (zipf_s > 0) {
      vi = rng.Zipf(universe.size(), zipf_s);
    } else {
      vi = static_cast<size_t>(client_index * sessions + s) % universe.size();
    }
    bool parked = false;
    Status status = RunArchetypeSession(*client, universe[vi], profile, rng,
                                        &r->latencies, &parked);
    // Bounded shed tolerance: back off, reconnect (the old connection may
    // have been drained away under us) and re-run the whole session. Only
    // a session still shed after every retry counts as failed.
    for (int attempt = 0;
         !status.ok() && profile.tolerate_retry_later &&
         IsShedStatus(status) && attempt < 20;
         ++attempt) {
      ++r->shed_retries;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      auto reconnected = DialClient<Client>(host, port, client_options);
      if (!reconnected.ok()) {
        status = reconnected.status();
        continue;
      }
      HarvestRouting(*client, r);
      client = std::move(reconnected.ValueOrDie());
      parked = false;
      status = RunArchetypeSession(*client, universe[vi], profile, rng,
                                   &r->latencies, &parked);
    }
    if (status.ok()) {
      ++r->sessions_done;
      if (parked) ++r->sessions_parked;
    } else {
      ++r->sessions_failed;
      if (status.message().find("RETRY_LATER") != std::string::npos) {
        ++r->retry_later;
      }
      if (r->first_error.empty()) r->first_error = status.ToString();
    }
  }
  HarvestRouting(*client, r);
}

// ---------------------------------------------------------------------------
// Open-loop mode: every connection is a self-driving oracle state machine
// on one client-side EventLoop — N of them run concurrently against the
// server, strict request/response within a connection (the measured unit
// is one round trip; pipelining depth is the server tests' concern).
// ---------------------------------------------------------------------------

struct OpenLoopTotals {
  int sessions_done = 0;
  int sessions_failed = 0;
  int transport_errors = 0;
  int shed = 0;
  OpLatencies latencies;
  std::string first_error;
};

class OpenLoopHarness {
 public:
  OpenLoopHarness(std::string host, int port,
                  const std::vector<QueryVariant>& universe, double zipf_s,
                  WireProto proto, int connections, int sessions_per_conn)
      : host_(std::move(host)),
        port_(port),
        universe_(universe),
        zipf_s_(zipf_s),
        proto_(proto) {
    conns_.reserve(static_cast<size_t>(connections));
    for (int i = 0; i < connections; ++i) {
      auto conn = std::make_unique<Conn>();
      conn->index = i;
      conn->sessions_left = sessions_per_conn;
      conn->rng = Rng(0xb5297a4d3f84c2e1ULL ^ static_cast<uint64_t>(i));
      conns_.push_back(std::move(conn));
    }
  }

  OpenLoopTotals Run() {
    for (std::unique_ptr<Conn>& conn : conns_) StartConnect(conn.get());
    if (active_ > 0) loop_.Run();
    return std::move(totals_);
  }

 private:
  enum class Wait { kConnect, kQuery, kFind, kExpand, kShow, kClose };

  struct Conn {
    int index = 0;
    int fd = -1;
    Wait wait = Wait::kConnect;
    LineFrameDecoder decoder{8u << 20};
    BinaryFrameDecoder bdecoder{8u << 20};
    std::string outbox;
    size_t out_off = 0;
    std::string token;
    const QueryVariant* variant = nullptr;
    NavNodeId target_node = kInvalidNavNode;
    int nav_steps = 0;
    int sessions_left = 0;
    Timer op_timer;
    Rng rng{0};
  };

  void StartConnect(Conn* c) {
    c->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port_));
    ::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr);
    if (c->fd < 0 ||
        (::connect(c->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
             0 &&
         errno != EINPROGRESS)) {
      RecordTransportError(c, std::string("connect: ") + std::strerror(errno));
      totals_.sessions_failed += c->sessions_left;
      if (c->fd >= 0) ::close(c->fd);
      c->fd = -1;
      return;
    }
    ++active_;
    loop_.Add(c->fd, EventLoop::kWritable,
              [this, c](uint32_t events) { OnEvent(c, events); });
  }

  void OnEvent(Conn* c, uint32_t events) {
    if (c->fd < 0) return;
    if (events & EventLoop::kError) {
      TransportError(c, "socket error");
      return;
    }
    if (events & EventLoop::kWritable) {
      if (c->wait == Wait::kConnect) {
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        ::getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr != 0) {
          TransportError(c, std::string("connect: ") + std::strerror(soerr));
          return;
        }
        int one = 1;
        ::setsockopt(c->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        // Binary mode: the negotiation preamble rides in front of the
        // first QUERY — one coalesced send.
        if (proto_ == WireProto::kBinary) {
          c->outbox.append(kBinaryPreamble, sizeof(kBinaryPreamble));
        }
        StartSession(c);
      } else {
        FlushOut(c);
      }
      if (c->fd < 0) return;
    }
    if (events & EventLoop::kReadable) ReadInput(c);
  }

  void StartSession(Conn* c) {
    if (c->sessions_left == 0) {
      Finish(c, /*abandoned_sessions=*/0);
      return;
    }
    --c->sessions_left;
    size_t vi =
        zipf_s_ > 0
            ? c->rng.Zipf(universe_.size(), zipf_s_)
            : (static_cast<size_t>(c->index) + session_serial_++) %
                  universe_.size();
    c->variant = &universe_[vi];
    c->target_node = kInvalidNavNode;
    c->nav_steps = 0;
    Request query;
    query.op = RequestOp::kQuery;
    query.query = c->variant->query;
    SendRequest(c, query, Wait::kQuery);
  }

  void SendRequest(Conn* c, const Request& request, Wait wait) {
    if (proto_ == WireProto::kBinary) {
      c->outbox += SerializeRequestBinary(request);
    } else {
      c->outbox += SerializeRequest(request);
      c->outbox.push_back('\n');
    }
    c->wait = wait;
    c->op_timer.Restart();
    FlushOut(c);
  }

  void FlushOut(Conn* c) {
    while (c->out_off < c->outbox.size()) {
      ssize_t n = ::send(c->fd, c->outbox.data() + c->out_off,
                         c->outbox.size() - c->out_off, MSG_NOSIGNAL);
      if (n > 0) {
        c->out_off += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      TransportError(c, "send failed");
      return;
    }
    if (c->out_off >= c->outbox.size()) {
      c->outbox.clear();
      c->out_off = 0;
    }
    loop_.Modify(c->fd, EventLoop::kReadable |
                            (c->outbox.empty() ? 0u : EventLoop::kWritable));
  }

  void ReadInput(Conn* c) {
    char chunk[16384];
    while (true) {
      ssize_t n = ::recv(c->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        std::string_view data(chunk, static_cast<size_t>(n));
        bool fed = proto_ == WireProto::kBinary ? c->bdecoder.Feed(data)
                                                : c->decoder.Feed(data);
        if (!fed) {
          TransportError(c, "response frame overflow");
          return;
        }
        continue;
      }
      if (n == 0) {
        TransportError(c, "server closed connection");
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      TransportError(c, std::string("recv: ") + std::strerror(errno));
      return;
    }
    if (proto_ == WireProto::kBinary) {
      std::string body;
      while (c->fd >= 0 && c->bdecoder.Next(&body)) HandleBinaryFrame(c, body);
      if (c->fd >= 0 && c->bdecoder.broken()) {
        TransportError(c, "malformed binary response frame");
      }
      return;
    }
    std::string line;
    while (c->fd >= 0 && c->decoder.Next(&line)) HandleLine(c, line);
  }

  void HandleBinaryFrame(Conn* c, const std::string& body) {
    double elapsed_ms = c->op_timer.ElapsedMillis();
    Result<JsonValue> decoded = DecodeBinaryResponse(body);
    if (!decoded.ok()) {
      TransportError(c, "malformed binary response from server");
      return;
    }
    HandleDoc(c, decoded.ValueOrDie(), elapsed_ms);
  }

  void HandleLine(Conn* c, const std::string& line) {
    double elapsed_ms = c->op_timer.ElapsedMillis();
    Result<JsonValue> parsed = ParseJson(line);
    if (!parsed.ok() || !parsed.ValueOrDie().is_object()) {
      TransportError(c, "malformed response from server");
      return;
    }
    HandleDoc(c, parsed.ValueOrDie(), elapsed_ms);
  }

  void HandleDoc(Conn* c, const JsonValue& doc, double elapsed_ms) {
    if (!doc.BoolOr("ok", false)) {
      std::string error = doc.StringOr("error", "INTERNAL");
      if (error == "RETRY_LATER" || error == "SHUTTING_DOWN") {
        ++totals_.shed;
      } else {
        ++totals_.sessions_failed;
        if (totals_.first_error.empty()) {
          totals_.first_error = error + ": " + doc.StringOr("message", "");
        }
      }
      Finish(c, c->sessions_left + 1);
      return;
    }
    switch (c->wait) {
      case Wait::kQuery: {
        (doc.BoolOr("cached", false) ? totals_.latencies.query_warm_ms
                                     : totals_.latencies.query_cold_ms)
            .push_back(elapsed_ms);
        c->token = doc.StringOr("token", "");
        SendFind(c);
        break;
      }
      case Wait::kFind: {
        totals_.latencies.other_ms.push_back(elapsed_ms);
        bool found = doc.BoolOr("found", false);
        if (found) {
          c->target_node =
              static_cast<NavNodeId>(doc.IntOr("node", kInvalidNavNode));
        }
        if (found && !doc.BoolOr("visible", false) && c->nav_steps < 64) {
          Request expand;
          expand.op = RequestOp::kExpand;
          expand.token = c->token;
          expand.node = static_cast<NavNodeId>(
              doc.IntOr("component_root", kInvalidNavNode));
          SendRequest(c, expand, Wait::kExpand);
        } else if (c->target_node != kInvalidNavNode) {
          Request show;
          show.op = RequestOp::kShowResults;
          show.token = c->token;
          show.node = c->target_node;
          show.retstart = 0;
          show.retmax = 20;
          SendRequest(c, show, Wait::kShow);
        } else {
          SendClose(c);
        }
        break;
      }
      case Wait::kExpand: {
        totals_.latencies.expand_ms.push_back(elapsed_ms);
        ++c->nav_steps;
        SendFind(c);
        break;
      }
      case Wait::kShow:
        totals_.latencies.other_ms.push_back(elapsed_ms);
        SendClose(c);
        break;
      case Wait::kClose:
        totals_.latencies.other_ms.push_back(elapsed_ms);
        ++totals_.sessions_done;
        StartSession(c);
        break;
      case Wait::kConnect:
        TransportError(c, "response before any request");
        break;
    }
  }

  void SendFind(Conn* c) {
    Request find;
    find.op = RequestOp::kFind;
    find.token = c->token;
    find.concept_id = c->variant->target;
    SendRequest(c, find, Wait::kFind);
  }

  void SendClose(Conn* c) {
    Request close_request;
    close_request.op = RequestOp::kClose;
    close_request.token = c->token;
    SendRequest(c, close_request, Wait::kClose);
  }

  void RecordTransportError(Conn* c, const std::string& message) {
    ++totals_.transport_errors;
    if (totals_.first_error.empty()) {
      totals_.first_error =
          "conn " + std::to_string(c->index) + ": " + message;
    }
  }

  void TransportError(Conn* c, const std::string& message) {
    RecordTransportError(c, message);
    Finish(c, c->sessions_left + (c->wait == Wait::kConnect ? 0 : 1));
  }

  /// Unregisters and closes the connection; `abandoned_sessions` sessions
  /// (the in-progress one plus never-started ones) count as failed.
  void Finish(Conn* c, int abandoned_sessions) {
    if (c->fd < 0) return;
    loop_.Remove(c->fd);
    ::close(c->fd);
    c->fd = -1;
    totals_.sessions_failed += abandoned_sessions;
    if (--active_ == 0) loop_.Stop();
  }

  EventLoop loop_{10};
  const std::string host_;
  const int port_;
  const std::vector<QueryVariant>& universe_;
  const double zipf_s_;
  const WireProto proto_;
  std::vector<std::unique_ptr<Conn>> conns_;
  OpenLoopTotals totals_;
  int active_ = 0;
  size_t session_serial_ = 0;  // Round-robin stream when zipf_s == 0.
};

/// Server-side p99 for one op, read from the STATS metrics registry
/// (microseconds -> ms); negative when the histogram is absent.
double ServerP99Ms(const JsonValue& stats, const std::string& histogram) {
  const JsonValue* metrics = stats.Find("metrics");
  if (metrics == nullptr) return -1;
  const JsonValue* histograms = metrics->Find("histograms");
  if (histograms == nullptr) return -1;
  const JsonValue* h = histograms->Find(histogram);
  if (h == nullptr) return -1;
  return h->NumberOr("p99_us", -1000.0) / 1000.0;
}

bool ParseHostPort(const std::string& spec, std::string* host, int* port) {
  size_t colon = spec.rfind(':');
  int64_t parsed = 0;
  if (colon == std::string::npos || colon == 0 ||
      !ParseInt64(spec.substr(colon + 1), &parsed) || parsed <= 0 ||
      parsed > 65535) {
    return false;
  }
  *host = spec.substr(0, colon);
  *port = static_cast<int>(parsed);
  return true;
}

// ---------------------------------------------------------------------------
// Durability check: park sessions (leave them open, record their VIEW
// responses) and, in a later invocation — typically after the backend was
// killed or warm-restarted onto its spill directory — verify every parked
// token still answers VIEW byte-identically. The VIEW response renders
// the whole active tree, so byte equality is the wire-level oracle that
// snapshot/restore preserved navigation state exactly.
// ---------------------------------------------------------------------------

/// Opens `count` sessions against host:port, navigates a couple of oracle
/// steps each (so the snapshots carry replay state), appends one JSON
/// line {token, query, view} per session to `path`, and leaves every
/// session open.
int ParkSessions(const std::string& host, int port, WireProto proto,
                 const std::vector<QueryVariant>& universe, int count,
                 const std::string& path) {
  NavClientOptions options;
  options.proto = proto;
  auto connected = NavClient::Connect(host, port, options);
  if (!connected.ok()) {
    std::cerr << "park: " << connected.status().ToString() << "\n";
    return 1;
  }
  NavClient& client = *connected.ValueOrDie();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cerr << "park: cannot write " << path << "\n";
    return 1;
  }
  for (int i = 0; i < count; ++i) {
    const QueryVariant& variant = universe[static_cast<size_t>(i) %
                                           universe.size()];
    auto opened = client.Query(variant.query);
    if (!opened.ok()) {
      std::cerr << "park: QUERY failed: " << opened.status().ToString()
                << "\n";
      return 1;
    }
    const std::string token = opened.ValueOrDie().token;
    // Two VIEW-driven reveals (first expandable node each time, so the
    // walk is deterministic): the snapshot a spill tier takes of this
    // session carries real replay state.
    for (int step = 0; step < 2; ++step) {
      auto viewed = client.View(token);
      if (!viewed.ok()) {
        std::cerr << "park: VIEW failed: " << viewed.status().ToString()
                  << "\n";
        return 1;
      }
      auto tree = ParseJson(viewed.ValueOrDie());
      if (!tree.ok()) {
        std::cerr << "park: malformed VIEW response\n";
        return 1;
      }
      std::vector<NavNodeId> expandable;
      CollectExpandable(tree.ValueOrDie(), &expandable);
      if (expandable.empty()) break;
      auto revealed = client.Expand(token, expandable.front());
      if (!revealed.ok()) {
        std::cerr << "park: EXPAND failed: " << revealed.status().ToString()
                  << "\n";
        return 1;
      }
    }
    auto view = client.View(token);
    if (!view.ok()) {
      std::cerr << "park: VIEW failed: " << view.status().ToString() << "\n";
      return 1;
    }
    out << "{\"token\":\"" << JsonEscape(token) << "\",\"query\":\""
        << JsonEscape(variant.query) << "\",\"view\":\""
        << JsonEscape(view.ValueOrDie()) << "\"}\n";
  }
  out.flush();
  if (!out) {
    std::cerr << "park: short write to " << path << "\n";
    return 1;
  }
  std::cout << "parked " << count << " open sessions to " << path << "\n";
  return 0;
}

/// Replays VIEW for every token recorded in `path` and demands a
/// byte-identical response. With `tolerate`, shed responses and failed
/// connects get a bounded backoff-and-retry (the warm-restart window).
/// Scrapes the restore-latency p99 from STATS (of `stats_spec` when
/// given — a router's STATS has no backend histograms) into the --json
/// record. Nonzero on any mismatch or unrecoverable token.
int VerifyParked(const std::string& host, int port, WireProto proto,
                 const std::string& path, bool tolerate,
                 const std::string& stats_spec, const BenchOptions& opts) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "verify-parked: cannot read " << path << "\n";
    return 1;
  }
  NavClientOptions options;
  options.proto = proto;
  if (tolerate) options.connect_retries = 10;
  std::unique_ptr<NavClient> client;
  auto connect = [&]() -> bool {
    auto connected = NavClient::Connect(host, port, options);
    if (!connected.ok()) {
      std::cerr << "verify-parked: " << connected.status().ToString() << "\n";
      return false;
    }
    client = std::move(connected.ValueOrDie());
    return true;
  };
  if (!connect()) return 1;

  Timer wall;
  wall.Restart();
  int verified = 0, mismatched = 0, failed = 0, retried = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto parsed = ParseJson(line);
    if (!parsed.ok() || !parsed.ValueOrDie().is_object()) {
      std::cerr << "verify-parked: malformed record in " << path << "\n";
      return 1;
    }
    const JsonValue& record = parsed.ValueOrDie();
    const std::string token = record.StringOr("token", "");
    const std::string expected = record.StringOr("view", "");
    Result<std::string> view = client->View(token);
    for (int attempt = 0;
         !view.ok() && tolerate && IsShedStatus(view.status()) &&
         attempt < 40;
         ++attempt) {
      ++retried;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      if (!connect()) continue;
      view = client->View(token);
    }
    if (!view.ok()) {
      ++failed;
      std::cerr << "verify-parked: VIEW " << token
                << " failed: " << view.status().ToString() << "\n";
      continue;
    }
    if (view.ValueOrDie() == expected) {
      ++verified;
    } else {
      ++mismatched;
      std::cerr << "verify-parked: VIEW " << token
                << " differs from its parked-time response\n";
    }
  }
  double wall_ms = wall.ElapsedMillis();

  double restore_p99_ms = -1;
  std::string stats_host = host;
  int stats_port = port;
  if (!stats_spec.empty() &&
      !ParseHostPort(stats_spec, &stats_host, &stats_port)) {
    std::cerr << "verify-parked: --stats-target needs HOST:PORT\n";
    return 1;
  }
  if (auto scraper = NavClient::Connect(stats_host, stats_port, options);
      scraper.ok()) {
    if (auto stats_doc = scraper.ValueOrDie()->Stats(); stats_doc.ok()) {
      restore_p99_ms =
          ServerP99Ms(stats_doc.ValueOrDie(), "bionav_session_restore_us");
    }
  }

  std::cout << "verify-parked: " << verified << " byte-identical, "
            << mismatched << " mismatched, " << failed << " failed, "
            << retried << " shed retries; session restore p99 ";
  if (restore_p99_ms < 0) {
    std::cout << "- (histogram absent)\n";
  } else {
    std::cout << TextTable::Num(restore_p99_ms, 3) << " ms\n";
  }

  std::ostringstream extra;
  extra << "\"mode\": \"verify-parked\", \"parked_verified\": " << verified
        << ", \"parked_mismatched\": " << mismatched
        << ", \"parked_failed\": " << failed
        << ", \"shed_retries\": " << retried
        << ", \"restore_p99_ms\": " << restore_p99_ms;
  AppendJsonRecord(opts.json_path, "bench_serving",
                   "mode=verify-parked,proto=" +
                       std::string(WireProtoName(proto)),
                   1, wall_ms, PerSec(verified, wall_ms), extra.str());
  return (mismatched > 0 || failed > 0) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  int clients = 4;
  int sessions_per_client = 8;
  int distinct_queries = 0;
  double zipf_s = 0.0;
  bool cache_enabled = true;
  bool open_loop = false;
  int connections = 0;
  int io_threads = 1;
  int backends = 0;
  bool routed = false;
  bool peer_fetch = false;
  int replicas = 1;
  double replicate_above = 10.0;
  std::string target;
  WireProto proto = WireProto::kJson;
  LoadProfile profile;
  int park = 0;
  std::string park_file, verify_parked, stats_target;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    int64_t value = 0;
    double dvalue = 0;
    if (StartsWith(arg, "--clients=") &&
        ParseInt64(arg.substr(10), &value) && value > 0) {
      clients = static_cast<int>(value);
    } else if (StartsWith(arg, "--connections=") &&
               ParseInt64(arg.substr(14), &value) && value > 0) {
      connections = static_cast<int>(value);
      open_loop = true;
    } else if (arg == "--open-loop") {
      open_loop = true;
    } else if (StartsWith(arg, "--io-threads=") &&
               ParseInt64(arg.substr(13), &value) && value > 0) {
      io_threads = static_cast<int>(value);
    } else if (StartsWith(arg, "--sessions=") &&
               ParseInt64(arg.substr(11), &value) && value > 0) {
      sessions_per_client = static_cast<int>(value);
    } else if (StartsWith(arg, "--distinct-queries=") &&
               ParseInt64(arg.substr(19), &value) && value >= 0) {
      distinct_queries = static_cast<int>(value);
    } else if (StartsWith(arg, "--zipf-s=") &&
               ParseDouble(arg.substr(9), &dvalue) && dvalue >= 0) {
      zipf_s = dvalue;
    } else if (arg == "--cache=off") {
      cache_enabled = false;
    } else if (arg == "--cache=on") {
      cache_enabled = true;
    } else if (arg == "--proto=json") {
      proto = WireProto::kJson;
    } else if (arg == "--proto=binary") {
      proto = WireProto::kBinary;
    } else if (StartsWith(arg, "--backends=") &&
               ParseInt64(arg.substr(11), &value) && value > 0) {
      backends = static_cast<int>(value);
    } else if (arg == "--routed") {
      routed = true;
    } else if (arg == "--peer-fetch") {
      peer_fetch = true;
    } else if (StartsWith(arg, "--replicas=") &&
               ParseInt64(arg.substr(11), &value) && value > 0) {
      replicas = static_cast<int>(value);
    } else if (StartsWith(arg, "--replicate-above=") &&
               ParseDouble(arg.substr(18), &dvalue) && dvalue >= 0) {
      replicate_above = dvalue;
    } else if (StartsWith(arg, "--target=")) {
      target = arg.substr(9);
    } else if (StartsWith(arg, "--archetype=")) {
      std::string name = arg.substr(12);
      if (name == "finder") {
        profile.archetype = Archetype::kFinder;
      } else if (name == "browser") {
        profile.archetype = Archetype::kBrowser;
      } else if (name == "backtracker") {
        profile.archetype = Archetype::kBacktracker;
      } else {
        std::cerr << "bench_serving: unknown archetype '" << name << "'\n";
        return 2;
      }
    } else if (StartsWith(arg, "--think-ms=") &&
               ParseDouble(arg.substr(11), &dvalue) && dvalue >= 0) {
      profile.think_ms = dvalue;
    } else if (StartsWith(arg, "--abandon-p=") &&
               ParseDouble(arg.substr(12), &dvalue) && dvalue >= 0 &&
               dvalue <= 1) {
      profile.abandon_p = dvalue;
    } else if (arg == "--tolerate-retry-later") {
      profile.tolerate_retry_later = true;
    } else if (arg == "--batch-expand") {
      profile.batch_expand = true;
    } else if (StartsWith(arg, "--park=") &&
               ParseInt64(arg.substr(7), &value) && value > 0) {
      park = static_cast<int>(value);
    } else if (StartsWith(arg, "--park-file=")) {
      park_file = arg.substr(12);
    } else if (StartsWith(arg, "--verify-parked=")) {
      verify_parked = arg.substr(16);
    } else if (StartsWith(arg, "--stats-target=")) {
      stats_target = arg.substr(15);
    } else {
      std::cerr << "bench_serving: unknown arg '" << arg << "'\n";
      return 2;
    }
  }

  if (open_loop && connections == 0) connections = 64;
  if (backends > 0 && !target.empty()) {
    std::cerr << "bench_serving: --backends and --target are exclusive\n";
    return 2;
  }
  if (profile.batch_expand && profile.archetype != Archetype::kBrowser) {
    std::cerr << "bench_serving: --batch-expand needs --archetype=browser\n";
    return 2;
  }
  if (open_loop && (profile.archetype != Archetype::kFinder ||
                    profile.think_ms > 0 || profile.abandon_p > 0 ||
                    park > 0)) {
    std::cerr << "bench_serving: archetypes, think times, abandonment and "
                 "--park are closed-loop only\n";
    return 2;
  }
  if ((park > 0) != !park_file.empty()) {
    std::cerr << "bench_serving: --park=N and --park-file=PATH go together\n";
    return 2;
  }
  if (peer_fetch && backends <= 0) {
    std::cerr << "bench_serving: --peer-fetch needs --backends=N\n";
    return 2;
  }
  if (routed && backends <= 0 && target.empty()) {
    std::cerr << "bench_serving: --routed needs a router endpoint "
                 "(--backends=N or --target=HOST:PORT)\n";
    return 2;
  }
  if (routed && open_loop) {
    std::cerr << "bench_serving: --routed is closed-loop only\n";
    return 2;
  }

  // Verify mode stands alone: no workload, no in-process tier — just the
  // parked-session oracle against an external endpoint.
  if (!verify_parked.empty()) {
    std::string verify_host;
    int verify_port = 0;
    if (target.empty() || !ParseHostPort(target, &verify_host, &verify_port)) {
      std::cerr << "bench_serving: --verify-parked needs --target=HOST:PORT\n";
      return 2;
    }
    return VerifyParked(verify_host, verify_port, proto, verify_parked,
                        profile.tolerate_retry_later, stats_target, opts);
  }

  PrintPreamble(open_loop
                    ? "Serving: open-loop connection sweep on NavServer"
                    : "Serving: closed-loop Zipf load on NavServer");
  const Workload& w = SharedWorkload();
  EUtilsClient eutils = w.corpus().MakeClient();
  std::vector<QueryVariant> universe = BuildQueryUniverse(w, distinct_queries);

  int concurrent = open_loop ? connections : clients;
  NavServerOptions server_options;
  server_options.threads = opts.threads;
  server_options.io_threads = io_threads;
  // Admit every generated connection (plus the stats scraper): shed load
  // below the limit is a serving bug the final check catches.
  if (concurrent + 8 > server_options.max_connections) {
    server_options.max_connections = concurrent + 8;
  }
  server_options.session.max_sessions =
      static_cast<size_t>(concurrent) * 2 + 8;
  server_options.session.cache_enabled = cache_enabled;

  // The endpoint under test comes in three shapes: the default in-process
  // NavServer, a sharded tier (--backends=N stands up N NavServers behind
  // an in-process NavRouter so both load models drive the full router data
  // path over real TCP), or an external endpoint (--target=HOST:PORT, e.g.
  // a bionav_route fleet started out of band).
  std::string host = "127.0.0.1";
  int port = 0;
  std::unique_ptr<NavServer> server;
  // Fetchers are captured by reference in shard session options, so they
  // must outlive the shards (declared first → destroyed last).
  std::vector<std::unique_ptr<PeerArtifactFetcher>> fetchers;
  std::vector<std::unique_ptr<NavServer>> shards;
  std::unique_ptr<NavRouter> router;
  if (!target.empty()) {
    size_t colon = target.rfind(':');
    int64_t target_port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !ParseInt64(target.substr(colon + 1), &target_port) ||
        target_port <= 0 || target_port > 65535) {
      std::cerr << "bench_serving: --target needs HOST:PORT\n";
      return 2;
    }
    host = target.substr(0, colon);
    port = static_cast<int>(target_port);
    std::cout << "target: " << host << ":" << port << " (external), "
              << WireProtoName(proto) << " wire\n";
  } else if (backends > 0) {
    NavRouterOptions router_options;
    router_options.io_threads = io_threads;
    router_options.max_connections = server_options.max_connections;
    router_options.replicas = replicas;
    router_options.replicate_above_qps = replicate_above;
    std::vector<RouterBackend> fleet;
    for (int b = 0; b < backends; ++b) {
      std::string id = "shard" + std::to_string(b);
      NavServerOptions shard_options = server_options;
      // The router pins sessions by token string, so each shard's minted
      // tokens must be unique fleet-wide.
      shard_options.session.token_prefix = id + "-";
      if (peer_fetch) {
        // Installed before the NavServer copies its options; configured
        // with the full fleet once every shard has a port.
        auto fetcher = std::make_unique<PeerArtifactFetcher>(&w.hierarchy());
        PeerArtifactFetcher* raw = fetcher.get();
        shard_options.session.peer_fetcher =
            [raw](const std::string& key) { return raw->Fetch(key); };
        fetchers.push_back(std::move(fetcher));
      }
      auto shard = std::make_unique<NavServer>(
          &w.hierarchy(), &eutils, MakeBioNavStrategyFactory(), shard_options);
      if (Status up = shard->Start(); !up.ok()) {
        std::cerr << up.ToString() << "\n";
        return 1;
      }
      fleet.push_back({"127.0.0.1", shard->port(), id});
      shards.push_back(std::move(shard));
    }
    if (peer_fetch) {
      std::vector<PeerSpec> peers;
      for (int b = 0; b < backends; ++b) {
        peers.push_back({"shard" + std::to_string(b), "127.0.0.1",
                         shards[static_cast<size_t>(b)]->port()});
      }
      for (int b = 0; b < backends; ++b) {
        PeerFetchOptions peer_options;
        peer_options.self_id = "shard" + std::to_string(b);
        peer_options.peers = peers;
        peer_options.vnodes = router_options.ring_vnodes;
        peer_options.seed = router_options.ring_seed;
        fetchers[static_cast<size_t>(b)]->Configure(std::move(peer_options));
      }
    }
    router = std::make_unique<NavRouter>(std::move(fleet), router_options);
    if (Status started = router->Start(); !started.ok()) {
      std::cerr << started.ToString() << "\n";
      return 1;
    }
    port = router->port();
    std::cout << "tier: router 127.0.0.1:" << port << " over " << backends
              << " shards, " << server_options.threads
              << " worker threads each, " << io_threads
              << " io thread(s), cache " << (cache_enabled ? "on" : "off")
              << ", peer-fetch " << (peer_fetch ? "on" : "off")
              << ", replicas " << replicas << " above "
              << replicate_above << " qps, "
              << (routed ? "client-routed, " : "")
              << WireProtoName(proto) << " wire\n";
  } else {
    server = std::make_unique<NavServer>(
        &w.hierarchy(), &eutils, MakeBioNavStrategyFactory(), server_options);
    if (Status started = server->Start(); !started.ok()) {
      std::cerr << started.ToString() << "\n";
      return 1;
    }
    port = server->port();
    std::cout << "server: 127.0.0.1:" << port << ", "
              << server_options.threads << " worker threads, " << io_threads
              << " io thread(s), cache " << (cache_enabled ? "on" : "off")
              << ", " << WireProtoName(proto) << " wire\n";
  }
  if (open_loop) {
    std::cout << "load: " << connections << " open-loop connections x "
              << sessions_per_client << " sessions, " << universe.size()
              << " distinct queries, zipf_s=" << zipf_s << "\n\n";
  } else {
    std::cout << "load: " << clients << " clients x " << sessions_per_client
              << " sessions (+" << opts.warmup << " warmup), "
              << universe.size() << " distinct queries, zipf_s=" << zipf_s
              << ", archetype=" << ArchetypeName(profile.archetype)
              << ", think_ms=" << profile.think_ms
              << ", abandon_p=" << profile.abandon_p << "\n\n";
  }

  std::vector<ClientResult> results(static_cast<size_t>(clients));
  OpenLoopTotals open_totals;
  double wall_ms = 0;
  if (open_loop) {
    OpenLoopHarness harness(host, port, universe, zipf_s, proto, connections,
                            sessions_per_client);
    Timer wall;
    open_totals = harness.Run();
    wall_ms = wall.ElapsedMillis();
  } else {
    auto run_phase = [&](uint64_t salt, int sessions,
                         std::vector<ClientResult>* out) {
      std::vector<std::thread> threads;
      threads.reserve(static_cast<size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          if (routed) {
            RunClient<RoutedNavClient>(universe, zipf_s, c, salt, sessions,
                                       host, port, proto, profile,
                                       &(*out)[static_cast<size_t>(c)]);
          } else {
            RunClient<NavClient>(universe, zipf_s, c, salt, sessions, host,
                                 port, proto, profile,
                                 &(*out)[static_cast<size_t>(c)]);
          }
        });
      }
      for (std::thread& t : threads) t.join();
    };
    // Warmup phase: discarded sessions prime allocator arenas and the
    // artifact cache, so the measured distribution reflects steady state.
    if (opts.warmup > 0) {
      std::vector<ClientResult> warmup_results(static_cast<size_t>(clients));
      run_phase(/*salt=*/0x77ULL, opts.warmup, &warmup_results);
      for (const ClientResult& r : warmup_results) {
        if (!r.first_error.empty()) {
          std::cerr << "warmup client error: " << r.first_error << "\n";
          return 1;
        }
      }
    }
    Timer wall;
    run_phase(/*salt=*/0, sessions_per_client, &results);
    wall_ms = wall.ElapsedMillis();
  }

  // Durability park rides after the measured phase: open --park sessions,
  // record their VIEW responses to --park-file, leave them open for a
  // later --verify-parked run (meaningful against --target, where the
  // server outlives this process).
  if (park > 0) {
    if (int rc = ParkSessions(host, port, proto, universe, park, park_file);
        rc != 0) {
      return rc;
    }
  }

  // Wire-volume accounting is snapshotted before the stats scraper
  // connects, so bytes/request reflects only the load phases (warmup is
  // proportionally identical across protocols and does not skew the
  // per-request average). With the sharded tier the shards' counters are
  // summed — that is the backend-side wire volume, one router hop in from
  // what the clients saw. An external --target leaves them zero.
  NavServerStats wire_stats{};
  if (server != nullptr) wire_stats = server->stats();
  for (const std::unique_ptr<NavServer>& shard : shards) {
    NavServerStats s = shard->stats();
    wire_stats.requests += s.requests;
    wire_stats.bytes_rx += s.bytes_rx;
    wire_stats.bytes_tx += s.bytes_tx;
    wire_stats.connections_accepted += s.connections_accepted;
    wire_stats.connections_shed += s.connections_shed;
    wire_stats.connections_idle_closed += s.connections_idle_closed;
    wire_stats.epoll_wakeups += s.epoll_wakeups;
    wire_stats.sessions.created += s.sessions.created;
    wire_stats.sessions.closed += s.sessions.closed;
    wire_stats.sessions.evicted_lru += s.sessions.evicted_lru;
    wire_stats.sessions.artifact_builds += s.sessions.artifact_builds;
    wire_stats.sessions.peer_fetch_hits += s.sessions.peer_fetch_hits;
    wire_stats.sessions.peer_fetch_misses += s.sessions.peer_fetch_misses;
  }
  NavRouterStats router_stats{};
  if (router != nullptr) router_stats = router->stats();
  double bytes_tx_per_req =
      wire_stats.requests > 0
          ? static_cast<double>(wire_stats.bytes_tx) /
                static_cast<double>(wire_stats.requests)
          : 0.0;
  double bytes_rx_per_req =
      wire_stats.requests > 0
          ? static_cast<double>(wire_stats.bytes_rx) /
                static_cast<double>(wire_stats.requests)
          : 0.0;
  // Flush-batch shape: frames coalesced per sendmsg on the reactor's
  // write path (the histogram's "_us" fields carry frame counts here).
  double flush_batch_mean = 0.0, flush_batch_p99 = 0.0;
  if (const LatencyHistogram* fb =
          GlobalMetrics().FindHistogram("bionav_server_flush_batch");
      fb != nullptr && fb->Count() > 0) {
    flush_batch_mean = static_cast<double>(fb->SumMicros()) /
                       static_cast<double>(fb->Count());
    flush_batch_p99 = fb->Quantile(0.99);
  }

  // Scrape the server's own percentiles and cache counters over the wire
  // before shutdown — this also exercises the STATS exposition end to end.
  double server_query_p99 = -1, server_expand_p99 = -1;
  int64_t cache_hits = 0, cache_misses = 0, cache_entries = 0,
          cache_bytes = 0;
  if (auto scraper = NavClient::Connect(host, port); scraper.ok()) {
    if (auto stats_doc = scraper.ValueOrDie()->Stats(); stats_doc.ok()) {
      server_query_p99 =
          ServerP99Ms(stats_doc.ValueOrDie(), "bionav_server_op_query_us");
      server_expand_p99 =
          ServerP99Ms(stats_doc.ValueOrDie(), "bionav_server_op_expand_us");
      if (const JsonValue* c = stats_doc.ValueOrDie().Find("cache")) {
        cache_hits = c->IntOr("hits", 0);
        cache_misses = c->IntOr("misses", 0);
        cache_entries = c->IntOr("entries", 0);
        cache_bytes = c->IntOr("bytes", 0);
      } else if (const JsonValue* fleet =
                     stats_doc.ValueOrDie().Find("fleet")) {
        // A router endpoint exposes the fleet rollup instead of a single
        // server's cache block (entries/bytes are per-shard, not summed).
        cache_hits = fleet->IntOr("cache_hits", 0);
        cache_misses = fleet->IntOr("cache_misses", 0);
      }
    }
  }
  // The fleet rollup lags a health-probe interval behind the load; with the
  // in-process tier the shards are right here, so scrape them directly for
  // an up-to-date cache picture.
  if (!shards.empty()) {
    cache_hits = cache_misses = cache_entries = cache_bytes = 0;
    for (const std::unique_ptr<NavServer>& shard : shards) {
      auto scraper = NavClient::Connect("127.0.0.1", shard->port());
      if (!scraper.ok()) continue;
      auto stats_doc = scraper.ValueOrDie()->Stats();
      if (!stats_doc.ok()) continue;
      if (const JsonValue* c = stats_doc.ValueOrDie().Find("cache")) {
        cache_hits += c->IntOr("hits", 0);
        cache_misses += c->IntOr("misses", 0);
        cache_entries += c->IntOr("entries", 0);
        cache_bytes += c->IntOr("bytes", 0);
      }
    }
  }
  // Tear the tier down front-to-back so shards never see a dead router's
  // upstream connections as client aborts.
  if (router != nullptr) router->Shutdown();
  for (const std::unique_ptr<NavServer>& shard : shards) shard->Shutdown();
  if (server != nullptr) server->Shutdown();

  int done = 0, failed = 0, shed = 0, transport_errors = 0;
  int parked_open = 0, shed_retries = 0;
  int64_t direct_calls = 0, proxied_calls = 0;
  OpLatencies all;
  if (open_loop) {
    done = open_totals.sessions_done;
    failed = open_totals.sessions_failed;
    shed = open_totals.shed;
    transport_errors = open_totals.transport_errors;
    all.MergeFrom(open_totals.latencies);
    if (!open_totals.first_error.empty()) {
      std::cerr << "client error: " << open_totals.first_error << "\n";
    }
  } else {
    for (const ClientResult& r : results) {
      done += r.sessions_done;
      failed += r.sessions_failed;
      shed += r.retry_later;
      parked_open += r.sessions_parked;
      shed_retries += r.shed_retries;
      direct_calls += r.direct_calls;
      proxied_calls += r.proxied_calls;
      all.MergeFrom(r.latencies);
      if (!r.first_error.empty()) {
        std::cerr << "client error: " << r.first_error << "\n";
      }
    }
  }
  std::sort(all.query_cold_ms.begin(), all.query_cold_ms.end());
  std::sort(all.query_warm_ms.begin(), all.query_warm_ms.end());
  std::sort(all.expand_ms.begin(), all.expand_ms.end());
  std::sort(all.other_ms.begin(), all.other_ms.end());

  // Aggregate distribution over every operation class — the one-number
  // comparison between a direct server and the routed tier, where each
  // op pays the extra hop.
  std::vector<double> all_ops;
  all_ops.reserve(all.query_cold_ms.size() + all.query_warm_ms.size() +
                  all.expand_ms.size() + all.other_ms.size());
  for (const std::vector<double>* v :
       {&all.query_cold_ms, &all.query_warm_ms, &all.expand_ms,
        &all.other_ms}) {
    all_ops.insert(all_ops.end(), v->begin(), v->end());
  }
  std::sort(all_ops.begin(), all_ops.end());
  double aggregate_p99 = Percentile(&all_ops, 0.99);

  const NavServerStats& stats = wire_stats;
  TextTable table;
  table.SetHeader({"Op", "Requests", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                   "Server p99"});
  auto op_row = [&](const char* op, std::vector<double>* sorted,
                    double server_p99) {
    table.AddRow({op, std::to_string(sorted->size()),
                  TextTable::Num(Percentile(sorted, 0.50), 3),
                  TextTable::Num(Percentile(sorted, 0.95), 3),
                  TextTable::Num(Percentile(sorted, 0.99), 3),
                  server_p99 < 0 ? "-" : TextTable::Num(server_p99, 3)});
  };
  op_row("QUERY cold", &all.query_cold_ms, server_query_p99);
  op_row("QUERY warm", &all.query_warm_ms, -1);
  op_row("EXPAND", &all.expand_ms, server_expand_p99);
  op_row("other", &all.other_ms, -1);
  std::cout << table.ToString();

  double cold_p50 = Percentile(&all.query_cold_ms, 0.50);
  double warm_p50 = Percentile(&all.query_warm_ms, 0.50);
  int64_t cache_lookups = cache_hits + cache_misses;
  double hit_rate = cache_lookups > 0 ? static_cast<double>(cache_hits) /
                                            static_cast<double>(cache_lookups)
                                      : 0.0;
  std::cout << "\nsessions: " << done << " done, " << failed << " failed, "
            << parked_open << " abandoned open, " << shed_retries
            << " tolerated shed retries, " << transport_errors
            << " transport errors, "
            << TextTable::Num(PerSec(done, wall_ms), 1) << "/s\n";
  if (server != nullptr || !shards.empty()) {
    std::cout << "server: " << stats.requests << " requests, "
              << stats.connections_accepted << " connections accepted, "
              << stats.connections_shed << " shed, "
              << stats.connections_idle_closed << " idle-closed, "
              << stats.epoll_wakeups << " epoll wakeups, "
              << stats.sessions.created << " sessions created, "
              << stats.sessions.evicted_lru << " LRU-evicted\n";
  }
  if (router != nullptr) {
    std::cout << "router: " << router_stats.forwarded << " forwarded, "
              << router_stats.retry_later << " retry-later, "
              << router_stats.protocol_errors << " protocol errors, "
              << router_stats.healthy_backends << "/"
              << router_stats.backends.size() << " healthy; per backend:";
    for (const RouterBackendStats& b : router_stats.backends) {
      std::cout << " " << b.id << "=" << b.forwarded;
    }
    std::cout << "\n";
    std::cout << "router wire: " << router_stats.bytes_rx << " B rx / "
              << router_stats.bytes_tx << " B tx (the relay hop client "
              << "routing avoids)\n";
  }
  if (!shards.empty()) {
    std::cout << "artifacts: " << wire_stats.sessions.artifact_builds
              << " built fleet-wide, " << wire_stats.sessions.peer_fetch_hits
              << " peer-fetch hits, " << wire_stats.sessions.peer_fetch_misses
              << " peer-fetch misses\n";
  }
  if (routed) {
    std::cout << "routing: " << direct_calls << " shard-direct calls, "
              << proxied_calls << " proxied via router\n";
  }
  std::cout << "cache: " << cache_hits << " hits, " << cache_misses
            << " misses (hit rate " << TextTable::Num(hit_rate, 3) << "), "
            << cache_entries << " entries, " << cache_bytes << " bytes";
  if (warm_p50 > 0 && cold_p50 > 0) {
    std::cout << ", warm QUERY p50 " << TextTable::Num(cold_p50 / warm_p50, 1)
              << "x faster than cold";
  }
  std::cout << "\n"
            << "wire: " << WireProtoName(proto) << ", " << wire_stats.bytes_rx
            << " B rx / " << wire_stats.bytes_tx << " B tx ("
            << TextTable::Num(bytes_rx_per_req, 1) << " rx / "
            << TextTable::Num(bytes_tx_per_req, 1)
            << " tx B per request), flush batch mean "
            << TextTable::Num(flush_batch_mean, 2) << " frames, p99 "
            << TextTable::Num(flush_batch_p99, 1) << "\n";

  std::ostringstream extra;
  extra << "\"mode\": \"" << (open_loop ? "open" : "closed") << "\""
        << ", \"proto\": \"" << WireProtoName(proto) << "\""
        << ", \"connections\": " << concurrent
        << ", \"bytes_per_request\": " << bytes_tx_per_req
        << ", \"bytes_rx_per_request\": " << bytes_rx_per_req
        << ", \"flush_batch_mean\": " << flush_batch_mean
        << ", \"flush_batch_p99\": " << flush_batch_p99
        << ", \"transport_errors\": " << transport_errors
        << ", \"cache\": " << (cache_enabled ? "true" : "false")
        << ", \"cache_hit_rate\": " << hit_rate
        << ", \"zipf_s\": " << zipf_s
        << ", \"distinct_queries\": " << universe.size()
        << ", \"warmup\": " << opts.warmup
        << ", \"query_cold_p50_ms\": " << cold_p50
        << ", \"query_warm_p50_ms\": " << warm_p50
        << ", \"query_warm_p99_ms\": " << Percentile(&all.query_warm_ms, 0.99)
        << ", \"expand_p99_ms\": " << Percentile(&all.expand_ms, 0.99)
        << ", \"aggregate_p99_ms\": " << aggregate_p99
        << ", \"archetype\": \"" << ArchetypeName(profile.archetype) << "\""
        << ", \"think_ms\": " << profile.think_ms
        << ", \"abandon_p\": " << profile.abandon_p
        << ", \"sessions_parked\": " << parked_open
        << ", \"shed_retries\": " << shed_retries << ", \"tier\": \""
        << (router != nullptr ? "router"
                              : (target.empty() ? "server" : "external"))
        << "\"";
  if (router != nullptr) {
    extra << ", \"backends\": " << router_stats.backends.size()
          << ", \"backend_requests\": [";
    for (size_t b = 0; b < router_stats.backends.size(); ++b) {
      extra << (b > 0 ? ", " : "") << router_stats.backends[b].forwarded;
    }
    extra << "]"
          << ", \"router_bytes_rx\": " << router_stats.bytes_rx
          << ", \"router_bytes_tx\": " << router_stats.bytes_tx
          << ", \"replicas\": " << replicas
          << ", \"replicate_above\": " << replicate_above;
  }
  if (!shards.empty()) {
    extra << ", \"peer_fetch\": " << (peer_fetch ? "true" : "false")
          << ", \"artifact_builds\": " << wire_stats.sessions.artifact_builds
          << ", \"peer_fetch_hits\": " << wire_stats.sessions.peer_fetch_hits
          << ", \"peer_fetch_misses\": "
          << wire_stats.sessions.peer_fetch_misses;
  }
  extra << ", \"routed\": " << (routed ? "true" : "false")
        << ", \"direct_calls\": " << direct_calls
        << ", \"proxied_calls\": " << proxied_calls;
  AppendJsonRecord(
      opts.json_path, "bench_serving",
      std::string(open_loop ? "mode=open,connections=" : "mode=closed,clients=") +
          std::to_string(concurrent) +
          ",sessions=" + std::to_string(sessions_per_client) +
          ",cache=" + (cache_enabled ? "on" : "off") + ",proto=" +
          WireProtoName(proto),
      server_options.threads, wall_ms, PerSec(done, wall_ms), extra.str());

  // Every connection stayed below the admission limit: a dropped or shed
  // session — or, in open-loop mode, any transport-level failure — is a
  // serving bug, not load. Under --tolerate-retry-later the typed shed
  // window is expected (a backend restarted under load) and only sessions
  // that stayed failed after the bounded retries count.
  bool shed_is_failure = !profile.tolerate_retry_later;
  if (failed > 0 || (shed_is_failure && shed > 0) || transport_errors > 0 ||
      stats.connections_shed > 0 || router_stats.protocol_errors > 0 ||
      (shed_is_failure && router_stats.retry_later > 0)) {
    std::cerr << "ERROR: " << failed << " failed / " << shed << " shed / "
              << transport_errors
              << " transport errors below the admission limit"
              << (router != nullptr ? " (router: " +
                                          std::to_string(
                                              router_stats.retry_later) +
                                          " retry-later, " +
                                          std::to_string(
                                              router_stats.protocol_errors) +
                                          " protocol errors)"
                                    : "")
              << "\n";
    return 1;
  }
  return 0;
}
