// Closed-loop load generator for the navigation service (bionav::server):
// starts a NavServer on loopback over the shared bench workload and drives
// it with N client threads, each running M complete navigation sessions
// over its own TCP connection. A session is the full oracle protocol —
// QUERY, then FIND/EXPAND until the target concept is visible, then
// SHOWRESULTS and CLOSE — so every layer (wire protocol, session manager,
// thread pool, EXPAND hot path) is on the measured path.
//
// Reports per-request latency percentiles (p50/p95/p99) and end-to-end
// sessions/sec, and verifies that no session below the admission limit is
// shed (RETRY_LATER) or dropped.
//
// Flags: --threads=N (server worker threads), --clients=N (load threads,
// default 4), --sessions=M (sessions per client, default 8), --json=PATH.

#include <algorithm>
#include <atomic>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

namespace {

struct ClientResult {
  int sessions_done = 0;
  int sessions_failed = 0;
  int retry_later = 0;
  std::vector<double> request_ms;
  std::string first_error;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

/// One full oracle session over the wire; appends per-request latencies.
Status RunSession(NavClient& client, const std::string& keyword,
                  ConceptId target, std::vector<double>* request_ms) {
  Timer timer;
  auto timed = [&](auto&& call) {
    timer.Restart();
    auto result = call();
    request_ms->push_back(timer.ElapsedMillis());
    return result;
  };

  auto opened = timed([&] { return client.Query(keyword); });
  if (!opened.ok()) return opened.status();
  const std::string token = opened.ValueOrDie().token;

  // Oracle navigation: expand the target's component until it is visible.
  // The 64-iteration cap only guards against a protocol bug looping.
  NavNodeId target_node = kInvalidNavNode;
  for (int step = 0; step < 64; ++step) {
    auto found = timed([&] { return client.Find(token, target); });
    if (!found.ok()) return found.status();
    const NavClient::FindReply& f = found.ValueOrDie();
    if (!f.found) break;  // Target not in this result — nothing to reach.
    target_node = f.node;
    if (f.visible) break;
    auto revealed = timed([&] { return client.Expand(token, f.component_root); });
    if (!revealed.ok()) return revealed.status();
  }

  if (target_node != kInvalidNavNode) {
    auto shown =
        timed([&] { return client.ShowResults(token, target_node, 0, 20); });
    if (!shown.ok()) return shown.status();
  }
  timer.Restart();
  Status closed = client.CloseSession(token);
  request_ms->push_back(timer.ElapsedMillis());
  return closed;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  int clients = 4;
  int sessions_per_client = 8;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    int64_t value = 0;
    if (StartsWith(arg, "--clients=") &&
        ParseInt64(arg.substr(10), &value) && value > 0) {
      clients = static_cast<int>(value);
    } else if (StartsWith(arg, "--sessions=") &&
               ParseInt64(arg.substr(11), &value) && value > 0) {
      sessions_per_client = static_cast<int>(value);
    } else {
      std::cerr << "bench_serving: unknown arg '" << arg << "'\n";
      return 2;
    }
  }

  PrintPreamble("Serving: closed-loop load on NavServer");
  const Workload& w = SharedWorkload();
  EUtilsClient eutils = w.corpus().MakeClient();

  NavServerOptions server_options;
  server_options.threads = opts.threads;
  // Admit every closed-loop client: each holds one connection for the
  // whole run, so live handlers == clients.
  server_options.max_pending = clients;
  server_options.session.max_sessions =
      static_cast<size_t>(clients) * 2 + 8;
  NavServer server(&w.hierarchy(), &eutils, MakeBioNavStrategyFactory(),
                   server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  std::cout << "server: 127.0.0.1:" << server.port() << ", "
            << server_options.threads << " worker threads, " << clients
            << " clients x " << sessions_per_client << " sessions\n\n";

  std::vector<ClientResult> results(static_cast<size_t>(clients));
  Timer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientResult& r = results[static_cast<size_t>(c)];
        auto connected = NavClient::Connect("127.0.0.1", server.port());
        if (!connected.ok()) {
          r.first_error = connected.status().ToString();
          r.sessions_failed = sessions_per_client;
          return;
        }
        NavClient& client = *connected.ValueOrDie();
        for (int s = 0; s < sessions_per_client; ++s) {
          size_t qi = static_cast<size_t>(c * sessions_per_client + s) %
                      w.num_queries();
          const GeneratedQuery& q = w.query(qi);
          Status status =
              RunSession(client, q.spec.keyword, q.target, &r.request_ms);
          if (status.ok()) {
            ++r.sessions_done;
          } else {
            ++r.sessions_failed;
            if (status.message().find("RETRY_LATER") != std::string::npos) {
              ++r.retry_later;
            }
            if (r.first_error.empty()) r.first_error = status.ToString();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double wall_ms = wall.ElapsedMillis();
  server.Shutdown();

  int done = 0, failed = 0, shed = 0;
  std::vector<double> latencies;
  for (const ClientResult& r : results) {
    done += r.sessions_done;
    failed += r.sessions_failed;
    shed += r.retry_later;
    latencies.insert(latencies.end(), r.request_ms.begin(),
                     r.request_ms.end());
    if (!r.first_error.empty()) {
      std::cerr << "client error: " << r.first_error << "\n";
    }
  }
  std::sort(latencies.begin(), latencies.end());

  NavServerStats stats = server.stats();
  TextTable table;
  table.SetHeader({"Sessions", "Failed", "Requests", "p50 (ms)", "p95 (ms)",
                   "p99 (ms)", "Sessions/s"});
  table.AddRow({std::to_string(done), std::to_string(failed),
                std::to_string(latencies.size()),
                TextTable::Num(Percentile(&latencies, 0.50), 3),
                TextTable::Num(Percentile(&latencies, 0.95), 3),
                TextTable::Num(Percentile(&latencies, 0.99), 3),
                TextTable::Num(PerSec(done, wall_ms), 1)});
  std::cout << table.ToString();
  std::cout << "\nserver: " << stats.requests << " requests, "
            << stats.connections_accepted << " connections accepted, "
            << stats.connections_shed << " shed, "
            << stats.sessions.created << " sessions created, "
            << stats.sessions.evicted_lru << " LRU-evicted\n";

  AppendJsonRecord(opts.json_path, "bench_serving",
                   "clients=" + std::to_string(clients) +
                       ",sessions=" + std::to_string(sessions_per_client),
                   server_options.threads, wall_ms, PerSec(done, wall_ms));

  // Every client held one connection below the admission limit: a dropped
  // or shed session is a serving bug, not load.
  if (failed > 0 || shed > 0 || stats.connections_shed > 0) {
    std::cerr << "ERROR: " << failed << " failed / " << shed
              << " shed sessions below the admission limit\n";
    return 1;
  }
  return 0;
}
