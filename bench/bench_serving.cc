// Closed-loop load generator for the navigation service (bionav::server):
// starts a NavServer on loopback over the shared bench workload and drives
// it with N client threads, each running M complete navigation sessions
// over its own TCP connection. A session is the full oracle protocol —
// QUERY, then FIND/EXPAND until the target concept is visible, then
// SHOWRESULTS and CLOSE — so every layer (wire protocol, session manager,
// query-artifact cache, thread pool, EXPAND hot path) is on the measured
// path.
//
// Query traffic is shaped like PubMed's: a fixed universe of
// --distinct-queries variants sampled per session from a seeded Zipf(s)
// popularity distribution (--zipf-s; 0 = uniform round-robin). Head
// queries repeat heavily, so with the server's artifact cache on
// (default), most QUERYs are warm hits that skip navigation-tree
// construction; --cache=off serves every QUERY cold for A/B comparison.
//
// Reports client-observed latency percentiles (p50/p95/p99) per operation
// — QUERY is split into cold (built the tree) and warm (served from the
// cache) via the response's `cached` field, since the two differ by
// orders of magnitude and one distribution would bury both tails — next
// to the server-side percentiles scraped from the STATS metrics registry,
// plus end-to-end sessions/sec and the server's cache hit rate. Verifies
// that no session below the admission limit is shed (RETRY_LATER) or
// dropped.
//
// Flags: --threads=N (server worker threads), --clients=N (load threads,
// default 4), --sessions=M (sessions per client, default 8),
// --distinct-queries=D (query universe; 0 = the raw workload queries),
// --zipf-s=S (popularity skew, default 0 = round-robin), --cache=off,
// --warmup=N (discarded sessions per client before the measured phase),
// --json=PATH, --obs=off (disable server-side trace spans).

#include <algorithm>
#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

namespace {

/// Client-observed latencies, one distribution per operation class. QUERY
/// (cold vs warm) and EXPAND are the paper-relevant ops;
/// FIND/SHOWRESULTS/CLOSE land in `other` (kept out of the headline
/// distributions).
struct OpLatencies {
  std::vector<double> query_cold_ms;
  std::vector<double> query_warm_ms;
  std::vector<double> expand_ms;
  std::vector<double> other_ms;

  void MergeFrom(const OpLatencies& o) {
    query_cold_ms.insert(query_cold_ms.end(), o.query_cold_ms.begin(),
                         o.query_cold_ms.end());
    query_warm_ms.insert(query_warm_ms.end(), o.query_warm_ms.begin(),
                         o.query_warm_ms.end());
    expand_ms.insert(expand_ms.end(), o.expand_ms.begin(), o.expand_ms.end());
    other_ms.insert(other_ms.end(), o.other_ms.begin(), o.other_ms.end());
  }
};

struct ClientResult {
  int sessions_done = 0;
  int sessions_failed = 0;
  int retry_later = 0;
  OpLatencies latencies;
  std::string first_error;
};

/// One entry of the query universe the generator samples from. Variants
/// beyond the workload's distinct keywords repeat the keyword — the
/// inverted index intersects postings, so "kw kw" matches exactly what
/// "kw" does while being a distinct cache key (and wire query).
struct QueryVariant {
  std::string query;
  ConceptId target = kInvalidConcept;
};

std::vector<QueryVariant> BuildQueryUniverse(const Workload& w,
                                             int distinct_queries) {
  std::vector<QueryVariant> universe;
  size_t count = distinct_queries > 0 ? static_cast<size_t>(distinct_queries)
                                      : w.num_queries();
  universe.reserve(count);
  for (size_t d = 0; d < count; ++d) {
    const GeneratedQuery& q = w.query(d % w.num_queries());
    size_t repetitions = d / w.num_queries() + 1;
    QueryVariant v;
    v.target = q.target;
    for (size_t r = 0; r < repetitions; ++r) {
      if (r > 0) v.query.push_back(' ');
      v.query += q.spec.keyword;
    }
    universe.push_back(std::move(v));
  }
  return universe;
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

/// One full oracle session over the wire; appends per-request latencies to
/// the matching per-op distribution.
Status RunSession(NavClient& client, const QueryVariant& variant,
                  OpLatencies* latencies) {
  Timer timer;
  auto timed = [&](std::vector<double>* bucket, auto&& call) {
    timer.Restart();
    auto result = call();
    bucket->push_back(timer.ElapsedMillis());
    return result;
  };

  timer.Restart();
  auto opened = client.Query(variant.query);
  double query_ms = timer.ElapsedMillis();
  if (!opened.ok()) return opened.status();
  (opened.ValueOrDie().cached ? latencies->query_warm_ms
                              : latencies->query_cold_ms)
      .push_back(query_ms);
  const std::string token = opened.ValueOrDie().token;

  // Oracle navigation: expand the target's component until it is visible.
  // The 64-iteration cap only guards against a protocol bug looping.
  NavNodeId target_node = kInvalidNavNode;
  for (int step = 0; step < 64; ++step) {
    auto found = timed(&latencies->other_ms,
                       [&] { return client.Find(token, variant.target); });
    if (!found.ok()) return found.status();
    const NavClient::FindReply& f = found.ValueOrDie();
    if (!f.found) break;  // Target not in this result — nothing to reach.
    target_node = f.node;
    if (f.visible) break;
    auto revealed = timed(&latencies->expand_ms, [&] {
      return client.Expand(token, f.component_root);
    });
    if (!revealed.ok()) return revealed.status();
  }

  if (target_node != kInvalidNavNode) {
    auto shown = timed(&latencies->other_ms, [&] {
      return client.ShowResults(token, target_node, 0, 20);
    });
    if (!shown.ok()) return shown.status();
  }
  timer.Restart();
  Status closed = client.CloseSession(token);
  latencies->other_ms.push_back(timer.ElapsedMillis());
  return closed;
}

/// Runs `sessions` oracle sessions on one connection; results (including
/// failures) accumulate into `r`. `phase_salt` decorrelates the warmup
/// RNG stream from the measured one.
void RunClient(const std::vector<QueryVariant>& universe, double zipf_s,
               int client_index, uint64_t phase_salt, int sessions, int port,
               ClientResult* r) {
  auto connected = NavClient::Connect("127.0.0.1", port);
  if (!connected.ok()) {
    r->first_error = connected.status().ToString();
    r->sessions_failed += sessions;
    return;
  }
  NavClient& client = *connected.ValueOrDie();
  // Seeded per client (and phase): runs are reproducible, clients draw
  // decorrelated Zipf streams.
  Rng rng(0x9e3779b97f4a7c15ULL ^ phase_salt ^
          static_cast<uint64_t>(client_index));
  for (int s = 0; s < sessions; ++s) {
    size_t vi;
    if (zipf_s > 0) {
      vi = rng.Zipf(universe.size(), zipf_s);
    } else {
      vi = static_cast<size_t>(client_index * sessions + s) % universe.size();
    }
    Status status = RunSession(client, universe[vi], &r->latencies);
    if (status.ok()) {
      ++r->sessions_done;
    } else {
      ++r->sessions_failed;
      if (status.message().find("RETRY_LATER") != std::string::npos) {
        ++r->retry_later;
      }
      if (r->first_error.empty()) r->first_error = status.ToString();
    }
  }
}

/// Server-side p99 for one op, read from the STATS metrics registry
/// (microseconds -> ms); negative when the histogram is absent.
double ServerP99Ms(const JsonValue& stats, const std::string& histogram) {
  const JsonValue* metrics = stats.Find("metrics");
  if (metrics == nullptr) return -1;
  const JsonValue* histograms = metrics->Find("histograms");
  if (histograms == nullptr) return -1;
  const JsonValue* h = histograms->Find(histogram);
  if (h == nullptr) return -1;
  return h->NumberOr("p99_us", -1000.0) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  int clients = 4;
  int sessions_per_client = 8;
  int distinct_queries = 0;
  double zipf_s = 0.0;
  bool cache_enabled = true;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    int64_t value = 0;
    double dvalue = 0;
    if (StartsWith(arg, "--clients=") &&
        ParseInt64(arg.substr(10), &value) && value > 0) {
      clients = static_cast<int>(value);
    } else if (StartsWith(arg, "--sessions=") &&
               ParseInt64(arg.substr(11), &value) && value > 0) {
      sessions_per_client = static_cast<int>(value);
    } else if (StartsWith(arg, "--distinct-queries=") &&
               ParseInt64(arg.substr(19), &value) && value >= 0) {
      distinct_queries = static_cast<int>(value);
    } else if (StartsWith(arg, "--zipf-s=") &&
               ParseDouble(arg.substr(9), &dvalue) && dvalue >= 0) {
      zipf_s = dvalue;
    } else if (arg == "--cache=off") {
      cache_enabled = false;
    } else if (arg == "--cache=on") {
      cache_enabled = true;
    } else {
      std::cerr << "bench_serving: unknown arg '" << arg << "'\n";
      return 2;
    }
  }

  PrintPreamble("Serving: closed-loop Zipf load on NavServer");
  const Workload& w = SharedWorkload();
  EUtilsClient eutils = w.corpus().MakeClient();
  std::vector<QueryVariant> universe = BuildQueryUniverse(w, distinct_queries);

  NavServerOptions server_options;
  server_options.threads = opts.threads;
  // Admit every closed-loop client: each holds one connection for the
  // whole run, so live handlers == clients.
  server_options.max_pending = clients;
  server_options.session.max_sessions =
      static_cast<size_t>(clients) * 2 + 8;
  server_options.session.cache_enabled = cache_enabled;
  NavServer server(&w.hierarchy(), &eutils, MakeBioNavStrategyFactory(),
                   server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  std::cout << "server: 127.0.0.1:" << server.port() << ", "
            << server_options.threads << " worker threads, cache "
            << (cache_enabled ? "on" : "off") << "\n"
            << "load: " << clients << " clients x " << sessions_per_client
            << " sessions (+" << opts.warmup << " warmup), "
            << universe.size() << " distinct queries, zipf_s=" << zipf_s
            << "\n\n";

  std::vector<ClientResult> results(static_cast<size_t>(clients));
  auto run_phase = [&](uint64_t salt, int sessions,
                       std::vector<ClientResult>* out) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        RunClient(universe, zipf_s, c, salt, sessions, server.port(),
                  &(*out)[static_cast<size_t>(c)]);
      });
    }
    for (std::thread& t : threads) t.join();
  };
  // Warmup phase: discarded sessions prime allocator arenas and the
  // artifact cache, so the measured distribution reflects steady state.
  if (opts.warmup > 0) {
    std::vector<ClientResult> warmup_results(static_cast<size_t>(clients));
    run_phase(/*salt=*/0x77ULL, opts.warmup, &warmup_results);
    for (const ClientResult& r : warmup_results) {
      if (!r.first_error.empty()) {
        std::cerr << "warmup client error: " << r.first_error << "\n";
        return 1;
      }
    }
  }
  Timer wall;
  run_phase(/*salt=*/0, sessions_per_client, &results);
  double wall_ms = wall.ElapsedMillis();

  // Scrape the server's own percentiles and cache counters over the wire
  // before shutdown — this also exercises the STATS exposition end to end.
  double server_query_p99 = -1, server_expand_p99 = -1;
  int64_t cache_hits = 0, cache_misses = 0, cache_entries = 0,
          cache_bytes = 0;
  if (auto scraper = NavClient::Connect("127.0.0.1", server.port());
      scraper.ok()) {
    if (auto stats_doc = scraper.ValueOrDie()->Stats(); stats_doc.ok()) {
      server_query_p99 =
          ServerP99Ms(stats_doc.ValueOrDie(), "bionav_server_op_query_us");
      server_expand_p99 =
          ServerP99Ms(stats_doc.ValueOrDie(), "bionav_server_op_expand_us");
      if (const JsonValue* c = stats_doc.ValueOrDie().Find("cache")) {
        cache_hits = c->IntOr("hits", 0);
        cache_misses = c->IntOr("misses", 0);
        cache_entries = c->IntOr("entries", 0);
        cache_bytes = c->IntOr("bytes", 0);
      }
    }
  }
  server.Shutdown();

  int done = 0, failed = 0, shed = 0;
  OpLatencies all;
  for (const ClientResult& r : results) {
    done += r.sessions_done;
    failed += r.sessions_failed;
    shed += r.retry_later;
    all.MergeFrom(r.latencies);
    if (!r.first_error.empty()) {
      std::cerr << "client error: " << r.first_error << "\n";
    }
  }
  std::sort(all.query_cold_ms.begin(), all.query_cold_ms.end());
  std::sort(all.query_warm_ms.begin(), all.query_warm_ms.end());
  std::sort(all.expand_ms.begin(), all.expand_ms.end());
  std::sort(all.other_ms.begin(), all.other_ms.end());

  NavServerStats stats = server.stats();
  TextTable table;
  table.SetHeader({"Op", "Requests", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                   "Server p99"});
  auto op_row = [&](const char* op, std::vector<double>* sorted,
                    double server_p99) {
    table.AddRow({op, std::to_string(sorted->size()),
                  TextTable::Num(Percentile(sorted, 0.50), 3),
                  TextTable::Num(Percentile(sorted, 0.95), 3),
                  TextTable::Num(Percentile(sorted, 0.99), 3),
                  server_p99 < 0 ? "-" : TextTable::Num(server_p99, 3)});
  };
  op_row("QUERY cold", &all.query_cold_ms, server_query_p99);
  op_row("QUERY warm", &all.query_warm_ms, -1);
  op_row("EXPAND", &all.expand_ms, server_expand_p99);
  op_row("other", &all.other_ms, -1);
  std::cout << table.ToString();

  double cold_p50 = Percentile(&all.query_cold_ms, 0.50);
  double warm_p50 = Percentile(&all.query_warm_ms, 0.50);
  int64_t cache_lookups = cache_hits + cache_misses;
  double hit_rate = cache_lookups > 0 ? static_cast<double>(cache_hits) /
                                            static_cast<double>(cache_lookups)
                                      : 0.0;
  std::cout << "\nsessions: " << done << " done, " << failed << " failed, "
            << TextTable::Num(PerSec(done, wall_ms), 1) << "/s\n"
            << "server: " << stats.requests << " requests, "
            << stats.connections_accepted << " connections accepted, "
            << stats.connections_shed << " shed, "
            << stats.sessions.created << " sessions created, "
            << stats.sessions.evicted_lru << " LRU-evicted\n"
            << "cache: " << cache_hits << " hits, " << cache_misses
            << " misses (hit rate " << TextTable::Num(hit_rate, 3) << "), "
            << cache_entries << " entries, " << cache_bytes << " bytes";
  if (warm_p50 > 0 && cold_p50 > 0) {
    std::cout << ", warm QUERY p50 " << TextTable::Num(cold_p50 / warm_p50, 1)
              << "x faster than cold";
  }
  std::cout << "\n";

  std::ostringstream extra;
  extra << "\"cache\": " << (cache_enabled ? "true" : "false")
        << ", \"cache_hit_rate\": " << hit_rate
        << ", \"zipf_s\": " << zipf_s
        << ", \"distinct_queries\": " << universe.size()
        << ", \"warmup\": " << opts.warmup
        << ", \"query_cold_p50_ms\": " << cold_p50
        << ", \"query_warm_p50_ms\": " << warm_p50;
  AppendJsonRecord(opts.json_path, "bench_serving",
                   "clients=" + std::to_string(clients) +
                       ",sessions=" + std::to_string(sessions_per_client) +
                       ",cache=" + (cache_enabled ? "on" : "off"),
                   server_options.threads, wall_ms, PerSec(done, wall_ms),
                   extra.str());

  // Every client held one connection below the admission limit: a dropped
  // or shed session is a serving bug, not load.
  if (failed > 0 || shed > 0 || stats.connections_shed > 0) {
    std::cerr << "ERROR: " << failed << " failed / " << shed
              << " shed sessions below the admission limit\n";
    return 1;
  }
  return 0;
}
