// Closed-loop load generator for the navigation service (bionav::server):
// starts a NavServer on loopback over the shared bench workload and drives
// it with N client threads, each running M complete navigation sessions
// over its own TCP connection. A session is the full oracle protocol —
// QUERY, then FIND/EXPAND until the target concept is visible, then
// SHOWRESULTS and CLOSE — so every layer (wire protocol, session manager,
// thread pool, EXPAND hot path) is on the measured path.
//
// Reports client-observed latency percentiles (p50/p95/p99) per operation
// — QUERY builds the whole navigation tree and is orders of magnitude
// slower than an EXPAND, so mixing the ops in one distribution would bury
// the EXPAND tail — next to the server-side percentiles scraped from the
// STATS metrics registry, plus end-to-end sessions/sec. Verifies that no
// session below the admission limit is shed (RETRY_LATER) or dropped.
//
// Flags: --threads=N (server worker threads), --clients=N (load threads,
// default 4), --sessions=M (sessions per client, default 8), --json=PATH,
// --obs=off (disable server-side trace spans).

#include <algorithm>
#include <atomic>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

namespace {

/// Client-observed latencies, one distribution per operation class. QUERY
/// and EXPAND are the paper-relevant ops; FIND/SHOWRESULTS/CLOSE land in
/// `other` (kept out of both headline distributions).
struct OpLatencies {
  std::vector<double> query_ms;
  std::vector<double> expand_ms;
  std::vector<double> other_ms;

  void MergeFrom(const OpLatencies& o) {
    query_ms.insert(query_ms.end(), o.query_ms.begin(), o.query_ms.end());
    expand_ms.insert(expand_ms.end(), o.expand_ms.begin(), o.expand_ms.end());
    other_ms.insert(other_ms.end(), o.other_ms.begin(), o.other_ms.end());
  }
};

struct ClientResult {
  int sessions_done = 0;
  int sessions_failed = 0;
  int retry_later = 0;
  OpLatencies latencies;
  std::string first_error;
};

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0.0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted->size() - 1));
  return (*sorted)[idx];
}

/// One full oracle session over the wire; appends per-request latencies to
/// the matching per-op distribution.
Status RunSession(NavClient& client, const std::string& keyword,
                  ConceptId target, OpLatencies* latencies) {
  Timer timer;
  auto timed = [&](std::vector<double>* bucket, auto&& call) {
    timer.Restart();
    auto result = call();
    bucket->push_back(timer.ElapsedMillis());
    return result;
  };

  auto opened =
      timed(&latencies->query_ms, [&] { return client.Query(keyword); });
  if (!opened.ok()) return opened.status();
  const std::string token = opened.ValueOrDie().token;

  // Oracle navigation: expand the target's component until it is visible.
  // The 64-iteration cap only guards against a protocol bug looping.
  NavNodeId target_node = kInvalidNavNode;
  for (int step = 0; step < 64; ++step) {
    auto found = timed(&latencies->other_ms,
                       [&] { return client.Find(token, target); });
    if (!found.ok()) return found.status();
    const NavClient::FindReply& f = found.ValueOrDie();
    if (!f.found) break;  // Target not in this result — nothing to reach.
    target_node = f.node;
    if (f.visible) break;
    auto revealed = timed(&latencies->expand_ms, [&] {
      return client.Expand(token, f.component_root);
    });
    if (!revealed.ok()) return revealed.status();
  }

  if (target_node != kInvalidNavNode) {
    auto shown = timed(&latencies->other_ms, [&] {
      return client.ShowResults(token, target_node, 0, 20);
    });
    if (!shown.ok()) return shown.status();
  }
  timer.Restart();
  Status closed = client.CloseSession(token);
  latencies->other_ms.push_back(timer.ElapsedMillis());
  return closed;
}

/// Server-side p99 for one op, read from the STATS metrics registry
/// (microseconds -> ms); negative when the histogram is absent.
double ServerP99Ms(const JsonValue& stats, const std::string& histogram) {
  const JsonValue* metrics = stats.Find("metrics");
  if (metrics == nullptr) return -1;
  const JsonValue* histograms = metrics->Find("histograms");
  if (histograms == nullptr) return -1;
  const JsonValue* h = histograms->Find(histogram);
  if (h == nullptr) return -1;
  return h->NumberOr("p99_us", -1000.0) / 1000.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  int clients = 4;
  int sessions_per_client = 8;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    int64_t value = 0;
    if (StartsWith(arg, "--clients=") &&
        ParseInt64(arg.substr(10), &value) && value > 0) {
      clients = static_cast<int>(value);
    } else if (StartsWith(arg, "--sessions=") &&
               ParseInt64(arg.substr(11), &value) && value > 0) {
      sessions_per_client = static_cast<int>(value);
    } else {
      std::cerr << "bench_serving: unknown arg '" << arg << "'\n";
      return 2;
    }
  }

  PrintPreamble("Serving: closed-loop load on NavServer");
  const Workload& w = SharedWorkload();
  EUtilsClient eutils = w.corpus().MakeClient();

  NavServerOptions server_options;
  server_options.threads = opts.threads;
  // Admit every closed-loop client: each holds one connection for the
  // whole run, so live handlers == clients.
  server_options.max_pending = clients;
  server_options.session.max_sessions =
      static_cast<size_t>(clients) * 2 + 8;
  NavServer server(&w.hierarchy(), &eutils, MakeBioNavStrategyFactory(),
                   server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << started.ToString() << "\n";
    return 1;
  }
  std::cout << "server: 127.0.0.1:" << server.port() << ", "
            << server_options.threads << " worker threads, " << clients
            << " clients x " << sessions_per_client << " sessions\n\n";

  std::vector<ClientResult> results(static_cast<size_t>(clients));
  Timer wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ClientResult& r = results[static_cast<size_t>(c)];
        auto connected = NavClient::Connect("127.0.0.1", server.port());
        if (!connected.ok()) {
          r.first_error = connected.status().ToString();
          r.sessions_failed = sessions_per_client;
          return;
        }
        NavClient& client = *connected.ValueOrDie();
        for (int s = 0; s < sessions_per_client; ++s) {
          size_t qi = static_cast<size_t>(c * sessions_per_client + s) %
                      w.num_queries();
          const GeneratedQuery& q = w.query(qi);
          Status status =
              RunSession(client, q.spec.keyword, q.target, &r.latencies);
          if (status.ok()) {
            ++r.sessions_done;
          } else {
            ++r.sessions_failed;
            if (status.message().find("RETRY_LATER") != std::string::npos) {
              ++r.retry_later;
            }
            if (r.first_error.empty()) r.first_error = status.ToString();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  double wall_ms = wall.ElapsedMillis();

  // Scrape the server's own percentiles over the wire before shutdown —
  // this also exercises the STATS metrics exposition end to end.
  double server_query_p99 = -1, server_expand_p99 = -1;
  if (auto scraper = NavClient::Connect("127.0.0.1", server.port());
      scraper.ok()) {
    if (auto stats_doc = scraper.ValueOrDie()->Stats(); stats_doc.ok()) {
      server_query_p99 =
          ServerP99Ms(stats_doc.ValueOrDie(), "bionav_server_op_query_us");
      server_expand_p99 =
          ServerP99Ms(stats_doc.ValueOrDie(), "bionav_server_op_expand_us");
    }
  }
  server.Shutdown();

  int done = 0, failed = 0, shed = 0;
  OpLatencies all;
  for (const ClientResult& r : results) {
    done += r.sessions_done;
    failed += r.sessions_failed;
    shed += r.retry_later;
    all.MergeFrom(r.latencies);
    if (!r.first_error.empty()) {
      std::cerr << "client error: " << r.first_error << "\n";
    }
  }
  std::sort(all.query_ms.begin(), all.query_ms.end());
  std::sort(all.expand_ms.begin(), all.expand_ms.end());
  std::sort(all.other_ms.begin(), all.other_ms.end());

  NavServerStats stats = server.stats();
  TextTable table;
  table.SetHeader({"Op", "Requests", "p50 (ms)", "p95 (ms)", "p99 (ms)",
                   "Server p99"});
  auto op_row = [&](const char* op, std::vector<double>* sorted,
                    double server_p99) {
    table.AddRow({op, std::to_string(sorted->size()),
                  TextTable::Num(Percentile(sorted, 0.50), 3),
                  TextTable::Num(Percentile(sorted, 0.95), 3),
                  TextTable::Num(Percentile(sorted, 0.99), 3),
                  server_p99 < 0 ? "-" : TextTable::Num(server_p99, 3)});
  };
  op_row("QUERY", &all.query_ms, server_query_p99);
  op_row("EXPAND", &all.expand_ms, server_expand_p99);
  op_row("other", &all.other_ms, -1);
  std::cout << table.ToString();
  std::cout << "\nsessions: " << done << " done, " << failed << " failed, "
            << TextTable::Num(PerSec(done, wall_ms), 1) << "/s\n"
            << "server: " << stats.requests << " requests, "
            << stats.connections_accepted << " connections accepted, "
            << stats.connections_shed << " shed, "
            << stats.sessions.created << " sessions created, "
            << stats.sessions.evicted_lru << " LRU-evicted\n";

  AppendJsonRecord(opts.json_path, "bench_serving",
                   "clients=" + std::to_string(clients) +
                       ",sessions=" + std::to_string(sessions_per_client),
                   server_options.threads, wall_ms, PerSec(done, wall_ms));

  // Every client held one connection below the admission limit: a dropped
  // or shed session is a serving bug, not load.
  if (failed > 0 || shed > 0 || stats.connections_shed > 0) {
    std::cerr << "ERROR: " << failed << " failed / " << shed
              << " shed sessions below the admission limit\n";
    return 1;
  }
  return 0;
}
