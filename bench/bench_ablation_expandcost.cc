// Ablation B (DESIGN.md): Section III notes that raising the cost assigned
// to executing an EXPAND action makes each EXPAND reveal more concepts.
// This bench sweeps the expand-cost constant and reports the average number
// of concepts revealed per EXPAND plus the end-to-end oracle cost.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main() {
  PrintPreamble("Ablation: EXPAND-action cost constant sweep");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Expand Cost", "Avg Revealed/EXPAND", "Avg EXPANDs",
                   "Avg Navigation Cost"});

  for (double expand_cost : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    CostModelParams params;
    params.expand_cost = expand_cost;
    double revealed_sum = 0;
    double expands_sum = 0;
    double cost_sum = 0;
    for (size_t i = 0; i < w.num_queries(); ++i) {
      QueryFixture f = BuildQueryFixture(w, i, params);
      NavigationMetrics m = RunOracle(f, MakeBioNavStrategyFactory());
      revealed_sum += m.revealed_concepts;
      expands_sum += m.expand_actions;
      cost_sum += m.navigation_cost();
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({TextTable::Num(expand_cost, 1),
                  TextTable::Num(expands_sum > 0
                                     ? revealed_sum / expands_sum
                                     : 0,
                                 2),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(cost_sum / n, 1)});
  }
  std::cout << table.ToString();
  return 0;
}
