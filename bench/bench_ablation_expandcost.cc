// Ablation B (DESIGN.md): Section III notes that raising the cost assigned
// to executing an EXPAND action makes each EXPAND reveal more concepts.
// This bench sweeps the expand-cost constant and reports the average number
// of concepts revealed per EXPAND plus the end-to-end oracle cost.
//
// Flags: --threads=N (parallel per-query sessions within each sweep point),
// --json=PATH (one record per sweep point).

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Ablation: EXPAND-action cost constant sweep");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Expand Cost", "Avg Revealed/EXPAND", "Avg EXPANDs",
                   "Avg Navigation Cost"});

  for (double expand_cost : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    CostModelParams params;
    params.expand_cost = expand_cost;
    Timer timer;
    std::vector<NavigationMetrics> runs = ParallelMap<NavigationMetrics>(
        opts.threads, w.num_queries(), [&](size_t i) {
          QueryFixture f = BuildQueryFixture(w, i, params);
          return RunOracle(f, MakeBioNavStrategyFactory());
        });
    double wall_ms = timer.ElapsedMillis();
    double revealed_sum = 0;
    double expands_sum = 0;
    double cost_sum = 0;
    for (const NavigationMetrics& m : runs) {
      revealed_sum += m.revealed_concepts;
      expands_sum += m.expand_actions;
      cost_sum += m.navigation_cost();
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({TextTable::Num(expand_cost, 1),
                  TextTable::Num(expands_sum > 0
                                     ? revealed_sum / expands_sum
                                     : 0,
                                 2),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(cost_sum / n, 1)});
    AppendJsonRecord(opts.json_path, "bench_ablation_expandcost",
                     "expand_cost=" + TextTable::Num(expand_cost, 1),
                     opts.threads, wall_ms, PerSec(n, wall_ms));
  }
  std::cout << table.ToString();
  return 0;
}
