// Reproduces Fig 9: number of EXPAND actions per query, static vs
// Heuristic-ReducedOpt. The paper observes that the counts stay comparable
// (the cost gap of Fig 8 comes from selective revealing, not from fewer
// expansions) and that the unselective-target query needs the most BioNav
// expansions (8 vs 3 in the paper).
//
// Flags: --threads=N (parallel per-query sessions), --json=PATH.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Fig 9: EXPAND Actions, Static vs Heuristic-ReducedOpt");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "Static EXPANDs", "BioNav EXPANDs",
                   "Static Revealed", "BioNav Revealed"});

  Timer timer;
  std::vector<std::vector<std::string>> rows = ParallelMap<
      std::vector<std::string>>(opts.threads, w.num_queries(), [&](size_t i) {
    QueryFixture f = BuildQueryFixture(w, i);
    NavigationMetrics s = RunOracle(f, MakeStaticStrategyFactory());
    NavigationMetrics b = RunOracle(f, MakeBioNavStrategyFactory());
    return std::vector<std::string>{
        f.query->spec.name, std::to_string(s.expand_actions),
        std::to_string(b.expand_actions), std::to_string(s.revealed_concepts),
        std::to_string(b.revealed_concepts)};
  });
  double wall_ms = timer.ElapsedMillis();
  for (std::vector<std::string>& row : rows) table.AddRow(row);
  std::cout << table.ToString();
  AppendJsonRecord(opts.json_path, "bench_fig9", "default", opts.threads,
                   wall_ms,
                   PerSec(2.0 * static_cast<double>(w.num_queries()), wall_ms));
  return 0;
}
