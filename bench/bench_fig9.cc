// Reproduces Fig 9: number of EXPAND actions per query, static vs
// Heuristic-ReducedOpt. The paper observes that the counts stay comparable
// (the cost gap of Fig 8 comes from selective revealing, not from fewer
// expansions) and that the unselective-target query needs the most BioNav
// expansions (8 vs 3 in the paper).

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main() {
  PrintPreamble("Fig 9: EXPAND Actions, Static vs Heuristic-ReducedOpt");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "Static EXPANDs", "BioNav EXPANDs",
                   "Static Revealed", "BioNav Revealed"});

  for (size_t i = 0; i < w.num_queries(); ++i) {
    QueryFixture f = BuildQueryFixture(w, i);
    NavigationMetrics s = RunOracle(f, MakeStaticStrategyFactory());
    NavigationMetrics b = RunOracle(f, MakeBioNavStrategyFactory());
    table.AddRow({f.query->spec.name, std::to_string(s.expand_actions),
                  std::to_string(b.expand_actions),
                  std::to_string(s.revealed_concepts),
                  std::to_string(b.revealed_concepts)});
  }
  std::cout << table.ToString();
  return 0;
}
