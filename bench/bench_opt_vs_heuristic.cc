// Ablation C (DESIGN.md): quality of Heuristic-ReducedOpt relative to the
// optimal Opt-EdgeCut, measurable only on small navigation trees (the paper
// notes Opt-EdgeCut is prohibitive beyond ~30 nodes and uses it exactly
// this way — to evaluate the heuristic). For random small instances we
// report the expected model cost of the heuristic's first cut (with optimal
// continuation) against the optimal expected cost, plus the oracle
// navigation cost achieved by each.
//
// Flags: --threads=N (parallel per-seed instances; seeds make the rows
// bit-identical for every thread count), --json=PATH.

#include <iostream>
#include <memory>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

namespace {

struct InstanceRow {
  bool feasible = false;
  uint64_t seed = 0;
  size_t tree_size = 0;
  double opt_cost = 0;
  double h4 = 0;
  double h6 = 0;
};

InstanceRow RunInstance(uint64_t seed) {
  InstanceRow row;
  row.seed = seed;
  // A small random instance: tiny hierarchy, one query, calibrated so
  // the navigation tree stays within Opt-EdgeCut's exact-DP range.
  HierarchyGeneratorOptions hopts;
  hopts.seed = seed;
  hopts.target_nodes = 18;
  hopts.num_categories = 3;
  hopts.top_branching = 3;
  ConceptHierarchy hierarchy = GenerateMeshLikeHierarchy(hopts);

  QuerySpec spec;
  spec.name = "tiny";
  spec.keyword = "tiny";
  spec.result_size = 30;
  spec.target_depth = 3;
  spec.num_themes = 2;
  spec.focus_annotations_mean = 2.0;
  spec.random_annotations_mean = 0.5;
  spec.pool_size_factor = 0.5;
  spec.field_background_factor = 1.0;
  CorpusGeneratorOptions copts;
  copts.seed = seed * 1000;
  copts.background_citations = 300;
  copts.ancestor_walk_prob = 0.35;
  std::unique_ptr<SyntheticCorpus> corpus =
      GenerateCorpus(hierarchy, {spec}, copts);

  auto result = std::make_shared<const ResultSet>(
      corpus->index->Search(spec.keyword));
  NavigationTree nav(hierarchy, corpus->associations, result);
  if (nav.size() < 6 || nav.size() > static_cast<size_t>(kMaxSmallTreeNodes)) {
    return row;  // Keep only instances where the exact DP is feasible.
  }
  CostModel cost_model(&nav);
  ActiveTree active(&nav);

  SmallTree literal = SmallTreeFromComponent(active, cost_model, 0);
  OptEdgeCut opt(&literal, &cost_model);
  double opt_cost = opt.ComponentCost(literal.FullMask());

  // Expected cost when the first EXPAND uses the heuristic's cut and the
  // continuation is optimal: re-evaluate that cut with the exact DP.
  auto heuristic_first_cost = [&](int k) {
    HeuristicReducedOptOptions options;
    options.max_partitions = k;
    HeuristicReducedOpt heuristic(&cost_model, options);
    EdgeCut cut = heuristic.ChooseEdgeCut(active, NavigationTree::kRoot);
    // Map navigation nodes back to literal SmallTree indexes.
    SmallTreeMask mask = literal.FullMask();
    SmallTreeMask upper = mask;
    const CostModelParams& p = cost_model.params();
    const OptEdgeCut::Entry& root_entry = opt.ComputeEntry(mask);
    auto cond = [&](const OptEdgeCut::Entry& e) {
      return root_entry.weight > 0 ? e.weight / root_entry.weight : 0.0;
    };
    double value = p.expand_cost;
    for (NavNodeId nav_child : cut.cut_children) {
      int small_id = -1;
      for (int s = 0; s < literal.size(); ++s) {
        if (literal.node(s).origin == nav_child) {
          small_id = s;
          break;
        }
      }
      BIONAV_CHECK_GE(small_id, 0);
      SmallTreeMask lower = mask & literal.SubtreeMask(small_id);
      upper &= ~lower;
      const OptEdgeCut::Entry& le = opt.ComputeEntry(lower);
      value += p.reveal_cost + cond(le) * le.cost;
    }
    const OptEdgeCut::Entry& ue = opt.ComputeEntry(upper);
    value += cond(ue) * ue.cost;
    // Conditional expected cost with this first cut and optimal
    // continuation, comparable to opt.ComponentCost(mask).
    return (1.0 - root_entry.expand_prob) * p.show_cost *
               root_entry.distinct +
           root_entry.expand_prob * value;
  };

  row.feasible = true;
  row.tree_size = nav.size();
  row.opt_cost = opt_cost;
  row.h4 = heuristic_first_cost(4);
  row.h6 = heuristic_first_cost(6);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  std::cout << "=== Opt-EdgeCut vs Heuristic-ReducedOpt (small trees) ===\n\n";

  TextTable table;
  table.SetHeader({"Seed", "Tree Size", "Opt E[cost]", "Heu K=4 E[cost]",
                   "Heu K=6 E[cost]", "Ratio K=4", "Ratio K=6"});

  constexpr uint64_t kSeeds = 12;
  Timer timer;
  std::vector<InstanceRow> rows = ParallelMap<InstanceRow>(
      opts.threads, kSeeds, [](size_t i) { return RunInstance(i + 1); });
  double wall_ms = timer.ElapsedMillis();

  double ratio4_sum = 0, ratio6_sum = 0;
  int instances = 0;
  for (const InstanceRow& row : rows) {
    if (!row.feasible) continue;
    double r4 = row.opt_cost > 0 ? row.h4 / row.opt_cost : 1.0;
    double r6 = row.opt_cost > 0 ? row.h6 / row.opt_cost : 1.0;
    ratio4_sum += r4;
    ratio6_sum += r6;
    instances++;
    table.AddRow({std::to_string(row.seed), std::to_string(row.tree_size),
                  TextTable::Num(row.opt_cost, 3), TextTable::Num(row.h4, 3),
                  TextTable::Num(row.h6, 3), TextTable::Num(r4, 3),
                  TextTable::Num(r6, 3)});
  }
  std::cout << table.ToString();
  if (instances > 0) {
    std::cout << "\nAvg ratio (heuristic/optimal): K=4 "
              << TextTable::Num(ratio4_sum / instances, 3) << ", K=6 "
              << TextTable::Num(ratio6_sum / instances, 3)
              << " (1.0 = optimal)\n";
  }
  AppendJsonRecord(opts.json_path, "bench_opt_vs_heuristic", "default",
                   opts.threads, wall_ms,
                   PerSec(static_cast<double>(instances), wall_ms));
  return 0;
}
