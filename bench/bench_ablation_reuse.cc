// Ablation E (DESIGN.md / paper Section VI-B): reusing the Opt-EdgeCut DP
// across expansions. The paper remarks that once the DP has run on a
// reduced tree, the optimal cuts of every component it can create are
// already computed; reusing them answers subsequent EXPANDs from the memo,
// at the price of keeping the original (coarser) supernode granularity
// instead of freshly re-partitioning the now-smaller component. This bench
// quantifies that speed/quality trade-off.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main() {
  PrintPreamble("Ablation: Opt-EdgeCut DP reuse across expansions");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Mode", "Avg Cost", "Avg EXPANDs", "Avg Time/EXPAND (ms)",
                   "Cache Hit %"});

  for (bool reuse : {false, true}) {
    double cost_sum = 0, expands_sum = 0;
    TimingStats time_stats;
    int hits = 0, calls = 0;
    for (size_t i = 0; i < w.num_queries(); ++i) {
      QueryFixture f = BuildQueryFixture(w, i);
      HeuristicReducedOptOptions options;
      options.reuse_dp = reuse;
      HeuristicReducedOpt strategy(f.cost_model.get(), options);
      // Manual oracle loop so we can read cache-hit stats per expand.
      ActiveTree active(f.nav.get());
      NavNodeId target = f.nav->NodeOfConcept(f.query->target);
      int expands = 0, revealed = 0;
      while (!active.IsVisible(target)) {
        NavNodeId root =
            active.ComponentRoot(active.ComponentOf(target));
        EdgeCut cut = strategy.ChooseEdgeCut(active, root);
        active.ApplyEdgeCut(root, cut).status().CheckOK();
        ++expands;
        revealed += static_cast<int>(cut.size());
        ++calls;
        hits += strategy.last_stats().cache_hit ? 1 : 0;
        time_stats.Add(strategy.last_stats().elapsed_ms);
      }
      cost_sum += expands + revealed;
      expands_sum += expands;
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({reuse ? "reuse_dp=true" : "reuse_dp=false",
                  TextTable::Num(cost_sum / n, 1),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(time_stats.mean(), 3),
                  TextTable::Num(calls ? 100.0 * hits / calls : 0, 1)});
  }
  std::cout << table.ToString();
  return 0;
}
