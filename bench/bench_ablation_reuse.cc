// Ablation E (DESIGN.md / paper Section VI-B): reusing the Opt-EdgeCut DP
// across expansions. The paper remarks that once the DP has run on a
// reduced tree, the optimal cuts of every component it can create are
// already computed; reusing them answers subsequent EXPANDs from the memo,
// at the price of keeping the original (coarser) supernode granularity
// instead of freshly re-partitioning the now-smaller component. This bench
// quantifies that speed/quality trade-off.
//
// Flags: --threads=N (parallel per-query sessions within each mode),
// --json=PATH (one record per mode).

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Ablation: Opt-EdgeCut DP reuse across expansions");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Mode", "Avg Cost", "Avg EXPANDs", "Avg Time/EXPAND (ms)",
                   "Cache Hit %"});

  struct PerQuery {
    int expands = 0;
    int revealed = 0;
    int hits = 0;
    int calls = 0;
    std::vector<double> expand_ms;
  };

  for (bool reuse : {false, true}) {
    Timer timer;
    std::vector<PerQuery> runs = ParallelMap<PerQuery>(
        opts.threads, w.num_queries(), [&](size_t i) {
          QueryFixture f = BuildQueryFixture(w, i);
          HeuristicReducedOptOptions options;
          options.reuse_dp = reuse;
          HeuristicReducedOpt strategy(f.cost_model.get(), options);
          // Manual oracle loop so we can read cache-hit stats per expand.
          ActiveTree active(f.nav.get());
          NavNodeId target = f.nav->NodeOfConcept(f.query->target);
          PerQuery out;
          while (!active.IsVisible(target)) {
            NavNodeId root = active.ComponentRoot(active.ComponentOf(target));
            EdgeCut cut = strategy.ChooseEdgeCut(active, root);
            active.ApplyEdgeCut(root, cut).status().CheckOK();
            ++out.expands;
            out.revealed += static_cast<int>(cut.size());
            ++out.calls;
            out.hits += strategy.last_stats().cache_hit ? 1 : 0;
            out.expand_ms.push_back(strategy.last_stats().elapsed_ms);
          }
          return out;
        });
    double wall_ms = timer.ElapsedMillis();
    double cost_sum = 0, expands_sum = 0;
    TimingStats time_stats;
    int hits = 0, calls = 0;
    for (const PerQuery& q : runs) {
      cost_sum += q.expands + q.revealed;
      expands_sum += q.expands;
      hits += q.hits;
      calls += q.calls;
      for (double t : q.expand_ms) time_stats.Add(t);
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({reuse ? "reuse_dp=true" : "reuse_dp=false",
                  TextTable::Num(cost_sum / n, 1),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(time_stats.mean(), 3),
                  TextTable::Num(calls ? 100.0 * hits / calls : 0, 1)});
    AppendJsonRecord(opts.json_path, "bench_ablation_reuse",
                     reuse ? "reuse_dp=true" : "reuse_dp=false", opts.threads,
                     wall_ms, PerSec(n, wall_ms));
  }
  std::cout << table.ToString();
  return 0;
}
