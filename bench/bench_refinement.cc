// Related-work comparison (paper Section IX): query-refinement tools
// (PubMed PubReMiner, XplorMed) show concept-frequency lists and let the
// user iteratively AND the query with a concept. This bench measures the
// oracle interaction cost of that model against BioNav's navigation,
// charging both the same way (1 per item read + 1 per action + 1 per
// citation finally inspected).
//
// Flags: --json=PATH. (The refinement oracle shares one QueryRefiner, so
// the query loop stays serial; --threads is recorded but unused.)

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Related work: query refinement vs BioNav navigation");

  const Workload& w = SharedWorkload();
  EUtilsClient client = w.corpus().MakeClient();
  QueryRefiner refiner(&w.hierarchy(), &client);

  TextTable table;
  table.SetHeader({"Query", "Refinement Cost", "(rounds/read/final)",
                   "Target Recall %", "BioNav Cost (w/ results)",
                   "BioNav Recall %"});

  Timer timer;
  double refine_sum = 0, bionav_sum = 0, recall_sum = 0;
  for (size_t i = 0; i < w.num_queries(); ++i) {
    const GeneratedQuery& q = w.query(i);
    RefinementMetrics r = NavigateByRefinement(
        refiner, client, q.spec.keyword, q.target);
    QueryFixture f = BuildQueryFixture(w, i);
    NavigationMetrics b = RunOracle(f, MakeBioNavStrategyFactory());

    refine_sum += r.cost();
    bionav_sum += b.total_cost_with_results();
    recall_sum += r.target_recall();
    table.AddRow({q.spec.name, std::to_string(r.cost()),
                  std::to_string(r.rounds) + "/" +
                      std::to_string(r.suggestions_read) + "/" +
                      std::to_string(r.final_results) +
                      (r.stalled ? " (stalled)" : ""),
                  TextTable::Num(100.0 * r.target_recall(), 0),
                  std::to_string(b.total_cost_with_results()),
                  // BioNav's SHOWRESULTS covers the target's whole
                  // component subtree, so every target citation is shown.
                  "100"});
  }
  double wall_ms = timer.ElapsedMillis();
  std::cout << table.ToString();
  double n = static_cast<double>(w.num_queries());
  std::cout << "\nAverage cost: refinement "
            << TextTable::Num(refine_sum / n, 1) << " vs BioNav "
            << TextTable::Num(bionav_sum / n, 1)
            << "; refinement keeps only "
            << TextTable::Num(100.0 * recall_sum / n, 0)
            << "% of the target literature (BioNav: 100%) — the paper's"
               " Section I over-specification critique.\n";
  AppendJsonRecord(opts.json_path, "bench_refinement", "default", 1, wall_ms,
                   PerSec(2.0 * n, wall_ms));
  return 0;
}
