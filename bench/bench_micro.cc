// Micro-benchmarks (google-benchmark) for the hot paths of the library:
// navigation-tree construction, EdgeCut application, k-partition, reduced
// tree building and the Opt-EdgeCut DP.
//
// Accepts --json=PATH (stripped before google-benchmark sees argv) to
// append one wall-clock record for the whole suite to the shared
// JSON-lines trajectory.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bionav.h"

namespace bionav {
namespace {

struct MicroFixture {
  ConceptHierarchy hierarchy;
  std::unique_ptr<SyntheticCorpus> corpus;
  std::shared_ptr<const ResultSet> result;

  MicroFixture() {
    HierarchyGeneratorOptions hopts;
    hopts.seed = 7;
    hopts.target_nodes = 8000;
    hierarchy = GenerateMeshLikeHierarchy(hopts);

    QuerySpec spec;
    spec.name = "micro";
    spec.keyword = "micro";
    spec.result_size = 300;
    spec.target_depth = 5;
    spec.num_themes = 4;
    CorpusGeneratorOptions copts;
    copts.seed = 8;
    copts.background_citations = 5000;
    corpus = GenerateCorpus(hierarchy, {spec}, copts);
    result = std::make_shared<const ResultSet>(
        corpus->index->Search(spec.keyword));
  }
};

MicroFixture& Fixture() {
  static MicroFixture* fixture = new MicroFixture();
  return *fixture;
}

void BM_NavigationTreeBuild(benchmark::State& state) {
  MicroFixture& f = Fixture();
  for (auto _ : state) {
    NavigationTree nav(f.hierarchy, f.corpus->associations, f.result);
    benchmark::DoNotOptimize(nav.size());
  }
}
BENCHMARK(BM_NavigationTreeBuild)->Unit(benchmark::kMillisecond);

void BM_ESearch(benchmark::State& state) {
  MicroFixture& f = Fixture();
  for (auto _ : state) {
    auto ids = f.corpus->index->Search("micro");
    benchmark::DoNotOptimize(ids.size());
  }
}
BENCHMARK(BM_ESearch);

void BM_ApplyEdgeCutAndBacktrack(benchmark::State& state) {
  MicroFixture& f = Fixture();
  NavigationTree nav(f.hierarchy, f.corpus->associations, f.result);
  ActiveTree active(&nav);
  // Cut the first three children of the root.
  EdgeCut cut;
  for (NavNodeId c : nav.node(NavigationTree::kRoot).children) {
    cut.cut_children.push_back(c);
    if (cut.size() == 3) break;
  }
  for (auto _ : state) {
    active.ApplyEdgeCut(NavigationTree::kRoot, cut).status().CheckOK();
    active.Backtrack();
  }
}
BENCHMARK(BM_ApplyEdgeCutAndBacktrack)->Unit(benchmark::kMicrosecond);

void BM_KPartition(benchmark::State& state) {
  MicroFixture& f = Fixture();
  NavigationTree nav(f.hierarchy, f.corpus->associations, f.result);
  ActiveTree active(&nav);
  int64_t total = nav.TotalAttachedWithDuplicates();
  double bound = static_cast<double>(total) / 10.0;
  for (auto _ : state) {
    auto parts = KPartitionComponent(active, 0, bound);
    benchmark::DoNotOptimize(parts.size());
  }
}
BENCHMARK(BM_KPartition)->Unit(benchmark::kMicrosecond);

void BM_HeuristicChooseEdgeCut(benchmark::State& state) {
  MicroFixture& f = Fixture();
  NavigationTree nav(f.hierarchy, f.corpus->associations, f.result);
  CostModel cost_model(&nav);
  ActiveTree active(&nav);
  HeuristicReducedOptOptions options;
  options.max_partitions = static_cast<int>(state.range(0));
  HeuristicReducedOpt strategy(&cost_model, options);
  for (auto _ : state) {
    EdgeCut cut = strategy.ChooseEdgeCut(active, NavigationTree::kRoot);
    benchmark::DoNotOptimize(cut.size());
  }
}
BENCHMARK(BM_HeuristicChooseEdgeCut)
    ->Arg(6)
    ->Arg(10)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

void BM_OptEdgeCutDP(benchmark::State& state) {
  // A balanced literal tree of state.range(0) nodes.
  const int n = static_cast<int>(state.range(0));
  std::vector<SmallTree::Node> nodes(static_cast<size_t>(n));
  Rng rng(99);
  for (int i = 0; i < n; ++i) {
    nodes[static_cast<size_t>(i)].parent = i == 0 ? -1 : (i - 1) / 2;
    nodes[static_cast<size_t>(i)].results = DynamicBitset(64);
    for (int b = 0; b < 8; ++b) {
      nodes[static_cast<size_t>(i)].results.Set(rng.Uniform(64));
    }
    nodes[static_cast<size_t>(i)].distinct =
        static_cast<int>(nodes[static_cast<size_t>(i)].results.Count());
    nodes[static_cast<size_t>(i)].explore_weight = 1.0;
    nodes[static_cast<size_t>(i)].origin = i;
  }
  SmallTree tree(std::move(nodes));

  MicroFixture& f = Fixture();
  NavigationTree nav(f.hierarchy, f.corpus->associations, f.result);
  CostModel cost_model(&nav);
  for (auto _ : state) {
    OptEdgeCut opt(&tree, &cost_model);
    benchmark::DoNotOptimize(opt.ComponentCost(tree.FullMask()));
  }
}
BENCHMARK(BM_OptEdgeCutDP)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Arg(14)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bionav

int main(int argc, char** argv) {
  // Our flags must come out of argv before benchmark::Initialize, which
  // rejects anything it does not recognize.
  bionav::bench::BenchOptions opts =
      bionav::bench::ParseBenchOptions(&argc, argv);
  // --warmup=N maps onto google-benchmark's discarded warmup phase: each
  // unit requests 0.1s of per-benchmark warmup before measured batches.
  std::vector<char*> args(argv, argv + argc);
  std::string warmup_flag;
  if (opts.warmup > 0) {
    warmup_flag = "--benchmark_min_warmup_time=" +
                  std::to_string(0.1 * opts.warmup);
    args.insert(args.begin() + 1, warmup_flag.data());
    ++argc;
  }
  argv = args.data();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bionav::Timer timer;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bionav::bench::AppendJsonRecord(opts.json_path, "bench_micro", "suite",
                                  opts.threads, timer.ElapsedMillis(),
                                  /*sessions_per_sec=*/0.0);
  return 0;
}
