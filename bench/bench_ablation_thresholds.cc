// Ablation G (DESIGN.md / paper Section IV): the EXPAND-probability
// thresholds. "Currently, BioNav operates with 50 and 10 being the upper
// and lower threshold respectively"; this bench sweeps both to show the
// regime the paper's choice sits in.
//
// Flags: --threads=N (parallel per-query sessions within each pair),
// --json=PATH (one record per threshold pair).

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Ablation: EXPAND-probability thresholds (upper/lower)");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Upper", "Lower", "Avg Cost", "Avg EXPANDs",
                   "Avg SHOWRESULTS Size"});

  struct Pair {
    int upper;
    int lower;
  };
  const Pair pairs[] = {
      {20, 5}, {50, 10}, {100, 10}, {50, 25}, {200, 50}, {10000, 0},
  };

  for (const Pair& pair : pairs) {
    CostModelParams params;
    params.expand_upper_threshold = pair.upper;
    params.expand_lower_threshold = pair.lower;
    Timer timer;
    std::vector<NavigationMetrics> runs = ParallelMap<NavigationMetrics>(
        opts.threads, w.num_queries(), [&](size_t i) {
          QueryFixture f = BuildQueryFixture(w, i, params);
          return RunOracle(f, MakeBioNavStrategyFactory());
        });
    double wall_ms = timer.ElapsedMillis();
    double cost_sum = 0, expands_sum = 0, show_sum = 0;
    for (const NavigationMetrics& m : runs) {
      cost_sum += m.navigation_cost();
      expands_sum += m.expand_actions;
      show_sum += m.showresults_citations;
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({std::to_string(pair.upper), std::to_string(pair.lower),
                  TextTable::Num(cost_sum / n, 1),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(show_sum / n, 1)});
    AppendJsonRecord(opts.json_path, "bench_ablation_thresholds",
                     "upper=" + std::to_string(pair.upper) +
                         ",lower=" + std::to_string(pair.lower),
                     opts.threads, wall_ms, PerSec(n, wall_ms));
  }
  std::cout << table.ToString();
  return 0;
}
