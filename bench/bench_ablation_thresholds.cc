// Ablation G (DESIGN.md / paper Section IV): the EXPAND-probability
// thresholds. "Currently, BioNav operates with 50 and 10 being the upper
// and lower threshold respectively"; this bench sweeps both to show the
// regime the paper's choice sits in.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main() {
  PrintPreamble("Ablation: EXPAND-probability thresholds (upper/lower)");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Upper", "Lower", "Avg Cost", "Avg EXPANDs",
                   "Avg SHOWRESULTS Size"});

  struct Pair {
    int upper;
    int lower;
  };
  const Pair pairs[] = {
      {20, 5}, {50, 10}, {100, 10}, {50, 25}, {200, 50}, {10000, 0},
  };

  for (const Pair& pair : pairs) {
    CostModelParams params;
    params.expand_upper_threshold = pair.upper;
    params.expand_lower_threshold = pair.lower;
    double cost_sum = 0, expands_sum = 0, show_sum = 0;
    for (size_t i = 0; i < w.num_queries(); ++i) {
      QueryFixture f = BuildQueryFixture(w, i, params);
      NavigationMetrics m = RunOracle(f, MakeBioNavStrategyFactory());
      cost_sum += m.navigation_cost();
      expands_sum += m.expand_actions;
      show_sum += m.showresults_citations;
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({std::to_string(pair.upper), std::to_string(pair.lower),
                  TextTable::Num(cost_sum / n, 1),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(show_sum / n, 1)});
  }
  std::cout << table.ToString();
  return 0;
}
