// Robustness sweep (paper Section VIII-A's claim: "The improvement is high
// regardless of the navigation tree characteristics ... and regardless of
// the number of citations in the query result"): re-runs the Fig 8
// comparison while scaling the result sizes and the hierarchy size — and,
// since the sessions are independent, serves each configuration's batch
// through the parallel query engine (--threads=N; aggregate costs are
// bit-identical for every thread count).
//
// A second sweep holds the workload fixed and scales the thread count,
// reporting sessions/sec — the serving-throughput trajectory.
//
// Flags: --threads=N (default 1, 0 = hardware), --json=PATH (JSON-lines
// records for trend tracking).

#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  const char* scale_env = std::getenv("BIONAV_BENCH_SCALE");
  const bool small = scale_env != nullptr && std::string(scale_env) == "small";
  std::cout << "=== Scaling: improvement vs workload scale ===\n"
            << "serving threads: " << opts.threads << "\n\n";

  TextTable table;
  table.SetHeader({"Hierarchy", "Result Scale", "Avg Static Cost",
                   "Avg BioNav Cost", "Improvement %", "Avg Time/EXPAND (ms)",
                   "Sessions/s"});

  struct Config {
    int hierarchy_nodes;
    double result_scale;
  };
  // Keep the sweep small-to-large; the largest configuration doubles the
  // paper's result sizes.
  const Config configs[] = {
      {12000, 0.25}, {12000, 1.0}, {24000, 0.5},
      {48000, 0.5},  {48000, 1.0}, {48000, 2.0},
  };

  for (const Config& full_config : configs) {
    Config config = full_config;
    if (small) config.hierarchy_nodes /= 4;  // CI smoke scale.
    WorkloadOptions options;
    options.hierarchy_nodes = config.hierarchy_nodes;
    options.background_citations = config.hierarchy_nodes;
    options.result_scale = config.result_scale;
    Workload workload(options);

    WorkloadRunOptions run_options;
    run_options.threads = opts.threads;
    run_options.run_static_baseline = true;
    WorkloadRunResult run = workload.Run(run_options);

    double static_sum = 0, bionav_sum = 0;
    TimingStats time_stats;
    for (const SessionOutcome& s : run.sessions) {
      static_sum += s.static_metrics.navigation_cost();
      bionav_sum += s.metrics.navigation_cost();
      for (double t : s.metrics.expand_time_ms) time_stats.Add(t);
    }
    double n = static_cast<double>(run.sessions.size());
    table.AddRow({std::to_string(config.hierarchy_nodes),
                  TextTable::Num(config.result_scale, 2),
                  TextTable::Num(static_sum / n, 1),
                  TextTable::Num(bionav_sum / n, 1),
                  TextTable::Num(100.0 * (1.0 - bionav_sum / static_sum), 1),
                  TextTable::Num(time_stats.mean(), 3),
                  TextTable::Num(run.sessions_per_sec(), 1)});
    AppendJsonRecord(opts.json_path, "bench_scaling",
                     "hierarchy=" + std::to_string(config.hierarchy_nodes) +
                         ",scale=" + TextTable::Num(config.result_scale, 2),
                     run.threads, run.wall_ms, run.sessions_per_sec());
  }
  std::cout << table.ToString() << "\n";

  // Thread-scaling sweep on the standard configuration (env-scaled for CI):
  // identical aggregate costs are asserted, sessions/sec is the payoff.
  std::cout << "=== Scaling: sessions/sec vs serving threads ===\n\n";
  Workload workload(BenchWorkloadOptions());
  const int repeats = 3;

  TextTable threads_table;
  threads_table.SetHeader(
      {"Threads", "Sessions", "Wall (ms)", "Sessions/s", "Total BioNav Cost"});

  int64_t reference_cost = -1;
  int sweep[] = {1, 2, opts.threads};
  int last = 0;
  for (int threads : sweep) {
    if (threads <= last) continue;  // Dedup / keep increasing.
    last = threads;
    WorkloadRunOptions run_options;
    run_options.threads = threads;
    run_options.repeats = repeats;
    WorkloadRunResult run = workload.Run(run_options);
    int64_t cost = run.total_navigation_cost();
    if (reference_cost < 0) reference_cost = cost;
    if (cost != reference_cost) {
      std::cerr << "ERROR: thread count changed aggregate navigation cost ("
                << cost << " vs " << reference_cost << ")\n";
      return 1;
    }
    threads_table.AddRow({std::to_string(threads),
                          std::to_string(run.sessions.size()),
                          TextTable::Num(run.wall_ms, 1),
                          TextTable::Num(run.sessions_per_sec(), 1),
                          std::to_string(cost)});
    AppendJsonRecord(opts.json_path, "bench_scaling",
                     "thread_sweep,threads=" + std::to_string(threads),
                     threads, run.wall_ms, run.sessions_per_sec());
  }
  std::cout << threads_table.ToString();
  return 0;
}
