// Robustness sweep (paper Section VIII-A's claim: "The improvement is high
// regardless of the navigation tree characteristics ... and regardless of
// the number of citations in the query result"): re-runs the Fig 8
// comparison while scaling the result sizes and the hierarchy size.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main() {
  std::cout << "=== Scaling: improvement vs workload scale ===\n\n";

  TextTable table;
  table.SetHeader({"Hierarchy", "Result Scale", "Avg Static Cost",
                   "Avg BioNav Cost", "Improvement %",
                   "Avg Time/EXPAND (ms)"});

  struct Config {
    int hierarchy_nodes;
    double result_scale;
  };
  // Keep the sweep small-to-large; the largest configuration doubles the
  // paper's result sizes.
  const Config configs[] = {
      {12000, 0.25}, {12000, 1.0}, {24000, 0.5},
      {48000, 0.5},  {48000, 1.0}, {48000, 2.0},
  };

  for (const Config& config : configs) {
    WorkloadOptions options;
    options.hierarchy_nodes = config.hierarchy_nodes;
    options.background_citations = config.hierarchy_nodes;
    options.result_scale = config.result_scale;
    Workload workload(options);

    double static_sum = 0, bionav_sum = 0;
    TimingStats time_stats;
    for (size_t i = 0; i < workload.num_queries(); ++i) {
      QueryFixture f = BuildQueryFixture(workload, i);
      NavigationMetrics s = RunOracle(f, MakeStaticStrategyFactory());
      NavigationMetrics b = RunOracle(f, MakeBioNavStrategyFactory());
      static_sum += s.navigation_cost();
      bionav_sum += b.navigation_cost();
      for (double t : b.expand_time_ms) time_stats.Add(t);
    }
    double n = static_cast<double>(workload.num_queries());
    table.AddRow({std::to_string(config.hierarchy_nodes),
                  TextTable::Num(config.result_scale, 2),
                  TextTable::Num(static_sum / n, 1),
                  TextTable::Num(bionav_sum / n, 1),
                  TextTable::Num(100.0 * (1.0 - bionav_sum / static_sum), 1),
                  TextTable::Num(time_stats.mean(), 3)});
  }
  std::cout << table.ToString();
  return 0;
}
