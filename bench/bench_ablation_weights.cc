// Ablation F (DESIGN.md / paper Section IV): the EXPLORE-weight formula.
// The paper motivates |L(n)|^2/|LT(n)| as result size times query
// selectivity, discounting globally common concepts (the IDF analogy).
// This bench re-runs the oracle comparison with the two degenerate
// variants — raw counts and pure selectivity — to show what each factor
// contributes.
//
// Flags: --threads=N (parallel per-query sessions within each variant),
// --json=PATH (one record per variant).

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Ablation: EXPLORE-weight formula variants");

  const Workload& w = SharedWorkload();
  struct Mode {
    const char* name;
    const char* slug;
    ExploreWeightMode mode;
  };
  const Mode modes[] = {
      {"|L|^2/|LT| (paper)", "squared_over_global",
       ExploreWeightMode::kSquaredOverGlobal},
      {"|L| (raw count)", "count", ExploreWeightMode::kCount},
      {"|L|/|LT| (selectivity)", "selectivity",
       ExploreWeightMode::kSelectivity},
  };

  TextTable table;
  table.SetHeader({"Weight Formula", "Avg Cost", "Avg EXPANDs",
                   "Avg Revealed", "Worst-Query Cost"});

  for (const Mode& mode : modes) {
    CostModelParams params;
    params.explore_weight_mode = mode.mode;
    Timer timer;
    std::vector<NavigationMetrics> runs = ParallelMap<NavigationMetrics>(
        opts.threads, w.num_queries(), [&](size_t i) {
          QueryFixture f = BuildQueryFixture(w, i, params);
          return RunOracle(f, MakeBioNavStrategyFactory());
        });
    double wall_ms = timer.ElapsedMillis();
    double cost_sum = 0, expands_sum = 0, revealed_sum = 0;
    int worst = 0;
    for (const NavigationMetrics& m : runs) {
      cost_sum += m.navigation_cost();
      expands_sum += m.expand_actions;
      revealed_sum += m.revealed_concepts;
      worst = std::max(worst, m.navigation_cost());
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({mode.name, TextTable::Num(cost_sum / n, 1),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(revealed_sum / n, 1),
                  std::to_string(worst)});
    AppendJsonRecord(opts.json_path, "bench_ablation_weights",
                     std::string("mode=") + mode.slug, opts.threads, wall_ms,
                     PerSec(n, wall_ms));
  }
  std::cout << table.ToString();
  return 0;
}
