// Reproduces Fig 10: average Heuristic-ReducedOpt execution time per EXPAND
// action, for each workload query. The paper's absolute numbers (tens to
// hundreds of ms in 2008 Java/Oracle) differ from this in-memory C++ build;
// the shape — time dominated by the reduced-tree size and the width of the
// expanded component — is what the bench reproduces.
//
// Flags: --json=PATH. (Timing benches stay single-threaded so per-EXPAND
// times are not distorted by sibling sessions competing for cores.)

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Fig 10: Heuristic-ReducedOpt avg execution time per EXPAND");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "EXPANDs", "Avg Time (ms)", "Max Time (ms)",
                   "Avg Reduced Size"});

  Timer timer;
  for (size_t i = 0; i < w.num_queries(); ++i) {
    QueryFixture f = BuildQueryFixture(w, i);
    NavigationMetrics b = RunOracle(f, MakeBioNavStrategyFactory());
    TimingStats stats;
    for (double t : b.expand_time_ms) stats.Add(t);
    double avg_reduced = 0;
    for (int r : b.reduced_tree_sizes) avg_reduced += r;
    if (!b.reduced_tree_sizes.empty()) {
      avg_reduced /= static_cast<double>(b.reduced_tree_sizes.size());
    }
    table.AddRow({f.query->spec.name, std::to_string(b.expand_actions),
                  TextTable::Num(stats.mean(), 3),
                  TextTable::Num(stats.max(), 3),
                  TextTable::Num(avg_reduced, 1)});
  }
  double wall_ms = timer.ElapsedMillis();
  std::cout << table.ToString();
  AppendJsonRecord(opts.json_path, "bench_fig10", "default", 1, wall_ms,
                   PerSec(static_cast<double>(w.num_queries()), wall_ms));
  return 0;
}
