// Reproduces Fig 10: average Heuristic-ReducedOpt execution time per EXPAND
// action, for each workload query. The paper's absolute numbers (tens to
// hundreds of ms in 2008 Java/Oracle) differ from this in-memory C++ build;
// the shape — time dominated by the reduced-tree size and the width of the
// expanded component — is what the bench reproduces.
//
// The bench runs a multi-target session per query (several oracle descents
// separated by full backtracks — a single descent never revisits a
// component, so it cannot show cross-EXPAND reuse). With the incremental
// engine on, later rounds replay memoized cuts and per-EXPAND time drops
// with session depth; the chosen cuts stay bit-identical either way
// (cut_fingerprint in the JSON summary, enforced by the CI A/B job).
//
// Flags: --json=PATH (per-depth EXPAND records + one summary per query),
//        --incremental=on|off (default on), --rounds=N, --targets=N.
// (Timing benches stay single-threaded so per-EXPAND times are not
// distorted by sibling sessions competing for cores.)

#include <cstring>
#include <iostream>
#include <sstream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  MultiTargetOptions session;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--incremental=", 14) == 0) {
      session.incremental = std::strcmp(argv[i] + 14, "off") != 0;
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      session.rounds = std::max(1, std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--targets=", 10) == 0) {
      session.num_targets = std::max(1, std::atoi(argv[i] + 10));
    }
  }
  const std::string config =
      session.incremental ? "incremental=on" : "incremental=off";
  PrintPreamble("Fig 10: Heuristic-ReducedOpt avg execution time per EXPAND");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "EXPANDs", "Hit %", "Round-1 avg (ms)",
                   "Last-round avg (ms)", "Speedup"});

  const int targets_per_round = session.num_targets;
  Timer timer;
  for (size_t i = 0; i < w.num_queries(); ++i) {
    QueryFixture f = BuildQueryFixture(w, i);
    MultiTargetResult r = RunMultiTargetSession(f, session);

    int hits = 0;
    for (const ExpandSample& s : r.samples) hits += s.incremental_hit ? 1 : 0;
    double hit_pct =
        r.samples.empty() ? 0.0 : 100.0 * hits / static_cast<double>(
                                                     r.samples.size());
    double round1 = r.MeanTimeMs(0, targets_per_round - 1);
    double last_round = r.MeanTimeMs((session.rounds - 1) * targets_per_round,
                                     session.rounds * targets_per_round - 1);
    double speedup = last_round > 0 ? round1 / last_round : 0.0;
    table.AddRow({f.query->spec.name, std::to_string(r.expand_actions),
                  TextTable::Num(hit_pct, 1), TextTable::Num(round1, 3),
                  TextTable::Num(last_round, 3), TextTable::Num(speedup, 1)});

    for (const ExpandSample& s : r.samples) {
      std::ostringstream rec;
      rec << "{\"bench\": \"bench_fig10\", \"record\": \"expand\", \"query\": "
          << "\"" << JsonEscape(f.query->spec.name) << "\", \"config\": \""
          << config << "\", \"depth\": " << s.depth << ", \"leg\": " << s.leg
          << ", \"step\": " << s.step << ", \"revealed\": " << s.revealed
          << ", \"reduced_size\": " << s.reduced_size
          << ", \"incremental_hit\": " << (s.incremental_hit ? "true" : "false")
          << ", \"time_ms\": " << s.time_ms << "}";
      AppendJsonLine(opts.json_path, rec.str());
    }
    std::ostringstream summary;
    summary << "{\"bench\": \"bench_fig10\", \"record\": \"summary\", "
            << "\"query\": \"" << JsonEscape(f.query->spec.name)
            << "\", \"config\": \"" << config
            << "\", \"expands\": " << r.expand_actions
            << ", \"navigation_cost\": " << r.navigation_cost()
            << ", \"total_expand_time_ms\": " << r.total_expand_time_ms()
            << ", \"round1_avg_ms\": " << round1
            << ", \"last_round_avg_ms\": " << last_round
            << ", \"cut_fingerprint\": \"" << std::hex << r.cut_fingerprint
            << "\"}";
    AppendJsonLine(opts.json_path, summary.str());
  }
  double wall_ms = timer.ElapsedMillis();
  std::cout << table.ToString();
  AppendJsonRecord(opts.json_path, "bench_fig10", config, 1, wall_ms,
                   PerSec(static_cast<double>(w.num_queries()), wall_ms));
  return 0;
}
