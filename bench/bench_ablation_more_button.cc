// Ablation D (DESIGN.md): the paper's footnote 2 argues that showing a few
// children at a time with a "more" button does not considerably change the
// static baseline's cost, since each "more" click costs an extra EXPAND.
// This bench compares static all-children, ranked top-k + "more" (for a few
// page sizes), the greedy local-search cut, and BioNav.
//
// Flags: --threads=N (parallel per-query sessions within each method),
// --json=PATH (one record per method).

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

namespace {

StrategyFactory MakeRankedFactory(int page) {
  return [page](const CostModel*) {
    return std::make_unique<RankedChildrenStrategy>(page);
  };
}

StrategyFactory MakeGreedyFactory() {
  return [](const CostModel* cm) {
    return std::make_unique<GreedyEdgeCutStrategy>(cm);
  };
}

StrategyFactory MakeExhaustiveFactory() {
  return [](const CostModel* cm) {
    return std::make_unique<ExhaustiveReducedStrategy>(cm);
  };
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Ablation: 'more' button and greedy vs BioNav");

  const Workload& w = SharedWorkload();
  struct Method {
    std::string name;
    std::string slug;
    StrategyFactory factory;
  };
  std::vector<Method> methods;
  methods.push_back(
      {"Static (all children)", "static", MakeStaticStrategyFactory()});
  methods.push_back({"Ranked top-5 + more", "ranked5", MakeRankedFactory(5)});
  methods.push_back(
      {"Ranked top-10 + more", "ranked10", MakeRankedFactory(10)});
  methods.push_back({"Greedy-EdgeCut", "greedy", MakeGreedyFactory()});
  methods.push_back({"Exhaustive-Reduced (Sec V model)", "exhaustive",
                     MakeExhaustiveFactory()});
  methods.push_back(
      {"Heuristic-ReducedOpt", "bionav", MakeBioNavStrategyFactory()});

  TextTable table;
  table.SetHeader({"Method", "Avg Cost", "Avg EXPANDs", "Avg Revealed"});
  for (const Method& m : methods) {
    Timer timer;
    std::vector<NavigationMetrics> runs = ParallelMap<NavigationMetrics>(
        opts.threads, w.num_queries(), [&](size_t i) {
          QueryFixture f = BuildQueryFixture(w, i);
          return RunOracle(f, m.factory);
        });
    double wall_ms = timer.ElapsedMillis();
    double cost_sum = 0, expands_sum = 0, revealed_sum = 0;
    for (const NavigationMetrics& r : runs) {
      cost_sum += r.navigation_cost();
      expands_sum += r.expand_actions;
      revealed_sum += r.revealed_concepts;
    }
    double n = static_cast<double>(w.num_queries());
    table.AddRow({m.name, TextTable::Num(cost_sum / n, 1),
                  TextTable::Num(expands_sum / n, 1),
                  TextTable::Num(revealed_sum / n, 1)});
    AppendJsonRecord(opts.json_path, "bench_ablation_more_button",
                     "method=" + m.slug, opts.threads, wall_ms,
                     PerSec(n, wall_ms));
  }
  std::cout << table.ToString();
  return 0;
}
