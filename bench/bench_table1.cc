// Reproduces Table I: the query-workload characteristics — result size,
// navigation-tree size / max width / height, citations with duplicates, and
// the target concept's MeSH level, |L(target)| and |LT(target)|.
//
// Flags: --threads=N (parallel per-query fixture builds), --json=PATH.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Table I: Query Workload");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "#Citations", "NavTree Size", "Max Width",
                   "Height", "Citations w/ Dup", "Target Concept",
                   "MeSH Level", "|L(t)|", "|LT(t)|"});

  Timer timer;
  std::vector<std::vector<std::string>> rows = ParallelMap<
      std::vector<std::string>>(opts.threads, w.num_queries(), [&](size_t i) {
    QueryFixture f = BuildQueryFixture(w, i);
    const GeneratedQuery& q = *f.query;
    NavNodeId tnode = f.nav->NodeOfConcept(q.target);
    int attached =
        tnode == kInvalidNavNode ? 0 : f.nav->node(tnode).attached_count;
    return std::vector<std::string>{
        q.spec.name,
        std::to_string(f.nav->result().size()),
        std::to_string(f.nav->size()),
        std::to_string(f.nav->MaxWidth()),
        std::to_string(f.nav->Height()),
        std::to_string(f.nav->TotalAttachedWithDuplicates()),
        w.hierarchy().label(q.target),
        std::to_string(w.hierarchy().depth(q.target)),
        std::to_string(attached),
        std::to_string(w.corpus().associations.GlobalCount(q.target)),
    };
  });
  double wall_ms = timer.ElapsedMillis();
  for (std::vector<std::string>& row : rows) table.AddRow(row);
  std::cout << table.ToString();
  AppendJsonRecord(opts.json_path, "bench_table1", "default", opts.threads,
                   wall_ms,
                   PerSec(static_cast<double>(w.num_queries()), wall_ms));
  return 0;
}
