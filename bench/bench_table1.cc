// Reproduces Table I: the query-workload characteristics — result size,
// navigation-tree size / max width / height, citations with duplicates, and
// the target concept's MeSH level, |L(target)| and |LT(target)|.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main() {
  PrintPreamble("Table I: Query Workload");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "#Citations", "NavTree Size", "Max Width",
                   "Height", "Citations w/ Dup", "Target Concept",
                   "MeSH Level", "|L(t)|", "|LT(t)|"});

  for (size_t i = 0; i < w.num_queries(); ++i) {
    QueryFixture f = BuildQueryFixture(w, i);
    const GeneratedQuery& q = *f.query;
    NavNodeId tnode = f.nav->NodeOfConcept(q.target);
    int attached = tnode == kInvalidNavNode
                       ? 0
                       : f.nav->node(tnode).attached_count;
    table.AddRow({
        q.spec.name,
        std::to_string(f.nav->result().size()),
        std::to_string(f.nav->size()),
        std::to_string(f.nav->MaxWidth()),
        std::to_string(f.nav->Height()),
        std::to_string(f.nav->TotalAttachedWithDuplicates()),
        w.hierarchy().label(q.target),
        std::to_string(w.hierarchy().depth(q.target)),
        std::to_string(attached),
        std::to_string(w.corpus().associations.GlobalCount(q.target)),
    });
  }
  std::cout << table.ToString();
  return 0;
}
