// Reproduces Fig 11: per-EXPAND execution time of Heuristic-ReducedOpt for
// the prothymosin query, annotated with the reduced-tree partition count of
// each expansion. The paper shows times varying with the reduced-tree size
// and the width of the expanded component (upper levels are wider).
//
// Like bench_fig10, the session is multi-target with full backtracks
// between legs, so the table also shows the incremental engine replaying
// memoized cuts once a component shape recurs (the "Hit" column) — the
// per-EXPAND time dropping with session depth while cuts stay identical.
//
// Flags: --json=PATH (per-depth EXPAND records + one summary),
//        --incremental=on|off (default on), --rounds=N, --targets=N.
// (Single-session timing bench; --threads is ignored.)

#include <cstring>
#include <iostream>
#include <sstream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  MultiTargetOptions session;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--incremental=", 14) == 0) {
      session.incremental = std::strcmp(argv[i] + 14, "off") != 0;
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0) {
      session.rounds = std::max(1, std::atoi(argv[i] + 9));
    } else if (std::strncmp(argv[i], "--targets=", 10) == 0) {
      session.num_targets = std::max(1, std::atoi(argv[i] + 10));
    }
  }
  const std::string config =
      session.incremental ? "incremental=on" : "incremental=off";
  PrintPreamble("Fig 11: per-EXPAND times for 'prothymosin'");

  const Workload& w = SharedWorkload();
  size_t prothymosin = w.num_queries();
  for (size_t i = 0; i < w.num_queries(); ++i) {
    if (w.query(i).spec.name == "prothymosin") {
      prothymosin = i;
      break;
    }
  }
  BIONAV_CHECK_LT(prothymosin, w.num_queries());

  Timer timer;
  QueryFixture f = BuildQueryFixture(w, prothymosin);
  MultiTargetResult r = RunMultiTargetSession(f, session);
  double wall_ms = timer.ElapsedMillis();

  TextTable table;
  table.SetHeader(
      {"Depth", "Leg", "Partitions", "Revealed", "Hit", "Time (ms)"});
  for (const ExpandSample& s : r.samples) {
    table.AddRow({std::to_string(s.depth), std::to_string(s.leg),
                  std::to_string(s.reduced_size), std::to_string(s.revealed),
                  s.incremental_hit ? "yes" : "no",
                  TextTable::Num(s.time_ms, 3)});
    std::ostringstream rec;
    rec << "{\"bench\": \"bench_fig11\", \"record\": \"expand\", \"query\": "
        << "\"prothymosin\", \"config\": \"" << config
        << "\", \"depth\": " << s.depth << ", \"leg\": " << s.leg
        << ", \"step\": " << s.step << ", \"revealed\": " << s.revealed
        << ", \"reduced_size\": " << s.reduced_size
        << ", \"incremental_hit\": " << (s.incremental_hit ? "true" : "false")
        << ", \"time_ms\": " << s.time_ms << "}";
    AppendJsonLine(opts.json_path, rec.str());
  }
  std::cout << table.ToString();
  std::cout << "\nTotal EXPANDs: " << r.expand_actions
            << ", navigation cost: " << r.navigation_cost()
            << ", total EXPAND time: " << r.total_expand_time_ms() << " ms\n";
  std::ostringstream summary;
  summary << "{\"bench\": \"bench_fig11\", \"record\": \"summary\", "
          << "\"query\": \"prothymosin\", \"config\": \"" << config
          << "\", \"expands\": " << r.expand_actions
          << ", \"navigation_cost\": " << r.navigation_cost()
          << ", \"total_expand_time_ms\": " << r.total_expand_time_ms()
          << ", \"cut_fingerprint\": \"" << std::hex << r.cut_fingerprint
          << "\"}";
  AppendJsonLine(opts.json_path, summary.str());
  AppendJsonRecord(opts.json_path, "bench_fig11", config, 1, wall_ms,
                   PerSec(1.0, wall_ms));
  return 0;
}
