// Reproduces Fig 11: per-EXPAND execution time of Heuristic-ReducedOpt for
// the prothymosin query, annotated with the reduced-tree partition count of
// each expansion. The paper shows times varying with the reduced-tree size
// and the width of the expanded component (upper levels are wider).
//
// Flags: --json=PATH. (Single-session timing bench; --threads is ignored.)

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Fig 11: per-EXPAND times for 'prothymosin'");

  const Workload& w = SharedWorkload();
  size_t prothymosin = w.num_queries();
  for (size_t i = 0; i < w.num_queries(); ++i) {
    if (w.query(i).spec.name == "prothymosin") {
      prothymosin = i;
      break;
    }
  }
  BIONAV_CHECK_LT(prothymosin, w.num_queries());

  Timer timer;
  QueryFixture f = BuildQueryFixture(w, prothymosin);
  NavigationMetrics b = RunOracle(f, MakeBioNavStrategyFactory());
  double wall_ms = timer.ElapsedMillis();

  TextTable table;
  table.SetHeader({"EXPAND #", "Partitions", "Revealed", "Time (ms)"});
  for (size_t e = 0; e < b.expand_time_ms.size(); ++e) {
    table.AddRow({std::to_string(e + 1),
                  std::to_string(b.reduced_tree_sizes[e]),
                  std::to_string(b.revealed_per_expand[e]),
                  TextTable::Num(b.expand_time_ms[e], 3)});
  }
  std::cout << table.ToString();
  std::cout << "\nTotal EXPANDs: " << b.expand_actions
            << ", navigation cost: " << b.navigation_cost() << "\n";
  AppendJsonRecord(opts.json_path, "bench_fig11", "prothymosin", 1, wall_ms,
                   PerSec(1.0, wall_ms));
  return 0;
}
