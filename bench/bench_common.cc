#include "bench_common.h"

#include <cstdlib>
#include <iostream>

namespace bionav::bench {

WorkloadOptions BenchWorkloadOptions() {
  WorkloadOptions options;
  const char* scale = std::getenv("BIONAV_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "small") {
    options.hierarchy_nodes = 6000;
    options.background_citations = 8000;
    options.result_scale = 0.4;
  }
  return options;
}

const Workload& SharedWorkload() {
  static const Workload* workload = new Workload(BenchWorkloadOptions());
  return *workload;
}

QueryFixture BuildQueryFixture(const Workload& workload, size_t i,
                               CostModelParams params) {
  QueryFixture fixture;
  fixture.query = &workload.query(i);
  fixture.nav = workload.BuildNavigationTree(i);
  fixture.cost_model = std::make_unique<CostModel>(fixture.nav.get(), params);
  return fixture;
}

NavigationMetrics RunOracle(const QueryFixture& fixture,
                            const StrategyFactory& factory) {
  std::unique_ptr<ExpandStrategy> strategy = factory(fixture.cost_model.get());
  return NavigateToTarget(*fixture.nav, fixture.query->target,
                          strategy.get());
}

void PrintPreamble(const std::string& bench_name) {
  const WorkloadOptions& o = SharedWorkload().options();
  std::cout << "=== " << bench_name << " ===\n"
            << "workload: " << SharedWorkload().num_queries()
            << " queries, hierarchy " << SharedWorkload().hierarchy().size()
            << " concepts, seed " << o.seed << ", result scale "
            << o.result_scale << "\n\n";
}

}  // namespace bionav::bench
