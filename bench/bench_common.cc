#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

namespace bionav::bench {

WorkloadOptions BenchWorkloadOptions() {
  WorkloadOptions options;
  const char* scale = std::getenv("BIONAV_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "small") {
    options.hierarchy_nodes = 6000;
    options.background_citations = 8000;
    options.result_scale = 0.4;
  }
  return options;
}

const Workload& SharedWorkload() {
  static const Workload* workload = new Workload(BenchWorkloadOptions());
  return *workload;
}

QueryFixture BuildQueryFixture(const Workload& workload, size_t i,
                               CostModelParams params) {
  QueryFixture fixture;
  fixture.query = &workload.query(i);
  fixture.nav = workload.BuildNavigationTree(i);
  fixture.cost_model = std::make_unique<CostModel>(fixture.nav.get(), params);
  return fixture;
}

NavigationMetrics RunOracle(const QueryFixture& fixture,
                            const StrategyFactory& factory) {
  std::unique_ptr<ExpandStrategy> strategy = factory(fixture.cost_model.get());
  return NavigateToTarget(*fixture.nav, fixture.query->target,
                          strategy.get());
}

BenchOptions ParseBenchOptions(int* argc, char** argv) {
  BenchOptions options;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.threads = std::atoi(arg + 10);
      if (options.threads == 0) options.threads = ThreadPool::HardwareThreads();
      if (options.threads < 1) options.threads = 1;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path = arg + 7;
    } else if (std::strncmp(arg, "--obs=", 6) == 0) {
      options.obs = std::strcmp(arg + 6, "off") != 0;
      SetObsEnabled(options.obs);
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      options.warmup = std::atoi(arg + 9);
      if (options.warmup < 0) options.warmup = 0;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return options;
}

namespace {

/// Deterministic multi-target pick: the query's own target first, then
/// deep attached concepts spread across the navigation tree (an even
/// pre-order stride over the candidates of maximal depth), so successive
/// legs share root-side path prefixes without being identical descents.
std::vector<NavNodeId> PickSessionTargets(const QueryFixture& fixture,
                                          int num_targets) {
  const NavigationTree& nav = *fixture.nav;
  std::vector<NavNodeId> targets;
  NavNodeId primary = nav.NodeOfConcept(fixture.query->target);
  BIONAV_CHECK_NE(primary, kInvalidNavNode);
  targets.push_back(primary);

  std::vector<NavNodeId> candidates;
  for (NavNodeId id = 1; id < static_cast<NavNodeId>(nav.size()); ++id) {
    if (id != primary && nav.attached_count(id) > 0 &&
        nav.NodeDepth(id) >= 2) {
      candidates.push_back(id);
    }
  }
  if (candidates.empty()) return targets;
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](NavNodeId a, NavNodeId b) {
                     return nav.NodeDepth(a) > nav.NodeDepth(b);
                   });
  // Keep the deepest half (long descents), then stride across it.
  size_t pool = std::max<size_t>(1, candidates.size() / 2);
  size_t want = static_cast<size_t>(std::max(0, num_targets - 1));
  for (size_t k = 0; k < want && k < pool; ++k) {
    targets.push_back(candidates[k * pool / std::max<size_t>(want, 1)]);
  }
  return targets;
}

}  // namespace

double MultiTargetResult::MeanTimeMs(int first_leg, int last_leg) const {
  double sum = 0;
  int n = 0;
  for (const ExpandSample& s : samples) {
    if (s.leg < first_leg || s.leg > last_leg) continue;
    sum += s.time_ms;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

MultiTargetResult RunMultiTargetSession(const QueryFixture& fixture,
                                        const MultiTargetOptions& options) {
  HeuristicReducedOptOptions strategy_options;
  strategy_options.incremental = options.incremental;
  HeuristicReducedOpt strategy(fixture.cost_model.get(), strategy_options);
  ActiveTree active(fixture.nav.get());

  MultiTargetResult result;
  result.cut_fingerprint = 14695981039346656037ull;  // FNV-1a offset basis
  auto mix = [&](uint64_t v) {
    result.cut_fingerprint =
        (result.cut_fingerprint ^ v) * 1099511628211ull;
  };

  std::vector<NavNodeId> targets =
      PickSessionTargets(fixture, options.num_targets);
  int depth = 0;
  int leg = 0;
  const int max_expands = static_cast<int>(fixture.nav->size()) + 1;
  for (int round = 0; round < options.rounds; ++round) {
    for (NavNodeId target : targets) {
      // Fresh descent from the initial view; the strategy (and with it
      // the incremental memo) deliberately survives the backtracks.
      while (active.Backtrack()) {
      }
      int step = 0;
      while (!active.IsVisible(target)) {
        BIONAV_CHECK_LT(step, max_expands) << "navigation did not converge";
        int comp = active.ComponentOf(target);
        NavNodeId root = active.ComponentRoot(comp);
        EdgeCut cut = strategy.ChooseEdgeCut(active, root);
        mix(static_cast<uint64_t>(root));
        for (NavNodeId c : cut.cut_children) mix(static_cast<uint64_t>(c));
        mix(~uint64_t{0});
        Result<std::vector<NavNodeId>> revealed =
            active.ApplyEdgeCut(root, cut);
        revealed.status().CheckOK();

        ExpandSample sample;
        sample.depth = depth;
        sample.leg = leg;
        sample.step = step;
        sample.revealed = static_cast<int>(revealed.ValueOrDie().size());
        sample.reduced_size = strategy.last_stats().reduced_tree_size;
        sample.incremental_hit = strategy.last_stats().incremental_hit;
        sample.time_ms = strategy.last_stats().elapsed_ms;
        result.samples.push_back(sample);
        result.expand_actions++;
        result.revealed_concepts += sample.revealed;
        ++depth;
        ++step;
      }
      ++leg;
    }
  }
  return result;
}

double PerSec(double sessions, double wall_ms) {
  return wall_ms > 0 ? 1000.0 * sessions / wall_ms : 0.0;
}

void AppendJsonRecord(const std::string& json_path, const std::string& bench,
                      const std::string& config, int threads, double wall_ms,
                      double sessions_per_sec, const std::string& extra_json) {
  if (json_path.empty()) return;
  std::ofstream out(json_path, std::ios::app);
  if (!out) {
    std::cerr << "warning: cannot open '" << json_path << "' for append\n";
    return;
  }
  std::ostringstream line;
  line << "{\"bench\": \"" << JsonEscape(bench) << "\", \"config\": \""
       << JsonEscape(config) << "\", \"threads\": " << threads
       << ", \"wall_ms\": " << wall_ms
       << ", \"sessions_per_sec\": " << sessions_per_sec;
  if (!extra_json.empty()) line << ", " << extra_json;
  line << "}";
  out << line.str() << '\n';
}

void AppendJsonLine(const std::string& json_path,
                    const std::string& json_object) {
  if (json_path.empty()) return;
  std::ofstream out(json_path, std::ios::app);
  if (!out) {
    std::cerr << "warning: cannot open '" << json_path << "' for append\n";
    return;
  }
  out << json_object << '\n';
}

void PrintPreamble(const std::string& bench_name) {
  const WorkloadOptions& o = SharedWorkload().options();
  std::cout << "=== " << bench_name << " ===\n"
            << "workload: " << SharedWorkload().num_queries()
            << " queries, hierarchy " << SharedWorkload().hierarchy().size()
            << " concepts, seed " << o.seed << ", result scale "
            << o.result_scale << "\n\n";
}

}  // namespace bionav::bench
