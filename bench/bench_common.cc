#include "bench_common.h"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

namespace bionav::bench {

WorkloadOptions BenchWorkloadOptions() {
  WorkloadOptions options;
  const char* scale = std::getenv("BIONAV_BENCH_SCALE");
  if (scale != nullptr && std::string(scale) == "small") {
    options.hierarchy_nodes = 6000;
    options.background_citations = 8000;
    options.result_scale = 0.4;
  }
  return options;
}

const Workload& SharedWorkload() {
  static const Workload* workload = new Workload(BenchWorkloadOptions());
  return *workload;
}

QueryFixture BuildQueryFixture(const Workload& workload, size_t i,
                               CostModelParams params) {
  QueryFixture fixture;
  fixture.query = &workload.query(i);
  fixture.nav = workload.BuildNavigationTree(i);
  fixture.cost_model = std::make_unique<CostModel>(fixture.nav.get(), params);
  return fixture;
}

NavigationMetrics RunOracle(const QueryFixture& fixture,
                            const StrategyFactory& factory) {
  std::unique_ptr<ExpandStrategy> strategy = factory(fixture.cost_model.get());
  return NavigateToTarget(*fixture.nav, fixture.query->target,
                          strategy.get());
}

BenchOptions ParseBenchOptions(int* argc, char** argv) {
  BenchOptions options;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      options.threads = std::atoi(arg + 10);
      if (options.threads == 0) options.threads = ThreadPool::HardwareThreads();
      if (options.threads < 1) options.threads = 1;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      options.json_path = arg + 7;
    } else if (std::strncmp(arg, "--obs=", 6) == 0) {
      options.obs = std::strcmp(arg + 6, "off") != 0;
      SetObsEnabled(options.obs);
    } else if (std::strncmp(arg, "--warmup=", 9) == 0) {
      options.warmup = std::atoi(arg + 9);
      if (options.warmup < 0) options.warmup = 0;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return options;
}

double PerSec(double sessions, double wall_ms) {
  return wall_ms > 0 ? 1000.0 * sessions / wall_ms : 0.0;
}

void AppendJsonRecord(const std::string& json_path, const std::string& bench,
                      const std::string& config, int threads, double wall_ms,
                      double sessions_per_sec, const std::string& extra_json) {
  if (json_path.empty()) return;
  std::ofstream out(json_path, std::ios::app);
  if (!out) {
    std::cerr << "warning: cannot open '" << json_path << "' for append\n";
    return;
  }
  std::ostringstream line;
  line << "{\"bench\": \"" << JsonEscape(bench) << "\", \"config\": \""
       << JsonEscape(config) << "\", \"threads\": " << threads
       << ", \"wall_ms\": " << wall_ms
       << ", \"sessions_per_sec\": " << sessions_per_sec;
  if (!extra_json.empty()) line << ", " << extra_json;
  line << "}";
  out << line.str() << '\n';
}

void PrintPreamble(const std::string& bench_name) {
  const WorkloadOptions& o = SharedWorkload().options();
  std::cout << "=== " << bench_name << " ===\n"
            << "workload: " << SharedWorkload().num_queries()
            << " queries, hierarchy " << SharedWorkload().hierarchy().size()
            << " concepts, seed " << o.seed << ", result scale "
            << o.result_scale << "\n\n";
}

}  // namespace bionav::bench
