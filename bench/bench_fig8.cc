// Reproduces Fig 8: overall navigation cost (# concepts revealed + # EXPAND
// actions) of the static all-children baseline vs BioNav's
// Heuristic-ReducedOpt, per query, for the oracle target navigation.
// The paper reports BioNav improving the cost by ~85% on average, with the
// smallest improvement on the unselective-target "ice nucleation" query.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main() {
  PrintPreamble("Fig 8: Navigation Cost, Static vs Heuristic-ReducedOpt");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "Static Cost", "BioNav Cost", "Improvement %"});

  double improvement_sum = 0;
  for (size_t i = 0; i < w.num_queries(); ++i) {
    QueryFixture f = BuildQueryFixture(w, i);
    NavigationMetrics s = RunOracle(f, MakeStaticStrategyFactory());
    NavigationMetrics b = RunOracle(f, MakeBioNavStrategyFactory());
    double improvement =
        100.0 * (1.0 - static_cast<double>(b.navigation_cost()) /
                           static_cast<double>(s.navigation_cost()));
    improvement_sum += improvement;
    table.AddRow({f.query->spec.name, std::to_string(s.navigation_cost()),
                  std::to_string(b.navigation_cost()),
                  TextTable::Num(improvement, 1)});
  }
  std::cout << table.ToString();
  std::cout << "\nAverage improvement: "
            << TextTable::Num(improvement_sum /
                                  static_cast<double>(w.num_queries()),
                              1)
            << "% (paper: ~85%)\n";
  return 0;
}
