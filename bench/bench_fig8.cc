// Reproduces Fig 8: overall navigation cost (# concepts revealed + # EXPAND
// actions) of the static all-children baseline vs BioNav's
// Heuristic-ReducedOpt, per query, for the oracle target navigation.
// The paper reports BioNav improving the cost by ~85% on average, with the
// smallest improvement on the unselective-target "ice nucleation" query.
//
// Flags: --threads=N (parallel per-query sessions), --json=PATH.

#include <iostream>

#include "bench_common.h"

using namespace bionav;
using namespace bionav::bench;

int main(int argc, char** argv) {
  BenchOptions opts = ParseBenchOptions(&argc, argv);
  PrintPreamble("Fig 8: Navigation Cost, Static vs Heuristic-ReducedOpt");

  const Workload& w = SharedWorkload();
  TextTable table;
  table.SetHeader({"Query", "Static Cost", "BioNav Cost", "Improvement %"});

  struct Row {
    std::string name;
    int static_cost = 0;
    int bionav_cost = 0;
  };
  Timer timer;
  std::vector<Row> rows =
      ParallelMap<Row>(opts.threads, w.num_queries(), [&](size_t i) {
        QueryFixture f = BuildQueryFixture(w, i);
        NavigationMetrics s = RunOracle(f, MakeStaticStrategyFactory());
        NavigationMetrics b = RunOracle(f, MakeBioNavStrategyFactory());
        return Row{f.query->spec.name, s.navigation_cost(),
                   b.navigation_cost()};
      });
  double wall_ms = timer.ElapsedMillis();

  double improvement_sum = 0;
  for (const Row& row : rows) {
    double improvement =
        100.0 * (1.0 - static_cast<double>(row.bionav_cost) /
                           static_cast<double>(row.static_cost));
    improvement_sum += improvement;
    table.AddRow({row.name, std::to_string(row.static_cost),
                  std::to_string(row.bionav_cost),
                  TextTable::Num(improvement, 1)});
  }
  std::cout << table.ToString();
  std::cout << "\nAverage improvement: "
            << TextTable::Num(improvement_sum /
                                  static_cast<double>(w.num_queries()),
                              1)
            << "% (paper: ~85%)\n";
  // Two oracle sessions (static + BioNav) per query.
  AppendJsonRecord(opts.json_path, "bench_fig8", "default", opts.threads,
                   wall_ms,
                   PerSec(2.0 * static_cast<double>(w.num_queries()), wall_ms));
  return 0;
}
