// Real-MeSH workflow: import an NLM-format tree file (the shipped
// data/sample.mtrees slice, shaped after the MeSH 2008 neighbourhoods the
// paper's figures use), attach hand-written citations via real MeSH tree
// numbers, and navigate the result — the path an adopter with the actual
// MeSH distribution would follow.
//
// Usage: mesh_workflow [path-to-mtrees]

#include <iostream>

#include "bionav.h"

using namespace bionav;

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "data/sample.mtrees";

  auto imported = ImportMeshTreeFileFromPath(path);
  if (!imported.ok()) {
    std::cerr << "cannot import " << path << ": "
              << imported.status().ToString()
              << "\n(run from the repository root or pass the path)\n";
    return 1;
  }
  MeshImportResult mesh = imported.TakeValue();
  std::cout << "Imported " << mesh.stats.lines << " MeSH descriptors ("
            << mesh.hierarchy.size() << " concepts, "
            << mesh.stats.implicit_parents << " implicit parents)\n\n";

  // Citation records referencing concepts by their *original* MeSH tree
  // numbers, resolved through the import mapping.
  auto tn = [&](const char* number) {
    auto it = mesh.by_mesh_tree_number.find(number);
    BIONAV_CHECK(it != mesh.by_mesh_tree_number.end()) << number;
    return mesh.hierarchy.tree_number(it->second).ToString();
  };
  std::vector<CitationSourceRecord> records;
  auto add = [&](uint64_t pmid, int year, const char* title,
                 std::vector<std::string> terms,
                 std::vector<std::string> concepts) {
    CitationSourceRecord r;
    r.pmid = pmid;
    r.year = year;
    r.title = title;
    r.terms = std::move(terms);
    r.annotated_tree_numbers = std::move(concepts);
    records.push_back(std::move(r));
  };
  add(18001, 2007, "Prothymosin alpha promotes apoptosis resistance",
      {"prothymosin", "apoptosis"},
      {tn("G04.299.139.500"), tn("D12.644.777.749"), tn("D12.776.664")});
  add(18002, 2008, "Prothymosin alpha and chromatin remodelling",
      {"prothymosin", "chromatin"},
      {tn("D12.776.664.235"), tn("D12.644.777.749"),
       tn("D12.776.664.235.500")});
  add(18003, 2006, "Cell proliferation control by prothymosin alpha",
      {"prothymosin", "proliferation"},
      {tn("G04.299.160.344"), tn("G04.299.160.344.500"),
       tn("D12.644.777.749")});
  add(18004, 2008, "Transcriptional roles of prothymosin alpha",
      {"prothymosin", "transcription"},
      {tn("G05.355.868"), tn("G05.355"), tn("D12.644.777.749")});
  add(18005, 2005, "Prothymosin alpha in breast neoplasms",
      {"prothymosin", "cancer"},
      {tn("C04.588.180"), tn("C04.588"), tn("D12.644.777.749")});
  add(18006, 2008, "Histone interactions of prothymosin alpha",
      {"prothymosin", "histones"},
      {tn("D12.776.664.447"), tn("D12.776.664"), tn("D12.644.777.749")});
  add(18007, 2004, "Transgenic mouse models of thymosin biology",
      {"thymosin", "mice"},
      {tn("B01.050.150.520"), tn("D12.644.777")});

  auto db = BioNavDatabase::Build(std::move(mesh.hierarchy), records);
  db.status().CheckOK();
  const BioNavDatabase& database = *db.ValueOrDie();

  EUtilsClient client = database.MakeClient();
  NavigationSession session(&database.hierarchy(), &client, "prothymosin",
                            MakeBioNavStrategyFactory());
  std::cout << "Query 'prothymosin': " << session.result_size()
            << " citations, navigation tree "
            << session.navigation_tree().size() << " nodes\n\n";

  session.Expand(NavigationTree::kRoot).status().CheckOK();
  std::cout << "After one EXPAND:\n" << session.Render() << "\n";

  // Keep expanding toward Apoptosis (the paper's Fig 2 destination).
  ConceptId apoptosis = database.hierarchy().FindByLabel("Apoptosis");
  NavNodeId target = session.navigation_tree().NodeOfConcept(apoptosis);
  if (target != kInvalidNavNode) {
    int guard = 0;
    while (!session.active_tree().IsVisible(target) && guard++ < 20) {
      NavNodeId root = session.active_tree().ComponentRoot(
          session.active_tree().ComponentOf(target));
      session.Expand(root).status().CheckOK();
    }
    std::cout << "After navigating to Apoptosis:\n" << session.Render();
    auto results = session.ShowResults(target);
    results.status().CheckOK();
    std::cout << "\nApoptosis citations:\n";
    for (const CitationSummary& s : results.ValueOrDie()) {
      std::cout << "  PMID " << s.pmid << ": " << s.title << "\n";
    }
  }
  return 0;
}
