// PubMed explorer: navigates the synthetic MEDLINE built by the workload
// module, reproducing the paper's Fig 2 interaction on the prothymosin-like
// query (or any workload query named on the command line).
//
// Usage:
//   pubmed_explorer [query-name] [--interactive]
//
// Scripted mode drives the oracle navigation toward the query's target
// concept, printing the interface after each EXPAND. Interactive mode reads
// commands from stdin:
//   expand <label> | show <label> | back | tree | quit

#include <iostream>
#include <sstream>
#include <string>

#include "bionav.h"

using namespace bionav;

namespace {

void RunScripted(const Workload& workload, size_t query_index) {
  const GeneratedQuery& q = workload.query(query_index);
  std::unique_ptr<NavigationTree> nav =
      workload.BuildNavigationTree(query_index);
  CostModel cost_model(nav.get());
  HeuristicReducedOpt strategy(&cost_model);
  ActiveTree active(nav.get());

  const ConceptHierarchy& mesh = workload.hierarchy();
  std::cout << "Query '" << q.spec.name << "': " << nav->result().size()
            << " citations, navigation tree " << nav->size() << " nodes\n"
            << "Target concept: '" << mesh.label(q.target) << "' (MeSH level "
            << mesh.depth(q.target) << ")\n\n";

  NavNodeId target_node = nav->NodeOfConcept(q.target);
  BIONAV_CHECK_NE(target_node, kInvalidNavNode);

  int step = 0;
  while (!active.IsVisible(target_node)) {
    int comp = active.ComponentOf(target_node);
    NavNodeId root = active.ComponentRoot(comp);
    EdgeCut cut = strategy.ChooseEdgeCut(active, root);
    active.ApplyEdgeCut(root, cut).status().CheckOK();
    ++step;
    std::cout << "--- EXPAND #" << step << " on '"
              << mesh.label(nav->node(root).concept_id) << "' revealed "
              << cut.size() << " concepts ("
              << TextTable::Num(strategy.last_stats().elapsed_ms, 2)
              << " ms, reduced tree "
              << strategy.last_stats().reduced_tree_size << " nodes)\n"
              << active.RenderAscii() << "\n";
  }
  std::cout << "Target '" << mesh.label(q.target)
            << "' is now visible. Navigation cost: " << step
            << " EXPANDs + revealed concepts.\n";
}

void RunInteractive(const Workload& workload, size_t query_index) {
  const GeneratedQuery& q = workload.query(query_index);
  EUtilsClient eutils = workload.corpus().MakeClient();
  NavigationSession session(&workload.hierarchy(), &eutils, q.spec.keyword,
                            MakeBioNavStrategyFactory());
  std::cout << "Query '" << q.spec.name << "': " << session.result_size()
            << " citations. Commands: expand <label> | show <label> | back |"
               " tree | quit\n"
            << session.Render() << "\n> " << std::flush;

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream iss(line);
    std::string cmd;
    iss >> cmd;
    std::string arg;
    std::getline(iss, arg);
    std::string label(StripWhitespace(arg));
    if (cmd == "quit" || cmd == "q") break;
    if (cmd == "tree") {
      std::cout << session.Render();
    } else if (cmd == "back") {
      std::cout << (session.Backtrack() ? "undone\n" : "nothing to undo\n");
      std::cout << session.Render();
    } else if (cmd == "expand") {
      auto r = session.ExpandByLabel(label.empty() ? "MeSH" : label);
      if (!r.ok()) {
        std::cout << r.status().ToString() << "\n";
      } else {
        std::cout << session.Render();
      }
    } else if (cmd == "show") {
      NavNodeId node = session.FindVisibleByLabel(label);
      if (node == kInvalidNavNode) {
        std::cout << "no visible concept '" << label << "'\n";
      } else {
        auto summaries = session.ShowResults(node);
        if (!summaries.ok()) {
          std::cout << summaries.status().ToString() << "\n";
        } else {
          for (const CitationSummary& s : summaries.ValueOrDie()) {
            std::cout << "  PMID " << s.pmid << ": " << s.title << "\n";
          }
        }
      }
    } else if (!cmd.empty()) {
      std::cout << "unknown command '" << cmd << "'\n";
    }
    std::cout << "> " << std::flush;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string query_name = "prothymosin";
  bool interactive = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--interactive") {
      interactive = true;
    } else {
      query_name = arg;
    }
  }

  WorkloadOptions options;
  options.hierarchy_nodes = 12000;
  options.background_citations = 10000;
  options.result_scale = 0.5;
  std::cout << "Building synthetic MEDLINE ("
            << options.hierarchy_nodes << " concepts)...\n";
  Workload workload(options);

  size_t index = workload.num_queries();
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    if (workload.query(i).spec.name == query_name) {
      index = i;
      break;
    }
  }
  if (index == workload.num_queries()) {
    std::cerr << "unknown query '" << query_name << "'; available:\n";
    for (size_t i = 0; i < workload.num_queries(); ++i) {
      std::cerr << "  " << workload.query(i).spec.name << "\n";
    }
    return 1;
  }

  if (interactive) {
    RunInteractive(workload, index);
  } else {
    RunScripted(workload, index);
  }
  return 0;
}
