// Quickstart: the full BioNav API on a tiny hand-built dataset.
//
// Builds a miniature concept hierarchy and citation corpus, runs a keyword
// query through the eutils facade, constructs the navigation tree, and
// navigates it with the BioNav Heuristic-ReducedOpt policy, printing the
// visualization after each step — the programmatic equivalent of the
// paper's Fig 2 walk.

#include <iostream>

#include "bionav.h"

using namespace bionav;

int main() {
  // --- 1. A miniature MeSH-like hierarchy.
  ConceptHierarchy mesh;
  ConceptId bio = mesh.AddNode(ConceptHierarchy::kRoot,
                               "Biological Phenomena");
  ConceptId physio = mesh.AddNode(bio, "Cell Physiology");
  ConceptId death = mesh.AddNode(physio, "Cell Death");
  ConceptId apoptosis = mesh.AddNode(death, "Apoptosis");
  ConceptId necrosis = mesh.AddNode(death, "Necrosis");
  ConceptId growth = mesh.AddNode(physio, "Cell Growth Processes");
  ConceptId proliferation = mesh.AddNode(growth, "Cell Proliferation");
  ConceptId division = mesh.AddNode(proliferation, "Cell Division");
  ConceptId genetic = mesh.AddNode(ConceptHierarchy::kRoot,
                                   "Genetic Processes");
  ConceptId expression = mesh.AddNode(genetic, "Gene Expression");
  ConceptId transcription = mesh.AddNode(expression, "Transcription, Genetic");
  mesh.Freeze();

  // --- 2. A miniature MEDLINE: citations with keyword terms, plus
  //         concept<->citation associations.
  CitationStore store;
  AssociationTable assoc(mesh.size());
  auto add = [&](uint64_t pmid, const std::string& title,
                 const std::vector<std::string>& terms,
                 const std::vector<ConceptId>& concepts) {
    Citation c;
    c.pmid = pmid;
    c.title = title;
    c.year = 2008;
    for (const auto& t : terms) c.term_ids.push_back(store.InternTerm(t));
    CitationId id = store.Add(std::move(c));
    for (ConceptId k : concepts) {
      assoc.Associate(id, k, AssociationKind::kAnnotated);
    }
  };
  add(1, "Prothymosin alpha in apoptosis", {"prothymosin", "apoptosis"},
      {apoptosis, death, physio});
  add(2, "Proliferation control by prothymosin", {"prothymosin"},
      {proliferation, division, growth});
  add(3, "Prothymosin and transcription", {"prothymosin"},
      {transcription, expression});
  add(4, "Necrotic pathways", {"prothymosin", "necrosis"},
      {necrosis, death});
  add(5, "Cell cycle studies", {"prothymosin"},
      {proliferation, transcription});
  add(6, "Unrelated cardiology paper", {"heart"}, {physio});

  InvertedIndex index(store);
  EUtilsClient eutils(&store, &index, &assoc);

  // --- 3. One session = one keyword query navigated with BioNav.
  NavigationSession session(&mesh, &eutils, "prothymosin",
                            MakeBioNavStrategyFactory());
  std::cout << "Query 'prothymosin' matched " << session.result_size()
            << " citations; navigation tree has "
            << session.navigation_tree().size() << " nodes\n\n";

  std::cout << "Initial visualization (only the root is visible):\n"
            << session.Render() << "\n";

  // --- 4. EXPAND the root: BioNav reveals a cost-optimal set of
  //         descendants, not all children.
  auto revealed = session.Expand(NavigationTree::kRoot);
  revealed.status().CheckOK();
  std::cout << "After EXPAND of the root (" << revealed.ValueOrDie().size()
            << " concepts revealed):\n"
            << session.Render() << "\n";

  // --- 5. Drill into a revealed concept, if it is expandable.
  for (NavNodeId node : revealed.ValueOrDie()) {
    int comp = session.active_tree().ComponentOf(node);
    if (session.active_tree().ComponentSize(comp) >= 2) {
      const std::string& label =
          mesh.label(session.navigation_tree().node(node).concept_id);
      auto deeper = session.Expand(node);
      deeper.status().CheckOK();
      std::cout << "After EXPAND of '" << label << "':\n"
                << session.Render() << "\n";
      break;
    }
  }

  // --- 6. SHOWRESULTS on a visible concept.
  NavNodeId show = session.FindVisibleByLabel("Cell Proliferation");
  if (show == kInvalidNavNode) show = NavigationTree::kRoot;
  auto summaries = session.ShowResults(show);
  summaries.status().CheckOK();
  std::cout << "SHOWRESULTS on '"
            << mesh.label(session.navigation_tree().node(show).concept_id)
            << "':\n";
  for (const CitationSummary& s : summaries.ValueOrDie()) {
    std::cout << "  PMID " << s.pmid << ": " << s.title << " (" << s.year
              << ")\n";
  }

  // --- 7. BACKTRACK undoes the last EXPAND.
  session.Backtrack();
  std::cout << "\nAfter BACKTRACK:\n" << session.Render();
  return 0;
}
