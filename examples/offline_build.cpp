// Offline/online split of the paper's Section VII architecture (Fig 7):
//
//   off-line:  download citations  ->  build the BioNav database
//              (hierarchy + de-normalized associations + keyword index)
//              ->  persist it to disk;
//   on-line:   load the database  ->  serve keyword queries with
//              interactive BioNav navigation.
//
// The paper's offline crawl took ~20 days against NCBI's eutils; here the
// "download" is the synthetic corpus generator, and the resulting database
// file can be reloaded instantly by any later process.
//
// Usage: offline_build [database-path]

#include <iostream>

#include "bionav.h"

using namespace bionav;

int main(int argc, char** argv) {
  std::string path =
      argc > 1 ? argv[1] : "/tmp/bionav_demo_database.txt";

  // ---- Off-line phase -----------------------------------------------------
  std::cout << "[off-line] generating the MeSH-like hierarchy and the"
               " citation corpus...\n";
  HierarchyGeneratorOptions hopts;
  hopts.seed = 2009;
  hopts.target_nodes = 8000;
  ConceptHierarchy hierarchy = GenerateMeshLikeHierarchy(hopts);

  QuerySpec spec;
  spec.name = "prothymosin";
  spec.keyword = "prothymosin";
  spec.result_size = 160;
  spec.target_depth = 5;
  spec.num_themes = 4;
  CorpusGeneratorOptions copts;
  copts.seed = 2010;
  copts.background_citations = 6000;
  auto corpus = GenerateCorpus(hierarchy, {spec}, copts);
  std::cout << "[off-line] corpus: " << corpus->store.size()
            << " citations, " << corpus->associations.TotalPairs()
            << " concept-citation pairs\n";

  Status saved = SaveCorpusToFile(hierarchy, *corpus, path);
  saved.CheckOK();
  std::cout << "[off-line] BioNav database written to " << path << "\n\n";

  // ---- On-line phase ------------------------------------------------------
  std::cout << "[on-line] loading the database...\n";
  auto db = BioNavDatabase::LoadFromFile(path);
  db.status().CheckOK();
  const BioNavDatabase& database = *db.ValueOrDie();
  std::cout << "[on-line] " << database.hierarchy().size() << " concepts, "
            << database.store().size() << " citations, "
            << database.associations().TotalPairs() << " pairs\n";

  EUtilsClient client = database.MakeClient();
  NavigationSession session(&database.hierarchy(), &client, "prothymosin",
                            MakeBioNavStrategyFactory());
  std::cout << "[on-line] query 'prothymosin' matched "
            << session.result_size() << " citations; navigation tree "
            << session.navigation_tree().size() << " nodes\n\n";

  session.Expand(NavigationTree::kRoot).status().CheckOK();
  std::cout << "Interface after the first EXPAND:\n" << session.Render(2);

  // Top-ranked citations of the first visible expandable concept.
  for (NavNodeId id = 1;
       id < static_cast<NavNodeId>(session.navigation_tree().size()); ++id) {
    if (!session.active_tree().IsVisible(id)) continue;
    auto top = session.ShowResults(id, /*retstart=*/0, /*retmax=*/3);
    top.status().CheckOK();
    std::cout << "\nTop results under '"
              << database.hierarchy().label(
                     session.navigation_tree().node(id).concept_id)
              << "':\n";
    for (const CitationSummary& s : top.ValueOrDie()) {
      std::cout << "  PMID " << s.pmid << " (" << s.year << "): " << s.title
                << "\n";
    }
    break;
  }
  return 0;
}
