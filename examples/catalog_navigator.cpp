// Catalog navigator: BioNav on a non-biomedical domain. The paper's Fig 1
// notes that Amazon/eBay-style category browsing is the same static
// navigation pattern; this example builds an e-commerce product catalog
// (categories = concept hierarchy, products = citations, search = keyword
// index) and compares static category browsing with BioNav's cost-driven
// expansion — demonstrating that the library carries no MeSH assumptions.

#include <iostream>

#include "bionav.h"

using namespace bionav;

namespace {

struct Catalog {
  ConceptHierarchy categories;
  CitationStore products;
  AssociationTable placements{0};
  std::unique_ptr<InvertedIndex> index;
};

Catalog BuildCatalog() {
  Catalog cat;
  ConceptHierarchy& c = cat.categories;

  ConceptId electronics = c.AddNode(ConceptHierarchy::kRoot, "Electronics");
  ConceptId audio = c.AddNode(electronics, "Audio");
  ConceptId headphones = c.AddNode(audio, "Headphones");
  ConceptId wireless = c.AddNode(headphones, "Wireless Headphones");
  ConceptId wired = c.AddNode(headphones, "Wired Headphones");
  ConceptId speakers = c.AddNode(audio, "Speakers");
  ConceptId computers = c.AddNode(electronics, "Computers");
  ConceptId laptops = c.AddNode(computers, "Laptops");
  ConceptId accessories = c.AddNode(computers, "Accessories");
  ConceptId home = c.AddNode(ConceptHierarchy::kRoot, "Home & Kitchen");
  ConceptId appliances = c.AddNode(home, "Small Appliances");
  ConceptId coffee = c.AddNode(appliances, "Coffee Makers");
  ConceptId sports = c.AddNode(ConceptHierarchy::kRoot, "Sports & Outdoors");
  ConceptId fitness = c.AddNode(sports, "Fitness Electronics");
  c.Freeze();
  c.RenameNode(ConceptHierarchy::kRoot, "All Departments");

  cat.placements = AssociationTable(c.size());
  Rng rng(77);
  uint64_t sku = 100000;
  auto add_product = [&](const std::string& title,
                         const std::vector<std::string>& terms,
                         const std::vector<ConceptId>& cats) {
    Citation p;
    p.pmid = sku++;
    p.title = title;
    p.year = 2026;
    for (const auto& t : terms) {
      p.term_ids.push_back(cat.products.InternTerm(t));
    }
    CitationId id = cat.products.Add(std::move(p));
    for (ConceptId k : cats) {
      cat.placements.Associate(id, k, AssociationKind::kIndexed);
    }
  };

  // "bluetooth" products scattered across several departments — the
  // multi-theme structure BioNav exploits.
  const struct {
    const char* title;
    std::vector<ConceptId> cats;
  } bluetooth_products[] = {
      {"Noise-cancelling bluetooth headphones", {wireless, headphones, audio}},
      {"Bluetooth earbuds sport edition", {wireless, fitness}},
      {"Bluetooth studio monitors", {speakers, audio}},
      {"Bluetooth laptop mouse", {accessories, computers}},
      {"Bluetooth mechanical keyboard", {accessories}},
      {"Bluetooth fitness tracker", {fitness, sports}},
      {"Bluetooth heart-rate strap", {fitness}},
      {"Bluetooth kitchen scale", {appliances, home}},
      {"Bluetooth coffee maker", {coffee, appliances}},
      {"Bluetooth soundbar", {speakers}},
      {"Bluetooth gaming laptop", {laptops, computers}},
      {"Bluetooth DJ headphones", {wired, headphones}},
  };
  for (const auto& p : bluetooth_products) {
    add_product(p.title, {"bluetooth"}, p.cats);
    // A couple of near-duplicates per product line to create realistic
    // citation counts.
    for (int v = 0; v < 3; ++v) {
      add_product(std::string(p.title) + " v" + std::to_string(v + 2),
                  {"bluetooth"}, p.cats);
    }
  }
  // Non-matching products.
  for (int i = 0; i < 40; ++i) {
    std::vector<ConceptId> all = {wireless, wired,  speakers, laptops,
                                  accessories, coffee, fitness};
    add_product("Generic product " + std::to_string(i), {"generic"},
                {all[rng.Uniform(all.size())]});
  }

  cat.index = std::make_unique<InvertedIndex>(cat.products);
  return cat;
}

}  // namespace

int main() {
  Catalog catalog = BuildCatalog();
  EUtilsClient client(&catalog.products, catalog.index.get(),
                      &catalog.placements);

  std::cout << "Search 'bluetooth' over " << catalog.products.size()
            << " products\n\n";

  // Static department browsing (all children per expand).
  NavigationSession static_session(&catalog.categories, &client, "bluetooth",
                                   MakeStaticStrategyFactory());
  static_session.Expand(NavigationTree::kRoot).status().CheckOK();
  std::cout << "Static category browsing after one click:\n"
            << static_session.Render() << "\n";

  // BioNav cost-driven expansion.
  NavigationSession bionav_session(&catalog.categories, &client, "bluetooth",
                                   MakeBioNavStrategyFactory());
  bionav_session.Expand(NavigationTree::kRoot).status().CheckOK();
  std::cout << "BioNav cost-driven expansion after one click:\n"
            << bionav_session.Render() << "\n";

  // Drill down to a product list.
  NavNodeId node = bionav_session.FindVisibleByLabel("Fitness Electronics");
  if (node != kInvalidNavNode) {
    auto products = bionav_session.ShowResults(node);
    products.status().CheckOK();
    std::cout << "Products under 'Fitness Electronics':\n";
    for (const CitationSummary& s : products.ValueOrDie()) {
      std::cout << "  SKU " << s.pmid << ": " << s.title << "\n";
    }
  }
  return 0;
}
