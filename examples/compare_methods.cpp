// Side-by-side trace of static navigation vs BioNav on one workload query —
// the paper's Section I motivating comparison ("123 concepts after 5
// expansions vs 19 concepts after 5 expansions"), regenerated on the
// synthetic workload.
//
// Usage: compare_methods [query-name]

#include <iostream>

#include "bionav.h"

using namespace bionav;

int main(int argc, char** argv) {
  std::string query_name = argc > 1 ? argv[1] : "prothymosin";

  WorkloadOptions options;
  options.hierarchy_nodes = 12000;
  options.background_citations = 10000;
  options.result_scale = 0.5;
  std::cout << "Building synthetic MEDLINE...\n";
  Workload workload(options);

  size_t index = workload.num_queries();
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    if (workload.query(i).spec.name == query_name) index = i;
  }
  if (index == workload.num_queries()) {
    std::cerr << "unknown query '" << query_name << "'\n";
    return 1;
  }
  const GeneratedQuery& q = workload.query(index);
  std::unique_ptr<NavigationTree> nav = workload.BuildNavigationTree(index);
  CostModel cost_model(nav.get());

  std::cout << "Query '" << q.spec.name << "': " << nav->result().size()
            << " citations, navigation tree " << nav->size()
            << " nodes, target '" << workload.hierarchy().label(q.target)
            << "'\n\n";

  struct Run {
    const char* label;
    StrategyFactory factory;
  };
  Run runs[] = {
      {"Static navigation (all children per EXPAND)",
       MakeStaticStrategyFactory()},
      {"BioNav (Heuristic-ReducedOpt, K=10)", MakeBioNavStrategyFactory()},
  };

  for (const Run& run : runs) {
    std::unique_ptr<ExpandStrategy> strategy = run.factory(&cost_model);
    ActiveTree active(nav.get());
    NavigationMetrics m =
        NavigateToTarget(&active, q.target, strategy.get());
    std::cout << "== " << run.label << " ==\n"
              << "  EXPAND actions:    " << m.expand_actions << "\n"
              << "  concepts revealed: " << m.revealed_concepts << "\n"
              << "  navigation cost:   " << m.navigation_cost() << "\n"
              << "  SHOWRESULTS size:  " << m.showresults_citations << "\n"
              << "  per-EXPAND reveals:";
    for (int r : m.revealed_per_expand) std::cout << " " << r;
    std::cout << "\n\nFinal interface state (to depth 3):\n"
              << active.RenderAscii(3) << "\n";
  }
  return 0;
}
