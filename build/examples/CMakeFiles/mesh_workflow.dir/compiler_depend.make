# Empty compiler generated dependencies file for mesh_workflow.
# This may be replaced when dependencies are built.
