file(REMOVE_RECURSE
  "CMakeFiles/mesh_workflow.dir/mesh_workflow.cpp.o"
  "CMakeFiles/mesh_workflow.dir/mesh_workflow.cpp.o.d"
  "mesh_workflow"
  "mesh_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
