# Empty compiler generated dependencies file for pubmed_explorer.
# This may be replaced when dependencies are built.
