file(REMOVE_RECURSE
  "CMakeFiles/pubmed_explorer.dir/pubmed_explorer.cpp.o"
  "CMakeFiles/pubmed_explorer.dir/pubmed_explorer.cpp.o.d"
  "pubmed_explorer"
  "pubmed_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubmed_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
