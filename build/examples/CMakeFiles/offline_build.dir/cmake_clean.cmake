file(REMOVE_RECURSE
  "CMakeFiles/offline_build.dir/offline_build.cpp.o"
  "CMakeFiles/offline_build.dir/offline_build.cpp.o.d"
  "offline_build"
  "offline_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
