# Empty dependencies file for offline_build.
# This may be replaced when dependencies are built.
