file(REMOVE_RECURSE
  "CMakeFiles/catalog_navigator.dir/catalog_navigator.cpp.o"
  "CMakeFiles/catalog_navigator.dir/catalog_navigator.cpp.o.d"
  "catalog_navigator"
  "catalog_navigator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_navigator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
