# Empty compiler generated dependencies file for catalog_navigator.
# This may be replaced when dependencies are built.
