
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algo_exhaustive_test.cc" "tests/CMakeFiles/bionav_tests.dir/algo_exhaustive_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/algo_exhaustive_test.cc.o.d"
  "/root/repo/tests/algo_heuristic_test.cc" "tests/CMakeFiles/bionav_tests.dir/algo_heuristic_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/algo_heuristic_test.cc.o.d"
  "/root/repo/tests/algo_k_partition_test.cc" "tests/CMakeFiles/bionav_tests.dir/algo_k_partition_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/algo_k_partition_test.cc.o.d"
  "/root/repo/tests/algo_opt_edgecut_test.cc" "tests/CMakeFiles/bionav_tests.dir/algo_opt_edgecut_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/algo_opt_edgecut_test.cc.o.d"
  "/root/repo/tests/algo_reduced_tree_test.cc" "tests/CMakeFiles/bionav_tests.dir/algo_reduced_tree_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/algo_reduced_tree_test.cc.o.d"
  "/root/repo/tests/algo_small_tree_test.cc" "tests/CMakeFiles/bionav_tests.dir/algo_small_tree_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/algo_small_tree_test.cc.o.d"
  "/root/repo/tests/algo_static_test.cc" "tests/CMakeFiles/bionav_tests.dir/algo_static_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/algo_static_test.cc.o.d"
  "/root/repo/tests/core_active_tree_test.cc" "tests/CMakeFiles/bionav_tests.dir/core_active_tree_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/core_active_tree_test.cc.o.d"
  "/root/repo/tests/core_cost_model_test.cc" "tests/CMakeFiles/bionav_tests.dir/core_cost_model_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/core_cost_model_test.cc.o.d"
  "/root/repo/tests/core_json_export_test.cc" "tests/CMakeFiles/bionav_tests.dir/core_json_export_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/core_json_export_test.cc.o.d"
  "/root/repo/tests/core_navigation_tree_test.cc" "tests/CMakeFiles/bionav_tests.dir/core_navigation_tree_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/core_navigation_tree_test.cc.o.d"
  "/root/repo/tests/core_query_refiner_test.cc" "tests/CMakeFiles/bionav_tests.dir/core_query_refiner_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/core_query_refiner_test.cc.o.d"
  "/root/repo/tests/core_ranking_test.cc" "tests/CMakeFiles/bionav_tests.dir/core_ranking_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/core_ranking_test.cc.o.d"
  "/root/repo/tests/core_tree_stats_test.cc" "tests/CMakeFiles/bionav_tests.dir/core_tree_stats_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/core_tree_stats_test.cc.o.d"
  "/root/repo/tests/hierarchy_concept_test.cc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_concept_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_concept_test.cc.o.d"
  "/root/repo/tests/hierarchy_generator_test.cc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_generator_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_generator_test.cc.o.d"
  "/root/repo/tests/hierarchy_io_test.cc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_io_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_io_test.cc.o.d"
  "/root/repo/tests/hierarchy_mesh_import_test.cc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_mesh_import_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_mesh_import_test.cc.o.d"
  "/root/repo/tests/hierarchy_tree_number_test.cc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_tree_number_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/hierarchy_tree_number_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/bionav_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/medline_association_test.cc" "tests/CMakeFiles/bionav_tests.dir/medline_association_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/medline_association_test.cc.o.d"
  "/root/repo/tests/medline_corpus_test.cc" "tests/CMakeFiles/bionav_tests.dir/medline_corpus_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/medline_corpus_test.cc.o.d"
  "/root/repo/tests/medline_database_test.cc" "tests/CMakeFiles/bionav_tests.dir/medline_database_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/medline_database_test.cc.o.d"
  "/root/repo/tests/medline_index_test.cc" "tests/CMakeFiles/bionav_tests.dir/medline_index_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/medline_index_test.cc.o.d"
  "/root/repo/tests/medline_store_test.cc" "tests/CMakeFiles/bionav_tests.dir/medline_store_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/medline_store_test.cc.o.d"
  "/root/repo/tests/paper_scenarios_test.cc" "tests/CMakeFiles/bionav_tests.dir/paper_scenarios_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/paper_scenarios_test.cc.o.d"
  "/root/repo/tests/properties_test.cc" "tests/CMakeFiles/bionav_tests.dir/properties_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/properties_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/bionav_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/sample_data_test.cc" "tests/CMakeFiles/bionav_tests.dir/sample_data_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/sample_data_test.cc.o.d"
  "/root/repo/tests/sim_navigator_test.cc" "tests/CMakeFiles/bionav_tests.dir/sim_navigator_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/sim_navigator_test.cc.o.d"
  "/root/repo/tests/sim_session_test.cc" "tests/CMakeFiles/bionav_tests.dir/sim_session_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/sim_session_test.cc.o.d"
  "/root/repo/tests/sim_stochastic_test.cc" "tests/CMakeFiles/bionav_tests.dir/sim_stochastic_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/sim_stochastic_test.cc.o.d"
  "/root/repo/tests/test_support.cc" "tests/CMakeFiles/bionav_tests.dir/test_support.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/test_support.cc.o.d"
  "/root/repo/tests/util_bitset_test.cc" "tests/CMakeFiles/bionav_tests.dir/util_bitset_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/util_bitset_test.cc.o.d"
  "/root/repo/tests/util_rng_test.cc" "tests/CMakeFiles/bionav_tests.dir/util_rng_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/util_rng_test.cc.o.d"
  "/root/repo/tests/util_status_test.cc" "tests/CMakeFiles/bionav_tests.dir/util_status_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/util_status_test.cc.o.d"
  "/root/repo/tests/util_string_test.cc" "tests/CMakeFiles/bionav_tests.dir/util_string_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/util_string_test.cc.o.d"
  "/root/repo/tests/util_timer_test.cc" "tests/CMakeFiles/bionav_tests.dir/util_timer_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/util_timer_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/bionav_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/bionav_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bionav.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
