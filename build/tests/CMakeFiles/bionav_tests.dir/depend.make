# Empty dependencies file for bionav_tests.
# This may be replaced when dependencies are built.
