# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bionav_cli_smoke "bash" "-c" "set -e;     DB=/root/repo/build/cli_smoke_db.txt;     /root/repo/build/tools/bionav_cli generate \$DB --nodes 1500 --background 800 --scale 0.15;     /root/repo/build/tools/bionav_cli info \$DB;     /root/repo/build/tools/bionav_cli search \$DB prothymosin --top 3;     /root/repo/build/tools/bionav_cli tree \$DB follistatin --depth 2;     printf 'expand MeSH
show MeSH
back
tree
quit
' | /root/repo/build/tools/bionav_cli navigate \$DB prothymosin;     /root/repo/build/tools/bionav_cli convert-mesh /root/repo/data/sample.mtrees /root/repo/build/cli_smoke_mesh.tsv")
set_tests_properties(bionav_cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
