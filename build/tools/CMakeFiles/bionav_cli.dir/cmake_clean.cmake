file(REMOVE_RECURSE
  "CMakeFiles/bionav_cli.dir/bionav_cli.cc.o"
  "CMakeFiles/bionav_cli.dir/bionav_cli.cc.o.d"
  "bionav_cli"
  "bionav_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bionav_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
