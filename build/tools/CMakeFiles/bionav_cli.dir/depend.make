# Empty dependencies file for bionav_cli.
# This may be replaced when dependencies are built.
