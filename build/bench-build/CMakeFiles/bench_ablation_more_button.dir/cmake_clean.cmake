file(REMOVE_RECURSE
  "../bench/bench_ablation_more_button"
  "../bench/bench_ablation_more_button.pdb"
  "CMakeFiles/bench_ablation_more_button.dir/bench_ablation_more_button.cc.o"
  "CMakeFiles/bench_ablation_more_button.dir/bench_ablation_more_button.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_more_button.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
