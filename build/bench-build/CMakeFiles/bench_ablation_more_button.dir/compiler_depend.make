# Empty compiler generated dependencies file for bench_ablation_more_button.
# This may be replaced when dependencies are built.
