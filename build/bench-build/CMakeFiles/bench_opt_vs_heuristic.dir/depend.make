# Empty dependencies file for bench_opt_vs_heuristic.
# This may be replaced when dependencies are built.
