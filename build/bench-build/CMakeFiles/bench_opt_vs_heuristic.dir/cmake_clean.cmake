file(REMOVE_RECURSE
  "../bench/bench_opt_vs_heuristic"
  "../bench/bench_opt_vs_heuristic.pdb"
  "CMakeFiles/bench_opt_vs_heuristic.dir/bench_opt_vs_heuristic.cc.o"
  "CMakeFiles/bench_opt_vs_heuristic.dir/bench_opt_vs_heuristic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_vs_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
