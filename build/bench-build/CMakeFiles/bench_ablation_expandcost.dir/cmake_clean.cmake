file(REMOVE_RECURSE
  "../bench/bench_ablation_expandcost"
  "../bench/bench_ablation_expandcost.pdb"
  "CMakeFiles/bench_ablation_expandcost.dir/bench_ablation_expandcost.cc.o"
  "CMakeFiles/bench_ablation_expandcost.dir/bench_ablation_expandcost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_expandcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
