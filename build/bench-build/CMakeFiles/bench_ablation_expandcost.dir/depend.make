# Empty dependencies file for bench_ablation_expandcost.
# This may be replaced when dependencies are built.
