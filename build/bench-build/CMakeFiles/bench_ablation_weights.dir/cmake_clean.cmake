file(REMOVE_RECURSE
  "../bench/bench_ablation_weights"
  "../bench/bench_ablation_weights.pdb"
  "CMakeFiles/bench_ablation_weights.dir/bench_ablation_weights.cc.o"
  "CMakeFiles/bench_ablation_weights.dir/bench_ablation_weights.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
