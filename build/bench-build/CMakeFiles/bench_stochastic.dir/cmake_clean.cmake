file(REMOVE_RECURSE
  "../bench/bench_stochastic"
  "../bench/bench_stochastic.pdb"
  "CMakeFiles/bench_stochastic.dir/bench_stochastic.cc.o"
  "CMakeFiles/bench_stochastic.dir/bench_stochastic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stochastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
