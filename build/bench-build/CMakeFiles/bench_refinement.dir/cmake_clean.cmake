file(REMOVE_RECURSE
  "../bench/bench_refinement"
  "../bench/bench_refinement.pdb"
  "CMakeFiles/bench_refinement.dir/bench_refinement.cc.o"
  "CMakeFiles/bench_refinement.dir/bench_refinement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
