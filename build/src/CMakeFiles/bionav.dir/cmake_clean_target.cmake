file(REMOVE_RECURSE
  "libbionav.a"
)
