# Empty compiler generated dependencies file for bionav.
# This may be replaced when dependencies are built.
