
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/exhaustive.cc" "src/CMakeFiles/bionav.dir/algo/exhaustive.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/exhaustive.cc.o.d"
  "/root/repo/src/algo/exhaustive_strategy.cc" "src/CMakeFiles/bionav.dir/algo/exhaustive_strategy.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/exhaustive_strategy.cc.o.d"
  "/root/repo/src/algo/greedy_edgecut.cc" "src/CMakeFiles/bionav.dir/algo/greedy_edgecut.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/greedy_edgecut.cc.o.d"
  "/root/repo/src/algo/heuristic_reduced_opt.cc" "src/CMakeFiles/bionav.dir/algo/heuristic_reduced_opt.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/heuristic_reduced_opt.cc.o.d"
  "/root/repo/src/algo/k_partition.cc" "src/CMakeFiles/bionav.dir/algo/k_partition.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/k_partition.cc.o.d"
  "/root/repo/src/algo/opt_edgecut.cc" "src/CMakeFiles/bionav.dir/algo/opt_edgecut.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/opt_edgecut.cc.o.d"
  "/root/repo/src/algo/reduced_tree.cc" "src/CMakeFiles/bionav.dir/algo/reduced_tree.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/reduced_tree.cc.o.d"
  "/root/repo/src/algo/small_tree.cc" "src/CMakeFiles/bionav.dir/algo/small_tree.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/small_tree.cc.o.d"
  "/root/repo/src/algo/static_navigation.cc" "src/CMakeFiles/bionav.dir/algo/static_navigation.cc.o" "gcc" "src/CMakeFiles/bionav.dir/algo/static_navigation.cc.o.d"
  "/root/repo/src/core/active_tree.cc" "src/CMakeFiles/bionav.dir/core/active_tree.cc.o" "gcc" "src/CMakeFiles/bionav.dir/core/active_tree.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/bionav.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/bionav.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/json_export.cc" "src/CMakeFiles/bionav.dir/core/json_export.cc.o" "gcc" "src/CMakeFiles/bionav.dir/core/json_export.cc.o.d"
  "/root/repo/src/core/navigation_tree.cc" "src/CMakeFiles/bionav.dir/core/navigation_tree.cc.o" "gcc" "src/CMakeFiles/bionav.dir/core/navigation_tree.cc.o.d"
  "/root/repo/src/core/query_refiner.cc" "src/CMakeFiles/bionav.dir/core/query_refiner.cc.o" "gcc" "src/CMakeFiles/bionav.dir/core/query_refiner.cc.o.d"
  "/root/repo/src/core/ranking.cc" "src/CMakeFiles/bionav.dir/core/ranking.cc.o" "gcc" "src/CMakeFiles/bionav.dir/core/ranking.cc.o.d"
  "/root/repo/src/core/result_set.cc" "src/CMakeFiles/bionav.dir/core/result_set.cc.o" "gcc" "src/CMakeFiles/bionav.dir/core/result_set.cc.o.d"
  "/root/repo/src/core/tree_stats.cc" "src/CMakeFiles/bionav.dir/core/tree_stats.cc.o" "gcc" "src/CMakeFiles/bionav.dir/core/tree_stats.cc.o.d"
  "/root/repo/src/hierarchy/concept_hierarchy.cc" "src/CMakeFiles/bionav.dir/hierarchy/concept_hierarchy.cc.o" "gcc" "src/CMakeFiles/bionav.dir/hierarchy/concept_hierarchy.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy_generator.cc" "src/CMakeFiles/bionav.dir/hierarchy/hierarchy_generator.cc.o" "gcc" "src/CMakeFiles/bionav.dir/hierarchy/hierarchy_generator.cc.o.d"
  "/root/repo/src/hierarchy/hierarchy_io.cc" "src/CMakeFiles/bionav.dir/hierarchy/hierarchy_io.cc.o" "gcc" "src/CMakeFiles/bionav.dir/hierarchy/hierarchy_io.cc.o.d"
  "/root/repo/src/hierarchy/mesh_import.cc" "src/CMakeFiles/bionav.dir/hierarchy/mesh_import.cc.o" "gcc" "src/CMakeFiles/bionav.dir/hierarchy/mesh_import.cc.o.d"
  "/root/repo/src/hierarchy/tree_number.cc" "src/CMakeFiles/bionav.dir/hierarchy/tree_number.cc.o" "gcc" "src/CMakeFiles/bionav.dir/hierarchy/tree_number.cc.o.d"
  "/root/repo/src/medline/association_table.cc" "src/CMakeFiles/bionav.dir/medline/association_table.cc.o" "gcc" "src/CMakeFiles/bionav.dir/medline/association_table.cc.o.d"
  "/root/repo/src/medline/bionav_database.cc" "src/CMakeFiles/bionav.dir/medline/bionav_database.cc.o" "gcc" "src/CMakeFiles/bionav.dir/medline/bionav_database.cc.o.d"
  "/root/repo/src/medline/citation_store.cc" "src/CMakeFiles/bionav.dir/medline/citation_store.cc.o" "gcc" "src/CMakeFiles/bionav.dir/medline/citation_store.cc.o.d"
  "/root/repo/src/medline/corpus_generator.cc" "src/CMakeFiles/bionav.dir/medline/corpus_generator.cc.o" "gcc" "src/CMakeFiles/bionav.dir/medline/corpus_generator.cc.o.d"
  "/root/repo/src/medline/eutils.cc" "src/CMakeFiles/bionav.dir/medline/eutils.cc.o" "gcc" "src/CMakeFiles/bionav.dir/medline/eutils.cc.o.d"
  "/root/repo/src/medline/inverted_index.cc" "src/CMakeFiles/bionav.dir/medline/inverted_index.cc.o" "gcc" "src/CMakeFiles/bionav.dir/medline/inverted_index.cc.o.d"
  "/root/repo/src/sim/navigator.cc" "src/CMakeFiles/bionav.dir/sim/navigator.cc.o" "gcc" "src/CMakeFiles/bionav.dir/sim/navigator.cc.o.d"
  "/root/repo/src/sim/session.cc" "src/CMakeFiles/bionav.dir/sim/session.cc.o" "gcc" "src/CMakeFiles/bionav.dir/sim/session.cc.o.d"
  "/root/repo/src/sim/stochastic_user.cc" "src/CMakeFiles/bionav.dir/sim/stochastic_user.cc.o" "gcc" "src/CMakeFiles/bionav.dir/sim/stochastic_user.cc.o.d"
  "/root/repo/src/util/bitset.cc" "src/CMakeFiles/bionav.dir/util/bitset.cc.o" "gcc" "src/CMakeFiles/bionav.dir/util/bitset.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/bionav.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/bionav.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/bionav.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/bionav.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/bionav.dir/util/status.cc.o" "gcc" "src/CMakeFiles/bionav.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/bionav.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/bionav.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/bionav.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/bionav.dir/util/timer.cc.o.d"
  "/root/repo/src/workload/table_format.cc" "src/CMakeFiles/bionav.dir/workload/table_format.cc.o" "gcc" "src/CMakeFiles/bionav.dir/workload/table_format.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/bionav.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/bionav.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
