#ifndef BIONAV_ALGO_EXHAUSTIVE_STRATEGY_H_
#define BIONAV_ALGO_EXHAUSTIVE_STRATEGY_H_

#include <string>

#include "algo/expand_strategy.h"

namespace bionav {

/// Expansion policy optimizing the TOPDOWN-EXHAUSTIVE objective of Section
/// V (one EdgeCut, then the user reads the revealed labels and SHOWRESULTS
/// a uniformly random component) instead of the full recursive cost model.
/// Runs on the same k-partition reduction as Heuristic-ReducedOpt. Serves
/// as the "is the recursive DP worth it over the one-shot model" ablation:
/// the exhaustive objective ignores exploration probabilities and future
/// expansions, so it over-reveals relative to BioNav.
class ExhaustiveReducedStrategy : public ExpandStrategy {
 public:
  /// `cost_model` supplies the per-node weights the reduction aggregates
  /// (the exhaustive objective itself only uses citation counts).
  ExhaustiveReducedStrategy(const CostModel* cost_model,
                            int max_partitions = 10);

  EdgeCut ChooseEdgeCut(const ActiveTree& active, NavNodeId root) override;

  std::string name() const override { return "Exhaustive-Reduced"; }

 private:
  const CostModel* cost_model_;
  int max_partitions_;
};

}  // namespace bionav

#endif  // BIONAV_ALGO_EXHAUSTIVE_STRATEGY_H_
