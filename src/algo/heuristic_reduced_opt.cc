#include "algo/heuristic_reduced_opt.h"

#include <algorithm>

#include "algo/k_partition.h"
#include "algo/reduced_tree.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace bionav {

namespace {

LatencyHistogram* OptCutHistogram() {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_engine_opt_edgecut_us",
      "Opt-EdgeCut DP solve per EXPAND (paper Fig 10 stage)");
  return hist;
}

/// Topmost nodes of subtree(root) that are NOT members of `comp`, in
/// pre-order. Because active-tree components are connected and up-closed
/// toward their root, the component's member set is exactly subtree(root)
/// minus the (disjoint) subtrees of these holes, and the first non-member
/// met in pre-order is always the top of its foreign region — so one
/// skip-walk of O(members + holes) steps suffices.
std::vector<NavNodeId> ComponentHoles(const ActiveTree& active, int comp,
                                      NavNodeId root) {
  const NavigationTree& nav = active.nav();
  std::vector<NavNodeId> holes;
  NavNodeId end = nav.SubtreeEnd(root);
  for (NavNodeId id = root; id < end;) {
    if (active.ComponentOf(id) == comp) {
      ++id;
    } else {
      holes.push_back(id);
      id = nav.SubtreeEnd(id);
    }
  }
  return holes;
}

}  // namespace

HeuristicReducedOpt::HeuristicReducedOpt(const CostModel* cost_model,
                                         HeuristicReducedOptOptions options)
    : cost_model_(cost_model), options_(options) {
  BIONAV_CHECK(cost_model != nullptr);
  BIONAV_CHECK_GE(options_.max_partitions, 2);
  BIONAV_CHECK_LE(options_.max_partitions, kMaxSmallTreeNodes);
  BIONAV_CHECK_GT(options_.bound_growth, 1.0);
}

void HeuristicReducedOpt::SeedCache(const Reduction& reduction,
                                    SmallTreeMask mask,
                                    const std::vector<int>& cut_supernodes,
                                    NavNodeId root) {
  auto members_of = [&](SmallTreeMask m) {
    size_t total = 0;
    for (SmallTreeMask rest = m; rest;) {
      int v = __builtin_ctz(rest);
      rest &= rest - 1;
      total += static_cast<size_t>(
          (*reduction.supernode_sizes)[static_cast<size_t>(v)]);
    }
    return total;
  };

  SmallTreeMask upper = mask;
  for (int s : cut_supernodes) {
    SmallTreeMask lower = mask & reduction.tree->SubtreeMask(s);
    upper &= ~lower;
    if (SmallTree::MaskSize(lower) >= 2) {
      cache_[reduction.tree->node(s).origin] =
          CacheEntry{reduction, lower, members_of(lower)};
    } else {
      // Single supernode: its internal structure is not in this reduction;
      // a future expansion must re-reduce, so do not cache.
      cache_.erase(reduction.tree->node(s).origin);
    }
  }
  if (SmallTree::MaskSize(upper) >= 2) {
    cache_[root] = CacheEntry{reduction, upper, members_of(upper)};
  } else {
    cache_.erase(root);
  }
}

EdgeCut HeuristicReducedOpt::ChooseEdgeCut(const ActiveTree& active,
                                           NavNodeId root) {
  static LatencyHistogram* choose_hist = GlobalMetrics().GetHistogram(
      "bionav_engine_choose_cut_us",
      "Heuristic-ReducedOpt ChooseEdgeCut end to end");
  static Counter* dp_hits = GlobalMetrics().GetCounter(
      "bionav_engine_dp_cache_hits_total",
      "EXPANDs answered from a prior reduction's memoized DP");
  static Counter* dp_misses = GlobalMetrics().GetCounter(
      "bionav_engine_dp_cache_misses_total",
      "EXPANDs that had to reduce the component from scratch");
  static Counter* fallbacks = GlobalMetrics().GetCounter(
      "bionav_engine_expand_fallback_total",
      "EXPANDs that fell back to revealing all children (no usable "
      "reduction)");
  static LatencyHistogram* inc_reuse_hist = GlobalMetrics().GetHistogram(
      "bionav_engine_incremental_reuse_us",
      "EXPANDs answered from the incremental memo (validation + replay)");
  static LatencyHistogram* inc_invalidated_hist = GlobalMetrics().GetHistogram(
      "bionav_engine_incremental_invalidated_us",
      "Stale incremental-memo probes (validation time before recompute)");
  static Counter* inc_hits = GlobalMetrics().GetCounter(
      "bionav_engine_incremental_hits_total",
      "EXPANDs replayed bit-identically from the incremental memo");
  static Counter* subtrees_recomputed = GlobalMetrics().GetCounter(
      "bionav_engine_subtrees_recomputed",
      "Component subtrees recomputed from scratch (incremental memo misses "
      "plus runs with the incremental engine off)");
  TraceSpan choose_span("choose_cut", choose_hist);
  Timer timer;
  last_stats_ = ExpandStats{};
  int comp = active.ComponentOf(root);
  BIONAV_CHECK_EQ(active.ComponentRoot(comp), root)
      << "EXPAND must target a visible component root";
  BIONAV_CHECK_GE(active.ComponentSize(comp), 2u);

  // Incremental fast path: replay the memoized cut when the exact component
  // recurs. An entry keyed by (root, member count) matches iff every
  // recorded hole still lies outside the component: holes outside imply
  // members(now) is a subset of members(then) (a member inside a hole's
  // subtree would pull the hole into the component via up-closedness), and
  // the equal counts force set equality — so the replay is bit-identical to
  // a fresh recompute. Entries never need eager invalidation; a stale entry
  // simply fails this check, and BACKTRACK re-validates old entries for
  // free. Mutually exclusive with reuse_dp, which intentionally trades cut
  // quality for speed and would break bit-identity.
  const bool use_incremental = options_.incremental && !options_.reuse_dp;
  const uint64_t memo_key =
      IncrementalState::Key(root, active.ComponentSize(comp));
  if (use_incremental) {
    auto it = incremental_.memo.find(memo_key);
    if (it != incremental_.memo.end()) {
      bool valid = true;
      for (NavNodeId h : it->second.holes) {
        if (active.ComponentOf(h) == comp) {
          valid = false;
          break;
        }
      }
      if (valid) {
        inc_hits->Increment();
        last_stats_.reduced_tree_size = it->second.reduced_tree_size;
        last_stats_.partition_rounds = it->second.partition_rounds;
        last_stats_.incremental_hit = true;
        last_stats_.elapsed_ms = timer.ElapsedMillis();
        inc_reuse_hist->Record(timer.ElapsedMicros());
        return it->second.cut;
      }
      incremental_.memo.erase(it);
      inc_invalidated_hist->Record(timer.ElapsedMicros());
    }
  }

  // Fast path (Section VI-B): a previous reduction already covers this
  // component — its optimal cut is in the memoized DP.
  if (options_.reuse_dp) {
    auto it = cache_.find(root);
    if (it != cache_.end() &&
        it->second.expected_members == active.ComponentSize(comp) &&
        SmallTree::MaskSize(it->second.mask) >= 2) {
      dp_hits->Increment();
      const CacheEntry entry = it->second;  // Copy; SeedCache mutates map.
      std::vector<int> cut_supernodes;
      {
        TraceSpan opt_span("opt_edgecut", OptCutHistogram());
        cut_supernodes = entry.reduction.opt->BestCut(entry.mask);
      }
      BIONAV_CHECK(!cut_supernodes.empty());
      EdgeCut cut;
      for (int s : cut_supernodes) {
        cut.cut_children.push_back(entry.reduction.tree->node(s).origin);
      }
      SeedCache(entry.reduction, entry.mask, cut_supernodes, root);
      last_stats_.reduced_tree_size = SmallTree::MaskSize(entry.mask);
      last_stats_.cache_hit = true;
      last_stats_.elapsed_ms = timer.ElapsedMillis();
      return cut;
    }
  }

  // Memoizes the freshly computed answer for this component shape. The cap
  // guards against unbounded growth in adversarial sessions; clearing on
  // overflow is safe because the memo is a pure cache.
  auto remember = [&](const EdgeCut& cut) {
    if (!use_incremental) return;
    if (incremental_.memo.size() >= options_.incremental_max_entries) {
      incremental_.Clear();
    }
    IncrementalState::Entry entry;
    entry.holes = ComponentHoles(active, comp, root);
    entry.cut = cut;
    entry.reduced_tree_size = last_stats_.reduced_tree_size;
    entry.partition_rounds = last_stats_.partition_rounds;
    incremental_.memo[memo_key] = std::move(entry);
  };

  dp_misses->Increment();
  subtrees_recomputed->Increment();
  // Small components run Opt-EdgeCut exactly (every node its own
  // supernode); larger ones are k-partition-reduced first.
  std::optional<ReducedComponent> reduced =
      ReduceComponent(active, *cost_model_, comp, options_.max_partitions);
  if (!reduced.has_value()) {
    fallbacks->Increment();
    // Pathological tie structure with no usable reduction: fall back to
    // revealing all children of the expanded node (always a valid cut).
    EdgeCut fallback;
    active.nav().ForEachChild(root, [&](NavNodeId c) {
      if (active.ComponentOf(c) == comp) fallback.cut_children.push_back(c);
    });
    BIONAV_CHECK(!fallback.empty());
    remember(fallback);
    last_stats_.elapsed_ms = timer.ElapsedMillis();
    return fallback;
  }
  last_stats_.partition_rounds = reduced->partition_rounds;
  last_stats_.reduced_tree_size = reduced->tree.size();

  Reduction reduction;
  reduction.tree = std::make_shared<SmallTree>(std::move(reduced->tree));
  reduction.opt =
      std::make_shared<OptEdgeCut>(reduction.tree.get(), cost_model_);
  reduction.supernode_sizes = std::make_shared<std::vector<int>>(
      std::move(reduced->supernode_sizes));

  SmallTreeMask full = reduction.tree->FullMask();
  std::vector<int> cut_supernodes;
  {
    TraceSpan opt_span("opt_edgecut", OptCutHistogram());
    cut_supernodes = reduction.opt->BestCut(full);
  }
  BIONAV_CHECK(!cut_supernodes.empty());

  EdgeCut cut;
  cut.cut_children.reserve(cut_supernodes.size());
  for (int s : cut_supernodes) {
    cut.cut_children.push_back(reduction.tree->node(s).origin);
  }
  if (options_.reuse_dp) {
    SeedCache(reduction, full, cut_supernodes, root);
  }
  remember(cut);
  last_stats_.elapsed_ms = timer.ElapsedMillis();
  return cut;
}

}  // namespace bionav
