#include "algo/heuristic_reduced_opt.h"

#include <algorithm>

#include "algo/k_partition.h"
#include "algo/reduced_tree.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace bionav {

namespace {

LatencyHistogram* OptCutHistogram() {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_engine_opt_edgecut_us",
      "Opt-EdgeCut DP solve per EXPAND (paper Fig 10 stage)");
  return hist;
}

}  // namespace

HeuristicReducedOpt::HeuristicReducedOpt(const CostModel* cost_model,
                                         HeuristicReducedOptOptions options)
    : cost_model_(cost_model), options_(options) {
  BIONAV_CHECK(cost_model != nullptr);
  BIONAV_CHECK_GE(options_.max_partitions, 2);
  BIONAV_CHECK_LE(options_.max_partitions, kMaxSmallTreeNodes);
  BIONAV_CHECK_GT(options_.bound_growth, 1.0);
}

void HeuristicReducedOpt::SeedCache(const Reduction& reduction,
                                    SmallTreeMask mask,
                                    const std::vector<int>& cut_supernodes,
                                    NavNodeId root) {
  auto members_of = [&](SmallTreeMask m) {
    size_t total = 0;
    for (SmallTreeMask rest = m; rest;) {
      int v = __builtin_ctz(rest);
      rest &= rest - 1;
      total += static_cast<size_t>(
          (*reduction.supernode_sizes)[static_cast<size_t>(v)]);
    }
    return total;
  };

  SmallTreeMask upper = mask;
  for (int s : cut_supernodes) {
    SmallTreeMask lower = mask & reduction.tree->SubtreeMask(s);
    upper &= ~lower;
    if (SmallTree::MaskSize(lower) >= 2) {
      cache_[reduction.tree->node(s).origin] =
          CacheEntry{reduction, lower, members_of(lower)};
    } else {
      // Single supernode: its internal structure is not in this reduction;
      // a future expansion must re-reduce, so do not cache.
      cache_.erase(reduction.tree->node(s).origin);
    }
  }
  if (SmallTree::MaskSize(upper) >= 2) {
    cache_[root] = CacheEntry{reduction, upper, members_of(upper)};
  } else {
    cache_.erase(root);
  }
}

EdgeCut HeuristicReducedOpt::ChooseEdgeCut(const ActiveTree& active,
                                           NavNodeId root) {
  static LatencyHistogram* choose_hist = GlobalMetrics().GetHistogram(
      "bionav_engine_choose_cut_us",
      "Heuristic-ReducedOpt ChooseEdgeCut end to end");
  static Counter* dp_hits = GlobalMetrics().GetCounter(
      "bionav_engine_dp_cache_hits_total",
      "EXPANDs answered from a prior reduction's memoized DP");
  static Counter* dp_misses = GlobalMetrics().GetCounter(
      "bionav_engine_dp_cache_misses_total",
      "EXPANDs that had to reduce the component from scratch");
  static Counter* fallbacks = GlobalMetrics().GetCounter(
      "bionav_engine_expand_fallback_total",
      "EXPANDs that fell back to revealing all children (no usable "
      "reduction)");
  TraceSpan choose_span("choose_cut", choose_hist);
  Timer timer;
  last_stats_ = ExpandStats{};
  int comp = active.ComponentOf(root);
  BIONAV_CHECK_EQ(active.ComponentRoot(comp), root)
      << "EXPAND must target a visible component root";
  BIONAV_CHECK_GE(active.ComponentSize(comp), 2u);

  // Fast path (Section VI-B): a previous reduction already covers this
  // component — its optimal cut is in the memoized DP.
  if (options_.reuse_dp) {
    auto it = cache_.find(root);
    if (it != cache_.end() &&
        it->second.expected_members == active.ComponentSize(comp) &&
        SmallTree::MaskSize(it->second.mask) >= 2) {
      dp_hits->Increment();
      const CacheEntry entry = it->second;  // Copy; SeedCache mutates map.
      std::vector<int> cut_supernodes;
      {
        TraceSpan opt_span("opt_edgecut", OptCutHistogram());
        cut_supernodes = entry.reduction.opt->BestCut(entry.mask);
      }
      BIONAV_CHECK(!cut_supernodes.empty());
      EdgeCut cut;
      for (int s : cut_supernodes) {
        cut.cut_children.push_back(entry.reduction.tree->node(s).origin);
      }
      SeedCache(entry.reduction, entry.mask, cut_supernodes, root);
      last_stats_.reduced_tree_size = SmallTree::MaskSize(entry.mask);
      last_stats_.cache_hit = true;
      last_stats_.elapsed_ms = timer.ElapsedMillis();
      return cut;
    }
  }

  dp_misses->Increment();
  // Small components run Opt-EdgeCut exactly (every node its own
  // supernode); larger ones are k-partition-reduced first.
  std::optional<ReducedComponent> reduced =
      ReduceComponent(active, *cost_model_, comp, options_.max_partitions);
  if (!reduced.has_value()) {
    fallbacks->Increment();
    // Pathological tie structure with no usable reduction: fall back to
    // revealing all children of the expanded node (always a valid cut).
    EdgeCut fallback;
    for (NavNodeId c : active.nav().node(root).children) {
      if (active.ComponentOf(c) == comp) fallback.cut_children.push_back(c);
    }
    BIONAV_CHECK(!fallback.empty());
    last_stats_.elapsed_ms = timer.ElapsedMillis();
    return fallback;
  }
  last_stats_.partition_rounds = reduced->partition_rounds;
  last_stats_.reduced_tree_size = reduced->tree.size();

  Reduction reduction;
  reduction.tree = std::make_shared<SmallTree>(std::move(reduced->tree));
  reduction.opt =
      std::make_shared<OptEdgeCut>(reduction.tree.get(), cost_model_);
  reduction.supernode_sizes = std::make_shared<std::vector<int>>(
      std::move(reduced->supernode_sizes));

  SmallTreeMask full = reduction.tree->FullMask();
  std::vector<int> cut_supernodes;
  {
    TraceSpan opt_span("opt_edgecut", OptCutHistogram());
    cut_supernodes = reduction.opt->BestCut(full);
  }
  BIONAV_CHECK(!cut_supernodes.empty());

  EdgeCut cut;
  cut.cut_children.reserve(cut_supernodes.size());
  for (int s : cut_supernodes) {
    cut.cut_children.push_back(reduction.tree->node(s).origin);
  }
  if (options_.reuse_dp) {
    SeedCache(reduction, full, cut_supernodes, root);
  }
  last_stats_.elapsed_ms = timer.ElapsedMillis();
  return cut;
}

}  // namespace bionav
