#ifndef BIONAV_ALGO_STATIC_NAVIGATION_H_
#define BIONAV_ALGO_STATIC_NAVIGATION_H_

#include <string>

#include "algo/expand_strategy.h"

namespace bionav {

/// The paper's static-navigation baseline (Section VIII-A): EXPAND reveals
/// *all* children of the expanded node, ranked by citation count — the
/// behaviour of GoPubMed, Amazon and the Fig 1 interface. In EdgeCut terms,
/// expanding component root n cuts every edge (n, child) inside the
/// component.
class StaticNavigationStrategy : public ExpandStrategy {
 public:
  StaticNavigationStrategy() = default;

  EdgeCut ChooseEdgeCut(const ActiveTree& active, NavNodeId root) override;

  std::string name() const override { return "Static"; }
};

/// The footnote-2 variant: reveal only the top `page_size` children (by
/// subtree citation count) per EXPAND; expanding the same node again shows
/// the next page (the "more" button, which costs an extra EXPAND action).
class RankedChildrenStrategy : public ExpandStrategy {
 public:
  explicit RankedChildrenStrategy(int page_size);

  EdgeCut ChooseEdgeCut(const ActiveTree& active, NavNodeId root) override;

  std::string name() const override;

 private:
  int page_size_;
};

}  // namespace bionav

#endif  // BIONAV_ALGO_STATIC_NAVIGATION_H_
