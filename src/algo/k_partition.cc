#include "algo/k_partition.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"

namespace bionav {

std::vector<TreePartition> KPartitionComponent(const ActiveTree& active,
                                               int component,
                                               double max_weight) {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_engine_k_partition_us",
      "One k-partition pass over a component (paper Fig 10 stage)");
  TraceSpan span("k_partition", hist);
  const NavigationTree& nav = active.nav();
  std::vector<NavNodeId> members = active.ComponentMembers(component);
  BIONAV_CHECK(!members.empty());
  const NavNodeId comp_root = members[0];

  std::unordered_map<NavNodeId, int> local;
  local.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    local.emplace(members[i], static_cast<int>(i));
  }

  const size_t n = members.size();
  std::vector<double> acc(n);
  std::vector<std::vector<int>> attached_children(n);
  std::vector<int> part_of(n, -1);
  std::vector<TreePartition> partitions;

  auto detach_subtree = [&](int child_local) {
    TreePartition part;
    part.root = members[static_cast<size_t>(child_local)];
    NavNodeId end = nav.SubtreeEnd(part.root);
    for (NavNodeId id = part.root; id < end; ++id) {
      if (active.ComponentOf(id) != component) continue;
      auto it = local.find(id);
      BIONAV_CHECK(it != local.end());
      if (part_of[static_cast<size_t>(it->second)] != -1) continue;
      part_of[static_cast<size_t>(it->second)] =
          static_cast<int>(partitions.size());
      part.members.push_back(id);
      part.weight += nav.attached_count(id);
    }
    partitions.push_back(std::move(part));
  };

  // Reverse pre-order = children before parents.
  for (size_t i = n; i-- > 0;) {
    NavNodeId v = members[i];
    acc[i] = nav.attached_count(v);
    for (int c : attached_children[i]) acc[i] += acc[static_cast<size_t>(c)];

    // Detach heaviest remaining children until the bound holds (or no
    // children remain; a single overweight node is an unavoidable
    // overweight partition root).
    while (acc[i] > max_weight && !attached_children[i].empty()) {
      auto heaviest = std::max_element(
          attached_children[i].begin(), attached_children[i].end(),
          [&](int a, int b) {
            return acc[static_cast<size_t>(a)] < acc[static_cast<size_t>(b)];
          });
      int child_local = *heaviest;
      attached_children[i].erase(heaviest);
      acc[i] -= acc[static_cast<size_t>(child_local)];
      detach_subtree(child_local);
    }

    if (v != comp_root) {
      auto it = local.find(nav.parent(v));
      BIONAV_CHECK(it != local.end())
          << "component members must be up-closed toward the root";
      attached_children[static_cast<size_t>(it->second)].push_back(
          static_cast<int>(i));
    }
  }

  // Remainder rooted at the component root.
  detach_subtree(0);

  // Pre-order by partition root so the reduced tree can be built directly.
  std::sort(partitions.begin(), partitions.end(),
            [](const TreePartition& a, const TreePartition& b) {
              return a.root < b.root;
            });
  return partitions;
}

}  // namespace bionav
