#include "algo/exhaustive_strategy.h"

#include <algorithm>

#include "algo/exhaustive.h"
#include "algo/k_partition.h"
#include "algo/reduced_tree.h"
#include "algo/small_tree.h"
#include "util/timer.h"

namespace bionav {

ExhaustiveReducedStrategy::ExhaustiveReducedStrategy(
    const CostModel* cost_model, int max_partitions)
    : cost_model_(cost_model), max_partitions_(max_partitions) {
  BIONAV_CHECK(cost_model != nullptr);
  BIONAV_CHECK_GE(max_partitions, 2);
  BIONAV_CHECK_LE(max_partitions, kMaxSmallTreeNodes);
}

EdgeCut ExhaustiveReducedStrategy::ChooseEdgeCut(const ActiveTree& active,
                                                 NavNodeId root) {
  Timer timer;
  last_stats_ = ExpandStats{};
  int comp = active.ComponentOf(root);
  BIONAV_CHECK_EQ(active.ComponentRoot(comp), root);
  BIONAV_CHECK_GE(active.ComponentSize(comp), 2u);

  std::optional<ReducedComponent> reduced =
      ReduceComponent(active, *cost_model_, comp, max_partitions_);
  if (!reduced.has_value()) {
    EdgeCut fallback;
    active.nav().ForEachChild(root, [&](NavNodeId c) {
      if (active.ComponentOf(c) == comp) fallback.cut_children.push_back(c);
    });
    BIONAV_CHECK(!fallback.empty());
    last_stats_.elapsed_ms = timer.ElapsedMillis();
    return fallback;
  }
  last_stats_.partition_rounds = reduced->partition_rounds;
  last_stats_.reduced_tree_size = reduced->tree.size();

  ExhaustiveOptResult best = OptimalExhaustiveCut(reduced->tree);
  EdgeCut cut;
  cut.cut_children.reserve(best.cut.size());
  for (int s : best.cut) {
    cut.cut_children.push_back(reduced->tree.node(s).origin);
  }
  last_stats_.elapsed_ms = timer.ElapsedMillis();
  return cut;
}

}  // namespace bionav
