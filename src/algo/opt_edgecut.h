#ifndef BIONAV_ALGO_OPT_EDGECUT_H_
#define BIONAV_ALGO_OPT_EDGECUT_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "algo/small_tree.h"
#include "core/cost_model.h"

namespace bionav {

/// The paper's Opt-EdgeCut (Section VI-A): computes, for every reachable
/// component subtree of a small tree, the minimum expected TOPDOWN
/// navigation cost and the EdgeCut achieving it. Exponential in the tree
/// size (Theorem 1 shows the underlying decision problem is NP-complete),
/// feasible for trees of <= kMaxSmallTreeNodes nodes; Heuristic-ReducedOpt
/// runs it on the k-partition-reduced tree.
///
/// Components are encoded as bitmasks over SmallTree nodes. Because nodes
/// are stored in pre-order and components are up-closed toward their root,
/// a component's root is its mask's lowest set bit, so the mask alone keys
/// the dynamic-programming memo.
class OptEdgeCut {
 public:
  OptEdgeCut(const SmallTree* tree, const CostModel* cost_model);
  ~OptEdgeCut();

  OptEdgeCut(const OptEdgeCut&) = delete;
  OptEdgeCut& operator=(const OptEdgeCut&) = delete;

  /// Memo entry for one component.
  ///
  /// `cost` is the *conditional* expected cost — the cost of exploring the
  /// component given that the user chose to explore it. In the expand
  /// branch, each created component's cost is weighted by its EXPLORE
  /// probability *relative to the expanded component* (w(I')/w(I)), so
  /// that a node's eventual exploration probability telescopes to
  /// w(node-region)/w(initial tree) regardless of how many EXPANDs deep it
  /// is revealed. (The paper's recursive formula is ambiguous about the
  /// normalization; the global-Z reading double-discounts deferred reveals
  /// and degenerates into single-edge chain cuts, contradicting the
  /// paper's own examples — see DESIGN.md.)
  struct Entry {
    /// Conditional expected cost of exploring the component.
    double cost = 0;
    /// Value of the EXPAND branch under the best cut (the minimized
    /// bracketed term), meaningful when best_cut != 0.
    double best_expand_cost = 0;
    /// Argmin valid EdgeCut (mask of cut children); 0 for singletons.
    SmallTreeMask best_cut = 0;
    /// Distinct citations in the component, |L(I(n))|.
    int distinct = 0;
    /// Sum of member EXPLORE weights (w = |L|^2/|LT| summed).
    double weight = 0;
    /// Global explore probability, weight / Z (informational).
    double explore_prob = 0;
    double expand_prob = 0;
  };

  /// Computes (memoized) the entry for a component mask. The mask must be
  /// non-empty and a valid component: up-closed toward its lowest bit.
  const Entry& ComputeEntry(SmallTreeMask mask);

  /// Conditional expected cost of exploring the component `mask`.
  double ComponentCost(SmallTreeMask mask) {
    return ComputeEntry(mask).cost;
  }

  /// Unconditional expected cost: conditional cost times the component's
  /// global EXPLORE probability (weight / Z).
  double UnconditionalCost(SmallTreeMask mask) {
    const Entry& e = ComputeEntry(mask);
    return e.explore_prob * e.cost;
  }

  /// Best EdgeCut for an EXPAND of component `mask`, as SmallTree node ids.
  /// Non-empty whenever the component has >= 2 nodes (an EXPAND requested
  /// by the user must reveal something even if the model's EXPAND
  /// probability is 0).
  std::vector<int> BestCut(SmallTreeMask mask);

  /// Number of memoized components (exposed for complexity tests).
  size_t memo_size() const { return entries_.size(); }

  const SmallTree& tree() const { return *tree_; }

 private:
  /// All valid cut masks (non-empty antichains excluding the root) for the
  /// component `mask` rooted at `root`.
  std::vector<SmallTreeMask> EnumerateCuts(int root, SmallTreeMask mask) const;

  /// Product of child options for the subtree of `v` restricted to `mask`;
  /// includes the empty mask.
  void Combos(int v, SmallTreeMask mask,
              std::vector<SmallTreeMask>* out) const;

  // The DP memo is the dominant lookup cost of the whole EXPAND hot path,
  // so instead of std::unordered_map (per-node allocation, pointer-chasing
  // buckets) it is a flat open-addressing table: linear probing over
  // power-of-two capacity at a controlled load factor, keyed directly by
  // the component mask (never 0, so 0 marks an empty slot). Entries live in
  // a deque so the references ComputeEntry hands out stay stable across
  // table growth, matching the unordered_map guarantee.
  struct Slot {
    SmallTreeMask mask = 0;       // 0 = empty slot.
    uint32_t entry_index = 0;     // Into entries_, valid when mask != 0.
  };

  /// Memoized entry for `mask`, or nullptr.
  const Entry* FindMemo(SmallTreeMask mask) const;

  /// Records `entry` for `mask` (which must not be present) and returns the
  /// stable stored reference. Grows the table at 70% load.
  const Entry& InsertMemo(SmallTreeMask mask, const Entry& entry);

  size_t SlotIndex(SmallTreeMask mask) const {
    // Fibonacci hashing: multiply spreads the low-entropy masks, the shift
    // keeps the top bits that the multiply mixed best.
    return static_cast<size_t>((mask * UINT32_C(2654435769)) >> shift_);
  }

  const SmallTree* tree_;
  const CostModel* cost_model_;
  std::vector<Slot> slots_;
  std::deque<Entry> entries_;
  int shift_ = 0;  // 32 - log2(slots_.size()).
  // Memo traffic, kept as plain ints because one OptEdgeCut is only ever
  // driven from a single thread (per-reduction object); the destructor
  // flushes them to the global metrics in one shot so the exponential DP
  // never touches an atomic.
  int64_t memo_hits_ = 0;
  int64_t memo_misses_ = 0;
};

}  // namespace bionav

#endif  // BIONAV_ALGO_OPT_EDGECUT_H_
