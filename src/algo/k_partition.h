#ifndef BIONAV_ALGO_K_PARTITION_H_
#define BIONAV_ALGO_K_PARTITION_H_

#include <vector>

#include "core/active_tree.h"
#include "core/navigation_tree.h"

namespace bionav {

/// One partition (supernode) of a tree partitioning: a connected subtree of
/// the component, identified by its root; `members` are in pre-order and
/// always include the root.
struct TreePartition {
  NavNodeId root = kInvalidNavNode;
  std::vector<NavNodeId> members;
  /// Sum of node weights (|L(n)|) of the members.
  int64_t weight = 0;
};

/// Bottom-up tree partitioning (the paper's adaptation of the Kundu-Misra
/// partition algorithm [11]): processes the component post-order, and while
/// a node's accumulated subtree weight exceeds `max_weight`, detaches its
/// heaviest remaining child subtree as a partition. Node weight is the
/// node's attached citation count |L(n)| (paper Section VI-B). Produces a
/// minimum-cardinality partitioning into connected subtrees each of weight
/// <= max_weight, except that partitions whose root alone outweighs the
/// bound are unavoidable singletons-or-heavier.
///
/// `component` selects which active-tree component to partition; the
/// partitioning covers exactly its members.
std::vector<TreePartition> KPartitionComponent(const ActiveTree& active,
                                               int component,
                                               double max_weight);

}  // namespace bionav

#endif  // BIONAV_ALGO_K_PARTITION_H_
