#ifndef BIONAV_ALGO_REDUCED_TREE_H_
#define BIONAV_ALGO_REDUCED_TREE_H_

#include <optional>
#include <vector>

#include "algo/k_partition.h"
#include "algo/small_tree.h"
#include "core/cost_model.h"

namespace bionav {

/// Builds the reduced tree T_R(I(n)) (paper Section VI-A, end): one
/// SmallTree supernode per partition, supernode edges induced by the
/// navigation-tree edges that cross partitions. Each supernode aggregates
/// its members' citation sets and EXPLORE weights; its `origin` is the
/// partition root, so a cut of the reduced edge above it maps back to the
/// navigation-tree edge (parent(root), root).
///
/// `partitions` must come from KPartitionComponent (pre-order by partition
/// root, first partition containing the component root).
SmallTree BuildReducedTree(const ActiveTree& active,
                           const CostModel& cost_model,
                           const std::vector<TreePartition>& partitions);

/// A component reduced to a small supernode tree, ready for Opt-EdgeCut.
struct ReducedComponent {
  SmallTree tree;
  /// Navigation-node count per supernode (index = SmallTree node id).
  std::vector<int> supernode_sizes;
  /// k-partition invocations performed.
  int partition_rounds = 0;
};

/// The full reduction step of Heuristic-ReducedOpt (paper Section VI-B):
/// components small enough become literal SmallTrees; larger ones are
/// k-partitioned with bound B = W/K, growing B until at most
/// `max_partitions` partitions result. Because the partition count can
/// jump past the [2, K] window when many detachment thresholds coincide
/// (e.g. a bushy node with equal-weight children), an overshoot triggers a
/// binary search for a usable bound; returns nullopt in the pathological
/// case where no bound yields between 2 and kMaxSmallTreeNodes partitions
/// (callers fall back to an all-children cut).
std::optional<ReducedComponent> ReduceComponent(const ActiveTree& active,
                                                const CostModel& cost_model,
                                                int component,
                                                int max_partitions);

}  // namespace bionav

#endif  // BIONAV_ALGO_REDUCED_TREE_H_
