#ifndef BIONAV_ALGO_GREEDY_EDGECUT_H_
#define BIONAV_ALGO_GREEDY_EDGECUT_H_

#include <string>

#include "algo/expand_strategy.h"

namespace bionav {

/// Ablation strategy: greedy local search over EdgeCuts with a myopic
/// (one-level) cost estimate instead of the recursive Opt-EdgeCut DP.
/// Starts from the all-children cut and repeatedly applies the best
/// improving move — pushing a cut edge one level down (replace a cut node
/// by its children) or retracting one (merge a cut node back into the
/// upper component) — until a local optimum. Serves as the "is the reduced
/// DP worth it" comparison point for DESIGN.md's Ablation benches.
class GreedyEdgeCutStrategy : public ExpandStrategy {
 public:
  explicit GreedyEdgeCutStrategy(const CostModel* cost_model,
                                 int max_iterations = 64);

  EdgeCut ChooseEdgeCut(const ActiveTree& active, NavNodeId root) override;

  std::string name() const override { return "Greedy-EdgeCut"; }

 private:
  const CostModel* cost_model_;
  int max_iterations_;
};

}  // namespace bionav

#endif  // BIONAV_ALGO_GREEDY_EDGECUT_H_
