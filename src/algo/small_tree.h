#ifndef BIONAV_ALGO_SMALL_TREE_H_
#define BIONAV_ALGO_SMALL_TREE_H_

#include <cstdint>
#include <vector>

#include "core/active_tree.h"
#include "core/cost_model.h"
#include "core/navigation_tree.h"
#include "util/bitset.h"

namespace bionav {

/// Bitmask over SmallTree nodes. SmallTree is capped at 20 nodes so that
/// Opt-EdgeCut's component DP can key its memo table on a 32-bit mask.
using SmallTreeMask = uint32_t;

/// Maximum node count Opt-EdgeCut will accept. The paper runs the optimal
/// algorithm on reduced trees of <= 10 supernodes; 20 leaves generous
/// headroom for the ablations while keeping the DP tractable.
inline constexpr int kMaxSmallTreeNodes = 20;

/// A small rooted tree on which Opt-EdgeCut operates: either a literal
/// component subtree of the navigation tree (every node one concept) or the
/// reduced tree T_R(I(n)) of supernodes produced by the k-partition. Nodes
/// are stored in pre-order (node 0 is the root), so the subtree of node i is
/// a contiguous id range and a component's root is its mask's lowest bit.
class SmallTree {
 public:
  struct Node {
    int parent = -1;
    std::vector<int> children;
    /// Union of the citations attached to the (super)node's members.
    DynamicBitset results;
    /// Distinct citation count of `results`, cached.
    int distinct = 0;
    /// Sum of unnormalized EXPLORE weights of the members.
    double explore_weight = 0;
    /// Navigation-tree node this (super)node maps back to: the supernode's
    /// partition root, or the node itself for literal trees. Cutting the
    /// SmallTree edge above this node corresponds to cutting the navigation
    /// tree edge above `origin`.
    NavNodeId origin = kInvalidNavNode;
  };

  /// `nodes[0]` must be the root; `nodes` must be in pre-order.
  explicit SmallTree(std::vector<Node> nodes);

  int size() const { return static_cast<int>(nodes_.size()); }
  const Node& node(int i) const {
    BIONAV_CHECK_GE(i, 0);
    BIONAV_CHECK_LT(i, size());
    return nodes_[static_cast<size_t>(i)];
  }

  /// Mask with every node set.
  SmallTreeMask FullMask() const {
    return size() == 32 ? ~SmallTreeMask{0}
                        : ((SmallTreeMask{1} << size()) - 1);
  }

  /// Mask of the full subtree rooted at node i (w.r.t. the whole tree).
  SmallTreeMask SubtreeMask(int i) const {
    BIONAV_CHECK_GE(i, 0);
    BIONAV_CHECK_LT(i, size());
    return subtree_masks_[static_cast<size_t>(i)];
  }

  /// Lowest set bit = the root of a component mask (pre-order storage).
  static int MaskRoot(SmallTreeMask mask) {
    BIONAV_CHECK_NE(mask, 0u);
    return __builtin_ctz(mask);
  }

  static int MaskSize(SmallTreeMask mask) { return __builtin_popcount(mask); }

 private:
  std::vector<Node> nodes_;
  std::vector<SmallTreeMask> subtree_masks_;
};

/// Builds a literal SmallTree from one component of the active tree (each
/// member becomes one SmallTree node). Requires the component to have at
/// most kMaxSmallTreeNodes members.
SmallTree SmallTreeFromComponent(const ActiveTree& active,
                                 const CostModel& cost_model, int component);

}  // namespace bionav

#endif  // BIONAV_ALGO_SMALL_TREE_H_
