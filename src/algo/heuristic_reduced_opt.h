#ifndef BIONAV_ALGO_HEURISTIC_REDUCED_OPT_H_
#define BIONAV_ALGO_HEURISTIC_REDUCED_OPT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algo/expand_strategy.h"
#include "algo/opt_edgecut.h"
#include "algo/small_tree.h"

namespace bionav {

/// Options for Heuristic-ReducedOpt (paper Section VI-B).
struct HeuristicReducedOptOptions {
  /// Maximum reduced-tree size K on which Opt-EdgeCut runs in real time.
  /// The paper uses K = 10.
  int max_partitions = 10;
  /// Multiplicative growth of the k-partition weight bound B between
  /// rounds ("gradually increasing B until <= K partitions are obtained").
  double bound_growth = 1.3;
  /// Section VI-B remark: once Opt-EdgeCut has run on a reduced tree, the
  /// optimal cuts of every component it can create are already in the DP
  /// memo, so expansions of those components can be answered from the
  /// cache instead of re-reducing. Cached answers keep supernode
  /// granularity (coarser than a fresh k-partition of the smaller
  /// component) — the speed/quality trade-off Ablation E measures. When a
  /// cached component bottoms out at a single supernode, the strategy
  /// falls back to a fresh reduction of its contents.
  bool reuse_dp = false;
  /// Cross-EXPAND incremental engine: memoize the chosen cut per component
  /// shape and replay it whenever the exact component recurs (deep
  /// sessions revisit shapes via BACKTRACK and sibling expansions). Unlike
  /// `reuse_dp`, replayed answers are bit-identical to a from-scratch
  /// recompute — ChooseEdgeCut is a pure function of the component member
  /// set, and memo entries self-validate against the live active tree (see
  /// DESIGN.md "Incremental navigation engine"), so no event-driven
  /// invalidation is needed and BACKTRACK restores prior state for free.
  /// Ignored while `reuse_dp` is on (that path intentionally changes cuts).
  bool incremental = true;
  /// Entry cap for the incremental memo; exceeding it clears the memo
  /// (correctness is unaffected — entries are a pure cache).
  size_t incremental_max_entries = 4096;
};

/// Per-session incremental EXPAND state (owned by the strategy instance,
/// which NavigationSession owns): memoized cuts keyed by component shape.
/// A component of the active tree is identified up to byte-identity by
/// (root, member count, holes): members are exactly subtree(root) minus the
/// subtrees of the recorded holes (topmost non-member nodes), so an entry
/// is valid iff every hole still lies outside the component. Validation is
/// O(holes); intact components (no holes) validate by size alone.
struct IncrementalState {
  struct Entry {
    /// Topmost nodes of subtree(root) that were NOT component members when
    /// the cut was computed (pre-order, disjoint subtrees). Empty = the
    /// component was the full navigation subtree of its root.
    std::vector<NavNodeId> holes;
    /// The memoized answer, byte-identical to a fresh recompute.
    EdgeCut cut;
    /// Stats of the original computation, replayed into ExpandStats.
    int reduced_tree_size = 0;
    int partition_rounds = 0;
  };
  /// Keyed by (root << 32) | member_count, so several generations of the
  /// same root (different depths of the session) coexist.
  std::unordered_map<uint64_t, Entry> memo;

  static uint64_t Key(NavNodeId root, size_t members) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(root)) << 32) |
           static_cast<uint32_t>(members);
  }

  size_t size() const { return memo.size(); }
  void Clear() { memo.clear(); }
};

/// The BioNav expansion policy: reduce the expanded component to at most K
/// supernodes with the k-partition algorithm (weight bound B = W(T)/K,
/// grown until the partition count fits), run Opt-EdgeCut on the reduced
/// tree, and map the optimal reduced cut back to navigation-tree edges.
class HeuristicReducedOpt : public ExpandStrategy {
 public:
  HeuristicReducedOpt(const CostModel* cost_model,
                      HeuristicReducedOptOptions options =
                          HeuristicReducedOptOptions());

  EdgeCut ChooseEdgeCut(const ActiveTree& active, NavNodeId root) override;

  std::string name() const override { return "Heuristic-ReducedOpt"; }

  const HeuristicReducedOptOptions& options() const { return options_; }

  /// Drops all cached reductions (e.g. after a BACKTRACK invalidates the
  /// recorded component shapes). Cache misses are always safe; this only
  /// exists to release memory deterministically.
  void ClearCache() {
    cache_.clear();
    incremental_.Clear();
  }

  /// Number of component entries currently cached (testing/metrics).
  size_t cache_size() const { return cache_.size(); }

  /// The per-session incremental memo (testing/metrics).
  const IncrementalState& incremental_state() const { return incremental_; }

 private:
  /// A reduction shared by all components the reduced tree can create.
  struct Reduction {
    std::shared_ptr<SmallTree> tree;
    std::shared_ptr<OptEdgeCut> opt;
    /// Navigation-tree member count per supernode (for cache validation).
    std::shared_ptr<std::vector<int>> supernode_sizes;
  };
  struct CacheEntry {
    Reduction reduction;
    SmallTreeMask mask = 0;
    size_t expected_members = 0;
  };

  /// Registers the components created by cutting `cut_supernodes` out of
  /// (reduction, mask) so later expansions can reuse the DP.
  void SeedCache(const Reduction& reduction, SmallTreeMask mask,
                 const std::vector<int>& cut_supernodes, NavNodeId root);

  const CostModel* cost_model_;
  HeuristicReducedOptOptions options_;
  std::unordered_map<NavNodeId, CacheEntry> cache_;
  IncrementalState incremental_;
};

}  // namespace bionav

#endif  // BIONAV_ALGO_HEURISTIC_REDUCED_OPT_H_
