#ifndef BIONAV_ALGO_HEURISTIC_REDUCED_OPT_H_
#define BIONAV_ALGO_HEURISTIC_REDUCED_OPT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "algo/expand_strategy.h"
#include "algo/opt_edgecut.h"
#include "algo/small_tree.h"

namespace bionav {

/// Options for Heuristic-ReducedOpt (paper Section VI-B).
struct HeuristicReducedOptOptions {
  /// Maximum reduced-tree size K on which Opt-EdgeCut runs in real time.
  /// The paper uses K = 10.
  int max_partitions = 10;
  /// Multiplicative growth of the k-partition weight bound B between
  /// rounds ("gradually increasing B until <= K partitions are obtained").
  double bound_growth = 1.3;
  /// Section VI-B remark: once Opt-EdgeCut has run on a reduced tree, the
  /// optimal cuts of every component it can create are already in the DP
  /// memo, so expansions of those components can be answered from the
  /// cache instead of re-reducing. Cached answers keep supernode
  /// granularity (coarser than a fresh k-partition of the smaller
  /// component) — the speed/quality trade-off Ablation E measures. When a
  /// cached component bottoms out at a single supernode, the strategy
  /// falls back to a fresh reduction of its contents.
  bool reuse_dp = false;
};

/// The BioNav expansion policy: reduce the expanded component to at most K
/// supernodes with the k-partition algorithm (weight bound B = W(T)/K,
/// grown until the partition count fits), run Opt-EdgeCut on the reduced
/// tree, and map the optimal reduced cut back to navigation-tree edges.
class HeuristicReducedOpt : public ExpandStrategy {
 public:
  HeuristicReducedOpt(const CostModel* cost_model,
                      HeuristicReducedOptOptions options =
                          HeuristicReducedOptOptions());

  EdgeCut ChooseEdgeCut(const ActiveTree& active, NavNodeId root) override;

  std::string name() const override { return "Heuristic-ReducedOpt"; }

  const HeuristicReducedOptOptions& options() const { return options_; }

  /// Drops all cached reductions (e.g. after a BACKTRACK invalidates the
  /// recorded component shapes). Cache misses are always safe; this only
  /// exists to release memory deterministically.
  void ClearCache() { cache_.clear(); }

  /// Number of component entries currently cached (testing/metrics).
  size_t cache_size() const { return cache_.size(); }

 private:
  /// A reduction shared by all components the reduced tree can create.
  struct Reduction {
    std::shared_ptr<SmallTree> tree;
    std::shared_ptr<OptEdgeCut> opt;
    /// Navigation-tree member count per supernode (for cache validation).
    std::shared_ptr<std::vector<int>> supernode_sizes;
  };
  struct CacheEntry {
    Reduction reduction;
    SmallTreeMask mask = 0;
    size_t expected_members = 0;
  };

  /// Registers the components created by cutting `cut_supernodes` out of
  /// (reduction, mask) so later expansions can reuse the DP.
  void SeedCache(const Reduction& reduction, SmallTreeMask mask,
                 const std::vector<int>& cut_supernodes, NavNodeId root);

  const CostModel* cost_model_;
  HeuristicReducedOptOptions options_;
  std::unordered_map<NavNodeId, CacheEntry> cache_;
};

}  // namespace bionav

#endif  // BIONAV_ALGO_HEURISTIC_REDUCED_OPT_H_
