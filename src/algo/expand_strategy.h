#ifndef BIONAV_ALGO_EXPAND_STRATEGY_H_
#define BIONAV_ALGO_EXPAND_STRATEGY_H_

#include <string>

#include "core/active_tree.h"
#include "core/cost_model.h"

namespace bionav {

/// Statistics for one ChooseEdgeCut invocation — what the paper reports in
/// Figs 10/11 (per-EXPAND execution time, reduced-tree size).
struct ExpandStats {
  double elapsed_ms = 0;
  /// Reduced-tree node count (Heuristic-ReducedOpt) or 0 if not applicable.
  int reduced_tree_size = 0;
  /// Number of k-partition invocations (B growth rounds); 0 if n/a.
  int partition_rounds = 0;
  /// True when the cut was answered from a cached Opt-EdgeCut DP
  /// (HeuristicReducedOptOptions::reuse_dp).
  bool cache_hit = false;
  /// True when the cut was answered from the bit-identical incremental
  /// memo (HeuristicReducedOptOptions::incremental) without recomputing.
  bool incremental_hit = false;
};

/// Interface of a node-expansion policy: given the active tree and the root
/// of the component the user clicked, decide the EdgeCut that the EXPAND
/// performs. Implementations: Heuristic-ReducedOpt (BioNav), static
/// all-children (GoPubMed-like), ranked-children + "more", greedy (ablation).
class ExpandStrategy {
 public:
  virtual ~ExpandStrategy() = default;

  /// Returns a non-empty valid EdgeCut for the component rooted at `root`.
  /// Requires the component to have at least 2 members.
  virtual EdgeCut ChooseEdgeCut(const ActiveTree& active, NavNodeId root) = 0;

  /// Human-readable strategy name for reports.
  virtual std::string name() const = 0;

  /// Statistics of the most recent ChooseEdgeCut call.
  const ExpandStats& last_stats() const { return last_stats_; }

 protected:
  ExpandStats last_stats_;
};

}  // namespace bionav

#endif  // BIONAV_ALGO_EXPAND_STRATEGY_H_
