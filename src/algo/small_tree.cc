#include "algo/small_tree.h"

#include <unordered_map>

namespace bionav {

SmallTree::SmallTree(std::vector<Node> nodes) : nodes_(std::move(nodes)) {
  BIONAV_CHECK(!nodes_.empty());
  BIONAV_CHECK_LE(static_cast<int>(nodes_.size()), kMaxSmallTreeNodes);
  BIONAV_CHECK_EQ(nodes_[0].parent, -1);

  // Rebuild children lists from parents and verify pre-order storage
  // (every node's parent precedes it).
  for (auto& n : nodes_) n.children.clear();
  for (size_t i = 1; i < nodes_.size(); ++i) {
    int p = nodes_[i].parent;
    BIONAV_CHECK_GE(p, 0);
    BIONAV_CHECK_LT(p, static_cast<int>(i));
    nodes_[static_cast<size_t>(p)].children.push_back(static_cast<int>(i));
  }

  subtree_masks_.assign(nodes_.size(), 0);
  for (size_t i = nodes_.size(); i-- > 0;) {
    subtree_masks_[i] |= SmallTreeMask{1} << i;
    if (i > 0) {
      subtree_masks_[static_cast<size_t>(nodes_[i].parent)] |=
          subtree_masks_[i];
    }
  }
}

SmallTree SmallTreeFromComponent(const ActiveTree& active,
                                 const CostModel& cost_model, int component) {
  std::vector<NavNodeId> members = active.ComponentMembers(component);
  BIONAV_CHECK_LE(static_cast<int>(members.size()), kMaxSmallTreeNodes);
  BIONAV_CHECK(!members.empty());

  const NavigationTree& nav = active.nav();
  std::unordered_map<NavNodeId, int> index;
  index.reserve(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    index.emplace(members[i], static_cast<int>(i));
  }

  std::vector<SmallTree::Node> nodes(members.size());
  for (size_t i = 0; i < members.size(); ++i) {
    NavNodeId m = members[i];
    SmallTree::Node& n = nodes[i];
    n.origin = m;
    n.results = nav.results(m);
    n.distinct = nav.attached_count(m);
    n.explore_weight = cost_model.NodeExploreWeight(m);
    if (i == 0) {
      n.parent = -1;
    } else {
      // Members are up-closed toward the component root, so the navigation
      // parent of every non-root member is also a member.
      auto it = index.find(nav.parent(m));
      BIONAV_CHECK(it != index.end());
      n.parent = it->second;
    }
  }
  return SmallTree(std::move(nodes));
}

}  // namespace bionav
