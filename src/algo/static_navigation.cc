#include "algo/static_navigation.h"

#include <algorithm>

#include "util/timer.h"

namespace bionav {

EdgeCut StaticNavigationStrategy::ChooseEdgeCut(const ActiveTree& active,
                                                NavNodeId root) {
  Timer timer;
  last_stats_ = ExpandStats{};
  int comp = active.ComponentOf(root);
  BIONAV_CHECK_EQ(active.ComponentRoot(comp), root);
  EdgeCut cut;
  active.nav().ForEachChild(root, [&](NavNodeId c) {
    if (active.ComponentOf(c) == comp) cut.cut_children.push_back(c);
  });
  BIONAV_CHECK(!cut.empty())
      << "static EXPAND on a component whose root has no children in it";
  last_stats_.elapsed_ms = timer.ElapsedMillis();
  return cut;
}

RankedChildrenStrategy::RankedChildrenStrategy(int page_size)
    : page_size_(page_size) {
  BIONAV_CHECK_GE(page_size, 1);
}

std::string RankedChildrenStrategy::name() const {
  return "Ranked-Top" + std::to_string(page_size_) + "+More";
}

EdgeCut RankedChildrenStrategy::ChooseEdgeCut(const ActiveTree& active,
                                              NavNodeId root) {
  Timer timer;
  last_stats_ = ExpandStats{};
  const NavigationTree& nav = active.nav();
  int comp = active.ComponentOf(root);
  BIONAV_CHECK_EQ(active.ComponentRoot(comp), root);

  // Children of `root` still inside the component are exactly the
  // not-yet-revealed ones; rank them by subtree citation count (what the
  // interface of Fig 1 displays) and take the next page.
  std::vector<NavNodeId> candidates;
  nav.ForEachChild(root, [&](NavNodeId c) {
    if (active.ComponentOf(c) == comp) candidates.push_back(c);
  });
  BIONAV_CHECK(!candidates.empty())
      << "'more' EXPAND with no remaining children";

  std::vector<std::pair<int, NavNodeId>> ranked;
  ranked.reserve(candidates.size());
  for (NavNodeId c : candidates) {
    // Subtree restricted to the component equals the full navigation
    // subtree here (the component owns whole child subtrees of root).
    ranked.emplace_back(static_cast<int>(nav.SubtreeResults(c).Count()), c);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  EdgeCut cut;
  for (size_t i = 0;
       i < ranked.size() && i < static_cast<size_t>(page_size_); ++i) {
    cut.cut_children.push_back(ranked[i].second);
  }
  last_stats_.elapsed_ms = timer.ElapsedMillis();
  return cut;
}

}  // namespace bionav
