#include "algo/greedy_edgecut.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "util/timer.h"

namespace bionav {

namespace {

/// Per-subtree aggregates within one component, cached across moves.
struct SubtreeStats {
  int distinct = 0;
  double weight = 0;
};

class GreedyContext {
 public:
  GreedyContext(const ActiveTree& active, const CostModel& cost_model,
                NavNodeId root)
      : active_(active),
        cost_model_(cost_model),
        nav_(active.nav()),
        comp_(active.ComponentOf(root)),
        root_(root) {
    comp_distinct_ = active.ComponentDistinctCount(comp_);
    comp_weight_ = 0;
    for (NavNodeId m : active.ComponentMembers(comp_)) {
      comp_weight_ += cost_model.NodeExploreWeight(m);
    }
  }

  /// Aggregates of the full in-component subtree of `u`.
  const SubtreeStats& Stats(NavNodeId u) {
    auto it = cache_.find(u);
    if (it != cache_.end()) return it->second;
    SubtreeStats s;
    DynamicBitset acc = nav_.result().MakeBitset();
    NavNodeId end = nav_.SubtreeEnd(u);
    for (NavNodeId id = u; id < end; ++id) {
      if (active_.ComponentOf(id) != comp_) continue;
      acc.UnionWith(nav_.node(id).results);
      s.weight += cost_model_.NodeExploreWeight(id);
    }
    s.distinct = static_cast<int>(acc.Count());
    return cache_.emplace(u, s).first->second;
  }

  /// Myopic expected cost of a cut: EXPAND action + per-revealed-node cost
  /// + conditional-explore-probability-weighted SHOWRESULTS of each
  /// resulting component (no deeper lookahead). Upper-component distinct
  /// count is approximated by the component total (cheap upper bound;
  /// consistent across candidate cuts).
  double Evaluate(const std::vector<NavNodeId>& cut) {
    const CostModelParams& p = cost_model_.params();
    auto cond = [&](double w) {
      return comp_weight_ > 0 ? w / comp_weight_ : 0.0;
    };
    double value = p.expand_cost;
    double lower_weight = 0;
    for (NavNodeId u : cut) {
      const SubtreeStats& s = Stats(u);
      value += p.reveal_cost + cond(s.weight) * p.show_cost * s.distinct;
      lower_weight += s.weight;
    }
    double upper_weight = comp_weight_ - lower_weight;
    value += cond(upper_weight) * p.show_cost *
             static_cast<double>(comp_distinct_);
    return value;
  }

  /// Children of `u` inside the component.
  std::vector<NavNodeId> ChildrenInComponent(NavNodeId u) const {
    std::vector<NavNodeId> out;
    for (NavNodeId c : nav_.node(u).children) {
      if (active_.ComponentOf(c) == comp_) out.push_back(c);
    }
    return out;
  }

  NavNodeId root() const { return root_; }

 private:
  const ActiveTree& active_;
  const CostModel& cost_model_;
  const NavigationTree& nav_;
  int comp_;
  NavNodeId root_;
  int comp_distinct_;
  double comp_weight_;
  std::unordered_map<NavNodeId, SubtreeStats> cache_;
};

}  // namespace

GreedyEdgeCutStrategy::GreedyEdgeCutStrategy(const CostModel* cost_model,
                                             int max_iterations)
    : cost_model_(cost_model), max_iterations_(max_iterations) {
  BIONAV_CHECK(cost_model != nullptr);
  BIONAV_CHECK_GE(max_iterations, 1);
}

EdgeCut GreedyEdgeCutStrategy::ChooseEdgeCut(const ActiveTree& active,
                                             NavNodeId root) {
  Timer timer;
  last_stats_ = ExpandStats{};
  GreedyContext ctx(active, *cost_model_, root);

  std::vector<NavNodeId> cut = ctx.ChildrenInComponent(root);
  BIONAV_CHECK(!cut.empty());
  double current = ctx.Evaluate(cut);

  for (int iter = 0; iter < max_iterations_; ++iter) {
    double best_value = current;
    std::vector<NavNodeId> best_cut;

    for (size_t i = 0; i < cut.size(); ++i) {
      // Move A: push cut edge i one level down.
      std::vector<NavNodeId> down_children =
          ctx.ChildrenInComponent(cut[i]);
      if (!down_children.empty()) {
        std::vector<NavNodeId> candidate = cut;
        candidate.erase(candidate.begin() + static_cast<long>(i));
        candidate.insert(candidate.end(), down_children.begin(),
                         down_children.end());
        double v = ctx.Evaluate(candidate);
        if (v < best_value) {
          best_value = v;
          best_cut = std::move(candidate);
        }
      }
      // Move B: retract cut edge i (keep the cut non-empty).
      if (cut.size() >= 2) {
        std::vector<NavNodeId> candidate = cut;
        candidate.erase(candidate.begin() + static_cast<long>(i));
        double v = ctx.Evaluate(candidate);
        if (v < best_value) {
          best_value = v;
          best_cut = std::move(candidate);
        }
      }
    }

    if (best_cut.empty()) break;  // Local optimum.
    cut = std::move(best_cut);
    current = best_value;
  }

  std::sort(cut.begin(), cut.end());
  EdgeCut result;
  result.cut_children = std::move(cut);
  last_stats_.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace bionav
