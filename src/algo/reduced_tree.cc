#include "algo/reduced_tree.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"

namespace bionav {

SmallTree BuildReducedTree(const ActiveTree& active,
                           const CostModel& cost_model,
                           const std::vector<TreePartition>& partitions) {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_engine_reduced_tree_us",
      "Reduced-tree (supernode) construction from a partition set");
  TraceSpan span("reduced_tree", hist);
  BIONAV_CHECK(!partitions.empty());
  BIONAV_CHECK_LE(static_cast<int>(partitions.size()), kMaxSmallTreeNodes);
  const NavigationTree& nav = active.nav();

  // Map every member to its partition index.
  std::unordered_map<NavNodeId, int> part_of;
  for (size_t p = 0; p < partitions.size(); ++p) {
    for (NavNodeId m : partitions[p].members) {
      bool inserted = part_of.emplace(m, static_cast<int>(p)).second;
      BIONAV_CHECK(inserted) << "node in two partitions";
    }
  }

  std::vector<SmallTree::Node> nodes(partitions.size());
  for (size_t p = 0; p < partitions.size(); ++p) {
    const TreePartition& part = partitions[p];
    SmallTree::Node& n = nodes[p];
    n.origin = part.root;
    n.results = nav.result().MakeBitset();
    for (NavNodeId m : part.members) {
      n.results.UnionWith(nav.results(m));
      n.explore_weight += cost_model.NodeExploreWeight(m);
    }
    n.distinct = static_cast<int>(n.results.Count());
    if (p == 0) {
      n.parent = -1;
    } else {
      auto it = part_of.find(nav.parent(part.root));
      BIONAV_CHECK(it != part_of.end())
          << "partition root's parent must belong to some partition";
      n.parent = it->second;
      BIONAV_CHECK_LT(n.parent, static_cast<int>(p))
          << "partitions must be in pre-order";
    }
  }
  return SmallTree(std::move(nodes));
}

std::optional<ReducedComponent> ReduceComponent(const ActiveTree& active,
                                                const CostModel& cost_model,
                                                int component,
                                                int max_partitions) {
  BIONAV_CHECK_GE(max_partitions, 2);
  BIONAV_CHECK_LE(max_partitions, kMaxSmallTreeNodes);
  const size_t comp_size = active.ComponentSize(component);
  BIONAV_CHECK_GE(comp_size, 2u);

  if (static_cast<int>(comp_size) <= max_partitions) {
    ReducedComponent reduced{
        SmallTreeFromComponent(active, cost_model, component),
        std::vector<int>(comp_size, 1), 0};
    return reduced;
  }

  int64_t total_weight = 0;
  if (active.ComponentIsIntact(component)) {
    // Intact component: the subtree prefix sums answer the k-partition
    // weight in O(1) instead of walking every member.
    total_weight =
        active.nav().SubtreeAttachedTotal(active.ComponentRoot(component));
  } else {
    for (NavNodeId m : active.ComponentMembers(component)) {
      total_weight += active.nav().attached_count(m);
    }
  }

  auto build = [&](std::vector<TreePartition> partitions, int rounds) {
    std::vector<int> sizes;
    sizes.reserve(partitions.size());
    for (const TreePartition& p : partitions) {
      sizes.push_back(static_cast<int>(p.members.size()));
    }
    ReducedComponent reduced{BuildReducedTree(active, cost_model, partitions),
                             std::move(sizes), rounds};
    return reduced;
  };

  // Grow B from W/K until the partition count fits.
  double bound = std::max(1.0, static_cast<double>(total_weight) /
                                   static_cast<double>(max_partitions));
  double bound_below = 0;  // Largest bound known to give > max partitions.
  int rounds = 0;
  std::vector<TreePartition> partitions;
  while (true) {
    ++rounds;
    partitions = KPartitionComponent(active, component, bound);
    if (static_cast<int>(partitions.size()) <= max_partitions) break;
    bound_below = bound;
    bound = std::max(bound * 1.3, bound + 1.0);
  }
  if (partitions.size() >= 2) return build(std::move(partitions), rounds);

  // Overshoot: the growth step skipped the whole [2, K] window (possible
  // when many detachment thresholds coincide). The partition count is
  // monotone non-increasing in the bound, so binary-search (bound_below,
  // bound) for a usable count, accepting up to kMaxSmallTreeNodes.
  double lo = bound_below;
  double hi = bound;
  std::optional<ReducedComponent> best;
  for (int iter = 0; iter < 48 && hi - lo > 1e-9; ++iter) {
    double mid = (lo + hi) / 2;
    ++rounds;
    std::vector<TreePartition> mid_parts =
        KPartitionComponent(active, component, mid);
    int count = static_cast<int>(mid_parts.size());
    if (count > kMaxSmallTreeNodes) {
      lo = mid;
    } else if (count == 1) {
      hi = mid;
    } else {
      best = build(std::move(mid_parts), rounds);
      if (count <= max_partitions) break;  // Preferred window reached.
      lo = mid;  // Usable, but try to shrink toward <= K supernodes.
    }
  }
  return best;
}

}  // namespace bionav
