#include "algo/opt_edgecut.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace bionav {

OptEdgeCut::OptEdgeCut(const SmallTree* tree, const CostModel* cost_model)
    : tree_(tree), cost_model_(cost_model) {
  BIONAV_CHECK(tree != nullptr);
  BIONAV_CHECK(cost_model != nullptr);
  slots_.resize(256);
  shift_ = 32 - 8;
}

OptEdgeCut::~OptEdgeCut() {
  if (memo_hits_ == 0 && memo_misses_ == 0) return;
  static Counter* hits = GlobalMetrics().GetCounter(
      "bionav_optcut_memo_hits_total", "Opt-EdgeCut DP memo lookups served");
  static Counter* misses = GlobalMetrics().GetCounter(
      "bionav_optcut_memo_misses_total",
      "Opt-EdgeCut DP components computed from scratch");
  hits->Increment(memo_hits_);
  misses->Increment(memo_misses_);
}

const OptEdgeCut::Entry* OptEdgeCut::FindMemo(SmallTreeMask mask) const {
  size_t i = SlotIndex(mask);
  const size_t cap_mask = slots_.size() - 1;
  while (slots_[i].mask != 0) {
    if (slots_[i].mask == mask) return &entries_[slots_[i].entry_index];
    i = (i + 1) & cap_mask;
  }
  return nullptr;
}

const OptEdgeCut::Entry& OptEdgeCut::InsertMemo(SmallTreeMask mask,
                                                const Entry& entry) {
  BIONAV_CHECK_NE(mask, 0u);
  if ((entries_.size() + 1) * 10 > slots_.size() * 7) {  // Load > 0.7: grow.
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    --shift_;
    const size_t cap_mask = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.mask == 0) continue;
      size_t i = SlotIndex(s.mask);
      while (slots_[i].mask != 0) i = (i + 1) & cap_mask;
      slots_[i] = s;
    }
  }
  const size_t cap_mask = slots_.size() - 1;
  size_t i = SlotIndex(mask);
  while (slots_[i].mask != 0) {
    BIONAV_CHECK_NE(slots_[i].mask, mask) << "duplicate memo insert";
    i = (i + 1) & cap_mask;
  }
  slots_[i].mask = mask;
  slots_[i].entry_index = static_cast<uint32_t>(entries_.size());
  entries_.push_back(entry);
  return entries_.back();
}

void OptEdgeCut::Combos(int v, SmallTreeMask mask,
                        std::vector<SmallTreeMask>* out) const {
  out->clear();
  out->push_back(0);
  std::vector<SmallTreeMask> child_opts;
  std::vector<SmallTreeMask> next;
  for (int c : tree_->node(v).children) {
    if (!((mask >> c) & 1)) continue;
    Combos(c, mask, &child_opts);
    child_opts.push_back(SmallTreeMask{1} << c);  // Cut the edge above c.
    next.clear();
    next.reserve(out->size() * child_opts.size());
    for (SmallTreeMask a : *out) {
      for (SmallTreeMask b : child_opts) next.push_back(a | b);
    }
    out->swap(next);
    BIONAV_CHECK_LE(out->size(), size_t{1} << 22)
        << "EdgeCut enumeration blow-up; tree too large for Opt-EdgeCut";
  }
}

std::vector<SmallTreeMask> OptEdgeCut::EnumerateCuts(
    int root, SmallTreeMask mask) const {
  std::vector<SmallTreeMask> cuts;
  Combos(root, mask, &cuts);
  // Drop the empty cut: an EXPAND must reveal at least one concept.
  cuts.erase(std::remove(cuts.begin(), cuts.end(), SmallTreeMask{0}),
             cuts.end());
  return cuts;
}

const OptEdgeCut::Entry& OptEdgeCut::ComputeEntry(SmallTreeMask mask) {
  BIONAV_CHECK_NE(mask, 0u);
  if (const Entry* found = FindMemo(mask)) {
    ++memo_hits_;
    return *found;
  }
  ++memo_misses_;

  const int root = SmallTree::MaskRoot(mask);
  const int m = SmallTree::MaskSize(mask);
  const CostModelParams& params = cost_model_->params();

  Entry entry;

  // Aggregate component statistics.
  DynamicBitset acc = tree_->node(root).results;  // Copy.
  double weight_sum = 0;
  std::vector<int> member_counts;
  member_counts.reserve(static_cast<size_t>(m));
  for (SmallTreeMask rest = mask; rest;) {
    int v = __builtin_ctz(rest);
    rest &= rest - 1;
    if (v != root) acc.UnionWith(tree_->node(v).results);
    weight_sum += tree_->node(v).explore_weight;
    member_counts.push_back(tree_->node(v).distinct);
  }
  entry.distinct = static_cast<int>(acc.Count());
  entry.weight = weight_sum;
  entry.explore_prob = cost_model_->ExploreProbability(weight_sum);
  entry.expand_prob =
      cost_model_->ExpandProbability(entry.distinct, member_counts);

  // Conditional EXPLORE probability of a sub-component created by a cut of
  // this component: its weight relative to this component's weight.
  auto cond_prob = [&](double w) {
    if (weight_sum <= 0) return 0.0;
    double p = w / weight_sum;
    return p > 1.0 ? 1.0 : p;
  };

  if (m >= 2) {
    // Minimize the EXPAND branch over all valid cuts. The branch value is
    //   expand_cost + sum over lower roots (reveal_cost
    //                                       + P[explore lower | here]
    //                                         * cost(lower))
    //               + P[explore upper | here] * cost(shrunken upper).
    double best = std::numeric_limits<double>::infinity();
    SmallTreeMask best_cut = 0;
    for (SmallTreeMask cut : EnumerateCuts(root, mask)) {
      double value = params.expand_cost;
      SmallTreeMask upper = mask;
      for (SmallTreeMask rest = cut; rest;) {
        int u = __builtin_ctz(rest);
        rest &= rest - 1;
        SmallTreeMask lower = mask & tree_->SubtreeMask(u);
        upper &= ~lower;
        const Entry& le = ComputeEntry(lower);
        value += params.reveal_cost + cond_prob(le.weight) * le.cost;
      }
      BIONAV_CHECK_NE(upper & (SmallTreeMask{1} << root), 0u);
      const Entry& ue = ComputeEntry(upper);
      value += cond_prob(ue.weight) * ue.cost;
      if (value < best) {
        best = value;
        best_cut = cut;
      }
    }
    entry.best_expand_cost = best;
    entry.best_cut = best_cut;
    entry.cost = (1.0 - entry.expand_prob) * params.show_cost *
                     static_cast<double>(entry.distinct) +
                 entry.expand_prob * best;
  } else {
    // Singleton component: SHOWRESULTS is the only option (pX = 0).
    entry.best_expand_cost = 0;
    entry.best_cut = 0;
    entry.cost = params.show_cost * static_cast<double>(entry.distinct);
  }

  return InsertMemo(mask, entry);
}

std::vector<int> OptEdgeCut::BestCut(SmallTreeMask mask) {
  const Entry& entry = ComputeEntry(mask);
  std::vector<int> out;
  for (SmallTreeMask rest = entry.best_cut; rest;) {
    int u = __builtin_ctz(rest);
    rest &= rest - 1;
    out.push_back(u);
  }
  return out;
}

}  // namespace bionav
