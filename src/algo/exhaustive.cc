#include "algo/exhaustive.h"

#include <algorithm>
#include <limits>

#include "util/logging.h"

namespace bionav {

namespace {

/// Enumerates all valid cuts (non-empty antichains excluding the root) of
/// the full tree, via the same child-product construction Opt-EdgeCut uses.
void EnumerateAllCuts(const SmallTree& tree, int v,
                      std::vector<SmallTreeMask>* out) {
  out->clear();
  out->push_back(0);
  std::vector<SmallTreeMask> child_opts;
  std::vector<SmallTreeMask> next;
  for (int c : tree.node(v).children) {
    EnumerateAllCuts(tree, c, &child_opts);
    child_opts.push_back(SmallTreeMask{1} << c);
    next.clear();
    next.reserve(out->size() * child_opts.size());
    for (SmallTreeMask a : *out) {
      for (SmallTreeMask b : child_opts) next.push_back(a | b);
    }
    out->swap(next);
  }
}

int DistinctOfMask(const SmallTree& tree, SmallTreeMask mask) {
  DynamicBitset acc = tree.node(SmallTree::MaskRoot(mask)).results;
  for (SmallTreeMask r = mask; r;) {
    int v = __builtin_ctz(r);
    r &= r - 1;
    acc.UnionWith(tree.node(v).results);
  }
  return static_cast<int>(acc.Count());
}

}  // namespace

double TopDownExhaustiveCost(const SmallTree& tree,
                             const std::vector<int>& cut) {
  BIONAV_CHECK(!cut.empty());
  SmallTreeMask full = tree.FullMask();
  SmallTreeMask upper = full;
  double show_sum = 0;
  for (int u : cut) {
    BIONAV_CHECK_GT(u, 0);
    BIONAV_CHECK_LT(u, tree.size());
    SmallTreeMask lower = tree.SubtreeMask(u);
    BIONAV_CHECK_EQ(lower & upper, lower) << "cut is not an antichain";
    upper &= ~lower;
    show_sum += DistinctOfMask(tree, lower);
  }
  show_sum += DistinctOfMask(tree, upper);
  double k = static_cast<double>(cut.size()) + 1;  // Lowers + upper.
  return k + show_sum / k;
}

ExhaustiveOptResult OptimalExhaustiveCut(const SmallTree& tree) {
  BIONAV_CHECK_GE(tree.size(), 2);
  std::vector<SmallTreeMask> cuts;
  EnumerateAllCuts(tree, 0, &cuts);

  ExhaustiveOptResult best;
  best.cost = std::numeric_limits<double>::infinity();
  for (SmallTreeMask cut_mask : cuts) {
    if (cut_mask == 0) continue;
    std::vector<int> cut;
    for (SmallTreeMask r = cut_mask; r;) {
      cut.push_back(__builtin_ctz(r));
      r &= r - 1;
    }
    double cost = TopDownExhaustiveCost(tree, cut);
    if (cost < best.cost) {
      best.cost = cost;
      best.cut = std::move(cut);
    }
  }
  BIONAV_CHECK(!best.cut.empty());
  return best;
}

int64_t CountDuplicates(const std::vector<const std::vector<int>*>& parts,
                        int universe_size) {
  std::vector<int64_t> multiplicity(static_cast<size_t>(universe_size), 0);
  int64_t total = 0;
  for (const std::vector<int>* part : parts) {
    for (int e : *part) {
      BIONAV_CHECK_GE(e, 0);
      BIONAV_CHECK_LT(e, universe_size);
      multiplicity[static_cast<size_t>(e)]++;
      total++;
    }
  }
  int64_t distinct = 0;
  for (int64_t m : multiplicity) distinct += m > 0 ? 1 : 0;
  return total - distinct;
}

int64_t TedDuplicates(const TedInstance& instance,
                      const std::vector<int>& upper_children) {
  // Upper component: the union of the kept children (the root is empty).
  std::vector<const std::vector<int>*> upper_parts;
  std::vector<bool> in_upper(instance.node_elements.size(), false);
  for (int c : upper_children) {
    BIONAV_CHECK_GE(c, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(c), instance.node_elements.size());
    BIONAV_CHECK(!in_upper[static_cast<size_t>(c)]) << "duplicate child";
    in_upper[static_cast<size_t>(c)] = true;
    upper_parts.push_back(&instance.node_elements[static_cast<size_t>(c)]);
  }
  int64_t dup = CountDuplicates(upper_parts, instance.universe_size);
  // Lower singleton components: duplicates within one node's multiset.
  for (size_t c = 0; c < instance.node_elements.size(); ++c) {
    if (in_upper[c]) continue;
    dup += CountDuplicates({&instance.node_elements[c]},
                           instance.universe_size);
  }
  return dup;
}

int64_t TedMaxDuplicates(const TedInstance& instance, int num_components) {
  const int n = static_cast<int>(instance.node_elements.size());
  const int num_cut = num_components - 1;
  BIONAV_CHECK_GE(num_cut, 0);
  BIONAV_CHECK_LE(num_cut, n);
  BIONAV_CHECK_LE(n, 24) << "brute-force TED limited to small instances";

  int64_t best = std::numeric_limits<int64_t>::min();
  const uint32_t limit = n == 32 ? ~0u : ((1u << n) - 1);
  for (uint32_t keep = 0;; ++keep) {
    if (__builtin_popcount(keep) == n - num_cut) {
      std::vector<int> upper;
      for (int c = 0; c < n; ++c) {
        if ((keep >> c) & 1) upper.push_back(c);
      }
      best = std::max(best, TedDuplicates(instance, upper));
    }
    if (keep == limit) break;
  }
  return best;
}

bool SolveTedDecision(const TedInstance& instance, int num_components,
                      int64_t min_duplicates) {
  return TedMaxDuplicates(instance, num_components) >= min_duplicates;
}

int64_t MesObjective(const WeightedGraph& graph,
                     const std::vector<int>& subset) {
  std::vector<bool> in(static_cast<size_t>(graph.num_vertices), false);
  for (int v : subset) {
    BIONAV_CHECK_GE(v, 0);
    BIONAV_CHECK_LT(v, graph.num_vertices);
    in[static_cast<size_t>(v)] = true;
  }
  int64_t sum = 0;
  for (const WeightedGraph::Edge& e : graph.edges) {
    if (in[static_cast<size_t>(e.u)] && in[static_cast<size_t>(e.v)]) {
      sum += e.weight;
    }
  }
  return sum;
}

int64_t MesMaxBruteForce(const WeightedGraph& graph, int subset_size) {
  const int n = graph.num_vertices;
  BIONAV_CHECK_GE(subset_size, 0);
  BIONAV_CHECK_LE(subset_size, n);
  BIONAV_CHECK_LE(n, 24) << "brute-force MES limited to small graphs";
  int64_t best = std::numeric_limits<int64_t>::min();
  const uint32_t limit = (1u << n) - 1;
  for (uint32_t s = 0;; ++s) {
    if (__builtin_popcount(s) == subset_size) {
      std::vector<int> subset;
      for (int v = 0; v < n; ++v) {
        if ((s >> v) & 1) subset.push_back(v);
      }
      best = std::max(best, MesObjective(graph, subset));
    }
    if (s == limit) break;
  }
  return best;
}

bool SolveMesDecision(const WeightedGraph& graph, int subset_size,
                      int64_t min_weight) {
  return MesMaxBruteForce(graph, subset_size) >= min_weight;
}

TedInstance ReduceMesToTed(const WeightedGraph& graph) {
  TedInstance instance;
  instance.node_elements.resize(static_cast<size_t>(graph.num_vertices));
  int next_element = 0;
  for (const WeightedGraph::Edge& e : graph.edges) {
    BIONAV_CHECK_NE(e.u, e.v) << "self-loops are not MES edges";
    BIONAV_CHECK_GE(e.weight, 0);
    for (int64_t i = 0; i < e.weight; ++i) {
      instance.node_elements[static_cast<size_t>(e.u)].push_back(
          next_element);
      instance.node_elements[static_cast<size_t>(e.v)].push_back(
          next_element);
      next_element++;
    }
  }
  instance.universe_size = next_element;
  return instance;
}

}  // namespace bionav
