#ifndef BIONAV_ALGO_EXHAUSTIVE_H_
#define BIONAV_ALGO_EXHAUSTIVE_H_

#include <cstdint>
#include <vector>

#include "algo/small_tree.h"

namespace bionav {

/// Section V of the paper proves NP-completeness of optimal EdgeCut
/// selection for the simplified TOPDOWN-EXHAUSTIVE navigation model: BioNav
/// performs ONE EdgeCut on the root component, the user reads the labels of
/// all revealed component roots, picks one component uniformly at random
/// and performs SHOWRESULTS. This module implements that model, the TED
/// decision problem, the MAXIMUM EDGE SUBGRAPH (MES) decision problem, and
/// the Theorem 1 reduction MES -> TED, so the complexity argument is
/// executable and testable rather than prose.

/// Expected TOPDOWN-EXHAUSTIVE cost of applying `cut` (SmallTree node ids,
/// a valid antichain excluding the root) to the full tree:
///   (#components) + (1/#components) * sum of per-component distinct counts,
/// where the components are the lower subtrees plus the upper subtree.
double TopDownExhaustiveCost(const SmallTree& tree,
                             const std::vector<int>& cut);

/// Brute-force optimal TOPDOWN-EXHAUSTIVE EdgeCut (exponential; the point
/// of Theorem 1 is that nothing substantially better exists unless P=NP).
struct ExhaustiveOptResult {
  double cost = 0;
  std::vector<int> cut;
};
ExhaustiveOptResult OptimalExhaustiveCut(const SmallTree& tree);

/// A TED (TOPDOWN-EXHAUSTIVE Decision) instance in the star form used by
/// the Theorem 1 reduction: a root with `node_elements.size()` children;
/// child i holds the element multiset `node_elements[i]`. An EdgeCut
/// detaches a subset of children as singleton lower components; the upper
/// component is the root plus the remaining children.
struct TedInstance {
  std::vector<std::vector<int>> node_elements;
  int universe_size = 0;
};

/// Number of duplicate elements within one part holding the given element
/// multiset union: (total multiplicity) - (distinct elements). An element
/// occurring 3 times counts as 2 duplicates, as in the paper's definition.
int64_t CountDuplicates(const std::vector<const std::vector<int>*>& parts,
                        int universe_size);

/// Duplicates within the components of the cut that keeps `upper_children`
/// attached to the root (every other child becomes a singleton lower
/// component, which by construction contributes its own internal
/// duplicates).
int64_t TedDuplicates(const TedInstance& instance,
                      const std::vector<int>& upper_children);

/// Maximum total within-component duplicates over all EdgeCuts creating
/// exactly `num_components` components (upper + num_components-1 lowers).
/// Brute force over child subsets.
int64_t TedMaxDuplicates(const TedInstance& instance, int num_components);

/// The TED decision problem: does an EdgeCut creating `num_components`
/// components with at least `min_duplicates` within-component duplicates
/// exist?
bool SolveTedDecision(const TedInstance& instance, int num_components,
                      int64_t min_duplicates);

/// An undirected edge-weighted graph for MES.
struct WeightedGraph {
  struct Edge {
    int u = 0;
    int v = 0;
    int64_t weight = 0;
  };
  int num_vertices = 0;
  std::vector<Edge> edges;
};

/// Sum of weights of edges with both endpoints in `subset`.
int64_t MesObjective(const WeightedGraph& graph,
                     const std::vector<int>& subset);

/// Maximum MES objective over all vertex subsets of the given size
/// (brute force; MES is NP-complete).
int64_t MesMaxBruteForce(const WeightedGraph& graph, int subset_size);

/// The MES decision problem: does a subset of `subset_size` vertices with
/// edge weight sum >= `min_weight` exist?
bool SolveMesDecision(const WeightedGraph& graph, int subset_size,
                      int64_t min_weight);

/// Theorem 1's mapping: builds the TED star instance whose duplicates
/// mirror MES edge weights — for each edge (u,v) of weight w, w fresh
/// elements are added to both child u and child v, so a pair kept together
/// in the upper component contributes exactly w duplicates. Selecting s
/// vertices in MES corresponds to an EdgeCut creating
/// (num_vertices - s + 1) components in TED.
TedInstance ReduceMesToTed(const WeightedGraph& graph);

}  // namespace bionav

#endif  // BIONAV_ALGO_EXHAUSTIVE_H_
