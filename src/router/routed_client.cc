#include "router/routed_client.h"

#include <cstdlib>
#include <utility>

#include "cache/query_artifacts.h"

namespace bionav {

namespace {

/// The connection itself failed (vs a typed server-side answer): the only
/// failures that justify dropping a direct connection and re-routing.
bool IsTransportFailure(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

Result<std::unique_ptr<RoutedNavClient>> RoutedNavClient::Connect(
    const std::string& proxy_host, int proxy_port,
    RoutedNavClientOptions options) {
  std::unique_ptr<RoutedNavClient> client(
      new RoutedNavClient(proxy_host, proxy_port, std::move(options)));
  Result<NavClient*> proxy = client->Proxy();
  if (!proxy.ok()) return proxy.status();
  // Topology failure is not fatal: against a bare NavServer (or a router
  // predating TOPOLOGY) the client simply stays proxied-only — the direct
  // path is an optimization, never a correctness dependency.
  (void)client->RefreshTopology();
  return client;
}

Status RoutedNavClient::RefreshTopology() {
  Result<NavClient*> proxy = Proxy();
  if (!proxy.ok()) return proxy.status();
  Result<JsonValue> response = proxy.ValueOrDie()->Topology();
  if (!response.ok()) {
    if (IsTransportFailure(response.status())) proxy_.reset();
    return response.status();
  }
  const JsonValue& doc = response.ValueOrDie();
  FleetTopology parsed;
  parsed.generation = static_cast<uint64_t>(doc.IntOr("generation", 0));
  parsed.vnodes = static_cast<int>(doc.IntOr("vnodes", 128));
  // The seed travels as a decimal string: ring seeds exceed 2^53, past
  // what a JSON number survives through double-precision parsers.
  std::string seed = doc.StringOr("seed", "");
  if (seed.empty()) {
    return Status::Internal("TOPOLOGY response carries no seed");
  }
  parsed.seed = std::strtoull(seed.c_str(), nullptr, 10);
  const JsonValue* backends = doc.Find("backends");
  if (backends == nullptr || !backends->is_array()) {
    return Status::Internal("TOPOLOGY response carries no backends");
  }
  for (const JsonValue& item : backends->array_items()) {
    if (!item.is_object()) {
      return Status::Internal("non-object entry in backends array");
    }
    TopologyBackend backend;
    backend.id = item.StringOr("id", "");
    backend.host = item.StringOr("host", "");
    backend.port = static_cast<int>(item.IntOr("port", 0));
    backend.state = item.StringOr("state", "");
    backend.draining = item.BoolOr("draining", false);
    if (backend.id.empty() || backend.host.empty() || backend.port == 0) {
      return Status::Internal("TOPOLOGY backend entry is incomplete");
    }
    parsed.backends.push_back(std::move(backend));
  }
  // Same geometry + same membership => the client's ring agrees with the
  // router's about every key's owner, with no per-request coordination.
  HashRingOptions ring_options;
  ring_options.vnodes = parsed.vnodes;
  ring_options.seed = parsed.seed;
  auto ring = std::make_unique<HashRing>(ring_options);
  for (const TopologyBackend& backend : parsed.backends) {
    ring->AddBackend(backend.id);
  }
  // Keep only connections whose backend is still dial-worthy.
  for (auto it = backends_.begin(); it != backends_.end();) {
    bool keep = false;
    for (const TopologyBackend& backend : parsed.backends) {
      if (backend.id == it->first && !backend.draining &&
          backend.state == "healthy") {
        keep = true;
      }
    }
    it = keep ? std::next(it) : backends_.erase(it);
  }
  topology_ = std::move(parsed);
  ring_ = std::move(ring);
  return Status::OK();
}

Result<NavClient*> RoutedNavClient::Proxy() {
  if (proxy_ != nullptr) return proxy_.get();
  Result<std::unique_ptr<NavClient>> connected =
      NavClient::Connect(proxy_host_, proxy_port_, options_.client);
  if (!connected.ok()) return connected.status();
  proxy_ = connected.TakeValue();
  return proxy_.get();
}

NavClient* RoutedNavClient::BackendFor(const std::string& id) {
  auto it = backends_.find(id);
  if (it != backends_.end()) return it->second.get();
  for (const TopologyBackend& backend : topology_.backends) {
    if (backend.id != id) continue;
    if (backend.draining || backend.state != "healthy") return nullptr;
    Result<std::unique_ptr<NavClient>> connected =
        NavClient::Connect(backend.host, backend.port, options_.client);
    if (!connected.ok()) return nullptr;
    return (backends_[id] = connected.TakeValue()).get();
  }
  return nullptr;
}

void RoutedNavClient::DropBackend(const std::string& id) {
  backends_.erase(id);
  // The fleet moved under us (ejection, restart, membership change):
  // re-learn the ring so later requests route against the fresh
  // generation instead of failing into the proxy forever.
  (void)RefreshTopology();
}

Result<NavClient::QueryReply> RoutedNavClient::Query(
    const std::string& query) {
  if (ring_ != nullptr && !ring_->empty()) {
    const std::string owner = ring_->OwnerOf(NormalizeQueryKey(query));
    NavClient* backend = BackendFor(owner);
    if (backend != nullptr) {
      Result<NavClient::QueryReply> reply = backend->Query(query);
      if (reply.ok()) {
        ++direct_calls_;
        pins_[reply.ValueOrDie().token] = owner;
        return reply;
      }
      if (!IsTransportFailure(reply.status())) {
        // Typed server answer (shedding, bad query): the owner spoke, the
        // route was right — surface it.
        ++direct_calls_;
        return reply;
      }
      DropBackend(owner);
    }
  }
  Result<NavClient*> proxy = Proxy();
  if (!proxy.ok()) return proxy.status();
  ++proxied_calls_;
  Result<NavClient::QueryReply> reply = proxy.ValueOrDie()->Query(query);
  if (!reply.ok() && IsTransportFailure(reply.status())) proxy_.reset();
  return reply;
}

template <typename Reply>
Result<Reply> RoutedNavClient::SessionOp(
    const std::string& token,
    const std::function<Result<Reply>(NavClient*)>& op) {
  auto pin = pins_.find(token);
  if (pin != pins_.end()) {
    NavClient* backend = BackendFor(pin->second);
    if (backend != nullptr) {
      Result<Reply> reply = op(backend);
      if (reply.ok() || !IsTransportFailure(reply.status())) {
        ++direct_calls_;
        return reply;
      }
      DropBackend(pin->second);
    }
  }
  // Proxy fallback: the router recovers the shard from the token's prefix
  // even for sessions it never routed, so a direct session survives its
  // backend connection dying.
  Result<NavClient*> proxy = Proxy();
  if (!proxy.ok()) return proxy.status();
  ++proxied_calls_;
  Result<Reply> reply = op(proxy.ValueOrDie());
  if (!reply.ok() && IsTransportFailure(reply.status())) proxy_.reset();
  return reply;
}

Result<std::vector<NavNodeId>> RoutedNavClient::Expand(
    const std::string& token, NavNodeId node) {
  return SessionOp<std::vector<NavNodeId>>(
      token, [&](NavClient* client) { return client->Expand(token, node); });
}

Result<NavClient::BatchExpandReply> RoutedNavClient::ExpandMany(
    const std::string& token, const std::vector<NavNodeId>& nodes) {
  return SessionOp<NavClient::BatchExpandReply>(
      token,
      [&](NavClient* client) { return client->ExpandMany(token, nodes); });
}

Result<NavClient::ShowReply> RoutedNavClient::ShowResults(
    const std::string& token, NavNodeId node, uint64_t retstart,
    uint64_t retmax) {
  return SessionOp<NavClient::ShowReply>(token, [&](NavClient* client) {
    return client->ShowResults(token, node, retstart, retmax);
  });
}

Result<bool> RoutedNavClient::Backtrack(const std::string& token) {
  return SessionOp<bool>(
      token, [&](NavClient* client) { return client->Backtrack(token); });
}

Result<NavClient::FindReply> RoutedNavClient::Find(const std::string& token,
                                                   ConceptId concept_id) {
  return SessionOp<NavClient::FindReply>(token, [&](NavClient* client) {
    return client->Find(token, concept_id);
  });
}

Result<std::string> RoutedNavClient::View(const std::string& token,
                                          int depth) {
  return SessionOp<std::string>(
      token, [&](NavClient* client) { return client->View(token, depth); });
}

Status RoutedNavClient::CloseSession(const std::string& token) {
  Result<bool> closed = SessionOp<bool>(token, [&](NavClient* client) {
    Status status = client->CloseSession(token);
    if (!status.ok()) return Result<bool>(status);
    return Result<bool>(true);
  });
  pins_.erase(token);
  return closed.ok() ? Status::OK() : closed.status();
}

Result<JsonValue> RoutedNavClient::Stats() {
  Result<NavClient*> proxy = Proxy();
  if (!proxy.ok()) return proxy.status();
  Result<JsonValue> stats = proxy.ValueOrDie()->Stats();
  if (!stats.ok() && IsTransportFailure(stats.status())) proxy_.reset();
  return stats;
}

}  // namespace bionav
