#ifndef BIONAV_ROUTER_ROUTED_CLIENT_H_
#define BIONAV_ROUTER_ROUTED_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "router/hash_ring.h"
#include "server/nav_client.h"
#include "util/status.h"

namespace bionav {

/// One backend as the TOPOLOGY op describes it.
struct TopologyBackend {
  std::string id;
  std::string host;
  int port = 0;
  /// Router-side health state name ("healthy", "unhealthy", "halfopen").
  std::string state;
  bool draining = false;
};

/// The routing tier's shard map, as served by TOPOLOGY: enough for a
/// client to rebuild the placement ring locally (same seed + vnodes +
/// backend ids => identical ownership, no coordination needed) and dial
/// backends directly. `generation` bumps whenever membership or health
/// changes; a client holding a stale generation falls back to the proxy
/// and refreshes.
struct FleetTopology {
  uint64_t generation = 0;
  int vnodes = 128;
  uint64_t seed = 0;
  std::vector<TopologyBackend> backends;
};

struct RoutedNavClientOptions {
  /// Options applied to every connection (proxy and backends).
  NavClientOptions client;
};

/// Client-side routing: learns the ring from the proxy once, then sends
/// QUERY straight to the owning shard and session ops straight to the
/// shard that answered the QUERY — the proxy relay hop disappears from
/// every request that goes direct. The proxy stays the fallback for
/// everything the client cannot place (unknown token, unhealthy or
/// unreachable backend, stale topology): correctness never depends on the
/// client's map being fresh, only the fast path does.
class RoutedNavClient {
 public:
  /// Connects to the routing proxy, fetches the topology, and prepares
  /// (lazy) direct connections to the backends.
  static Result<std::unique_ptr<RoutedNavClient>> Connect(
      const std::string& proxy_host, int proxy_port,
      RoutedNavClientOptions options = RoutedNavClientOptions());

  RoutedNavClient(const RoutedNavClient&) = delete;
  RoutedNavClient& operator=(const RoutedNavClient&) = delete;

  /// Typed ops, mirror NavClient's wrappers. QUERY routes by normalized
  /// key; session ops follow the token's learned pin.
  Result<NavClient::QueryReply> Query(const std::string& query);
  Result<std::vector<NavNodeId>> Expand(const std::string& token,
                                        NavNodeId node);
  Result<NavClient::BatchExpandReply> ExpandMany(
      const std::string& token, const std::vector<NavNodeId>& nodes);
  Result<NavClient::ShowReply> ShowResults(const std::string& token,
                                           NavNodeId node,
                                           uint64_t retstart = 0,
                                           uint64_t retmax = 0);
  Result<bool> Backtrack(const std::string& token);
  Result<NavClient::FindReply> Find(const std::string& token,
                                    ConceptId concept_id);
  Result<std::string> View(const std::string& token, int depth = 100);
  Status CloseSession(const std::string& token);

  /// Fleet STATS, always from the proxy (it owns the rollup).
  Result<JsonValue> Stats();

  /// Re-fetches the topology from the proxy and rebuilds the ring.
  Status RefreshTopology();

  /// Current topology snapshot (test/bench introspection).
  const FleetTopology& topology() const { return topology_; }

  /// Requests served directly by a backend vs relayed via the proxy.
  int64_t direct_calls() const { return direct_calls_; }
  int64_t proxied_calls() const { return proxied_calls_; }

 private:
  RoutedNavClient(std::string proxy_host, int proxy_port,
                  RoutedNavClientOptions options)
      : proxy_host_(std::move(proxy_host)),
        proxy_port_(proxy_port),
        options_(std::move(options)) {}

  /// The direct connection for a backend id, dialing if needed. Nullptr
  /// when the backend is unhealthy/draining in the last topology, or
  /// dialing fails (callers fall back to the proxy).
  NavClient* BackendFor(const std::string& id);

  /// The proxy connection, redialing if needed.
  Result<NavClient*> Proxy();

  /// Runs `op` against the token's pinned backend, falling back to the
  /// proxy (and refreshing the topology) when the pin is missing or the
  /// direct call fails at transport level.
  template <typename Reply>
  Result<Reply> SessionOp(
      const std::string& token,
      const std::function<Result<Reply>(NavClient*)>& op);

  /// Marks a backend's connection dead and refreshes the topology —
  /// the reaction to a transport-level direct-call failure.
  void DropBackend(const std::string& id);

  std::string proxy_host_;
  int proxy_port_ = 0;
  RoutedNavClientOptions options_;

  std::unique_ptr<NavClient> proxy_;
  FleetTopology topology_;
  std::unique_ptr<HashRing> ring_;
  std::unordered_map<std::string, std::unique_ptr<NavClient>> backends_;
  /// token -> backend id that answered its QUERY.
  std::unordered_map<std::string, std::string> pins_;

  int64_t direct_calls_ = 0;
  int64_t proxied_calls_ = 0;
};

}  // namespace bionav

#endif  // BIONAV_ROUTER_ROUTED_CLIENT_H_
