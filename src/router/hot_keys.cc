#include "router/hot_keys.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace bionav {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr double kLn2 = 0.6931471805599453;

/// Entries whose decayed mass falls below this are indistinguishable from
/// a key seen once long ago — sweep fodder.
constexpr double kColdMass = 0.5;

}  // namespace

HotKeyTracker::HotKeyTracker() : HotKeyTracker(Options()) {}

HotKeyTracker::HotKeyTracker(Options options) : options_(std::move(options)) {
  if (!options_.clock) options_.clock = SteadyNowMs;
  if (options_.halflife_ms < 1) options_.halflife_ms = 1;
  if (options_.max_keys < 16) options_.max_keys = 16;
}

void HotKeyTracker::DecayTo(Entry* entry, int64_t now_ms,
                            double halflife_ms) {
  if (now_ms <= entry->updated_ms) return;
  double elapsed = static_cast<double>(now_ms - entry->updated_ms);
  entry->mass *= std::exp2(-elapsed / halflife_ms);
  entry->updated_ms = now_ms;
}

double HotKeyTracker::RateOf(double mass) const {
  // Steady rate r accumulates mass r * halflife / ln2; invert it.
  return mass * kLn2 / (static_cast<double>(options_.halflife_ms) / 1000.0);
}

double HotKeyTracker::Record(const std::string& key) {
  int64_t now = options_.clock();
  std::lock_guard<std::mutex> lock(mu_);
  if (keys_.size() >= options_.max_keys && keys_.find(key) == keys_.end()) {
    SweepLocked(now);
  }
  Entry& entry = keys_[key];
  DecayTo(&entry, now, static_cast<double>(options_.halflife_ms));
  entry.mass += 1.0;
  if (entry.updated_ms == 0) entry.updated_ms = now;
  return RateOf(entry.mass);
}

double HotKeyTracker::EstimatedQps(const std::string& key) const {
  int64_t now = options_.clock();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(key);
  if (it == keys_.end()) return 0;
  Entry decayed = it->second;
  DecayTo(&decayed, now, static_cast<double>(options_.halflife_ms));
  return RateOf(decayed.mass);
}

std::vector<HotKeyTracker::HotKey> HotKeyTracker::Hot(double min_qps) const {
  int64_t now = options_.clock();
  std::vector<HotKey> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : keys_) {
    Entry decayed = entry;
    DecayTo(&decayed, now, static_cast<double>(options_.halflife_ms));
    double qps = RateOf(decayed.mass);
    if (qps >= min_qps) out.push_back({key, qps});
  }
  std::sort(out.begin(), out.end(),
            [](const HotKey& a, const HotKey& b) { return a.qps > b.qps; });
  return out;
}

size_t HotKeyTracker::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

void HotKeyTracker::SweepLocked(int64_t now_ms) {
  for (auto it = keys_.begin(); it != keys_.end();) {
    DecayTo(&it->second, now_ms, static_cast<double>(options_.halflife_ms));
    it = it->second.mass < kColdMass ? keys_.erase(it) : std::next(it);
  }
  if (keys_.size() < options_.max_keys) return;
  // Every key is genuinely warm; shed the coldest half so admission of new
  // keys stays O(1) amortized instead of thrashing the sweep.
  std::vector<std::pair<double, std::string>> by_mass;
  by_mass.reserve(keys_.size());
  for (const auto& [key, entry] : keys_) by_mass.push_back({entry.mass, key});
  std::nth_element(
      by_mass.begin(), by_mass.begin() + by_mass.size() / 2, by_mass.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (size_t i = 0; i < by_mass.size() / 2; ++i) {
    keys_.erase(by_mass[i].second);
  }
}

}  // namespace bionav
