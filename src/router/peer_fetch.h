#ifndef BIONAV_ROUTER_PEER_FETCH_H_
#define BIONAV_ROUTER_PEER_FETCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cache/query_artifacts.h"
#include "hierarchy/concept_hierarchy.h"
#include "router/hash_ring.h"
#include "server/protocol.h"
#include "util/status.h"

namespace bionav {

/// One fleet member as the peer-fetch layer sees it.
struct PeerSpec {
  std::string id;    // Ring identity — must match the router's backend id.
  std::string host;
  int port = 0;
};

struct PeerFetchOptions {
  /// This shard's own ring identity; keys it owns are never peer-fetched.
  std::string self_id;
  /// The full fleet, self included — the ring only places correctly when
  /// every shard sees the same membership the router does.
  std::vector<PeerSpec> peers;
  /// Ring geometry; must match the router's HashRingOptions exactly, or
  /// the two sides disagree about owners and every fetch goes nowhere.
  int vnodes = 128;
  uint64_t seed = 0x62696f6e61763237ULL;
  /// Short timeouts: the fallback is a local build, so a slow peer should
  /// lose to rebuilding, not stall the session.
  int64_t connect_timeout_ms = 1000;
  int64_t recv_timeout_ms = 5000;
  /// Fleet-internal traffic defaults to the binary wire (leaner framing;
  /// the artifact field itself is base64 in both encodings).
  WireProto proto = WireProto::kBinary;
};

/// The non-owning half of cross-shard artifact singleflight: before a
/// shard builds a query's artifacts from scratch, it asks the ring-owner
/// for the serialized bundle via FETCH_ARTIFACT and deserializes the
/// reply against the local hierarchy. Invoked from inside the local
/// QueryArtifactCache's singleflight builder, so each shard issues at
/// most one fetch per key no matter how many sessions pile up — and a
/// nullptr return (self-owned key, unconfigured fleet, peer down, corrupt
/// record) simply falls back to the local build.
///
/// Thread-safe. Configuration can arrive after construction (Configure or
/// a peers file resolved lazily) because `bionav_route --backends=auto:N`
/// spawns shards one at a time: no shard knows the full port list until
/// the router has spawned them all.
class PeerArtifactFetcher {
 public:
  /// `hierarchy` deserializes fetched trees; it must outlive the fetcher.
  explicit PeerArtifactFetcher(const ConceptHierarchy* hierarchy);

  /// Installs (or replaces) the fleet view.
  void Configure(PeerFetchOptions options);

  /// Defers configuration to a peers file (format below) read on first
  /// Fetch — and re-probed on later fetches while it is still missing,
  /// covering the auto-spawn window where the router writes the file
  /// after the shards have already started.
  void ConfigureFromFile(std::string path, std::string self_id);

  bool configured() const;

  /// Parses a peers file. Line format, '#' comments ignored:
  ///   vnodes 128
  ///   seed 7088528852100879927
  ///   peer shard0 127.0.0.1:40001
  static Result<PeerFetchOptions> ParsePeersFile(std::string_view contents,
                                                 const std::string& self_id);

  /// The owner's bundle for `key`, or nullptr when this shard should build
  /// locally (self-owned key, unconfigured, peer unreachable, record
  /// corrupt). Blocking — call it from the cache's builder, never from an
  /// event loop.
  std::shared_ptr<const QueryArtifacts> Fetch(const std::string& key);

  struct Stats {
    int64_t hits = 0;       // Bundles fetched and deserialized.
    int64_t misses = 0;     // Peer path attempted but failed.
    int64_t self_owned = 0; // Keys this shard owns (no fetch attempted).
  };
  Stats stats() const;

 private:
  /// Loads the pending peers file if one is due; returns configured state.
  bool EnsureConfigured();

  const ConceptHierarchy* hierarchy_;

  mutable std::mutex mu_;
  PeerFetchOptions options_;
  std::unique_ptr<HashRing> ring_;
  bool configured_ = false;
  std::string pending_file_;
  std::string pending_self_id_;

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> self_owned_{0};
};

}  // namespace bionav

#endif  // BIONAV_ROUTER_PEER_FETCH_H_
