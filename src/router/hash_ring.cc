#include "router/hash_ring.h"

#include <algorithm>
#include <cstddef>

namespace bionav {

namespace {

/// splitmix64 finalizer: full-avalanche mix of a 64-bit state.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the bytes, finalized through splitmix64 so short keys
/// (query words, session tokens) still spread across the whole ring.
uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

}  // namespace

HashRing::HashRing(HashRingOptions options) : options_(options) {
  if (options_.vnodes < 1) options_.vnodes = 1;
}

uint64_t HashRing::HashKey(std::string_view key) const {
  return HashBytes(key, options_.seed);
}

void HashRing::InsertPoints(uint32_t backend_index) {
  const std::string& id = backends_[backend_index];
  for (int v = 0; v < options_.vnodes; ++v) {
    std::string vnode_key = id;
    vnode_key.push_back('#');
    vnode_key += std::to_string(v);
    points_.push_back(Point{HashBytes(vnode_key, options_.seed),
                            backend_index});
  }
}

bool HashRing::AddBackend(const std::string& id) {
  for (const std::string& existing : backends_) {
    if (existing == id) return false;
  }
  backends_.push_back(id);
  InsertPoints(static_cast<uint32_t>(backends_.size() - 1));
  std::sort(points_.begin(), points_.end());
  return true;
}

bool HashRing::RemoveBackend(const std::string& id) {
  size_t index = backends_.size();
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i] == id) {
      index = i;
      break;
    }
  }
  if (index == backends_.size()) return false;
  backends_.erase(backends_.begin() + static_cast<ptrdiff_t>(index));
  // Point positions depend only on (seed, id, vnode) — never on backend
  // order — so rebuilding after a membership change reproduces the exact
  // surviving points and ownership of every other backend is untouched.
  points_.clear();
  points_.reserve(backends_.size() * static_cast<size_t>(options_.vnodes));
  for (uint32_t i = 0; i < backends_.size(); ++i) InsertPoints(i);
  std::sort(points_.begin(), points_.end());
  return true;
}

size_t HashRing::LowerBound(uint64_t position) const {
  size_t lo = 0, hi = points_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (points_[mid].position < position) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == points_.size() ? 0 : lo;  // Wrap past the last point.
}

const std::string& HashRing::OwnerOf(std::string_view key) const {
  static const std::string kEmpty;
  if (points_.empty()) return kEmpty;
  return backends_[points_[LowerBound(HashKey(key))].backend];
}

std::vector<std::string> HashRing::PreferenceOrder(
    std::string_view key, size_t max_backends) const {
  std::vector<std::string> order;
  if (points_.empty()) return order;
  size_t want = max_backends == 0
                    ? backends_.size()
                    : std::min(max_backends, backends_.size());
  order.reserve(want);
  std::vector<bool> seen(backends_.size(), false);
  size_t start = LowerBound(HashKey(key));
  for (size_t walked = 0; walked < points_.size() && order.size() < want;
       ++walked) {
    uint32_t backend = points_[(start + walked) % points_.size()].backend;
    if (seen[backend]) continue;
    seen[backend] = true;
    order.push_back(backends_[backend]);
  }
  return order;
}

}  // namespace bionav
