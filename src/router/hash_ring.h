#ifndef BIONAV_ROUTER_HASH_RING_H_
#define BIONAV_ROUTER_HASH_RING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bionav {

struct HashRingOptions {
  /// Virtual nodes per backend. More vnodes flatten the load distribution
  /// (stddev shrinks ~1/sqrt(vnodes)) at the cost of a larger sorted point
  /// table; 128 keeps the 16-shard max/min load ratio under ~1.6 while the
  /// table stays a few KB. Clamped to >= 1.
  int vnodes = 128;
  /// Seeds every placement hash. Two rings with the same seed and backend
  /// set produce identical ownership — routers in a fleet agree on shard
  /// placement without coordination.
  uint64_t seed = 0x62696f6e61763237ULL;  // "bionav27"
};

/// A consistent-hash ring with virtual nodes — the placement function of
/// the sharded serving tier. Backends are string identities ("host:port");
/// each contributes `vnodes` seeded points on a 64-bit ring, and a key is
/// owned by the backend of the first point at or clockwise after the key's
/// hash. The classic guarantee follows from per-backend point placement:
/// adding a backend only moves keys *onto* the new backend (everything
/// else keeps its owner), and removing one only moves *its* keys — about
/// 1/N of the keyspace churns per membership change instead of nearly all
/// of it under modulo hashing.
///
/// Pure data structure: no I/O, no clocks, no locks. NavRouter wraps it in
/// its own synchronization; tests drive it directly.
class HashRing {
 public:
  explicit HashRing(HashRingOptions options = HashRingOptions());

  /// Adds a backend identity. Ignored (returns false) if already present.
  bool AddBackend(const std::string& id);

  /// Removes a backend identity. False if absent.
  bool RemoveBackend(const std::string& id);

  /// Backend ids in insertion order.
  const std::vector<std::string>& backends() const { return backends_; }
  size_t size() const { return backends_.size(); }
  bool empty() const { return backends_.empty(); }

  /// Identity of the backend owning `key`; empty string on an empty ring.
  /// Stable across instances built with the same seed and backend set.
  const std::string& OwnerOf(std::string_view key) const;

  /// Distinct backend ids in ring order starting at the key's owner —
  /// the failover walk order (owner first, then the backends whose points
  /// follow clockwise). At most `max_backends` entries (0 = all).
  std::vector<std::string> PreferenceOrder(std::string_view key,
                                           size_t max_backends = 0) const;

  /// The seeded placement hash (exposed so tests can probe distribution
  /// properties directly).
  uint64_t HashKey(std::string_view key) const;

 private:
  /// One placement point: position on the ring + owning backend index
  /// (into backends_).
  struct Point {
    uint64_t position;
    uint32_t backend;
    bool operator<(const Point& other) const {
      if (position != other.position) return position < other.position;
      return backend < other.backend;
    }
  };

  void InsertPoints(uint32_t backend_index);
  /// Index into points_ of the first point at or after hash(key),
  /// wrapping to 0 past the end.
  size_t LowerBound(uint64_t position) const;

  HashRingOptions options_;
  std::vector<std::string> backends_;
  std::vector<Point> points_;  // Sorted by (position, backend).
};

}  // namespace bionav

#endif  // BIONAV_ROUTER_HASH_RING_H_
