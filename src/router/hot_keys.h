#ifndef BIONAV_ROUTER_HOT_KEYS_H_
#define BIONAV_ROUTER_HOT_KEYS_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace bionav {

/// Exponentially decayed per-key request-rate tracker — the router's
/// hot-slice detector. Each key holds one decayed counter: a hit adds 1,
/// and the accumulated mass halves every `halflife_ms`, so for a steady
/// arrival rate r the counter converges to r * halflife / ln 2 and the
/// rate estimate inverts that. Cold keys fade to nothing and are swept
/// when the table reaches capacity, so a long zipf tail cannot grow the
/// tracker without bound.
///
/// Thread-safe; the clock is injectable so tests can dilate time instead
/// of sleeping.
class HotKeyTracker {
 public:
  struct Options {
    /// Time for a key's accumulated request mass to halve. Shorter reacts
    /// faster to traffic shifts; longer smooths bursts.
    int64_t halflife_ms = 10000;
    /// Entry capacity. Reaching it triggers a sweep that drops keys whose
    /// decayed mass rounds to cold; persistent overflow drops the coldest.
    size_t max_keys = 4096;
    /// Monotonic milliseconds. Defaults to steady_clock.
    std::function<int64_t()> clock;
  };

  struct HotKey {
    std::string key;
    double qps = 0;
  };

  HotKeyTracker();
  explicit HotKeyTracker(Options options);

  /// Records one request for `key` and returns the key's estimated
  /// request rate (QPS) including this hit.
  double Record(const std::string& key);

  /// Estimated request rate of `key` right now (0 if untracked).
  double EstimatedQps(const std::string& key) const;

  /// Keys whose estimated rate is >= `min_qps`, hottest first.
  std::vector<HotKey> Hot(double min_qps) const;

  /// Tracked key count (post-sweep).
  size_t size() const;

 private:
  struct Entry {
    double mass = 0;
    int64_t updated_ms = 0;
  };

  /// Decays `entry` forward to `now_ms`.
  static void DecayTo(Entry* entry, int64_t now_ms, double halflife_ms);

  /// Mass -> QPS: rate = mass * ln2 / halflife.
  double RateOf(double mass) const;

  /// Drops cold entries; called at capacity with mu_ held.
  void SweepLocked(int64_t now_ms);

  Options options_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> keys_;
};

}  // namespace bionav

#endif  // BIONAV_ROUTER_HOT_KEYS_H_
