#ifndef BIONAV_ROUTER_NAV_ROUTER_H_
#define BIONAV_ROUTER_NAV_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "router/hash_ring.h"
#include "router/hot_keys.h"
#include "server/protocol.h"
#include "util/event_loop.h"

namespace bionav {

/// One bionav_serve backend the router fronts. `id` is the ring identity
/// (defaults to "host:port" when empty) — it, not the address, is what
/// placement hashes, so a backend can move hosts without remapping keys.
struct RouterBackend {
  std::string host;
  int port = 0;
  std::string id;
};

/// Liveness of a backend as the health checker sees it.
///   kHealthy  — serving traffic.
///   kUnhealthy — ejected after consecutive probe/transport failures; its
///     slice answers RETRY_LATER until recovery (no silent remap: sessions
///     and warm artifacts live on that shard, moving the keys would trade
///     typed retryable errors for UNKNOWN_SESSION surprises).
///   kHalfOpen — ejection cooldown expired; one probe decides readmission.
enum class BackendHealth { kHealthy = 0, kUnhealthy = 1, kHalfOpen = 2 };

/// Lowercase name ("healthy"/"unhealthy"/"halfopen") for stats documents.
const char* BackendHealthName(BackendHealth health);

struct NavRouterOptions {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, readable via port() after Start.
  int port = 0;
  /// Reactor threads. Each loop owns its accepted connections and its own
  /// upstream pool, so cross-loop coordination never touches the data path.
  int io_threads = 1;
  /// Admission control at the accept path (downstream connections).
  int max_connections = 4096;
  /// Pipelining depth per downstream connection, as in NavServer.
  int max_inflight_per_connection = 64;
  /// Downstream write-queue backpressure threshold.
  size_t max_write_queue_bytes = 4 << 20;
  /// Downstream request frame cap (slow-loris defense).
  size_t max_frame_bytes = LineFrameDecoder::kDefaultMaxFrameBytes;
  /// Per-backend bounded write queue: a forward that would push an
  /// upstream's unsent bytes past this sheds with RETRY_LATER instead of
  /// buffering without bound against a stalled shard.
  size_t max_upstream_queue_bytes = 4 << 20;
  /// Upstream connections per (backend, encoding) on each loop. Requests
  /// of one downstream connection always ride the same upstream (slot by
  /// connection id), preserving its request order through the backend.
  int upstream_pool_size = 2;
  /// Upstream connect watchdog; expiry fails queued requests RETRY_LATER.
  int64_t connect_timeout_ms = 1000;
  /// Health probe cadence (periodic STATS on the loop-0 timer wheel).
  int64_t health_interval_ms = 1000;
  /// A probe unanswered for this long counts as a failure.
  int64_t health_timeout_ms = 1000;
  /// Consecutive probe/transport failures before ejection.
  int health_failures_to_eject = 3;
  /// Ejection cooldown before a half-open probe may readmit the backend.
  int64_t half_open_after_ms = 2000;
  /// Ring geometry (see HashRingOptions).
  int ring_vnodes = 128;
  uint64_t ring_seed = HashRingOptions().seed;
  /// Hot-slice replication: a query key whose decayed request rate exceeds
  /// replicate_above_qps spreads its QUERYs round-robin across the first
  /// `replicas` healthy non-draining backends in ring preference order,
  /// instead of pinning the whole slice to one owner. replicas <= 1
  /// disables the spread; replicate_above_qps = 0 (with replicas > 1)
  /// replicates every key — the cold-fan-in configuration the peer-fetch
  /// CI gate uses. Sessions are unaffected: each stays pinned to the
  /// backend that answered its QUERY, and every non-owner replica pulls
  /// the artifacts from the owner via FETCH_ARTIFACT instead of rebuilding.
  int replicas = 1;
  double replicate_above_qps = 10.0;
  /// Decay half-life of the per-key rate estimator (see HotKeyTracker).
  int64_t hot_key_halflife_ms = 10000;
  /// Idle downstream connections are closed after this long. 0 disables.
  int64_t idle_timeout_ms = 5 * 60 * 1000;
  /// Shutdown drain bound, as in NavServer.
  int64_t drain_deadline_ms = 2000;
};

struct RouterBackendStats {
  std::string id;
  BackendHealth health = BackendHealth::kHealthy;
  bool draining = false;
  int64_t forwarded = 0;
  int64_t upstream_errors = 0;
  int64_t retry_later = 0;
  int64_t probes_ok = 0;
  int64_t probes_failed = 0;
  int64_t pinned_sessions = 0;
};

struct NavRouterStats {
  int64_t connections_accepted = 0;
  int64_t connections_shed = 0;
  int64_t connections_open = 0;
  int64_t requests = 0;
  int64_t protocol_errors = 0;
  int64_t forwarded = 0;
  int64_t retry_later = 0;
  int64_t pinned_sessions = 0;
  int64_t healthy_backends = 0;
  /// Downstream wire traffic through the router (the relay-hop bytes a
  /// client-routed fleet saves; bench_serving reads these for its A/B).
  int64_t bytes_rx = 0;
  int64_t bytes_tx = 0;
  /// Topology generation: bumps on every health or draining transition.
  uint64_t generation = 0;
  /// Keys the hot-key tracker currently follows.
  int64_t hot_keys_tracked = 0;
  std::vector<RouterBackendStats> backends;
};

/// The sharded serving tier's front door: a standalone proxy that fronts N
/// bionav_serve backends behind one endpoint, speaking both wire encodings
/// (line-delimited JSON v1 and length-prefixed binary v2, negotiated per
/// downstream connection exactly as NavServer does).
///
/// Placement: QUERY routes by NormalizeQueryKey(query) on a consistent-hash
/// ring — every session of a given query lands on the same shard, so that
/// shard's query-artifact cache stays hot for its slice of the query
/// universe. Session-scoped ops route by the token→shard pin learned from
/// the QUERY response that minted the token; a session therefore never
/// migrates mid-lifetime. Pins drop on CLOSE and on UNKNOWN_SESSION.
///
/// Forwarding: frames are relayed without re-encoding (the framing decoders
/// give boundaries; only QUERY responses and errors are decoded, to learn
/// pins). Each loop keeps a small pool of non-blocking upstream connections
/// per (backend, encoding); responses complete FIFO per upstream and are
/// released downstream in request arrival order through the same
/// sequence-number reordering NavServer uses, so pipelined clients see
/// in-order responses even when their requests fanned out across shards.
///
/// Failure model: a dead shard's slice answers typed RETRY_LATER (never a
/// hang, never a transport error downstream); consecutive failures eject
/// the backend, a half-open STATS probe readmits it. A draining backend
/// stops receiving new QUERYs but keeps serving its pinned sessions.
///
/// STATS/METRICS are answered by the router itself: STATS aggregates
/// router counters, per-backend breakdowns and a fleet-wide rollup of the
/// last scraped backend stats; METRICS exposes the router's own
/// bionav_router_* registry.
class NavRouter {
 public:
  NavRouter(std::vector<RouterBackend> backends,
            NavRouterOptions options = NavRouterOptions());

  NavRouter(const NavRouter&) = delete;
  NavRouter& operator=(const NavRouter&) = delete;

  /// Binds, listens, starts the reactors and the health checker.
  Status Start();

  /// Bound TCP port (valid after a successful Start).
  int port() const { return port_; }

  /// Graceful shutdown; idempotent, also run by the destructor.
  void Shutdown();

  ~NavRouter();

  NavRouterStats stats() const;

  /// Marks a backend draining (true) or serving (false): a draining
  /// backend is skipped by new-QUERY placement but keeps receiving its
  /// pinned sessions' ops until they close. Thread-safe. False if the id
  /// names no backend.
  bool SetBackendDraining(const std::string& id, bool draining);

  const HashRing& ring() const { return ring_; }

 private:
  /// Downstream connection state — field-for-field the NavServer
  /// Connection shape (loop-thread-only; see nav_server.h).
  struct Conn {
    explicit Conn(size_t max_frame_bytes)
        : decoder(max_frame_bytes), bdecoder(max_frame_bytes) {}

    uint64_t conn_id = 0;  // Upstream slot affinity.
    int fd = -1;
    size_t loop_index = 0;
    WireProto proto = WireProto::kJson;
    bool proto_decided = false;
    bool preamble_error = false;
    std::string preamble;
    LineFrameDecoder decoder;
    BinaryFrameDecoder bdecoder;
    std::deque<WireFrame> write_queue;
    size_t write_offset = 0;
    size_t write_queue_bytes = 0;
    uint64_t next_dispatch_seq = 0;
    uint64_t next_release_seq = 0;
    std::map<uint64_t, WireFrame> completed;
    int inflight = 0;
    bool reading = true;
    bool want_write = false;
    bool dispatching = false;
    bool draining = false;
    bool close_after_flush = false;
    bool closed = false;
    int64_t last_activity_ms = 0;
    TimerId idle_timer = kInvalidTimer;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  /// One forwarded request awaiting its backend response (FIFO per
  /// upstream — the backend answers in arrival order).
  struct Pending {
    ConnPtr conn;
    uint64_t seq = 0;
    RequestOp op = RequestOp::kStats;
    /// Session token (token ops) for pin maintenance on CLOSE and
    /// UNKNOWN_SESSION responses.
    std::string token;
    /// QUERY: decode the response to learn its token→shard pin.
    bool learn_token = false;
    int64_t sent_us = 0;
  };

  /// One pooled upstream connection (loop-thread-only; owned by the loop
  /// whose downstream connections it serves).
  struct Upstream {
    size_t backend_index = 0;
    WireProto proto = WireProto::kJson;
    size_t loop_index = 0;
    int fd = -1;
    bool connecting = false;
    bool closed = false;
    bool reading = false;
    bool want_write = false;
    /// Binary upstream answered with a pre-negotiation JSON line (the
    /// backend shed or drained before reading the preamble).
    bool json_fallback = false;
    bool saw_first_byte = false;
    /// Response reassembly. Responses dwarf requests (VIEW trees, METRICS
    /// expositions), hence the generous caps, as in NavClient.
    LineFrameDecoder decoder{64u << 20};
    BinaryFrameDecoder bdecoder{64u << 20};
    /// Unsent request bytes (bounded by max_upstream_queue_bytes).
    std::string outbox;
    size_t out_off = 0;
    std::deque<Pending> pending;
    TimerId connect_timer = kInvalidTimer;
  };
  using UpPtr = std::shared_ptr<Upstream>;

  /// An in-flight health probe (loop-0-only): one-shot connection, one
  /// JSON STATS request, one response line, closed.
  struct Probe {
    size_t backend_index = 0;
    int fd = -1;
    bool connecting = false;
    bool done = false;
    std::string outbox;
    size_t out_off = 0;
    LineFrameDecoder decoder{4u << 20};
    TimerId timeout_timer = kInvalidTimer;
  };
  using ProbePtr = std::shared_ptr<Probe>;

  /// Fleet-rollup numbers extracted from a backend's scraped STATS.
  struct BackendScrape {
    bool valid = false;
    int64_t requests = 0;
    int64_t sessions_active = 0;
    int64_t sessions_created = 0;
    int64_t cache_hits = 0;
    int64_t cache_misses = 0;
    /// Artifact provenance of the backend's query cache: local builds and
    /// FETCH_ARTIFACT traffic (the fleet rollup's duplicate-build signal).
    int64_t cache_builds = 0;
    int64_t peer_fetch_hits = 0;
    int64_t peer_fetch_misses = 0;
    int64_t bytes_rx = 0;
    int64_t bytes_tx = 0;
    std::string raw;  // The full backend STATS document.
  };

  /// Shared per-backend state. Atomics are the cross-loop surface; the
  /// scrape is mutex-guarded (probe writes, STATS reads).
  struct BackendState {
    RouterBackend config;
    std::atomic<int> health{static_cast<int>(BackendHealth::kHealthy)};
    std::atomic<bool> draining{false};
    std::atomic<int> consecutive_failures{0};
    std::atomic<int64_t> ejected_at_ms{0};
    std::atomic<int64_t> forwarded{0};
    std::atomic<int64_t> upstream_errors{0};
    std::atomic<int64_t> retry_later{0};
    std::atomic<int64_t> probes_ok{0};
    std::atomic<int64_t> probes_failed{0};
    mutable std::mutex scrape_mu;
    BackendScrape scrape;
  };

  // --- Downstream path (mirrors NavServer; see nav_server.cc) ---
  void IoThreadMain(size_t loop_index);
  void OnAcceptable();
  void AdmitConnection(int fd);
  void OnConnectionEvent(const ConnPtr& conn, uint32_t events);
  void ReadConnection(const ConnPtr& conn);
  bool FeedConnection(const ConnPtr& conn, std::string_view data);
  bool HasBufferedFrame(const ConnPtr& conn) const;
  bool NextBufferedFrame(const ConnPtr& conn, std::string* payload);
  bool DecoderBroken(const ConnPtr& conn) const;
  void DispatchFrames(const ConnPtr& conn);
  void CompleteRequest(const ConnPtr& conn, uint64_t seq, WireFrame response);
  void FlushWrites(const ConnPtr& conn);
  void UpdateInterest(const ConnPtr& conn);
  void ArmIdleTimer(const ConnPtr& conn);
  void CloseConnection(const ConnPtr& conn);
  void DrainConnection(const ConnPtr& conn);

  // --- Routing ---
  /// Parses one downstream frame and routes it: STATS/METRICS answer
  /// locally, QUERY places by normalized query key, token ops follow
  /// their pin. Completion is immediate for local answers and typed
  /// errors; forwarded requests complete when the backend responds.
  void RouteFrame(const ConnPtr& conn, uint64_t seq,
                  const std::string& payload);
  /// Ring walk for a new QUERY: first non-draining backend in preference
  /// order. -1 when every backend drains. Records the key with the hot-key
  /// tracker and, when replication is on and the key runs hot, spreads the
  /// choice round-robin across the first `replicas` healthy non-draining
  /// ring-successors.
  int ChooseQueryBackend(std::string_view query_key) const;
  /// The strict slice owner (no hot-key spread, no rate recording) — what
  /// FETCH_ARTIFACT forwarding uses: the replica asking for the bundle
  /// must never be routed back to itself.
  int ChooseOwnerBackend(std::string_view query_key) const;
  /// Pin lookup for a session op; unpinned tokens recover their minting
  /// shard from the "<backend-id>-s<ordinal>" token shape (sessions
  /// created over direct client-routed connections were never pinned
  /// here), then fall back to the ring owner of the token (the backend
  /// will answer UNKNOWN_SESSION if the session never lived there).
  size_t ChooseSessionBackend(std::string_view token) const;
  void ForwardToBackend(const ConnPtr& conn, uint64_t seq,
                        size_t backend_index, const RequestView& view,
                        const std::string& payload);
  /// Immediate typed RETRY_LATER completion, with per-backend accounting
  /// (backend_index may be SIZE_MAX when no backend was choosable).
  void AnswerRetryLater(const ConnPtr& conn, uint64_t seq,
                        size_t backend_index, std::string_view message);
  void CountRequest();

  // --- Upstream pool ---
  size_t UpstreamSlot(size_t backend_index, WireProto proto,
                      uint64_t conn_id) const;
  /// Live upstream for the slot, creating (and connecting) one if the
  /// slot is empty or its connection died. Null when the connect cannot
  /// even be initiated.
  UpPtr GetUpstream(size_t loop_index, size_t backend_index, WireProto proto,
                    uint64_t conn_id);
  UpPtr CreateUpstream(size_t loop_index, size_t backend_index,
                       WireProto proto);
  void OnUpstreamEvent(const UpPtr& up, uint32_t events);
  void FlushUpstream(const UpPtr& up);
  void ReadUpstream(const UpPtr& up);
  void UpdateUpstreamInterest(const UpPtr& up);
  /// One complete backend response frame: pin maintenance, then relay to
  /// the owning downstream connection under its sequence number.
  void HandleUpstreamFrame(const UpPtr& up, const std::string& frame);
  /// Tears an upstream down and completes every queued request with a
  /// typed error. count_failure feeds the ejection counter (transport
  /// failures do; shutdown does not).
  void FailUpstream(const UpPtr& up, WireError error,
                    std::string_view message, bool count_failure);

  // --- Health checking (loop 0) ---
  void ArmHealthTimer();
  void RunProbes();
  void StartProbe(size_t backend_index);
  void OnProbeEvent(const ProbePtr& probe, uint32_t events);
  void FinishProbe(const ProbePtr& probe, bool success,
                   const std::string& response_line);
  void RecordBackendFailure(size_t backend_index);
  void RecordBackendSuccess(size_t backend_index);
  void RefreshHealthyGauge();

  // --- Session pins ---
  void PinSession(const std::string& token, size_t backend_index);
  void UnpinSession(std::string_view token);

  // --- Local answers ---
  WireFrame BuildAggregatedStats(WireProto proto) const;
  WireFrame BuildMetricsFrame(WireProto proto) const;
  /// The shard map for client-side routing: generation, ring geometry
  /// (seed as a decimal string — it exceeds what a JSON double carries)
  /// and per-backend address/health/draining.
  WireFrame BuildTopologyFrame(WireProto proto) const;
  /// Membership/health/draining changed: clients holding the old ring
  /// should refresh.
  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_acq_rel);
  }

  NavRouterOptions options_;
  std::vector<std::unique_ptr<BackendState>> backends_;
  std::unordered_map<std::string, size_t> backend_index_by_id_;
  HashRing ring_;  // Immutable after construction.

  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> io_threads_;
  std::vector<std::unordered_map<int, ConnPtr>> loop_conns_;
  /// Upstream pool per loop, indexed by UpstreamSlot (loop-thread-only).
  std::vector<std::vector<UpPtr>> loop_upstreams_;
  /// Active probe per backend (loop-0-only).
  std::vector<ProbePtr> probes_;
  std::atomic<size_t> next_loop_{0};
  std::atomic<uint64_t> next_conn_id_{0};

  std::atomic<bool> started_{false};
  std::atomic<bool> shutting_down_{false};
  std::mutex shutdown_mu_;
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  /// token → backend index. Learned from QUERY responses, dropped on
  /// CLOSE and UNKNOWN_SESSION. The only cross-loop mutable routing state.
  mutable std::mutex pins_mu_;
  std::unordered_map<std::string, size_t> pins_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_shed_{0};
  std::atomic<int64_t> connections_open_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> forwarded_{0};
  std::atomic<int64_t> retry_later_{0};
  std::atomic<int64_t> bytes_rx_{0};
  std::atomic<int64_t> bytes_tx_{0};
  /// Starts at 1 so a client's zero-initialized FleetTopology is always
  /// visibly stale.
  std::atomic<uint64_t> generation_{1};
  /// Per-key decayed request rates (mutable: ChooseQueryBackend is
  /// logically const routing but records the observation).
  mutable HotKeyTracker hot_keys_;
  /// Round-robin cursor spreading a hot key across its replica set.
  mutable std::atomic<uint64_t> hot_rr_{0};
};

}  // namespace bionav

#endif  // BIONAV_ROUTER_NAV_ROUTER_H_
