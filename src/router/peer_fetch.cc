#include "router/peer_fetch.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.h"
#include "server/nav_client.h"
#include "util/logging.h"

namespace bionav {

namespace {

Counter* PeerFetchHits() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_peer_fetch_hits_total",
      "Artifact bundles obtained from the ring owner instead of building");
  return c;
}
Counter* PeerFetchMisses() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_peer_fetch_misses_total",
      "Peer artifact fetches that fell back to a local build");
  return c;
}
LatencyHistogram* PeerFetchLatency() {
  static LatencyHistogram* h = GlobalMetrics().GetHistogram(
      "bionav_peer_fetch_us", "FETCH_ARTIFACT round trip incl. deserialize");
  return h;
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PeerArtifactFetcher::PeerArtifactFetcher(const ConceptHierarchy* hierarchy)
    : hierarchy_(hierarchy) {
  BIONAV_CHECK(hierarchy_ != nullptr);
}

void PeerArtifactFetcher::Configure(PeerFetchOptions options) {
  HashRingOptions ring_options;
  ring_options.vnodes = options.vnodes;
  ring_options.seed = options.seed;
  auto ring = std::make_unique<HashRing>(ring_options);
  for (const PeerSpec& peer : options.peers) ring->AddBackend(peer.id);

  std::lock_guard<std::mutex> lock(mu_);
  options_ = std::move(options);
  ring_ = std::move(ring);
  configured_ = true;
  pending_file_.clear();
}

void PeerArtifactFetcher::ConfigureFromFile(std::string path,
                                            std::string self_id) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_file_ = std::move(path);
  pending_self_id_ = std::move(self_id);
  configured_ = false;
}

bool PeerArtifactFetcher::configured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return configured_;
}

Result<PeerFetchOptions> PeerArtifactFetcher::ParsePeersFile(
    std::string_view contents, const std::string& self_id) {
  PeerFetchOptions options;
  options.self_id = self_id;
  std::istringstream in{std::string(contents)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string keyword;
    if (!(fields >> keyword)) continue;  // Blank / comment-only line.
    auto bad = [&](const std::string& what) {
      return Status::InvalidArgument("peers file line " +
                                     std::to_string(line_no) + ": " + what);
    };
    if (keyword == "vnodes") {
      if (!(fields >> options.vnodes) || options.vnodes < 1) {
        return bad("vnodes wants a positive integer");
      }
    } else if (keyword == "seed") {
      if (!(fields >> options.seed)) return bad("seed wants an integer");
    } else if (keyword == "peer") {
      PeerSpec peer;
      std::string endpoint;
      if (!(fields >> peer.id >> endpoint)) {
        return bad("peer wants '<id> <host>:<port>'");
      }
      size_t colon = endpoint.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= endpoint.size()) {
        return bad("endpoint '" + endpoint + "' is not host:port");
      }
      peer.host = endpoint.substr(0, colon);
      peer.port = 0;
      for (size_t i = colon + 1; i < endpoint.size(); ++i) {
        if (endpoint[i] < '0' || endpoint[i] > '9') {
          return bad("port in '" + endpoint + "' is not numeric");
        }
        peer.port = peer.port * 10 + (endpoint[i] - '0');
      }
      if (peer.port < 1 || peer.port > 65535) {
        return bad("port in '" + endpoint + "' out of range");
      }
      options.peers.push_back(std::move(peer));
    } else {
      return bad("unknown keyword '" + keyword + "'");
    }
  }
  if (options.peers.empty()) return Status::InvalidArgument("peers file lists no peers");
  bool self_listed = false;
  for (const PeerSpec& peer : options.peers) {
    if (peer.id == self_id) self_listed = true;
  }
  if (!self_listed) {
    return Status::InvalidArgument("peers file does not list self id '" +
                                   self_id + "'");
  }
  return options;
}

bool PeerArtifactFetcher::EnsureConfigured() {
  std::string path;
  std::string self_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (configured_) return true;
    if (pending_file_.empty()) return false;
    path = pending_file_;
    self_id = pending_self_id_;
  }
  // The router writes the peers file after it has spawned every shard, so
  // a missing file is the normal bootstrap window, not an error: stay
  // unconfigured and re-probe on the next fetch.
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  std::ostringstream contents;
  contents << in.rdbuf();
  Result<PeerFetchOptions> parsed = ParsePeersFile(contents.str(), self_id);
  if (!parsed.ok()) {
    BIONAV_LOG(Warning) << "peers file '" << path
                        << "' unusable: " << parsed.status().ToString();
    return false;
  }
  Configure(parsed.TakeValue());
  return true;
}

std::shared_ptr<const QueryArtifacts> PeerArtifactFetcher::Fetch(
    const std::string& key) {
  if (!EnsureConfigured()) return nullptr;
  PeerSpec owner;
  WireProto proto;
  int64_t connect_timeout_ms, recv_timeout_ms;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string owner_id = ring_->OwnerOf(key);
    if (owner_id.empty() || owner_id == options_.self_id) {
      self_owned_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    for (const PeerSpec& peer : options_.peers) {
      if (peer.id == owner_id) owner = peer;
    }
    proto = options_.proto;
    connect_timeout_ms = options_.connect_timeout_ms;
    recv_timeout_ms = options_.recv_timeout_ms;
  }
  if (owner.port == 0) {
    // Ring and peer list disagree — treat like an unreachable owner.
    misses_.fetch_add(1, std::memory_order_relaxed);
    PeerFetchMisses()->Increment();
    return nullptr;
  }
  const int64_t t0 = SteadyNowUs();
  auto miss = [&]() -> std::shared_ptr<const QueryArtifacts> {
    misses_.fetch_add(1, std::memory_order_relaxed);
    PeerFetchMisses()->Increment();
    return nullptr;
  };
  NavClientOptions client_options;
  client_options.connect_timeout_ms = connect_timeout_ms;
  client_options.recv_timeout_ms = recv_timeout_ms;
  client_options.proto = proto;
  // One short-lived connection per fetch: fetches are rare (first touch of
  // a non-owned key per shard, gated by the local singleflight), so a
  // pooled connection would idle for hours between uses.
  Result<std::unique_ptr<NavClient>> client =
      NavClient::Connect(owner.host, owner.port, client_options);
  if (!client.ok()) return miss();
  Result<std::string> record = client.ValueOrDie()->FetchArtifact(key);
  if (!record.ok()) return miss();
  Result<std::shared_ptr<const QueryArtifacts>> artifacts =
      QueryArtifacts::Deserialize(*hierarchy_, record.ValueOrDie());
  if (!artifacts.ok()) {
    BIONAV_LOG(Warning) << "peer artifact for '" << key << "' from "
                        << owner.id
                        << " undecodable: " << artifacts.status().ToString();
    return miss();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  PeerFetchHits()->Increment();
  PeerFetchLatency()->Record(SteadyNowUs() - t0);
  return artifacts.TakeValue();
}

PeerArtifactFetcher::Stats PeerArtifactFetcher::stats() const {
  Stats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.self_owned = self_owned_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace bionav
