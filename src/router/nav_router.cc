#include "router/nav_router.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

#include "cache/query_artifacts.h"
#include "core/json_export.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace bionav {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-effort one-line reply on a socket about to be closed (accept-path
/// shedding). Always JSON, as in NavServer: the reply may precede the
/// peer's first byte, and binary clients recognize '{' as the fallback.
void SendLineBestEffort(int fd, std::string line) {
  line.push_back('\n');
  [[maybe_unused]] ssize_t n =
      ::send(fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
}

/// iovec segments per sendmsg on the downstream flush path.
constexpr size_t kMaxIov = 64;

constexpr size_t kNoBackend = static_cast<size_t>(-1);

/// Success peek without a full decode: a binary response body is
/// [version][flags][op] with flags bit0 = ok; a JSON response line always
/// opens {"v":1,"ok":... (ResponseBuilder / WireResponse / ErrorReply all
/// emit the members in that order). Only non-OK frames and QUERY replies
/// pay for a real decode.
bool PeekResponseOk(WireProto proto, const std::string& frame) {
  if (proto == WireProto::kBinary) {
    return frame.size() >= 2 &&
           (static_cast<unsigned char>(frame[1]) & 1) != 0;
  }
  return frame.compare(0, 16, "{\"v\":1,\"ok\":true") == 0;
}

/// Full response decode for the frames that need field access (pin
/// learning, error typing): one document shape for both encodings.
Result<JsonValue> DecodeResponseDoc(WireProto proto,
                                    const std::string& frame) {
  if (proto == WireProto::kBinary) return DecodeBinaryResponse(frame);
  return ParseJson(frame);
}

/// Re-frames a relayed payload for the wire: binary frames regain their
/// magic + length prefix, JSON lines their terminator.
void AppendWireFrame(std::string* out, WireProto proto,
                     std::string_view payload) {
  if (proto == WireProto::kBinary) {
    out->push_back(static_cast<char>(kBinaryFrameMagic));
    uint32_t len = static_cast<uint32_t>(payload.size());
    out->push_back(static_cast<char>(len & 0xFF));
    out->push_back(static_cast<char>((len >> 8) & 0xFF));
    out->push_back(static_cast<char>((len >> 16) & 0xFF));
    out->push_back(static_cast<char>((len >> 24) & 0xFF));
    out->append(payload.data(), payload.size());
    return;
  }
  out->append(payload.data(), payload.size());
  out->push_back('\n');
}

Counter* RequestsCounter() {
  static Counter* counter = GlobalMetrics().GetCounter(
      "bionav_router_requests_total", "Request frames received by the router");
  return counter;
}

Counter* ForwardedCounter() {
  static Counter* counter = GlobalMetrics().GetCounter(
      "bionav_router_forwarded_total", "Requests forwarded to backends");
  return counter;
}

Counter* RetryLaterCounter() {
  static Counter* counter = GlobalMetrics().GetCounter(
      "bionav_router_retry_later_total",
      "Requests answered RETRY_LATER by the router");
  return counter;
}

Counter* ProtocolErrorsCounter() {
  static Counter* counter = GlobalMetrics().GetCounter(
      "bionav_router_protocol_errors_total",
      "Request frames rejected by the router before forwarding");
  return counter;
}

Counter* UpstreamErrorsCounter() {
  static Counter* counter = GlobalMetrics().GetCounter(
      "bionav_router_upstream_errors_total",
      "Forwarded requests failed by upstream transport errors");
  return counter;
}

Counter* ProbeFailuresCounter() {
  static Counter* counter = GlobalMetrics().GetCounter(
      "bionav_router_probe_failures_total", "Health probes that failed");
  return counter;
}

Gauge* OpenConnectionsGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge(
      "bionav_router_open_connections",
      "Downstream connections currently open");
  return gauge;
}

Gauge* PinnedSessionsGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge(
      "bionav_router_pinned_sessions", "Live session-token pins");
  return gauge;
}

Gauge* HealthyBackendsGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge(
      "bionav_router_healthy_backends", "Backends currently healthy");
  return gauge;
}

LatencyHistogram* ForwardLatencyHistogram() {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_router_forward_us",
      "Forward-to-response latency through a backend");
  return hist;
}

}  // namespace

const char* BackendHealthName(BackendHealth health) {
  switch (health) {
    case BackendHealth::kHealthy: return "healthy";
    case BackendHealth::kUnhealthy: return "unhealthy";
    case BackendHealth::kHalfOpen: return "halfopen";
  }
  return "unhealthy";
}

NavRouter::NavRouter(std::vector<RouterBackend> backends,
                     NavRouterOptions options)
    : options_(std::move(options)),
      ring_(HashRingOptions{options_.ring_vnodes, options_.ring_seed}),
      hot_keys_(HotKeyTracker::Options{options_.hot_key_halflife_ms,
                                       /*max_keys=*/4096, /*clock=*/{}}) {
  BIONAV_CHECK(!backends.empty()) << "NavRouter needs at least one backend";
  if (options_.io_threads < 1) options_.io_threads = 1;
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.max_inflight_per_connection < 1) {
    options_.max_inflight_per_connection = 1;
  }
  if (options_.max_write_queue_bytes < 4096) {
    options_.max_write_queue_bytes = 4096;
  }
  if (options_.max_upstream_queue_bytes < 4096) {
    options_.max_upstream_queue_bytes = 4096;
  }
  if (options_.upstream_pool_size < 1) options_.upstream_pool_size = 1;
  if (options_.health_failures_to_eject < 1) {
    options_.health_failures_to_eject = 1;
  }
  for (RouterBackend& backend : backends) {
    if (backend.id.empty()) {
      backend.id = backend.host + ":" + std::to_string(backend.port);
    }
    BIONAV_CHECK(backend_index_by_id_.count(backend.id) == 0)
        << "duplicate backend id '" << backend.id << "'";
    backend_index_by_id_.emplace(backend.id, backends_.size());
    auto state = std::make_unique<BackendState>();
    state->config = backend;
    backends_.push_back(std::move(state));
    ring_.AddBackend(backend.id);
  }
}

Status NavRouter::Start() {
  BIONAV_CHECK(!started_.load()) << "NavRouter started twice";

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 512) != 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  loops_.clear();
  loop_conns_.clear();
  loop_upstreams_.clear();
  for (int i = 0; i < options_.io_threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  loop_conns_.resize(loops_.size());
  loop_upstreams_.resize(loops_.size());
  size_t slots = backends_.size() * static_cast<size_t>(kNumWireProtos) *
                 static_cast<size_t>(options_.upstream_pool_size);
  for (auto& pool : loop_upstreams_) pool.resize(slots);
  probes_.assign(backends_.size(), nullptr);
  RefreshHealthyGauge();

  Status added = loops_[0]->Add(listen_fd_, EventLoop::kReadable,
                                [this](uint32_t) { OnAcceptable(); });
  if (!added.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return added;
  }

  started_.store(true);
  for (size_t i = 0; i < loops_.size(); ++i) {
    io_threads_.emplace_back([this, i] { IoThreadMain(i); });
  }
  if (options_.health_interval_ms > 0) {
    loops_[0]->RunInLoop([this] { ArmHealthTimer(); });
  }
  return Status::OK();
}

void NavRouter::IoThreadMain(size_t loop_index) {
  loops_[loop_index]->Run();
}

// ---------------------------------------------------------------------------
// Downstream path (the NavServer reactor shape; see nav_server.cc)
// ---------------------------------------------------------------------------

void NavRouter::OnAcceptable() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener gone.
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    if (shutting_down_.load(std::memory_order_acquire)) {
      SendLineBestEffort(
          fd, ErrorReply(WireError::kShuttingDown, "router is draining"));
      ::close(fd);
      continue;
    }
    if (connections_open_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      SendLineBestEffort(fd, ErrorReply(WireError::kRetryLater,
                                        "router at capacity, retry later"));
      ::close(fd);
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    AdmitConnection(fd);
  }
}

void NavRouter::AdmitConnection(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  connections_open_.fetch_add(1, std::memory_order_acq_rel);
  OpenConnectionsGauge()->Add(1);

  size_t loop_index =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  ConnPtr conn = std::make_shared<Conn>(options_.max_frame_bytes);
  conn->conn_id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
  conn->fd = fd;
  conn->loop_index = loop_index;
  conn->last_activity_ms = SteadyNowMs();

  EventLoop* loop = loops_[loop_index].get();
  loop->RunInLoop([this, loop, conn] {
    if (shutting_down_.load(std::memory_order_acquire)) {
      SendLineBestEffort(conn->fd, ErrorReply(WireError::kShuttingDown,
                                              "router is draining"));
      ::close(conn->fd);
      conn->closed = true;
      connections_open_.fetch_sub(1, std::memory_order_acq_rel);
      OpenConnectionsGauge()->Add(-1);
      drain_cv_.notify_all();
      return;
    }
    loop_conns_[conn->loop_index].emplace(conn->fd, conn);
    Status added = loop->Add(conn->fd, EventLoop::kReadable,
                             [this, conn](uint32_t events) {
                               OnConnectionEvent(conn, events);
                             });
    if (!added.ok()) {
      loop_conns_[conn->loop_index].erase(conn->fd);
      ::close(conn->fd);
      conn->closed = true;
      connections_open_.fetch_sub(1, std::memory_order_acq_rel);
      OpenConnectionsGauge()->Add(-1);
      drain_cv_.notify_all();
      return;
    }
    ArmIdleTimer(conn);
  });
}

void NavRouter::OnConnectionEvent(const ConnPtr& conn, uint32_t events) {
  if (conn->closed) return;
  if (events & EventLoop::kError) {
    CloseConnection(conn);
    return;
  }
  if (events & EventLoop::kWritable) FlushWrites(conn);
  if (conn->closed) return;
  if (events & EventLoop::kReadable) ReadConnection(conn);
}

bool NavRouter::FeedConnection(const ConnPtr& conn, std::string_view data) {
  if (!conn->proto_decided) {
    conn->preamble.append(data.data(), data.size());
    if (conn->preamble.empty()) return true;
    if (conn->preamble[0] != kBinaryPreamble[0]) {
      conn->proto = WireProto::kJson;
      conn->proto_decided = true;
      std::string buffered = std::move(conn->preamble);
      conn->preamble.clear();
      return conn->decoder.Feed(buffered);
    }
    if (conn->preamble.size() < sizeof(kBinaryPreamble)) return true;
    if (std::memcmp(conn->preamble.data(), kBinaryPreamble,
                    sizeof(kBinaryPreamble)) != 0) {
      conn->preamble_error = true;
      return false;
    }
    conn->proto = WireProto::kBinary;
    conn->proto_decided = true;
    std::string buffered = std::move(conn->preamble);
    conn->preamble.clear();
    return conn->bdecoder.Feed(
        std::string_view(buffered).substr(sizeof(kBinaryPreamble)));
  }
  return conn->proto == WireProto::kBinary ? conn->bdecoder.Feed(data)
                                           : conn->decoder.Feed(data);
}

bool NavRouter::HasBufferedFrame(const ConnPtr& conn) const {
  if (!conn->proto_decided) return false;
  return conn->proto == WireProto::kBinary ? conn->bdecoder.has_frame()
                                           : conn->decoder.has_frame();
}

bool NavRouter::NextBufferedFrame(const ConnPtr& conn, std::string* payload) {
  if (!conn->proto_decided) return false;
  return conn->proto == WireProto::kBinary ? conn->bdecoder.Next(payload)
                                           : conn->decoder.Next(payload);
}

bool NavRouter::DecoderBroken(const ConnPtr& conn) const {
  if (conn->preamble_error) return true;
  if (!conn->proto_decided) return false;
  return conn->proto == WireProto::kBinary ? conn->bdecoder.broken()
                                           : conn->decoder.overflowed();
}

void NavRouter::ReadConnection(const ConnPtr& conn) {
  char chunk[16384];
  int64_t received = 0;
  bool peer_eof = false;
  for (int i = 0; i < 4; ++i) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      received += n;
      if (!FeedConnection(conn,
                          std::string_view(chunk, static_cast<size_t>(n)))) {
        break;  // Preamble error or broken decoder; handled below.
      }
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);
    return;
  }
  if (received > 0) {
    conn->last_activity_ms = SteadyNowMs();
    bytes_rx_.fetch_add(received, std::memory_order_relaxed);
  }

  DispatchFrames(conn);
  if (conn->closed) return;

  if (conn->preamble_error && !conn->draining) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ProtocolErrorsCounter()->Increment();
    CountRequest();
    uint64_t seq = conn->next_dispatch_seq++;
    ++conn->inflight;
    conn->draining = true;
    conn->close_after_flush = true;
    CompleteRequest(conn, seq,
                    WireResponse::Error(WireProto::kJson,
                                        WireError::kBadRequest,
                                        "unrecognized protocol preamble"));
    return;
  }
  if (DecoderBroken(conn) && !conn->draining) {
    bool oversized = conn->proto == WireProto::kBinary
                         ? conn->bdecoder.overflowed()
                         : conn->decoder.overflowed();
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ProtocolErrorsCounter()->Increment();
    CountRequest();
    uint64_t seq = conn->next_dispatch_seq++;
    ++conn->inflight;
    conn->draining = true;
    conn->close_after_flush = true;
    std::string message =
        oversized ? "request frame exceeds " +
                        std::to_string(options_.max_frame_bytes) + " bytes"
                  : "malformed binary frame header";
    CompleteRequest(conn, seq,
                    WireResponse::Error(conn->proto, WireError::kBadRequest,
                                        message));
    return;
  }
  if (peer_eof) {
    conn->close_after_flush = true;
    UpdateInterest(conn);
    if (conn->inflight == 0 && conn->write_queue.empty() &&
        !HasBufferedFrame(conn)) {
      CloseConnection(conn);
    }
    return;
  }
  UpdateInterest(conn);
}

void NavRouter::DispatchFrames(const ConnPtr& conn) {
  if (conn->dispatching) return;
  conn->dispatching = true;
  std::string payload;
  while (!conn->closed) {
    if (conn->draining) {
      if (!NextBufferedFrame(conn, &payload)) break;
      if (payload.empty() && conn->proto == WireProto::kJson) continue;
      CountRequest();
      uint64_t seq = conn->next_dispatch_seq++;
      ++conn->inflight;
      CompleteRequest(conn, seq,
                      WireResponse::Error(conn->proto,
                                          WireError::kShuttingDown,
                                          "router is draining"));
      continue;
    }
    if (conn->inflight >= options_.max_inflight_per_connection) break;
    if (!NextBufferedFrame(conn, &payload)) break;
    if (payload.empty() && conn->proto == WireProto::kJson) continue;
    uint64_t seq = conn->next_dispatch_seq++;
    ++conn->inflight;
    RouteFrame(conn, seq, payload);
  }
  conn->dispatching = false;
}

void NavRouter::CompleteRequest(const ConnPtr& conn, uint64_t seq,
                                WireFrame response) {
  if (conn->closed) return;
  --conn->inflight;
  if (seq == conn->next_release_seq && conn->completed.empty()) {
    conn->write_queue_bytes += response.size();
    conn->write_queue.push_back(std::move(response));
    ++conn->next_release_seq;
  } else {
    conn->completed.emplace(seq, std::move(response));
    while (!conn->completed.empty() &&
           conn->completed.begin()->first == conn->next_release_seq) {
      WireFrame& ready = conn->completed.begin()->second;
      conn->write_queue_bytes += ready.size();
      conn->write_queue.push_back(std::move(ready));
      conn->completed.erase(conn->completed.begin());
      ++conn->next_release_seq;
    }
  }
  FlushWrites(conn);
  if (conn->closed) return;
  if (HasBufferedFrame(conn)) DispatchFrames(conn);
  if (!conn->closed) UpdateInterest(conn);
}

void NavRouter::FlushWrites(const ConnPtr& conn) {
  while (!conn->write_queue.empty()) {
    iovec iov[kMaxIov];
    size_t iov_count = 0;
    size_t batch_bytes = 0;
    size_t skip = conn->write_offset;
    for (const WireFrame& frame : conn->write_queue) {
      if (iov_count + 2 > kMaxIov) break;
      if (skip < frame.head.size()) {
        iov[iov_count].iov_base = const_cast<char*>(frame.head.data()) + skip;
        iov[iov_count].iov_len = frame.head.size() - skip;
        batch_bytes += iov[iov_count].iov_len;
        ++iov_count;
        skip = 0;
      } else {
        skip -= frame.head.size();
      }
      if (frame.body != nullptr) {
        if (skip < frame.body->size()) {
          iov[iov_count].iov_base =
              const_cast<char*>(frame.body->data()) + skip;
          iov[iov_count].iov_len = frame.body->size() - skip;
          batch_bytes += iov[iov_count].iov_len;
          ++iov_count;
          skip = 0;
        } else {
          skip -= frame.body->size();
        }
      }
    }
    if (iov_count == 0) break;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn);
      return;
    }
    conn->write_queue_bytes -= static_cast<size_t>(n);
    conn->write_offset += static_cast<size_t>(n);
    bytes_tx_.fetch_add(n, std::memory_order_relaxed);
    while (!conn->write_queue.empty() &&
           conn->write_offset >= conn->write_queue.front().size()) {
      conn->write_offset -= conn->write_queue.front().size();
      conn->write_queue.pop_front();
    }
    if (static_cast<size_t>(n) < batch_bytes) break;
  }
  UpdateInterest(conn);
  if (conn->close_after_flush && conn->inflight == 0 &&
      conn->write_queue.empty() && conn->completed.empty() &&
      !HasBufferedFrame(conn)) {
    CloseConnection(conn);
  }
}

void NavRouter::UpdateInterest(const ConnPtr& conn) {
  if (conn->closed) return;
  bool want_read = !conn->draining && !conn->close_after_flush &&
                   !DecoderBroken(conn) &&
                   conn->inflight < options_.max_inflight_per_connection &&
                   conn->write_queue_bytes < options_.max_write_queue_bytes;
  bool want_write = !conn->write_queue.empty();
  if (want_read == conn->reading && want_write == conn->want_write) return;
  uint32_t events = (want_read ? EventLoop::kReadable : 0) |
                    (want_write ? EventLoop::kWritable : 0);
  loops_[conn->loop_index]->Modify(conn->fd, events);
  conn->reading = want_read;
  conn->want_write = want_write;
}

void NavRouter::ArmIdleTimer(const ConnPtr& conn) {
  if (options_.idle_timeout_ms <= 0 || conn->closed) return;
  int64_t idle = SteadyNowMs() - conn->last_activity_ms;
  int64_t remaining = options_.idle_timeout_ms - idle;
  if (remaining <= 0) {
    if (conn->inflight == 0 && conn->write_queue.empty() &&
        conn->completed.empty()) {
      CloseConnection(conn);
      return;
    }
    remaining = options_.idle_timeout_ms;
  }
  conn->idle_timer =
      loops_[conn->loop_index]->AddTimer(remaining, [this, conn] {
        conn->idle_timer = kInvalidTimer;
        ArmIdleTimer(conn);
      });
}

void NavRouter::CloseConnection(const ConnPtr& conn) {
  if (conn->closed) return;
  conn->closed = true;
  EventLoop* loop = loops_[conn->loop_index].get();
  if (conn->idle_timer != kInvalidTimer) {
    loop->CancelTimer(conn->idle_timer);
    conn->idle_timer = kInvalidTimer;
  }
  loop->Remove(conn->fd);
  ::close(conn->fd);
  loop_conns_[conn->loop_index].erase(conn->fd);
  connections_open_.fetch_sub(1, std::memory_order_acq_rel);
  OpenConnectionsGauge()->Add(-1);
  drain_cv_.notify_all();
}

void NavRouter::DrainConnection(const ConnPtr& conn) {
  if (conn->closed) return;
  conn->draining = true;
  conn->close_after_flush = true;
  DispatchFrames(conn);
  UpdateInterest(conn);
  if (conn->inflight == 0 && conn->write_queue.empty() &&
      conn->completed.empty()) {
    CloseConnection(conn);
  }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

void NavRouter::CountRequest() {
  requests_.fetch_add(1, std::memory_order_relaxed);
  RequestsCounter()->Increment();
}

void NavRouter::RouteFrame(const ConnPtr& conn, uint64_t seq,
                           const std::string& payload) {
  CountRequest();
  Request owned;  // Backing storage for the JSON parse path.
  RequestView view;
  std::string error_message;
  WireError parse_error;
  if (conn->proto == WireProto::kBinary) {
    parse_error = ParseRequestBinary(payload, &view, &error_message);
  } else {
    parse_error = ParseRequest(payload, &owned, &error_message);
    if (parse_error == WireError::kNone) view = MakeRequestView(owned);
  }
  if (parse_error != WireError::kNone) {
    // The router rejects unparsable frames itself — a typed error without
    // a backend round trip, and no garbage ever reaches a shard.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    ProtocolErrorsCounter()->Increment();
    CompleteRequest(conn, seq,
                    WireResponse::Error(conn->proto, parse_error,
                                        error_message));
    return;
  }

  switch (view.op) {
    case RequestOp::kStats:
      CompleteRequest(conn, seq, BuildAggregatedStats(conn->proto));
      return;
    case RequestOp::kMetrics:
      CompleteRequest(conn, seq, BuildMetricsFrame(conn->proto));
      return;
    case RequestOp::kQuery: {
      int chosen = ChooseQueryBackend(NormalizeQueryKey(view.query));
      if (chosen < 0) {
        AnswerRetryLater(conn, seq, kNoBackend, "all backends draining");
        return;
      }
      size_t backend = static_cast<size_t>(chosen);
      if (backends_[backend]->health.load(std::memory_order_acquire) !=
          static_cast<int>(BackendHealth::kHealthy)) {
        AnswerRetryLater(conn, seq, backend,
                         "shard '" + backends_[backend]->config.id +
                             "' is down, retry later");
        return;
      }
      ForwardToBackend(conn, seq, backend, view, payload);
      return;
    }
    case RequestOp::kTopology:
      CompleteRequest(conn, seq, BuildTopologyFrame(conn->proto));
      return;
    case RequestOp::kFetchArtifact: {
      // Strict owner routing: the shard asking is, by construction, a
      // non-owner holding the key — spreading or remapping here would
      // bounce the fetch back to a replica that also lacks the bundle.
      int chosen = ChooseOwnerBackend(NormalizeQueryKey(view.query));
      if (chosen < 0) {
        AnswerRetryLater(conn, seq, kNoBackend, "all backends draining");
        return;
      }
      size_t backend = static_cast<size_t>(chosen);
      if (backends_[backend]->health.load(std::memory_order_acquire) !=
          static_cast<int>(BackendHealth::kHealthy)) {
        AnswerRetryLater(conn, seq, backend,
                         "shard '" + backends_[backend]->config.id +
                             "' is down, retry later");
        return;
      }
      ForwardToBackend(conn, seq, backend, view, payload);
      return;
    }
    default: {
      size_t backend = ChooseSessionBackend(view.token);
      if (backends_[backend]->health.load(std::memory_order_acquire) !=
          static_cast<int>(BackendHealth::kHealthy)) {
        // The session's shard is down. Its state lives only there, so the
        // honest answer is a typed retry — not a silent remap that would
        // surface UNKNOWN_SESSION from an innocent shard.
        AnswerRetryLater(conn, seq, backend,
                         "shard '" + backends_[backend]->config.id +
                             "' is down, retry later");
        return;
      }
      ForwardToBackend(conn, seq, backend, view, payload);
      return;
    }
  }
}

int NavRouter::ChooseQueryBackend(std::string_view query_key) const {
  if (options_.replicas > 1) {
    double qps = hot_keys_.Record(std::string(query_key));
    if (qps >= options_.replicate_above_qps) {
      // Hot slice: round-robin across the first `replicas` ring-successors
      // that could actually serve (healthy and not draining). Unlike the
      // cold path below, health *does* gate membership here — a replica is
      // an optimization, and a dead one has no slice state worth honoring.
      // The owner stays in the set, so replication never makes an owner
      // colder; non-owner replicas pull the bundle via FETCH_ARTIFACT on
      // first touch instead of rebuilding it.
      std::vector<size_t> replica_set;
      for (const std::string& id :
           ring_.PreferenceOrder(query_key,
                                 static_cast<size_t>(options_.replicas))) {
        const size_t index = backend_index_by_id_.at(id);
        const BackendState& backend = *backends_[index];
        if (backend.draining.load(std::memory_order_acquire)) continue;
        if (backend.health.load(std::memory_order_acquire) !=
            static_cast<int>(BackendHealth::kHealthy)) {
          continue;
        }
        replica_set.push_back(index);
      }
      if (!replica_set.empty()) {
        uint64_t turn = hot_rr_.fetch_add(1, std::memory_order_relaxed);
        return static_cast<int>(replica_set[turn % replica_set.size()]);
      }
      // No healthy replica: fall through to the strict walk so the owner
      // slice still answers its honest RETRY_LATER.
    }
  }
  return ChooseOwnerBackend(query_key);
}

int NavRouter::ChooseOwnerBackend(std::string_view query_key) const {
  // Owner first, then the clockwise walk — a draining backend stops
  // receiving *new* sessions while its pinned ones finish elsewhere in
  // ForwardToBackend. Health is deliberately not part of the walk: a dead
  // owner's slice answers RETRY_LATER instead of silently migrating, so a
  // flapping shard cannot smear its keys' artifacts across the fleet.
  for (const std::string& id : ring_.PreferenceOrder(query_key)) {
    const BackendState& backend = *backends_[backend_index_by_id_.at(id)];
    if (backend.draining.load(std::memory_order_acquire)) continue;
    return static_cast<int>(backend_index_by_id_.at(id));
  }
  return -1;
}

size_t NavRouter::ChooseSessionBackend(std::string_view token) const {
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    auto it = pins_.find(std::string(token));
    if (it != pins_.end()) return it->second;
  }
  // No pin — but when the fleet was spawned with per-shard token prefixes
  // (bionav_route auto mode passes --token-prefix "<id>-"), the token
  // itself names its minting shard as "<backend-id>-s<ordinal>". Recover
  // it: a session created over a *direct* client-routed connection was
  // never pinned here, yet must still reach its shard when the client
  // falls back to proxying.
  size_t end = token.size();
  while (end > 0 && token[end - 1] >= '0' && token[end - 1] <= '9') --end;
  if (end >= 2 && end < token.size() && token[end - 1] == 's' &&
      token[end - 2] == '-') {
    auto it = backend_index_by_id_.find(std::string(token.substr(0, end - 2)));
    if (it != backend_index_by_id_.end()) return it->second;
  }
  // Last resort (foreign prefix, stale client token): the ring owner of
  // the token answers authoritatively — usually with UNKNOWN_SESSION.
  return backend_index_by_id_.at(ring_.OwnerOf(token));
}

void NavRouter::AnswerRetryLater(const ConnPtr& conn, uint64_t seq,
                                 size_t backend_index,
                                 std::string_view message) {
  retry_later_.fetch_add(1, std::memory_order_relaxed);
  RetryLaterCounter()->Increment();
  if (backend_index != kNoBackend) {
    backends_[backend_index]->retry_later.fetch_add(
        1, std::memory_order_relaxed);
  }
  CompleteRequest(conn, seq,
                  WireResponse::Error(conn->proto, WireError::kRetryLater,
                                      message));
}

void NavRouter::ForwardToBackend(const ConnPtr& conn, uint64_t seq,
                                 size_t backend_index, const RequestView& view,
                                 const std::string& payload) {
  UpPtr up =
      GetUpstream(conn->loop_index, backend_index, conn->proto, conn->conn_id);
  if (up == nullptr) {
    AnswerRetryLater(conn, seq, backend_index,
                     "shard '" + backends_[backend_index]->config.id +
                         "' unavailable, retry later");
    return;
  }
  if (up->outbox.size() - up->out_off + payload.size() >
      options_.max_upstream_queue_bytes) {
    // Per-backend bounded write queue: shed instead of buffering without
    // bound against a stalled shard.
    AnswerRetryLater(conn, seq, backend_index,
                     "shard '" + backends_[backend_index]->config.id +
                         "' write queue full, retry later");
    return;
  }
  AppendWireFrame(&up->outbox, conn->proto, payload);
  Pending pending;
  pending.conn = conn;
  pending.seq = seq;
  pending.op = view.op;
  pending.token = std::string(view.token);
  pending.learn_token = view.op == RequestOp::kQuery;
  pending.sent_us = SteadyNowUs();
  up->pending.push_back(std::move(pending));
  forwarded_.fetch_add(1, std::memory_order_relaxed);
  ForwardedCounter()->Increment();
  backends_[backend_index]->forwarded.fetch_add(1, std::memory_order_relaxed);
  if (!up->connecting) {
    FlushUpstream(up);
  } else {
    UpdateUpstreamInterest(up);
  }
}

// ---------------------------------------------------------------------------
// Upstream pool
// ---------------------------------------------------------------------------

size_t NavRouter::UpstreamSlot(size_t backend_index, WireProto proto,
                               uint64_t conn_id) const {
  size_t pool = static_cast<size_t>(options_.upstream_pool_size);
  // Slot affinity by downstream connection id: all of one connection's
  // requests to a given backend ride the same upstream, preserving that
  // connection's request order through the shard.
  return (backend_index * static_cast<size_t>(kNumWireProtos) +
          static_cast<size_t>(proto)) *
             pool +
         static_cast<size_t>(conn_id % pool);
}

NavRouter::UpPtr NavRouter::GetUpstream(size_t loop_index,
                                        size_t backend_index, WireProto proto,
                                        uint64_t conn_id) {
  UpPtr& slot =
      loop_upstreams_[loop_index][UpstreamSlot(backend_index, proto,
                                               conn_id)];
  if (slot == nullptr || slot->closed) {
    slot = CreateUpstream(loop_index, backend_index, proto);
  }
  return slot;
}

NavRouter::UpPtr NavRouter::CreateUpstream(size_t loop_index,
                                           size_t backend_index,
                                           WireProto proto) {
  const RouterBackend& config = backends_[backend_index]->config;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return nullptr;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config.port));
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return nullptr;
  }
  bool connecting = false;
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) {
      connecting = true;
      break;
    }
    // Synchronous refusal (rare on loopback, but possible): counts toward
    // ejection like any transport failure.
    ::close(fd);
    RecordBackendFailure(backend_index);
    return nullptr;
  }

  UpPtr up = std::make_shared<Upstream>();
  up->backend_index = backend_index;
  up->proto = proto;
  up->loop_index = loop_index;
  up->fd = fd;
  up->connecting = connecting;
  if (proto == WireProto::kBinary) {
    up->outbox.assign(kBinaryPreamble, sizeof(kBinaryPreamble));
  }
  Status added = loops_[loop_index]->Add(
      fd, EventLoop::kReadable | EventLoop::kWritable,
      [this, up](uint32_t events) { OnUpstreamEvent(up, events); });
  if (!added.ok()) {
    ::close(fd);
    return nullptr;
  }
  up->reading = true;
  up->want_write = true;
  if (connecting && options_.connect_timeout_ms > 0) {
    up->connect_timer = loops_[loop_index]->AddTimer(
        options_.connect_timeout_ms, [this, up] {
          up->connect_timer = kInvalidTimer;
          if (!up->closed && up->connecting) {
            FailUpstream(up, WireError::kRetryLater,
                         "backend connect timed out", true);
          }
        });
  }
  return up;
}

void NavRouter::OnUpstreamEvent(const UpPtr& up, uint32_t events) {
  if (up->closed) return;
  if (events & EventLoop::kError) {
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    ::getsockopt(up->fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    FailUpstream(up, WireError::kRetryLater,
                 std::string("backend connection error: ") +
                     std::strerror(soerr != 0 ? soerr : ECONNRESET),
                 true);
    return;
  }
  if (events & EventLoop::kWritable) {
    if (up->connecting) {
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      ::getsockopt(up->fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        FailUpstream(up, WireError::kRetryLater,
                     std::string("backend connect failed: ") +
                         std::strerror(soerr),
                     true);
        return;
      }
      up->connecting = false;
      if (up->connect_timer != kInvalidTimer) {
        loops_[up->loop_index]->CancelTimer(up->connect_timer);
        up->connect_timer = kInvalidTimer;
      }
    }
    FlushUpstream(up);
    if (up->closed) return;
  }
  if (events & EventLoop::kReadable) ReadUpstream(up);
}

void NavRouter::FlushUpstream(const UpPtr& up) {
  while (up->out_off < up->outbox.size()) {
    ssize_t n = ::send(up->fd, up->outbox.data() + up->out_off,
                       up->outbox.size() - up->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      FailUpstream(up, WireError::kRetryLater,
                   std::string("backend send failed: ") +
                       std::strerror(errno),
                   true);
      return;
    }
    up->out_off += static_cast<size_t>(n);
  }
  if (up->out_off >= up->outbox.size()) {
    up->outbox.clear();
    up->out_off = 0;
  } else if (up->out_off > (64u << 10) &&
             up->out_off * 2 > up->outbox.size()) {
    up->outbox.erase(0, up->out_off);
    up->out_off = 0;
  }
  UpdateUpstreamInterest(up);
}

void NavRouter::UpdateUpstreamInterest(const UpPtr& up) {
  if (up->closed) return;
  bool want_write = up->connecting || up->out_off < up->outbox.size();
  bool want_read = true;  // Responses may arrive any time.
  if (want_read == up->reading && want_write == up->want_write) return;
  uint32_t events = (want_read ? EventLoop::kReadable : 0) |
                    (want_write ? EventLoop::kWritable : 0);
  loops_[up->loop_index]->Modify(up->fd, events);
  up->reading = want_read;
  up->want_write = want_write;
}

void NavRouter::ReadUpstream(const UpPtr& up) {
  char chunk[16384];
  bool peer_eof = false;
  for (int i = 0; i < 4; ++i) {
    ssize_t n = ::recv(up->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      std::string_view data(chunk, static_cast<size_t>(n));
      if (up->proto == WireProto::kBinary && !up->json_fallback &&
          !up->saw_first_byte) {
        up->saw_first_byte = true;
        // A '{' before any binary frame is the backend's pre-negotiation
        // JSON reply (accept-path shed or drain) — it will close next.
        if (data[0] == '{') up->json_fallback = true;
      }
      bool fed = (up->proto == WireProto::kJson || up->json_fallback)
                     ? up->decoder.Feed(data)
                     : up->bdecoder.Feed(data);
      if (!fed) break;  // Broken decoder; handled below.
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    FailUpstream(up, WireError::kRetryLater,
                 std::string("backend recv failed: ") + std::strerror(errno),
                 true);
    return;
  }

  if (up->json_fallback) {
    // The backend answered in JSON on a binary upstream: it shed or is
    // draining, and the typed error applies to everything queued here.
    std::string line;
    if (up->decoder.Next(&line)) {
      WireError error = WireError::kRetryLater;
      std::string message = "backend shed this connection";
      Result<JsonValue> parsed = ParseJson(line);
      if (parsed.ok()) {
        const JsonValue& doc = parsed.ValueOrDie();
        if (doc.StringOr("error", "") ==
            WireErrorName(WireError::kShuttingDown)) {
          error = WireError::kShuttingDown;
        }
        message = doc.StringOr("message", message);
      }
      FailUpstream(up, error, message, false);
      return;
    }
  } else {
    std::string frame;
    while (!up->closed) {
      bool have = up->proto == WireProto::kBinary ? up->bdecoder.Next(&frame)
                                                  : up->decoder.Next(&frame);
      if (!have) break;
      if (frame.empty() && up->proto == WireProto::kJson) continue;
      HandleUpstreamFrame(up, frame);
    }
    if (up->closed) return;
    bool broken = up->proto == WireProto::kBinary ? up->bdecoder.broken()
                                                  : up->decoder.overflowed();
    if (broken) {
      FailUpstream(up, WireError::kInternal,
                   "malformed response from backend", true);
      return;
    }
  }
  if (peer_eof && !up->closed) {
    // An idle upstream the backend reaped is not a failure; one with
    // requests outstanding is.
    FailUpstream(up, WireError::kRetryLater, "backend closed connection",
                 !up->pending.empty());
  }
}

void NavRouter::HandleUpstreamFrame(const UpPtr& up,
                                    const std::string& frame) {
  if (up->pending.empty()) {
    // A response nothing asked for: the stream is out of sync.
    FailUpstream(up, WireError::kInternal,
                 "unsolicited response from backend", true);
    return;
  }
  Pending pending = std::move(up->pending.front());
  up->pending.pop_front();
  RecordBackendSuccess(up->backend_index);

  bool ok = PeekResponseOk(up->proto, frame);
  if (ok && pending.learn_token) {
    Result<JsonValue> doc = DecodeResponseDoc(up->proto, frame);
    if (doc.ok()) {
      std::string token = doc.ValueOrDie().StringOr("token", "");
      if (!token.empty()) PinSession(token, up->backend_index);
    }
  } else if (ok && pending.op == RequestOp::kClose) {
    UnpinSession(pending.token);
  } else if (!ok) {
    Result<JsonValue> doc = DecodeResponseDoc(up->proto, frame);
    if (doc.ok() && doc.ValueOrDie().StringOr("error", "") ==
                        WireErrorName(WireError::kUnknownSession)) {
      // The shard no longer knows the session (evicted, expired): the pin
      // is stale, drop it so a recreated token can re-place freely.
      UnpinSession(pending.token);
    }
  }
  ForwardLatencyHistogram()->Record(SteadyNowUs() - pending.sent_us);

  if (pending.conn == nullptr || pending.conn->closed) return;
  WireFrame response;
  AppendWireFrame(&response.head, up->proto, frame);
  CompleteRequest(pending.conn, pending.seq, std::move(response));
}

void NavRouter::FailUpstream(const UpPtr& up, WireError error,
                             std::string_view message, bool count_failure) {
  if (up->closed) return;
  up->closed = true;
  EventLoop* loop = loops_[up->loop_index].get();
  if (up->connect_timer != kInvalidTimer) {
    loop->CancelTimer(up->connect_timer);
    up->connect_timer = kInvalidTimer;
  }
  loop->Remove(up->fd);
  ::close(up->fd);
  // Detach from the pool slot first: completions below can re-enter the
  // dispatch path and must get a fresh upstream, not this corpse.
  for (size_t s = 0; s < static_cast<size_t>(options_.upstream_pool_size);
       ++s) {
    UpPtr& candidate = loop_upstreams_[up->loop_index][UpstreamSlot(
        up->backend_index, up->proto, s)];
    if (candidate == up) candidate = nullptr;
  }
  if (count_failure) RecordBackendFailure(up->backend_index);
  std::deque<Pending> pending = std::move(up->pending);
  up->pending.clear();
  for (Pending& p : pending) {
    backends_[up->backend_index]->upstream_errors.fetch_add(
        1, std::memory_order_relaxed);
    UpstreamErrorsCounter()->Increment();
    if (p.conn == nullptr || p.conn->closed) continue;
    CompleteRequest(p.conn, p.seq,
                    WireResponse::Error(p.conn->proto, error, message));
  }
}

// ---------------------------------------------------------------------------
// Session pins
// ---------------------------------------------------------------------------

void NavRouter::PinSession(const std::string& token, size_t backend_index) {
  std::lock_guard<std::mutex> lock(pins_mu_);
  auto [it, inserted] = pins_.emplace(token, backend_index);
  if (!inserted) it->second = backend_index;
  if (inserted) PinnedSessionsGauge()->Add(1);
}

void NavRouter::UnpinSession(std::string_view token) {
  std::lock_guard<std::mutex> lock(pins_mu_);
  if (pins_.erase(std::string(token)) > 0) PinnedSessionsGauge()->Add(-1);
}

// ---------------------------------------------------------------------------
// Health checking
// ---------------------------------------------------------------------------

void NavRouter::ArmHealthTimer() {
  if (shutting_down_.load(std::memory_order_acquire)) return;
  loops_[0]->AddTimer(options_.health_interval_ms, [this] {
    RunProbes();
    ArmHealthTimer();
  });
}

void NavRouter::RunProbes() {
  if (shutting_down_.load(std::memory_order_acquire)) return;
  int64_t now = SteadyNowMs();
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (probes_[i] != nullptr) continue;  // Previous probe still in flight.
    BackendState& backend = *backends_[i];
    int health = backend.health.load(std::memory_order_acquire);
    if (health == static_cast<int>(BackendHealth::kUnhealthy)) {
      if (now - backend.ejected_at_ms.load(std::memory_order_acquire) <
          options_.half_open_after_ms) {
        continue;  // Still cooling down.
      }
      backend.health.store(static_cast<int>(BackendHealth::kHalfOpen),
                           std::memory_order_release);
      RefreshHealthyGauge();
    }
    StartProbe(i);
  }
}

void NavRouter::StartProbe(size_t backend_index) {
  const RouterBackend& config = backends_[backend_index]->config;
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(config.port));
  if (::inet_pton(AF_INET, config.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return;
  }
  bool connecting = false;
  while (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
         0) {
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS) {
      connecting = true;
      break;
    }
    ::close(fd);
    backends_[backend_index]->probes_failed.fetch_add(
        1, std::memory_order_relaxed);
    ProbeFailuresCounter()->Increment();
    RecordBackendFailure(backend_index);
    return;
  }
  ProbePtr probe = std::make_shared<Probe>();
  probe->backend_index = backend_index;
  probe->fd = fd;
  probe->connecting = connecting;
  probe->outbox = "{\"v\":1,\"op\":\"STATS\"}\n";
  Status added = loops_[0]->Add(
      fd, EventLoop::kReadable | EventLoop::kWritable,
      [this, probe](uint32_t events) { OnProbeEvent(probe, events); });
  if (!added.ok()) {
    ::close(fd);
    return;
  }
  if (options_.health_timeout_ms > 0) {
    probe->timeout_timer =
        loops_[0]->AddTimer(options_.health_timeout_ms, [this, probe] {
          probe->timeout_timer = kInvalidTimer;
          FinishProbe(probe, false, "");
        });
  }
  probes_[backend_index] = probe;
}

void NavRouter::OnProbeEvent(const ProbePtr& probe, uint32_t events) {
  if (probe->done) return;
  if (events & EventLoop::kError) {
    FinishProbe(probe, false, "");
    return;
  }
  if (events & EventLoop::kWritable) {
    if (probe->connecting) {
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      ::getsockopt(probe->fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
      if (soerr != 0) {
        FinishProbe(probe, false, "");
        return;
      }
      probe->connecting = false;
    }
    while (probe->out_off < probe->outbox.size()) {
      ssize_t n = ::send(probe->fd, probe->outbox.data() + probe->out_off,
                         probe->outbox.size() - probe->out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        FinishProbe(probe, false, "");
        return;
      }
      probe->out_off += static_cast<size_t>(n);
    }
    if (probe->out_off >= probe->outbox.size()) {
      loops_[0]->Modify(probe->fd, EventLoop::kReadable);
    }
  }
  if (events & EventLoop::kReadable) {
    char chunk[16384];
    while (true) {
      ssize_t n = ::recv(probe->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        if (!probe->decoder.Feed(
                std::string_view(chunk, static_cast<size_t>(n)))) {
          FinishProbe(probe, false, "");
          return;
        }
        std::string line;
        if (probe->decoder.Next(&line)) {
          FinishProbe(probe, true, line);
          return;
        }
        if (static_cast<size_t>(n) < sizeof(chunk)) return;
        continue;
      }
      if (n == 0) {
        FinishProbe(probe, false, "");
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      FinishProbe(probe, false, "");
      return;
    }
  }
}

void NavRouter::FinishProbe(const ProbePtr& probe, bool success,
                            const std::string& response_line) {
  if (probe->done) return;
  probe->done = true;
  if (probe->timeout_timer != kInvalidTimer) {
    loops_[0]->CancelTimer(probe->timeout_timer);
    probe->timeout_timer = kInvalidTimer;
  }
  loops_[0]->Remove(probe->fd);
  ::close(probe->fd);
  probes_[probe->backend_index] = nullptr;

  BackendState& backend = *backends_[probe->backend_index];
  if (success) {
    Result<JsonValue> parsed = ParseJson(response_line);
    if (parsed.ok() && parsed.ValueOrDie().BoolOr("ok", false)) {
      const JsonValue& doc = parsed.ValueOrDie();
      BackendScrape scrape;
      scrape.valid = true;
      scrape.requests = doc.IntOr("requests", 0);
      scrape.bytes_rx = doc.IntOr("bytes_rx", 0);
      scrape.bytes_tx = doc.IntOr("bytes_tx", 0);
      if (const JsonValue* sessions = doc.Find("sessions")) {
        scrape.sessions_active = sessions->IntOr("active", 0);
        scrape.sessions_created = sessions->IntOr("created", 0);
      }
      if (const JsonValue* cache = doc.Find("cache")) {
        scrape.cache_hits = cache->IntOr("hits", 0);
        scrape.cache_misses = cache->IntOr("misses", 0);
        scrape.cache_builds = cache->IntOr("builds", 0);
        scrape.peer_fetch_hits = cache->IntOr("peer_fetch_hits", 0);
        scrape.peer_fetch_misses = cache->IntOr("peer_fetch_misses", 0);
      }
      scrape.raw = response_line;
      {
        std::lock_guard<std::mutex> lock(backend.scrape_mu);
        backend.scrape = std::move(scrape);
      }
      backend.probes_ok.fetch_add(1, std::memory_order_relaxed);
      RecordBackendSuccess(probe->backend_index);
      return;
    }
    // An ok:false STATS (the backend is draining) is a failed probe.
  }
  backend.probes_failed.fetch_add(1, std::memory_order_relaxed);
  ProbeFailuresCounter()->Increment();
  RecordBackendFailure(probe->backend_index);
}

void NavRouter::RecordBackendFailure(size_t backend_index) {
  BackendState& backend = *backends_[backend_index];
  int failures =
      backend.consecutive_failures.fetch_add(1, std::memory_order_acq_rel) +
      1;
  int health = backend.health.load(std::memory_order_acquire);
  if (health == static_cast<int>(BackendHealth::kHalfOpen)) {
    // The readmission probe failed: back to ejected, cooldown restarts.
    backend.health.store(static_cast<int>(BackendHealth::kUnhealthy),
                         std::memory_order_release);
    backend.ejected_at_ms.store(SteadyNowMs(), std::memory_order_release);
    RefreshHealthyGauge();
    BumpGeneration();
    return;
  }
  if (health == static_cast<int>(BackendHealth::kHealthy) &&
      failures >= options_.health_failures_to_eject) {
    backend.health.store(static_cast<int>(BackendHealth::kUnhealthy),
                         std::memory_order_release);
    backend.ejected_at_ms.store(SteadyNowMs(), std::memory_order_release);
    RefreshHealthyGauge();
    BumpGeneration();
  }
}

void NavRouter::RecordBackendSuccess(size_t backend_index) {
  BackendState& backend = *backends_[backend_index];
  backend.consecutive_failures.store(0, std::memory_order_release);
  int health = backend.health.load(std::memory_order_acquire);
  if (health != static_cast<int>(BackendHealth::kHealthy)) {
    backend.health.store(static_cast<int>(BackendHealth::kHealthy),
                         std::memory_order_release);
    RefreshHealthyGauge();
    BumpGeneration();
  }
}

void NavRouter::RefreshHealthyGauge() {
  int64_t healthy = 0;
  for (const std::unique_ptr<BackendState>& backend : backends_) {
    if (backend->health.load(std::memory_order_acquire) ==
        static_cast<int>(BackendHealth::kHealthy)) {
      ++healthy;
    }
  }
  HealthyBackendsGauge()->Set(healthy);
}

// ---------------------------------------------------------------------------
// Local answers
// ---------------------------------------------------------------------------

WireFrame NavRouter::BuildAggregatedStats(WireProto proto) const {
  NavRouterStats s = stats();
  std::string router_json =
      "{\"connections_accepted\":" + std::to_string(s.connections_accepted) +
      ",\"connections_shed\":" + std::to_string(s.connections_shed) +
      ",\"connections_open\":" + std::to_string(s.connections_open) +
      ",\"requests\":" + std::to_string(s.requests) +
      ",\"protocol_errors\":" + std::to_string(s.protocol_errors) +
      ",\"forwarded\":" + std::to_string(s.forwarded) +
      ",\"retry_later\":" + std::to_string(s.retry_later) +
      ",\"pinned_sessions\":" + std::to_string(s.pinned_sessions) +
      ",\"backends_total\":" + std::to_string(s.backends.size()) +
      ",\"healthy_backends\":" + std::to_string(s.healthy_backends) +
      ",\"bytes_rx\":" + std::to_string(s.bytes_rx) +
      ",\"bytes_tx\":" + std::to_string(s.bytes_tx) +
      ",\"generation\":" + std::to_string(s.generation) +
      ",\"io_threads\":" + std::to_string(loops_.size()) + "}";

  // Fleet rollup from the last scraped backend STATS. Scrapes refresh on
  // the probe cadence, so the sums lag live truth by at most one interval.
  int64_t scraped = 0, requests = 0, sessions_active = 0;
  int64_t sessions_created = 0, cache_hits = 0, cache_misses = 0;
  int64_t cache_builds = 0, peer_fetch_hits = 0, peer_fetch_misses = 0;
  int64_t bytes_rx = 0, bytes_tx = 0;
  std::vector<std::string> raw_scrapes(backends_.size());
  std::vector<std::string> qcache_json(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    std::lock_guard<std::mutex> lock(backends_[i]->scrape_mu);
    const BackendScrape& scrape = backends_[i]->scrape;
    if (!scrape.valid) continue;
    ++scraped;
    requests += scrape.requests;
    sessions_active += scrape.sessions_active;
    sessions_created += scrape.sessions_created;
    cache_hits += scrape.cache_hits;
    cache_misses += scrape.cache_misses;
    cache_builds += scrape.cache_builds;
    peer_fetch_hits += scrape.peer_fetch_hits;
    peer_fetch_misses += scrape.peer_fetch_misses;
    bytes_rx += scrape.bytes_rx;
    bytes_tx += scrape.bytes_tx;
    raw_scrapes[i] = scrape.raw;
    qcache_json[i] =
        "{\"hits\":" + std::to_string(scrape.cache_hits) +
        ",\"misses\":" + std::to_string(scrape.cache_misses) +
        ",\"builds\":" + std::to_string(scrape.cache_builds) +
        ",\"peer_fetch_hits\":" + std::to_string(scrape.peer_fetch_hits) +
        ",\"peer_fetch_misses\":" + std::to_string(scrape.peer_fetch_misses) +
        "}";
  }
  // artifact_builds is the fleet's duplicate-build signal: with peer fetch
  // on, it converges to the number of distinct query keys no matter how
  // many shards serve each key.
  std::string fleet_json =
      "{\"scraped\":" + std::to_string(scraped) +
      ",\"requests\":" + std::to_string(requests) +
      ",\"sessions_active\":" + std::to_string(sessions_active) +
      ",\"sessions_created\":" + std::to_string(sessions_created) +
      ",\"cache_hits\":" + std::to_string(cache_hits) +
      ",\"cache_misses\":" + std::to_string(cache_misses) +
      ",\"artifact_builds\":" + std::to_string(cache_builds) +
      ",\"peer_fetch_hits\":" + std::to_string(peer_fetch_hits) +
      ",\"peer_fetch_misses\":" + std::to_string(peer_fetch_misses) +
      ",\"bytes_rx\":" + std::to_string(bytes_rx) +
      ",\"bytes_tx\":" + std::to_string(bytes_tx) + "}";

  // Hot-key rollup: what the replication tier currently considers hot.
  std::vector<HotKeyTracker::HotKey> hot =
      hot_keys_.Hot(options_.replicate_above_qps);
  constexpr size_t kMaxHotKeysListed = 16;
  std::string hot_json =
      "{\"tracked\":" + std::to_string(hot_keys_.size()) +
      ",\"replicate_above\":" + std::to_string(options_.replicate_above_qps) +
      ",\"replicas\":" + std::to_string(options_.replicas) + ",\"keys\":[";
  for (size_t i = 0; i < hot.size() && i < kMaxHotKeysListed; ++i) {
    if (i > 0) hot_json += ",";
    hot_json += "{\"key\":\"" + JsonEscape(hot[i].key) +
                "\",\"qps\":" + std::to_string(hot[i].qps) + "}";
  }
  hot_json += "]}";

  std::string backends_json = "[";
  for (size_t i = 0; i < s.backends.size(); ++i) {
    const RouterBackendStats& b = s.backends[i];
    if (i > 0) backends_json += ",";
    backends_json +=
        "{\"id\":\"" + JsonEscape(b.id) + "\"" +
        ",\"state\":\"" + BackendHealthName(b.health) + "\"" +
        ",\"draining\":" + (b.draining ? "true" : "false") +
        ",\"forwarded\":" + std::to_string(b.forwarded) +
        ",\"upstream_errors\":" + std::to_string(b.upstream_errors) +
        ",\"retry_later\":" + std::to_string(b.retry_later) +
        ",\"pinned_sessions\":" + std::to_string(b.pinned_sessions) +
        ",\"probes_ok\":" + std::to_string(b.probes_ok) +
        ",\"probes_failed\":" + std::to_string(b.probes_failed) +
        ",\"qcache\":" +
        (qcache_json[i].empty() ? std::string("null") : qcache_json[i]) +
        ",\"stats\":" +
        (raw_scrapes[i].empty() ? std::string("null") : raw_scrapes[i]) + "}";
  }
  backends_json += "]";

  std::string line = ResponseBuilder(RequestOp::kStats)
                         .Add("role", std::string_view("router"))
                         .AddRaw("router", router_json)
                         .AddRaw("fleet", fleet_json)
                         .AddRaw("hot_keys", hot_json)
                         .AddRaw("backends", backends_json)
                         .AddRaw("metrics", GlobalMetrics().ToJson())
                         .Finish();
  return WrapWholeJson(proto, std::move(line));
}

WireFrame NavRouter::BuildMetricsFrame(WireProto proto) const {
  std::string line =
      ResponseBuilder(RequestOp::kMetrics)
          .Add("text", std::string_view(GlobalMetrics().ToPrometheusText()))
          .Finish();
  return WrapWholeJson(proto, std::move(line));
}

WireFrame NavRouter::BuildTopologyFrame(WireProto proto) const {
  std::string backends_json = "[";
  for (size_t i = 0; i < backends_.size(); ++i) {
    const BackendState& backend = *backends_[i];
    if (i > 0) backends_json += ",";
    backends_json +=
        "{\"id\":\"" + JsonEscape(backend.config.id) + "\"" +
        ",\"host\":\"" + JsonEscape(backend.config.host) + "\"" +
        ",\"port\":" + std::to_string(backend.config.port) +
        ",\"state\":\"" +
        BackendHealthName(static_cast<BackendHealth>(
            backend.health.load(std::memory_order_acquire))) +
        "\"" +
        ",\"draining\":" +
        (backend.draining.load(std::memory_order_acquire) ? "true"
                                                          : "false") +
        "}";
  }
  backends_json += "]";
  // The seed travels as a decimal string: ring seeds exceed 2^53, past
  // what a JSON number survives through double-precision parsers.
  std::string line =
      ResponseBuilder(RequestOp::kTopology)
          .Add("generation",
               static_cast<int64_t>(
                   generation_.load(std::memory_order_acquire)))
          .Add("vnodes", static_cast<int64_t>(options_.ring_vnodes))
          .Add("seed", std::to_string(options_.ring_seed))
          .AddRaw("backends", backends_json)
          .Finish();
  return WrapWholeJson(proto, std::move(line));
}

// ---------------------------------------------------------------------------
// Introspection and control
// ---------------------------------------------------------------------------

NavRouterStats NavRouter::stats() const {
  NavRouterStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.forwarded = forwarded_.load(std::memory_order_relaxed);
  s.retry_later = retry_later_.load(std::memory_order_relaxed);
  s.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  s.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  s.generation = generation_.load(std::memory_order_acquire);
  s.hot_keys_tracked = static_cast<int64_t>(hot_keys_.size());

  std::vector<int64_t> pins_per_backend(backends_.size(), 0);
  {
    std::lock_guard<std::mutex> lock(pins_mu_);
    s.pinned_sessions = static_cast<int64_t>(pins_.size());
    for (const auto& [token, backend] : pins_) {
      if (backend < pins_per_backend.size()) ++pins_per_backend[backend];
    }
  }
  for (size_t i = 0; i < backends_.size(); ++i) {
    const BackendState& backend = *backends_[i];
    RouterBackendStats b;
    b.id = backend.config.id;
    b.health = static_cast<BackendHealth>(
        backend.health.load(std::memory_order_acquire));
    b.draining = backend.draining.load(std::memory_order_acquire);
    b.forwarded = backend.forwarded.load(std::memory_order_relaxed);
    b.upstream_errors =
        backend.upstream_errors.load(std::memory_order_relaxed);
    b.retry_later = backend.retry_later.load(std::memory_order_relaxed);
    b.probes_ok = backend.probes_ok.load(std::memory_order_relaxed);
    b.probes_failed = backend.probes_failed.load(std::memory_order_relaxed);
    b.pinned_sessions = pins_per_backend[i];
    if (b.health == BackendHealth::kHealthy) ++s.healthy_backends;
    s.backends.push_back(std::move(b));
  }
  return s;
}

bool NavRouter::SetBackendDraining(const std::string& id, bool draining) {
  auto it = backend_index_by_id_.find(id);
  if (it == backend_index_by_id_.end()) return false;
  bool was = backends_[it->second]->draining.exchange(
      draining, std::memory_order_acq_rel);
  if (was != draining) BumpGeneration();
  return true;
}

void NavRouter::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (!started_.load() || shutting_down_.load()) return;
  shutting_down_.store(true, std::memory_order_release);

  // 1. Stop admitting: close the listener on its loop.
  {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    loops_[0]->RunInLoop([&] {
      loops_[0]->Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }

  // 2. Drain downstream connections: forwarded requests complete as their
  //    backend responses arrive (the loops keep running), buffered frames
  //    answer SHUTTING_DOWN, write queues flush before fds close.
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->RunInLoop([this, i] {
      std::vector<ConnPtr> conns;
      conns.reserve(loop_conns_[i].size());
      for (const auto& [fd, conn] : loop_conns_[i]) conns.push_back(conn);
      for (const ConnPtr& conn : conns) DrainConnection(conn);
    });
  }

  // 3. Bounded drain, then force-close stragglers (including connections
  //    whose pinned shard will never answer).
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_deadline_ms),
        [this] { return connections_open_.load() == 0; });
  }
  if (connections_open_.load() > 0) {
    for (size_t i = 0; i < loops_.size(); ++i) {
      loops_[i]->RunInLoop([this, i] {
        std::vector<ConnPtr> conns;
        conns.reserve(loop_conns_[i].size());
        for (const auto& [fd, conn] : loop_conns_[i]) conns.push_back(conn);
        for (const ConnPtr& conn : conns) CloseConnection(conn);
      });
    }
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1000),
                       [this] { return connections_open_.load() == 0; });
  }

  // 4. Tear down upstreams and probes on their loops. Stop() drains
  //    functions enqueued before it, so these run before the loops exit.
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->RunInLoop([this, i] {
      std::vector<UpPtr> ups;
      for (const UpPtr& up : loop_upstreams_[i]) {
        if (up != nullptr && !up->closed) ups.push_back(up);
      }
      for (const UpPtr& up : ups) {
        FailUpstream(up, WireError::kShuttingDown, "router is draining",
                     false);
      }
      if (i == 0) {
        for (const ProbePtr& probe : probes_) {
          if (probe != nullptr && !probe->done) FinishProbe(probe, false, "");
        }
      }
    });
  }

  // 5. Stop and join the reactors.
  for (std::unique_ptr<EventLoop>& loop : loops_) loop->Stop();
  for (std::thread& t : io_threads_) {
    if (t.joinable()) t.join();
  }
  io_threads_.clear();
}

NavRouter::~NavRouter() { Shutdown(); }

}  // namespace bionav
