#include "util/rng.h"

#include <cmath>

namespace bionav {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  BIONAV_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BIONAV_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    BIONAV_CHECK_GE(w, 0.0);
    total += w;
  }
  BIONAV_CHECK_GT(total, 0.0);
  double r = UniformDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

size_t Rng::Zipf(size_t n, double s) {
  BIONAV_CHECK_GT(n, 0u);
  // Inverse-CDF on the harmonic partial sums; O(n) set-up avoided by a
  // simple rejection scheme adequate for moderate n in generators.
  // For simplicity and determinism we use linear inverse-CDF with cached
  // normalization recomputed per call only for small n; generators that need
  // many samples should wrap this class with their own tables.
  double norm = 0;
  for (size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
  double r = UniformDouble() * norm;
  double acc = 0;
  for (size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (r < acc) return k - 1;
  }
  return n - 1;
}

double Rng::Gaussian(double mean, double stddev) {
  // Irwin-Hall approximation: sum of 12 uniforms has mean 6, variance 1.
  double sum = 0;
  for (int i = 0; i < 12; ++i) sum += UniformDouble();
  return mean + (sum - 6.0) * stddev;
}

}  // namespace bionav
