#include "util/string_util.h"

#include <array>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace bionav {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitViews(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> TokenizeTerms(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
        c == '/') {
      cur.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() > 32) return false;
  std::string token(s);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty() || s.size() > 64) return false;
  // strtod accepts "nan"/"inf"/hex floats; flag values want plain decimals.
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c)) && c != 'e' && c != 'E') {
      return false;
    }
  }
  std::string token(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}


std::string Base64Encode(std::string_view data) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    uint32_t v = static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
                     << 16 |
                 static_cast<uint32_t>(static_cast<unsigned char>(data[i + 1]))
                     << 8 |
                 static_cast<uint32_t>(static_cast<unsigned char>(data[i + 2]));
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back(kAlphabet[v & 63]);
  }
  size_t rest = data.size() - i;
  if (rest == 1) {
    uint32_t v = static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
                 << 16;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.append("==");
  } else if (rest == 2) {
    uint32_t v = static_cast<uint32_t>(static_cast<unsigned char>(data[i]))
                     << 16 |
                 static_cast<uint32_t>(static_cast<unsigned char>(data[i + 1]))
                     << 8;
    out.push_back(kAlphabet[(v >> 18) & 63]);
    out.push_back(kAlphabet[(v >> 12) & 63]);
    out.push_back(kAlphabet[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

bool Base64Decode(std::string_view data, std::string* out) {
  if (data.size() % 4 != 0) return false;
  static constexpr auto kInverse = [] {
    std::array<int8_t, 256> t{};
    t.fill(-1);
    const char* alphabet =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    for (int i = 0; i < 64; ++i) {
      t[static_cast<unsigned char>(alphabet[i])] = static_cast<int8_t>(i);
    }
    return t;
  }();
  std::string decoded;
  decoded.reserve(data.size() / 4 * 3);
  for (size_t i = 0; i < data.size(); i += 4) {
    int pad = 0;
    uint32_t v = 0;
    for (size_t k = 0; k < 4; ++k) {
      char c = data[i + k];
      if (c == '=') {
        // Padding is only legal in the last quad, trailing, at most two.
        if (i + 4 != data.size() || k < 2) return false;
        ++pad;
        v <<= 6;
        continue;
      }
      if (pad > 0) return false;  // Data after '='.
      int8_t s = kInverse[static_cast<unsigned char>(c)];
      if (s < 0) return false;
      v = (v << 6) | static_cast<uint32_t>(s);
    }
    decoded.push_back(static_cast<char>((v >> 16) & 0xff));
    if (pad < 2) decoded.push_back(static_cast<char>((v >> 8) & 0xff));
    if (pad < 1) decoded.push_back(static_cast<char>(v & 0xff));
  }
  *out = std::move(decoded);
  return true;
}

}  // namespace bionav
