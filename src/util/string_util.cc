#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace bionav {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitViews(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> TokenizeTerms(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '+' || c == '-' ||
        c == '/') {
      cur.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty() || s.size() > 32) return false;
  std::string token(s);
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty() || s.size() > 64) return false;
  // strtod accepts "nan"/"inf"/hex floats; flag values want plain decimals.
  for (char c : s) {
    if (std::isalpha(static_cast<unsigned char>(c)) && c != 'e' && c != 'E') {
      return false;
    }
  }
  std::string token(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(token.c_str(), &end);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

}  // namespace bionav
