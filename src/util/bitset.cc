#include "util/bitset.h"

namespace bionav {

std::vector<size_t> DynamicBitset::ToIndexes() const {
  std::vector<size_t> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w) {
      int bit = __builtin_ctzll(w);
      out.push_back((wi << 6) + static_cast<size_t>(bit));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace bionav
