#ifndef BIONAV_UTIL_LOGGING_H_
#define BIONAV_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace bionav {

/// Severity levels for the minimal logging facility. FATAL aborts the
/// process after the message is flushed.
enum class LogSeverity { kInfo, kWarning, kError, kFatal };

namespace internal_logging {

/// Stream-style log sink. Collects a single message and emits it on
/// destruction; aborts on FATAL. Intentionally tiny: the library has no
/// dependency on a logging framework.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Helper that swallows a stream expression in the CHECK-passed branch.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed LogMessage expression into void so it can sit in the
/// false branch of the CHECK ternary while still accepting `<<` chains
/// ('&' binds looser than '<<').
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

/// Returns the minimum severity that is actually printed. Controlled by
/// SetMinLogSeverity; FATAL is always printed.
LogSeverity MinLogSeverity();
void SetMinLogSeverity(LogSeverity severity);

#define BIONAV_LOG(severity)                                             \
  ::bionav::internal_logging::LogMessage(::bionav::LogSeverity::k##severity, \
                                         __FILE__, __LINE__)             \
      .stream()

/// CHECK-style assertion macros. These are always on (release included):
/// invariant violations in a navigation engine should fail fast rather than
/// silently corrupt cost computations.
#define BIONAV_CHECK(cond)                                                 \
  (cond) ? (void)0                                                         \
         : ::bionav::internal_logging::Voidify() &                         \
               ::bionav::internal_logging::LogMessage(                     \
                   ::bionav::LogSeverity::kFatal, __FILE__, __LINE__)      \
                       .stream()                                           \
                   << "Check failed: " #cond " "

#define BIONAV_CHECK_OP(op, a, b)                                          \
  ((a)op(b)) ? (void)0                                                     \
             : ::bionav::internal_logging::Voidify() &                     \
                   ::bionav::internal_logging::LogMessage(                 \
                       ::bionav::LogSeverity::kFatal, __FILE__, __LINE__)  \
                           .stream()                                       \
                       << "Check failed: " #a " " #op " " #b " (" << (a)   \
                       << " vs " << (b) << ") "

#define BIONAV_CHECK_EQ(a, b) BIONAV_CHECK_OP(==, a, b)
#define BIONAV_CHECK_NE(a, b) BIONAV_CHECK_OP(!=, a, b)
#define BIONAV_CHECK_LT(a, b) BIONAV_CHECK_OP(<, a, b)
#define BIONAV_CHECK_LE(a, b) BIONAV_CHECK_OP(<=, a, b)
#define BIONAV_CHECK_GT(a, b) BIONAV_CHECK_OP(>, a, b)
#define BIONAV_CHECK_GE(a, b) BIONAV_CHECK_OP(>=, a, b)

}  // namespace bionav

#endif  // BIONAV_UTIL_LOGGING_H_
