#include "util/timer.h"

// Timer is header-only; this translation unit exists so the build target has
// a stable object for the module and to anchor future non-inline additions.

namespace bionav {}  // namespace bionav
