#ifndef BIONAV_UTIL_EVENT_LOOP_H_
#define BIONAV_UTIL_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace bionav {

/// Identity of a pending timer; kInvalidTimer is never returned by AddTimer.
using TimerId = uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

/// A single-threaded epoll reactor: the I/O substrate of the event-driven
/// NavServer (and of bench_serving's connection-sweep load generator). One
/// thread calls Run() and owns every registered fd handler; other threads
/// talk to the loop exclusively through RunInLoop()/Stop(), which enqueue
/// work and wake the loop via an eventfd.
///
/// Timers ride a hashed timing wheel (kWheelSlots slots of tick_ms each,
/// entries carry a remaining-rounds count), so thousands of per-connection
/// idle timeouts cost O(1) to arm, cancel and expire — the classic Varghese
/// & Lauck scheme. Expiry resolution is one tick; timers never fire early.
///
/// Level-triggered: a handler that leaves bytes unread (backpressure pause
/// is done by dropping kReadable from the interest set instead) is redriven
/// on the next epoll_wait.
class EventLoop {
 public:
  /// Readiness bits delivered to fd handlers (kError covers EPOLLERR and
  /// EPOLLHUP; it is always watched, never requested).
  static constexpr uint32_t kReadable = 1u;
  static constexpr uint32_t kWritable = 2u;
  static constexpr uint32_t kError = 4u;

  using FdHandler = std::function<void(uint32_t events)>;

  explicit EventLoop(int64_t tick_ms = 20);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for the given interest bits. The handler runs on the
  /// loop thread and may Add/Modify/Remove any fd, including its own.
  Status Add(int fd, uint32_t events, FdHandler handler);

  /// Replaces the interest set of a registered fd.
  Status Modify(int fd, uint32_t events);

  /// Unregisters a fd. The fd is not closed, and a readiness event already
  /// harvested for it in the current batch is discarded, so a handler can
  /// safely Remove+close any fd from inside any callback.
  void Remove(int fd);

  /// Runs the loop on the calling thread until Stop(). Dispatches fd
  /// events, then queued RunInLoop functions, then due timers.
  void Run();

  /// Stops the loop (thread-safe, idempotent). Run() returns after
  /// finishing the current iteration.
  void Stop();

  /// Enqueues `fn` to run on the loop thread and wakes the loop. Called
  /// from the loop thread itself, the function still goes through the
  /// queue (runs later this iteration, never reentrantly). Functions
  /// enqueued before Stop() takes effect are drained before Run() returns.
  void RunInLoop(std::function<void()> fn);

  /// Arms a one-shot timer `delay_ms` from now (rounded up to a tick).
  /// Loop-thread only. Re-arm from the callback for a recurring timer.
  TimerId AddTimer(int64_t delay_ms, std::function<void()> callback);

  /// Cancels a pending timer. Loop-thread only. False if it already fired
  /// or was never armed.
  bool CancelTimer(TimerId id);

  /// True on the thread currently inside Run().
  bool IsInLoopThread() const;

  /// Number of epoll_wait returns so far (the reactor wakeup metric).
  int64_t wakeups() const { return wakeups_.load(std::memory_order_relaxed); }

  /// Registered fd count (loop-thread only; tests and drain bookkeeping).
  size_t num_fds() const { return handlers_.size(); }

 private:
  static constexpr size_t kWheelSlots = 256;

  struct Handler {
    uint32_t events = 0;
    uint64_t generation = 0;
    FdHandler fn;
  };
  struct TimerEntry {
    TimerId id = kInvalidTimer;
    int64_t rounds = 0;  // Full wheel revolutions left before firing.
    std::function<void()> callback;
  };

  int64_t NowMs() const;
  void AdvanceWheel(int64_t now_ms);
  void DrainPending();

  const int64_t tick_ms_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: RunInLoop/Stop kick epoll_wait awake.

  std::unordered_map<int, Handler> handlers_;
  uint64_t next_generation_ = 1;
  /// Closures of fds Removed during the current dispatch batch. A handler
  /// may Remove itself; destroying a std::function mid-call is UB, so the
  /// closure parks here until the batch ends (loop-thread-only).
  std::vector<FdHandler> retired_handlers_;

  // Timing wheel. All state loop-thread-only.
  std::vector<std::vector<TimerEntry>> wheel_{kWheelSlots};
  size_t wheel_pos_ = 0;
  int64_t next_tick_ms_ = 0;  // Steady-clock deadline of the next tick.
  TimerId next_timer_id_ = 1;
  size_t live_timers_ = 0;

  std::mutex pending_mu_;
  std::vector<std::function<void()>> pending_;

  std::atomic<bool> stop_{false};
  std::atomic<int64_t> wakeups_{0};
  std::atomic<std::thread::id> loop_thread_{};
};

}  // namespace bionav

#endif  // BIONAV_UTIL_EVENT_LOOP_H_
