#ifndef BIONAV_UTIL_BITSET_H_
#define BIONAV_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace bionav {

/// Fixed-size-at-construction bitset used to represent sets of citations
/// local to one query result. Distinct-citation counting across component
/// subtrees (the duplicate-aware |L(I)| of the cost model) is the hot path
/// of Opt-EdgeCut, so the representation is a flat word array with popcount.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Set(size_t i) {
    BIONAV_CHECK_LT(i, size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void Reset(size_t i) {
    BIONAV_CHECK_LT(i, size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(size_t i) const {
    BIONAV_CHECK_LT(i, size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Sets all bits to zero.
  void Clear() {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  size_t Count() const {
    size_t c = 0;
    for (uint64_t w : words_) c += static_cast<size_t>(__builtin_popcountll(w));
    return c;
  }

  bool Any() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }

  /// this |= other. Sizes must match.
  void UnionWith(const DynamicBitset& other) {
    BIONAV_CHECK_EQ(size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  }

  /// this &= other. Sizes must match.
  void IntersectWith(const DynamicBitset& other) {
    BIONAV_CHECK_EQ(size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  }

  /// this &= ~other. Sizes must match.
  void SubtractWith(const DynamicBitset& other) {
    BIONAV_CHECK_EQ(size_, other.size_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  }

  /// |this ∪ other| without materializing the union.
  size_t UnionCount(const DynamicBitset& other) const {
    BIONAV_CHECK_EQ(size_, other.size_);
    size_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i)
      c += static_cast<size_t>(__builtin_popcountll(words_[i] | other.words_[i]));
    return c;
  }

  /// |this ∩ other| without materializing the intersection.
  size_t IntersectCount(const DynamicBitset& other) const {
    BIONAV_CHECK_EQ(size_, other.size_);
    size_t c = 0;
    for (size_t i = 0; i < words_.size(); ++i)
      c += static_cast<size_t>(__builtin_popcountll(words_[i] & other.words_[i]));
    return c;
  }

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Returns the indexes of all set bits in increasing order.
  std::vector<size_t> ToIndexes() const;

  /// Heap bytes of the word array (memory-accounting helper; excludes
  /// sizeof(DynamicBitset) itself, which the owner counts).
  size_t MemoryBytes() const { return words_.capacity() * sizeof(uint64_t); }

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

}  // namespace bionav

#endif  // BIONAV_UTIL_BITSET_H_
