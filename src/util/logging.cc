#include "util/logging.h"

#include <atomic>

namespace bionav {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};

const char* SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARNING";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

LogSeverity MinLogSeverity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void SetMinLogSeverity(LogSeverity severity) {
  g_min_severity.store(static_cast<int>(severity), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace bionav
