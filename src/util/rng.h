#ifndef BIONAV_UTIL_RNG_H_
#define BIONAV_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace bionav {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// splitmix64). All synthetic-data generation in the repository goes through
/// this class so that workloads, tests and benchmarks are reproducible
/// across platforms and standard-library versions (std::mt19937 streams are
/// stable, but distributions are not).
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Samples from Zipf(s) over ranks {1..n}, returning a 0-based index.
  /// Used to give concepts / terms realistic skewed popularity.
  size_t Zipf(size_t n, double s);

  /// Returns an approximately Gaussian sample (sum of uniforms) with the
  /// given mean and standard deviation. Accuracy is sufficient for workload
  /// shaping; no transcendental-function portability concerns.
  double Gaussian(double mean, double stddev);

  /// Fisher-Yates shuffles a vector in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace bionav

#endif  // BIONAV_UTIL_RNG_H_
