#ifndef BIONAV_UTIL_STATUS_H_
#define BIONAV_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

namespace bionav {

/// Error categories used across the library. Kept deliberately small; the
/// library is in-process, so most categories map to caller mistakes or
/// malformed inputs rather than environmental failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIOError,
  kDeadlineExceeded,
  /// Persistent data is unreadable: truncated, checksum-mismatched or
  /// otherwise corrupt. Unlike kIOError (the environment failed), the bytes
  /// were read fine but cannot be trusted.
  kDataLoss,
};

/// Returns a human-readable name for a StatusCode ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. The library does not use exceptions;
/// fallible operations return Status (or Result<T>) and the caller checks.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats the status as "Code: message" (or "OK").
  std::string ToString() const;

  /// Aborts the process if the status is not OK. Use at call sites where a
  /// failure indicates a programming error.
  void CheckOK() const {
    BIONAV_CHECK(ok()) << ToString();
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse: `return value;` / `return Status::InvalidArgument(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    BIONAV_CHECK(!std::get<Status>(value_).ok())
        << "Result constructed from OK status";
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  /// Returns the value; aborts if the result holds an error.
  const T& ValueOrDie() const {
    BIONAV_CHECK(ok()) << status().ToString();
    return std::get<T>(value_);
  }
  T& ValueOrDie() {
    BIONAV_CHECK(ok()) << status().ToString();
    return std::get<T>(value_);
  }

  /// Moves the value out; aborts if the result holds an error.
  T TakeValue() {
    BIONAV_CHECK(ok()) << status().ToString();
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

#define BIONAV_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::bionav::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace bionav

#endif  // BIONAV_UTIL_STATUS_H_
