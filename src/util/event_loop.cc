#include "util/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace bionav {

namespace {

uint32_t ToEpollMask(uint32_t events) {
  uint32_t mask = 0;
  if (events & EventLoop::kReadable) mask |= EPOLLIN;
  if (events & EventLoop::kWritable) mask |= EPOLLOUT;
  return mask;
}

uint32_t FromEpollMask(uint32_t mask) {
  uint32_t events = 0;
  if (mask & (EPOLLIN | EPOLLRDHUP)) events |= EventLoop::kReadable;
  if (mask & EPOLLOUT) events |= EventLoop::kWritable;
  if (mask & (EPOLLERR | EPOLLHUP)) events |= EventLoop::kError;
  return events;
}

}  // namespace

EventLoop::EventLoop(int64_t tick_ms) : tick_ms_(tick_ms < 1 ? 1 : tick_ms) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  BIONAV_CHECK(epoll_fd_ >= 0) << "epoll_create1: " << std::strerror(errno);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  BIONAV_CHECK(wake_fd_ >= 0) << "eventfd: " << std::strerror(errno);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  BIONAV_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0)
      << "epoll_ctl(wake): " << std::strerror(errno);
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

int64_t EventLoop::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = ToEpollMask(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(ADD): ") +
                           std::strerror(errno));
  }
  Handler& h = handlers_[fd];
  h.events = events;
  h.generation = next_generation_++;
  h.fn = std::move(handler);
  return Status::OK();
}

Status EventLoop::Modify(int fd, uint32_t events) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    return Status::NotFound("fd not registered");
  }
  if (it->second.events == events) return Status::OK();
  epoll_event ev{};
  ev.events = ToEpollMask(events);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(MOD): ") +
                           std::strerror(errno));
  }
  it->second.events = events;
  return Status::OK();
}

void EventLoop::Remove(int fd) {
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  // Park the closure instead of destroying it: the caller may be that very
  // closure removing itself, and its captures must outlive the call.
  retired_handlers_.push_back(std::move(it->second.fn));
  handlers_.erase(it);
  // Failure is fine: the kernel auto-deregisters a closed fd.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::RunInLoop(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  // A full eventfd counter (impossible at 2^64 - 1 pending wakeups) or
  // EINTR just means the loop is already due to wake.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Stop() {
  stop_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

TimerId EventLoop::AddTimer(int64_t delay_ms, std::function<void()> callback) {
  BIONAV_CHECK(IsInLoopThread() || loop_thread_.load() == std::thread::id())
      << "AddTimer off the loop thread";
  if (delay_ms < 0) delay_ms = 0;
  // Round up to whole ticks with a floor of one: a timer never fires in
  // the tick that armed it, so it never fires early.
  int64_t ticks = (delay_ms + tick_ms_ - 1) / tick_ms_;
  if (ticks < 1) ticks = 1;
  TimerEntry entry;
  entry.id = next_timer_id_++;
  entry.rounds = ticks / static_cast<int64_t>(kWheelSlots);
  entry.callback = std::move(callback);
  size_t slot =
      (wheel_pos_ + static_cast<size_t>(ticks % kWheelSlots)) % kWheelSlots;
  TimerId id = entry.id;
  wheel_[slot].push_back(std::move(entry));
  ++live_timers_;
  return id;
}

bool EventLoop::CancelTimer(TimerId id) {
  if (id == kInvalidTimer) return false;
  for (std::vector<TimerEntry>& slot : wheel_) {
    for (TimerEntry& entry : slot) {
      if (entry.id == id) {
        entry.id = kInvalidTimer;  // Tombstone; reaped when the slot fires.
        entry.callback = nullptr;
        --live_timers_;
        return true;
      }
    }
  }
  return false;
}

void EventLoop::AdvanceWheel(int64_t now_ms) {
  while (now_ms >= next_tick_ms_) {
    wheel_pos_ = (wheel_pos_ + 1) % kWheelSlots;
    next_tick_ms_ += tick_ms_;
    std::vector<TimerEntry>& slot = wheel_[wheel_pos_];
    std::vector<TimerEntry> due;
    size_t kept = 0;
    for (TimerEntry& entry : slot) {
      if (entry.id == kInvalidTimer) continue;  // Cancelled tombstone.
      if (entry.rounds > 0) {
        --entry.rounds;
        slot[kept++] = std::move(entry);
      } else {
        due.push_back(std::move(entry));
      }
    }
    slot.resize(kept);
    for (TimerEntry& entry : due) {
      --live_timers_;
      entry.callback();  // May arm new timers (recurring pattern).
    }
  }
}

void EventLoop::DrainPending() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    batch.swap(pending_);
  }
  for (std::function<void()>& fn : batch) fn();
}

bool EventLoop::IsInLoopThread() const {
  return loop_thread_.load(std::memory_order_acquire) ==
         std::this_thread::get_id();
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  next_tick_ms_ = NowMs() + tick_ms_;
  epoll_event events[128];
  while (!stop_.load(std::memory_order_acquire)) {
    int64_t now = NowMs();
    // Sleep to the next wheel tick when timers are pending; otherwise park
    // until fd traffic or a wakeup (DrainPending work re-kicks via wake_fd_)
    // and keep the tick deadline current so an idle stretch never forces a
    // catch-up sprint through skipped ticks.
    int timeout = -1;
    if (live_timers_ > 0) {
      int64_t until_tick = next_tick_ms_ - now;
      timeout = until_tick < 0 ? 0 : static_cast<int>(until_tick);
    } else {
      next_tick_ms_ = now + tick_ms_;
    }
    int n = ::epoll_wait(epoll_fd_, events,
                         static_cast<int>(sizeof(events) / sizeof(events[0])),
                         timeout);
    wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0 && errno != EINTR) break;
    // Snapshot each ready fd's registration generation before dispatching
    // anything: a handler may Remove any fd in the batch (its event is then
    // discarded), and if it re-Adds the same fd number, the fresh
    // registration must not receive the stale readiness (ABA guard).
    uint64_t batch_generations[128];
    for (int i = 0; i < n; ++i) {
      auto it = handlers_.find(events[i].data.fd);
      batch_generations[i] = it == handlers_.end() ? 0 : it->second.generation;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end() ||
          it->second.generation != batch_generations[i]) {
        continue;
      }
      uint32_t ready = FromEpollMask(events[i].events);
      if (ready == 0) continue;
      it->second.fn(ready);
    }
    DrainPending();
    if (live_timers_ > 0) AdvanceWheel(NowMs());
    // No handler call is on the stack here; retired closures can go.
    retired_handlers_.clear();
  }
  DrainPending();
  retired_handlers_.clear();
  loop_thread_.store(std::thread::id(), std::memory_order_release);
}

}  // namespace bionav
