#ifndef BIONAV_UTIL_STRING_UTIL_H_
#define BIONAV_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bionav {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits without copying: views into `s`, keeping empty fields. The views
/// are invalidated by whatever invalidates `s` — parse, then discard.
std::vector<std::string_view> SplitViews(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing (the term dictionary is case-insensitive, as PubMed
/// keyword search is).
std::string ToLower(std::string_view s);

/// Tokenizes free text into lower-cased alphanumeric terms (PubMed-style
/// keyword extraction for the inverted index).
std::vector<std::string> TokenizeTerms(std::string_view text);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Strict full-string integer parse (optional sign, base 10). False — with
/// `*out` untouched — on empty input, trailing garbage, or overflow; the
/// checked alternative to std::stoll, which throws on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// Strict full-string floating-point parse. Same contract as ParseInt64;
/// rejects NaN/Inf spellings and anything strtod leaves unconsumed.
bool ParseDouble(std::string_view s, double* out);

/// Standard base64 (RFC 4648, with '=' padding). Binary records — e.g.
/// serialized artifact bundles — travel inside JSON string fields as
/// base64, so both wire encodings carry the same bytes.
std::string Base64Encode(std::string_view data);

/// Strict inverse of Base64Encode: rejects bad lengths, characters outside
/// the alphabet, and misplaced padding. False leaves `*out` untouched.
bool Base64Decode(std::string_view data, std::string* out);

}  // namespace bionav

#endif  // BIONAV_UTIL_STRING_UTIL_H_
