#include "util/thread_pool.h"

#include <algorithm>

namespace bionav {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  BIONAV_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    BIONAV_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ && drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

int ThreadPool::HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->num_threads() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  struct Shared {
    std::atomic<size_t> next{0};
    std::atomic<bool> abort{false};
    std::mutex mu;
    std::exception_ptr error;
  };
  Shared shared;
  const size_t workers =
      std::min(static_cast<size_t>(pool->num_threads()), n);
  for (size_t w = 0; w < workers; ++w) {
    pool->Submit([&shared, &fn, n] {
      while (!shared.abort.load(std::memory_order_relaxed)) {
        size_t i = shared.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        try {
          fn(i);
        } catch (...) {
          std::unique_lock<std::mutex> lock(shared.mu);
          if (!shared.error) shared.error = std::current_exception();
          shared.abort.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  pool->Wait();  // `shared` outlives every task: Wait blocks until drained.
  if (shared.error) std::rethrow_exception(shared.error);
}

void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(threads);
  ParallelFor(&pool, n, fn);
}

}  // namespace bionav
