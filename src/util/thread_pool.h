#ifndef BIONAV_UTIL_THREAD_POOL_H_
#define BIONAV_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace bionav {

/// A fixed-size work-queue thread pool — the concurrency substrate of the
/// parallel query-serving engine. Sessions (one keyword query each) are
/// fully independent, so the pool needs no work stealing: a single locked
/// deque drained by N workers keeps the implementation small and the
/// behaviour easy to reason about under TSan.
///
/// Tasks must not touch mutable state shared with other tasks unless they
/// synchronize it themselves; see DESIGN.md "Concurrency model" for what
/// the library guarantees to be safely shareable read-only.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, joins all workers. Pending tasks run to completion;
  /// an unretrieved task exception is swallowed (call Wait() to observe it).
  ~ThreadPool();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. Tasks may Submit further tasks. A task that throws
  /// does not kill the worker: the first exception is captured and
  /// rethrown by the next Wait().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first captured task exception, if any.
  void Wait();

  /// std::thread::hardware_concurrency with a floor of 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;  // Signals workers: task or shutdown.
  std::condition_variable idle_cv_;  // Signals Wait(): pool drained.
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // Queued + currently running tasks.
  bool shutdown_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

/// Runs fn(0..n-1) on the pool, blocking until all iterations finish.
/// Iterations are claimed dynamically (atomic counter), so the schedule is
/// nondeterministic but the index->iteration mapping is fixed: writing
/// results by index yields output identical to the sequential run. If an
/// iteration throws, remaining unclaimed iterations are skipped and the
/// first exception is rethrown here. A null pool (or n <= 1) runs inline
/// on the calling thread.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Convenience overload: `threads <= 1` runs inline; otherwise a transient
/// pool of `threads` workers is created for this call.
void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t)>& fn);

/// Maps fn over 0..n-1 in parallel and returns the results in index order
/// (deterministic regardless of thread count). R must be default- and
/// move-constructible.
template <typename R, typename Fn>
std::vector<R> ParallelMap(int threads, size_t n, Fn&& fn) {
  std::vector<R> out(n);
  ParallelFor(threads, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

template <typename R, typename Fn>
std::vector<R> ParallelMap(ThreadPool* pool, size_t n, Fn&& fn) {
  std::vector<R> out(n);
  ParallelFor(pool, n, [&](size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace bionav

#endif  // BIONAV_UTIL_THREAD_POOL_H_
