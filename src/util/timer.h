#ifndef BIONAV_UTIL_TIMER_H_
#define BIONAV_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace bionav {

/// Monotonic wall-clock stopwatch used by the benchmark harness to report
/// per-EXPAND execution times (the paper's Figs 10 and 11).
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart, in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time since construction / last Restart, in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Elapsed time in milliseconds (double, for pretty printing). Derived
  /// from the nanosecond reading so sub-microsecond spans (e.g. memoized
  /// incremental-engine EXPANDs) do not truncate to zero.
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Simple accumulator for averaged timings (per-query averages in Fig 10).
class TimingStats {
 public:
  void Add(double value) {
    sum_ += value;
    if (count_ == 0 || value < min_) min_ = value;
    if (count_ == 0 || value > max_) max_ = value;
    ++count_;
  }

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

 private:
  int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace bionav

#endif  // BIONAV_UTIL_TIMER_H_
