#ifndef BIONAV_SERVER_NAV_CLIENT_H_
#define BIONAV_SERVER_NAV_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "medline/eutils.h"
#include "server/protocol.h"

namespace bionav {

struct NavClientOptions {
  /// TCP connect deadline; expiry surfaces as kDeadlineExceeded. 0 blocks
  /// indefinitely (kernel default timeout).
  int64_t connect_timeout_ms = 5000;
  /// Per-recv deadline (SO_RCVTIMEO) while waiting for a response line;
  /// expiry surfaces as kDeadlineExceeded. 0 waits forever.
  int64_t recv_timeout_ms = 0;
  /// Wire encoding. kBinary sends the "BNV2" preamble right after connect
  /// and speaks length-prefixed v2 frames both ways; the typed wrappers
  /// below are encoding-agnostic (binary responses decode into the same
  /// JsonValue document a JSON line parses to). A pre-negotiation JSON
  /// reply (accept-path shedding answers before reading the preamble) is
  /// recognized by its '{' first byte and handled transparently.
  WireProto proto = WireProto::kJson;
  /// Extra connect attempts after a failed first try, with full-jitter
  /// capped exponential backoff between attempts: each retry sleeps
  /// uniform(0, cap) with the cap doubling from 50ms to 1s, so a fleet of
  /// clients racing one restarting backend spreads out instead of
  /// reconnecting in synchronized waves. Covers ECONNREFUSED and connect
  /// timeouts — a client racing a backend that is still binding its port.
  /// 0 (the default) fails fast.
  int connect_retries = 0;
};

/// Blocking client for the NavServer wire protocol: one TCP connection,
/// strict request/response by default, with a Send/Receive split for
/// pipelining. Used by bionav_cli's remote mode, the loopback tests and
/// the bench_serving load generator.
class NavClient {
 public:
  /// Connects to host:port (numeric address or resolvable name).
  static Result<std::unique_ptr<NavClient>> Connect(
      const std::string& host, int port,
      NavClientOptions options = NavClientOptions());

  NavClient(const NavClient&) = delete;
  NavClient& operator=(const NavClient&) = delete;
  ~NavClient();

  /// Sends one request and returns the parsed response object — including
  /// error responses (ok:false); only transport/parse failures are a
  /// non-OK Result. Most callers want the typed wrappers below, which fold
  /// wire errors into Status via StatusFromWireError.
  Result<JsonValue> CallRaw(const Request& request);

  /// Pipelining half-calls: Send queues a request on the wire without
  /// waiting; Receive blocks for the next response line (responses arrive
  /// in request order — the server guarantees it). Interleave freely with
  /// CallRaw as long as every Send is matched by a Receive first.
  Status Send(const Request& request);
  Result<JsonValue> Receive();

  struct QueryReply {
    std::string token;
    size_t result_size = 0;
    /// The session was served from the server's query-artifact cache.
    bool cached = false;
  };
  Result<QueryReply> Query(const std::string& query);

  /// EXPAND: ids of the navigation nodes the cut revealed.
  Result<std::vector<NavNodeId>> Expand(const std::string& token,
                                        NavNodeId node);

  struct BatchExpandReply {
    /// Cuts actually applied (nodes whose per-node outcome is ok).
    uint64_t expanded = 0;
    /// Combined revealed frontier of the whole batch, in apply order.
    std::vector<NavNodeId> revealed;
    struct Outcome {
      NavNodeId node = kInvalidNavNode;
      bool ok = false;
      std::vector<NavNodeId> revealed;  // empty on failure
      std::string error;                // wire error code on failure
      std::string message;
    };
    std::vector<Outcome> outcomes;  // one per requested node, in order
  };
  /// BATCH_EXPAND: several cuts in one round trip. The call succeeds as
  /// long as the batch was processed; per-node failures are reported in
  /// `outcomes` (a bad token still fails the whole call).
  Result<BatchExpandReply> ExpandMany(const std::string& token,
                                      const std::vector<NavNodeId>& nodes);

  struct ShowReply {
    size_t total = 0;
    std::vector<CitationSummary> summaries;
  };
  Result<ShowReply> ShowResults(const std::string& token, NavNodeId node,
                                uint64_t retstart = 0, uint64_t retmax = 0);

  Result<bool> Backtrack(const std::string& token);

  struct FindReply {
    bool found = false;
    NavNodeId node = kInvalidNavNode;
    bool visible = false;
    NavNodeId component_root = kInvalidNavNode;
    int distinct = 0;
  };
  /// FIND: locate a concept in the session's navigation/active tree — the
  /// primitive behind the oracle navigation (tests, bench_serving).
  Result<FindReply> Find(const std::string& token, ConceptId concept_id);

  /// VIEW: the active-tree visualization as a raw JSON string.
  Result<std::string> View(const std::string& token, int depth = 100);

  Status CloseSession(const std::string& token);

  /// STATS: the server's counters as a parsed JSON object (includes the
  /// full metrics registry under "metrics").
  Result<JsonValue> Stats();

  /// METRICS: the server's Prometheus text exposition.
  Result<std::string> Metrics();

  /// FETCH_ARTIFACT: the serialized (BNA1) artifact bundle for an
  /// already-normalized cache key, base64-decoded. Shard-to-shard traffic;
  /// a server with its cache disabled answers FAILED_PRECONDITION.
  Result<std::string> FetchArtifact(const std::string& key);

  /// TOPOLOGY: the routing tier's shard map as a parsed JSON object
  /// (generation, vnodes, seed, backends). A bare backend answers
  /// FAILED_PRECONDITION — only the router holds a fleet view.
  Result<JsonValue> Topology();

  /// The negotiated wire encoding of this connection.
  WireProto proto() const { return proto_; }

 private:
  NavClient(int fd, WireProto proto) : fd_(fd), proto_(proto) {}

  /// One connect attempt (Connect adds the retry loop around it).
  static Result<std::unique_ptr<NavClient>> ConnectOnce(
      const std::string& host, int port, const NavClientOptions& options);

  /// Sends a request and demands ok:true, folding wire errors to Status.
  Result<JsonValue> Call(const Request& request);

  int fd_ = -1;
  WireProto proto_ = WireProto::kJson;
  /// First response byte was '{': the server answered in JSON before the
  /// preamble was read (shed path). The connection stays line-framed.
  bool json_fallback_ = false;
  bool saw_response_byte_ = false;
  /// Partial-frame carry-over between reads. Response frames (VIEW trees,
  /// METRICS expositions) dwarf request frames, hence the generous cap.
  LineFrameDecoder decoder_{64u << 20};
  BinaryFrameDecoder bdecoder_{64u << 20};
};

}  // namespace bionav

#endif  // BIONAV_SERVER_NAV_CLIENT_H_
