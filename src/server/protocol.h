#ifndef BIONAV_SERVER_PROTOCOL_H_
#define BIONAV_SERVER_PROTOCOL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/navigation_tree.h"
#include "hierarchy/concept_hierarchy.h"
#include "util/status.h"

namespace bionav {

/// The BioNav wire protocol: one request line in, one response line out,
/// both UTF-8 JSON objects terminated by '\n' (the paper's deployment is an
/// HTTP web service; a line-delimited exchange keeps the reproduction
/// dependency-free while preserving the request/response shape). Every
/// message carries the protocol version under "v"; servers reject versions
/// they do not speak with an UNSUPPORTED_VERSION error instead of guessing.
///
/// Request grammar (all requests):
///   {"v": 1, "op": "<OP>", ...op-specific fields...}
/// Ops and their fields:
///   QUERY       {"query": "<keywords>"}            -> token, result_size,
///                                                     cached
///   EXPAND      {"token": t, "node": n}            -> revealed: [ids]
///   BATCH_EXPAND {"token": t, "nodes": [a, b, c]}  -> revealed (combined),
///                                                     expanded, results
///   SHOWRESULTS {"token": t, "node": n,
///                "retstart": s, "retmax": m}       -> total, summaries
///   BACKTRACK   {"token": t}                       -> undone
///   FIND        {"token": t, "concept": c}         -> node, visible, ...
///   VIEW        {"token": t, "depth": d}           -> tree (visualization)
///   CLOSE       {"token": t}                       -> closed
///   STATS       {}                                 -> stats (incl. metrics)
///   METRICS     {}                                 -> text (Prometheus)
///   FETCH_ARTIFACT {"query": "<normalized key>"}   -> artifact (base64)
///   TOPOLOGY    {}                                 -> generation, backends
/// Responses: {"v": 1, "ok": true, "op": "<OP>", ...} on success, or
///   {"v": 1, "ok": false, "error": "<CODE>", "message": "..."} on failure.
inline constexpr int kProtocolVersion = 1;

// ---------------------------------------------------------------------------
// Binary protocol v2 (negotiated per connection)
// ---------------------------------------------------------------------------

/// Version byte carried in every binary frame body.
inline constexpr int kBinaryProtocolVersion = 2;

/// Connection preamble that switches a fresh connection to binary framing.
/// A JSON request line always starts with '{', never 'B', so the server
/// decides the connection's protocol on its very first byte; clients that
/// never send the preamble keep speaking v1 JSON unchanged.
inline constexpr char kBinaryPreamble[4] = {'B', 'N', 'V', '2'};

/// Leading magic byte of every binary frame (requests and responses):
///   [magic u8][length u32 LE][body]
/// body = [version u8][op u8][fields...] for requests and
/// [version u8][flags u8 (bit0 = ok)][op u8][fields...] for responses,
/// where each field is [id u8][type u8][value...] with varint-coded
/// integers and length-prefixed strings. The magic is outside the JSON
/// first-byte alphabet, so a binary client can still recognize a
/// pre-negotiation JSON error line (accept-path shedding) by its '{'.
inline constexpr uint8_t kBinaryFrameMagic = 0xB2;

/// Bytes a binary frame spends before the body (magic + length prefix).
inline constexpr size_t kBinaryFrameHeaderBytes = 5;

/// Wire encoding of one connection; negotiated by the first client byte.
enum class WireProto { kJson = 0, kBinary = 1 };
inline constexpr int kNumWireProtos = 2;

/// Lowercase name ("json"/"binary") for flags, bench records and logs.
const char* WireProtoName(WireProto proto);

/// LEB128 varint append/read (unsigned) and zigzag for signed fields.
void AppendVarint(std::string* out, uint64_t value);
bool ReadVarint(std::string_view data, size_t* pos, uint64_t* value);
constexpr uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> (sizeof(int64_t) * 8 - 1));
}
constexpr int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

// ---------------------------------------------------------------------------
// Minimal JSON document model + parser (requests are parsed server-side,
// responses client-side; core/json_export handles serialization of the
// heavyweight payloads).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are doubles (the protocol's integers are
/// well below 2^53, so the double round-trip is exact).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(Array a);
  static JsonValue MakeObject(Object o);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const Array& array_items() const { return array_; }
  const Object& object_items() const { return object_; }

  /// Object member lookup; nullptr if absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member getters with defaults (absent or wrong-typed -> default).
  int64_t IntOr(std::string_view key, int64_t def) const;
  double NumberOr(std::string_view key, double def) const;
  bool BoolOr(std::string_view key, bool def) const;
  std::string StringOr(std::string_view key, std::string_view def) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document. The whole input must be consumed (trailing
/// whitespace allowed); nesting is capped to keep hostile inputs from
/// exhausting the stack.
Result<JsonValue> ParseJson(std::string_view text);

/// Serializes a JsonValue back to compact JSON (integral numbers print
/// without a decimal point, so protocol integers round-trip textually).
std::string WriteJson(const JsonValue& value);

// ---------------------------------------------------------------------------
// Frame assembly
// ---------------------------------------------------------------------------

/// Incremental assembly of '\n'-delimited frames from a non-blocking byte
/// stream: the reactor feeds whatever recv() returned (possibly a fraction
/// of a line, possibly several pipelined lines) and pops complete frames.
/// A frame that grows past `max_frame_bytes` without a terminator trips the
/// overflow latch — the caller answers with a typed error and closes
/// instead of buffering without bound (slow-loris defense).
class LineFrameDecoder {
 public:
  static constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

  explicit LineFrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes. Returns false (and latches overflowed()) once the
  /// unterminated tail exceeds the frame limit; further input is dropped.
  bool Feed(std::string_view data);

  /// Pops the next complete frame into `*line` ('\n' consumed, one trailing
  /// '\r' trimmed). False when no complete frame is buffered.
  bool Next(std::string* line);

  bool overflowed() const { return overflowed_; }
  /// True when a complete frame is buffered (Next() would succeed).
  bool has_frame() const {
    return buffer_.find('\n', consumed_) != std::string::npos;
  }
  /// Bytes of the unconsumed tail (partial frame + undelivered frames).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix already handed out via Next().
  bool overflowed_ = false;
};

/// Incremental assembly of length-prefixed binary frames (protocol v2),
/// the binary counterpart of LineFrameDecoder. A frame whose declared
/// length exceeds `max_frame_bytes` latches overflowed() the moment the
/// prefix arrives (no need to buffer the body — slow-loris defense), and a
/// frame that does not start with kBinaryFrameMagic latches corrupted();
/// either way the stream is unrecoverable and the caller answers a typed
/// error and closes.
class BinaryFrameDecoder {
 public:
  static constexpr size_t kDefaultMaxFrameBytes =
      LineFrameDecoder::kDefaultMaxFrameBytes;

  explicit BinaryFrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes. Returns false (input dropped) once broken().
  bool Feed(std::string_view data);

  /// Pops the next complete frame's body into `*body` (magic and length
  /// prefix consumed). False when no complete frame is buffered.
  bool Next(std::string* body);

  /// Declared frame length exceeded max_frame_bytes.
  bool overflowed() const { return overflowed_; }
  /// A frame did not start with kBinaryFrameMagic.
  bool corrupted() const { return corrupted_; }
  bool broken() const { return overflowed_ || corrupted_; }
  /// True when a complete frame is buffered (Next() would succeed).
  bool has_frame() const;
  /// Bytes of the unconsumed tail (partial frame + undelivered frames).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  /// Validates the head frame's magic/length; latches broken() states.
  void ScanHead();

  const size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool overflowed_ = false;
  bool corrupted_ = false;
};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

enum class WireError;  // Defined with the response machinery below.

enum class RequestOp {
  kQuery,
  kExpand,
  kShowResults,
  kBacktrack,
  kFind,
  kView,
  kClose,
  kStats,
  kMetrics,
  // Appended so existing op bytes keep their binary encoding.
  kBatchExpand,
  /// Cross-shard artifact transfer: "query" carries the normalized cache
  /// key; the reply's "artifact" field is the base64 serialized bundle.
  /// Token-free — shards call each other, not sessions.
  kFetchArtifact,
  /// Routing-tier shard map for client-side routing; answered by the
  /// router (a bare server replies FAILED_PRECONDITION). Token-free.
  kTopology,
};

/// Wire name of an op ("QUERY", ...).
const char* RequestOpName(RequestOp op);

/// Upper bound on the nodes of one BATCH_EXPAND — bounds per-request work
/// the same way max_frame_bytes bounds per-request bytes. One interactive
/// round trip never needs more cuts than this.
inline constexpr size_t kMaxBatchExpandNodes = 64;

/// One parsed request; fields beyond (version, op) are op-specific.
struct Request {
  int version = kProtocolVersion;
  RequestOp op = RequestOp::kStats;
  std::string token;                       // all session-scoped ops
  std::string query;                       // QUERY
  NavNodeId node = kInvalidNavNode;        // EXPAND / SHOWRESULTS
  std::vector<NavNodeId> nodes;            // BATCH_EXPAND
  ConceptId concept_id = kInvalidConcept;  // FIND
  uint64_t retstart = 0;                   // SHOWRESULTS
  uint64_t retmax = 0;                     // SHOWRESULTS (0 = all)
  int depth = 100;                         // VIEW
};

/// Serializes a request as one line (no trailing newline).
std::string SerializeRequest(const Request& request);

/// Arena-backed request decode: the string fields view the frame body the
/// reactor popped from its decoder (the frame itself is the arena), so the
/// binary parse allocates nothing per field. The JSON path adapts an owned
/// Request via MakeRequestView (escape processing needs owned storage).
/// Views are only valid while the backing frame buffer is alive — the
/// server handles a request before popping the next frame.
struct RequestView {
  int version = kProtocolVersion;
  RequestOp op = RequestOp::kStats;
  std::string_view token;
  std::string_view query;
  NavNodeId node = kInvalidNavNode;
  // BATCH_EXPAND node list. Owned (decoded from varints either way), so a
  // view is no more expensive than the owned Request here.
  std::vector<NavNodeId> nodes;
  ConceptId concept_id = kInvalidConcept;
  uint64_t retstart = 0;
  uint64_t retmax = 0;
  int depth = 100;
};

/// A view over an owned Request (JSON parse path).
RequestView MakeRequestView(const Request& request);

/// Serializes a request as a complete binary v2 frame (magic + length
/// prefix + body).
std::string SerializeRequestBinary(const Request& request);

/// Parses one binary frame body (as popped by BinaryFrameDecoder::Next)
/// with the same per-op field validation as ParseRequest. Returns kNone
/// and fills `*out` (string fields viewing `body`) on success.
WireError ParseRequestBinary(std::string_view body, RequestView* out,
                             std::string* error_message);

// ---------------------------------------------------------------------------
// Responses and typed errors
// ---------------------------------------------------------------------------

/// Typed wire errors. kNone means success (only used as a parse outcome,
/// never serialized).
enum class WireError {
  kNone = 0,
  kBadRequest,          // unparsable line / missing or ill-typed fields
  kUnsupportedVersion,  // "v" differs from kProtocolVersion
  kUnknownSession,      // token not live (never created, closed, evicted)
  kRetryLater,          // admission control shed this connection
  kShuttingDown,        // server is draining
  kInvalidArgument,     // op-level: bad node id etc.
  kNotFound,            // op-level lookup miss
  kFailedPrecondition,  // op-level: e.g. EXPAND on a hidden node
  kInternal,
};

/// Wire name of an error code ("RETRY_LATER", ...).
const char* WireErrorName(WireError error);

/// Parses one request line. Returns kNone and fills `*out` on success;
/// otherwise returns the typed error and a human-readable message.
WireError ParseRequest(std::string_view line, Request* out,
                       std::string* error_message);

/// Builds the one-line error response for a typed error.
std::string ErrorReply(WireError error, std::string_view message);

/// Maps an op-level library Status onto the wire (OK statuses are a
/// programming error; use ResponseBuilder for successes).
WireError WireErrorFromStatus(const Status& status);

/// Client-side mapping of a wire error back to a Status. RETRY_LATER and
/// SHUTTING_DOWN map to FailedPrecondition with the code name prefixed to
/// the message so callers can distinguish shed load from logic errors.
Status StatusFromWireError(std::string_view error_name,
                           std::string_view message);

/// Assembles a success response line: {"v":1,"ok":true,"op":...,<fields>}.
/// AddRaw splices pre-serialized JSON (e.g. core/json_export payloads).
class ResponseBuilder {
 public:
  explicit ResponseBuilder(RequestOp op);
  ResponseBuilder& Add(std::string_view key, int64_t value);
  ResponseBuilder& Add(std::string_view key, uint64_t value);
  ResponseBuilder& Add(std::string_view key, int value);
  ResponseBuilder& Add(std::string_view key, bool value);
  ResponseBuilder& Add(std::string_view key, std::string_view value);
  ResponseBuilder& AddRaw(std::string_view key, std::string_view raw_json);
  /// Returns the finished line (no trailing newline). The builder is spent.
  std::string Finish();

 private:
  std::string out_;
};

// ---------------------------------------------------------------------------
// Proto-generic response assembly (v2)
// ---------------------------------------------------------------------------

/// Response field registry. Binary frames tag each field with its id; the
/// client-side decoder maps ids back to the JSON member names below, so
/// one decode path yields the same JsonValue document either way.
enum class WireField : uint8_t {
  kToken = 1,
  kResultSize = 2,
  kCached = 3,
  kRevealed = 4,
  kTotal = 5,
  kSummaries = 6,
  kUndone = 7,
  kFound = 8,
  kNode = 9,
  kVisible = 10,
  kComponentRoot = 11,
  kDistinct = 12,
  kTree = 13,
  kClosed = 14,
  kError = 15,
  kMessage = 16,
  kWhole = 17,
  kResults = 18,   // BATCH_EXPAND per-node outcomes (JSON array)
  kExpanded = 19,  // BATCH_EXPAND: number of cuts applied
  kArtifact = 20,  // FETCH_ARTIFACT: base64 serialized bundle
};

/// JSON member name of a response field ("token", "result_size", ...).
const char* WireFieldName(WireField field);

/// One outgoing response: an owned per-request head plus an optional
/// shared pre-rendered suffix (a response template attached to cached
/// query artifacts). The reactor writes {head, body} with one writev, so
/// serving a template never copies or re-renders the shared bytes.
struct WireFrame {
  std::string head;
  std::shared_ptr<const std::string> body;
  size_t size() const { return head.size() + (body ? body->size() : 0); }
};

/// Renders the shareable field suffix of a response — the template unit
/// cached on QueryArtifacts. For JSON the suffix closes the object and
/// carries the frame's trailing newline; for binary it is raw field bytes
/// (the head's length prefix accounts for it at assembly time).
class WirePayload {
 public:
  explicit WirePayload(WireProto proto) : proto_(proto) {}
  WirePayload& AddUInt(WireField field, uint64_t value);
  WirePayload& AddInt(WireField field, int64_t value);
  WirePayload& AddBool(WireField field, bool value);
  WirePayload& AddString(WireField field, std::string_view value);
  /// Splices pre-serialized JSON (summaries, tree visualizations). Binary
  /// frames carry it as a tagged JSON-text field the decoder re-parses.
  WirePayload& AddRawJson(WireField field, std::string_view raw_json);
  WirePayload& AddIntList(WireField field, const std::vector<NavNodeId>& ids);
  /// Returns the rendered suffix. The builder is spent.
  std::string Finish();

 private:
  friend class WireResponse;
  WireProto proto_;
  std::string out_;
};

/// Assembles one success response in either encoding; the proto-aware
/// counterpart of ResponseBuilder. Fields added here become the owned
/// per-request head; FinishWithPayload appends a shared template suffix
/// rendered by WirePayload instead.
class WireResponse {
 public:
  WireResponse(WireProto proto, RequestOp op);
  WireResponse& AddUInt(WireField field, uint64_t value);
  WireResponse& AddInt(WireField field, int64_t value);
  WireResponse& AddBool(WireField field, bool value);
  WireResponse& AddString(WireField field, std::string_view value);
  WireResponse& AddRawJson(WireField field, std::string_view raw_json);
  WireResponse& AddIntList(WireField field, const std::vector<NavNodeId>& ids);
  /// Self-contained frame (JSON line incl. '\n', or length-prefixed
  /// binary). The builder is spent.
  WireFrame Finish();
  /// Frame whose suffix is the shared pre-rendered `payload` (must have
  /// been produced by WirePayload::Finish with the same proto).
  WireFrame FinishWithPayload(std::shared_ptr<const std::string> payload);

  /// Typed error response as a frame in the given encoding.
  static WireFrame Error(WireProto proto, WireError error,
                         std::string_view message);

 private:
  WireProto proto_;
  RequestOp op_;
  WirePayload fields_;
};

/// Wraps an already-rendered complete JSON response line (no newline) for
/// the given proto: JSON connections send the line verbatim; binary
/// connections carry it as a kWhole field, which DecodeBinaryResponse
/// unwraps back into the identical document. Used by STATS/METRICS, whose
/// exposition-sized payloads have no hot-path templates.
WireFrame WrapWholeJson(WireProto proto, std::string json_line);

/// Client-side decode of one binary response frame body into the same
/// JsonValue document shape a JSON response parses to (kWhole fields are
/// unwrapped; unknown field ids are skipped by their self-describing
/// type). Non-OK only on malformed frames.
Result<JsonValue> DecodeBinaryResponse(std::string_view body);

}  // namespace bionav

#endif  // BIONAV_SERVER_PROTOCOL_H_
