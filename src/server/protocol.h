#ifndef BIONAV_SERVER_PROTOCOL_H_
#define BIONAV_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/navigation_tree.h"
#include "hierarchy/concept_hierarchy.h"
#include "util/status.h"

namespace bionav {

/// The BioNav wire protocol: one request line in, one response line out,
/// both UTF-8 JSON objects terminated by '\n' (the paper's deployment is an
/// HTTP web service; a line-delimited exchange keeps the reproduction
/// dependency-free while preserving the request/response shape). Every
/// message carries the protocol version under "v"; servers reject versions
/// they do not speak with an UNSUPPORTED_VERSION error instead of guessing.
///
/// Request grammar (all requests):
///   {"v": 1, "op": "<OP>", ...op-specific fields...}
/// Ops and their fields:
///   QUERY       {"query": "<keywords>"}            -> token, result_size,
///                                                     cached
///   EXPAND      {"token": t, "node": n}            -> revealed: [ids]
///   SHOWRESULTS {"token": t, "node": n,
///                "retstart": s, "retmax": m}       -> total, summaries
///   BACKTRACK   {"token": t}                       -> undone
///   FIND        {"token": t, "concept": c}         -> node, visible, ...
///   VIEW        {"token": t, "depth": d}           -> tree (visualization)
///   CLOSE       {"token": t}                       -> closed
///   STATS       {}                                 -> stats (incl. metrics)
///   METRICS     {}                                 -> text (Prometheus)
/// Responses: {"v": 1, "ok": true, "op": "<OP>", ...} on success, or
///   {"v": 1, "ok": false, "error": "<CODE>", "message": "..."} on failure.
inline constexpr int kProtocolVersion = 1;

// ---------------------------------------------------------------------------
// Minimal JSON document model + parser (requests are parsed server-side,
// responses client-side; core/json_export handles serialization of the
// heavyweight payloads).
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers are doubles (the protocol's integers are
/// well below 2^53, so the double round-trip is exact).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(Array a);
  static JsonValue MakeObject(Object o);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const Array& array_items() const { return array_; }
  const Object& object_items() const { return object_; }

  /// Object member lookup; nullptr if absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member getters with defaults (absent or wrong-typed -> default).
  int64_t IntOr(std::string_view key, int64_t def) const;
  double NumberOr(std::string_view key, double def) const;
  bool BoolOr(std::string_view key, bool def) const;
  std::string StringOr(std::string_view key, std::string_view def) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document. The whole input must be consumed (trailing
/// whitespace allowed); nesting is capped to keep hostile inputs from
/// exhausting the stack.
Result<JsonValue> ParseJson(std::string_view text);

/// Serializes a JsonValue back to compact JSON (integral numbers print
/// without a decimal point, so protocol integers round-trip textually).
std::string WriteJson(const JsonValue& value);

// ---------------------------------------------------------------------------
// Frame assembly
// ---------------------------------------------------------------------------

/// Incremental assembly of '\n'-delimited frames from a non-blocking byte
/// stream: the reactor feeds whatever recv() returned (possibly a fraction
/// of a line, possibly several pipelined lines) and pops complete frames.
/// A frame that grows past `max_frame_bytes` without a terminator trips the
/// overflow latch — the caller answers with a typed error and closes
/// instead of buffering without bound (slow-loris defense).
class LineFrameDecoder {
 public:
  static constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

  explicit LineFrameDecoder(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes. Returns false (and latches overflowed()) once the
  /// unterminated tail exceeds the frame limit; further input is dropped.
  bool Feed(std::string_view data);

  /// Pops the next complete frame into `*line` ('\n' consumed, one trailing
  /// '\r' trimmed). False when no complete frame is buffered.
  bool Next(std::string* line);

  bool overflowed() const { return overflowed_; }
  /// True when a complete frame is buffered (Next() would succeed).
  bool has_frame() const {
    return buffer_.find('\n', consumed_) != std::string::npos;
  }
  /// Bytes of the unconsumed tail (partial frame + undelivered frames).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;  // Prefix already handed out via Next().
  bool overflowed_ = false;
};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

enum class RequestOp {
  kQuery,
  kExpand,
  kShowResults,
  kBacktrack,
  kFind,
  kView,
  kClose,
  kStats,
  kMetrics,
};

/// Wire name of an op ("QUERY", ...).
const char* RequestOpName(RequestOp op);

/// One parsed request; fields beyond (version, op) are op-specific.
struct Request {
  int version = kProtocolVersion;
  RequestOp op = RequestOp::kStats;
  std::string token;                       // all session-scoped ops
  std::string query;                       // QUERY
  NavNodeId node = kInvalidNavNode;        // EXPAND / SHOWRESULTS
  ConceptId concept_id = kInvalidConcept;  // FIND
  uint64_t retstart = 0;                   // SHOWRESULTS
  uint64_t retmax = 0;                     // SHOWRESULTS (0 = all)
  int depth = 100;                         // VIEW
};

/// Serializes a request as one line (no trailing newline).
std::string SerializeRequest(const Request& request);

// ---------------------------------------------------------------------------
// Responses and typed errors
// ---------------------------------------------------------------------------

/// Typed wire errors. kNone means success (only used as a parse outcome,
/// never serialized).
enum class WireError {
  kNone = 0,
  kBadRequest,          // unparsable line / missing or ill-typed fields
  kUnsupportedVersion,  // "v" differs from kProtocolVersion
  kUnknownSession,      // token not live (never created, closed, evicted)
  kRetryLater,          // admission control shed this connection
  kShuttingDown,        // server is draining
  kInvalidArgument,     // op-level: bad node id etc.
  kNotFound,            // op-level lookup miss
  kFailedPrecondition,  // op-level: e.g. EXPAND on a hidden node
  kInternal,
};

/// Wire name of an error code ("RETRY_LATER", ...).
const char* WireErrorName(WireError error);

/// Parses one request line. Returns kNone and fills `*out` on success;
/// otherwise returns the typed error and a human-readable message.
WireError ParseRequest(std::string_view line, Request* out,
                       std::string* error_message);

/// Builds the one-line error response for a typed error.
std::string ErrorReply(WireError error, std::string_view message);

/// Maps an op-level library Status onto the wire (OK statuses are a
/// programming error; use ResponseBuilder for successes).
WireError WireErrorFromStatus(const Status& status);

/// Client-side mapping of a wire error back to a Status. RETRY_LATER and
/// SHUTTING_DOWN map to FailedPrecondition with the code name prefixed to
/// the message so callers can distinguish shed load from logic errors.
Status StatusFromWireError(std::string_view error_name,
                           std::string_view message);

/// Assembles a success response line: {"v":1,"ok":true,"op":...,<fields>}.
/// AddRaw splices pre-serialized JSON (e.g. core/json_export payloads).
class ResponseBuilder {
 public:
  explicit ResponseBuilder(RequestOp op);
  ResponseBuilder& Add(std::string_view key, int64_t value);
  ResponseBuilder& Add(std::string_view key, uint64_t value);
  ResponseBuilder& Add(std::string_view key, int value);
  ResponseBuilder& Add(std::string_view key, bool value);
  ResponseBuilder& Add(std::string_view key, std::string_view value);
  ResponseBuilder& AddRaw(std::string_view key, std::string_view raw_json);
  /// Returns the finished line (no trailing newline). The builder is spent.
  std::string Finish();

 private:
  std::string out_;
};

}  // namespace bionav

#endif  // BIONAV_SERVER_PROTOCOL_H_
