#include "server/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/json_export.h"

namespace bionav {

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(Array a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::MakeObject(Object o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(o);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t JsonValue::IntOr(std::string_view key, int64_t def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? static_cast<int64_t>(v->number_)
                                        : def;
}

double JsonValue::NumberOr(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_ : def;
}

bool JsonValue::BoolOr(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : def;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_ : std::string(def);
}

// ---------------------------------------------------------------------------
// JSON parser (recursive descent, depth-capped)
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxJsonDepth = 64;

// Local analogue of BIONAV_RETURN_IF_ERROR for functions returning
// Result<JsonValue> (the Status error converts implicitly).
#define BIONAV_RETURN_IF_ERROR_RESULT(expr)  \
  do {                                       \
    ::bionav::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (0)

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    BIONAV_RETURN_IF_ERROR_RESULT(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(std::string_view message) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::string(message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        BIONAV_RETURN_IF_ERROR_RESULT(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue::MakeBool(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue::MakeBool(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      BIONAV_RETURN_IF_ERROR_RESULT(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' in object");
      JsonValue value;
      BIONAV_RETURN_IF_ERROR_RESULT(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      BIONAV_RETURN_IF_ERROR_RESULT(ParseValue(&value, depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid hex digit in \\u escape");
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences — the protocol's own payloads
          // are ASCII, this path only affects user-supplied queries).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  bool ConsumeDigits() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  /// Strict JSON number grammar: -? (0 | [1-9][0-9]*) frac? exp? — rejects
  /// the strtod extensions ("+1", "01", "1.", ".5", hex, inf/nan).
  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    Consume('-');
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (!ConsumeDigits()) {
      return Fail("malformed number");
    }
    if (Consume('.') && !ConsumeDigits()) return Fail("malformed number");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) return Fail("malformed number");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Fail("malformed number");
    }
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

#undef BIONAV_RETURN_IF_ERROR_RESULT

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

namespace {

void WriteJsonTo(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      return;
    case JsonValue::Type::kBool:
      out->append(value.bool_value() ? "true" : "false");
      return;
    case JsonValue::Type::kNumber: {
      double n = value.number_value();
      if (n == static_cast<double>(static_cast<int64_t>(n))) {
        out->append(std::to_string(static_cast<int64_t>(n)));
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", n);
        out->append(buffer);
      }
      return;
    }
    case JsonValue::Type::kString:
      out->push_back('"');
      out->append(JsonEscape(value.string_value()));
      out->push_back('"');
      return;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        WriteJsonTo(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.object_items()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(JsonEscape(key));
        out->append("\":");
        WriteJsonTo(member, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteJsonTo(value, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Frame assembly
// ---------------------------------------------------------------------------

bool LineFrameDecoder::Feed(std::string_view data) {
  if (overflowed_) return false;
  // Compact lazily: only when the consumed prefix dominates, so a steady
  // stream of small frames does not memmove per frame.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
  // Overflow only counts an *unterminated* tail: a Feed carrying several
  // complete pipelined frames may legitimately exceed one frame's budget.
  size_t last_newline = buffer_.find_last_of('\n');
  size_t tail_start = last_newline == std::string::npos ? consumed_
                                                        : last_newline + 1;
  if (tail_start < consumed_) tail_start = consumed_;
  if (buffer_.size() - tail_start > max_frame_bytes_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

bool LineFrameDecoder::Next(std::string* line) {
  size_t newline = buffer_.find('\n', consumed_);
  if (newline == std::string::npos) return false;
  line->assign(buffer_, consumed_, newline - consumed_);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  consumed_ = newline + 1;
  return true;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kQuery: return "QUERY";
    case RequestOp::kExpand: return "EXPAND";
    case RequestOp::kShowResults: return "SHOWRESULTS";
    case RequestOp::kBacktrack: return "BACKTRACK";
    case RequestOp::kFind: return "FIND";
    case RequestOp::kView: return "VIEW";
    case RequestOp::kClose: return "CLOSE";
    case RequestOp::kStats: return "STATS";
    case RequestOp::kMetrics: return "METRICS";
  }
  return "UNKNOWN";
}

namespace {

bool RequestOpFromName(std::string_view name, RequestOp* out) {
  static constexpr RequestOp kOps[] = {
      RequestOp::kQuery,     RequestOp::kExpand, RequestOp::kShowResults,
      RequestOp::kBacktrack, RequestOp::kFind,   RequestOp::kView,
      RequestOp::kClose,     RequestOp::kStats,  RequestOp::kMetrics,
  };
  for (RequestOp op : kOps) {
    if (name == RequestOpName(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

bool NeedsToken(RequestOp op) {
  return op != RequestOp::kQuery && op != RequestOp::kStats &&
         op != RequestOp::kMetrics;
}

void AppendKey(std::string* out, std::string_view key) {
  out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
}

}  // namespace

std::string SerializeRequest(const Request& request) {
  std::string out = "{\"v\":" + std::to_string(request.version) +
                    ",\"op\":\"" + RequestOpName(request.op) + "\"";
  if (request.op == RequestOp::kQuery) {
    AppendKey(&out, "query");
    out += '"' + JsonEscape(request.query) + '"';
  }
  if (NeedsToken(request.op)) {
    AppendKey(&out, "token");
    out += '"' + JsonEscape(request.token) + '"';
  }
  if (request.op == RequestOp::kExpand ||
      request.op == RequestOp::kShowResults) {
    AppendKey(&out, "node");
    out += std::to_string(request.node);
  }
  if (request.op == RequestOp::kShowResults) {
    AppendKey(&out, "retstart");
    out += std::to_string(request.retstart);
    AppendKey(&out, "retmax");
    out += std::to_string(request.retmax);
  }
  if (request.op == RequestOp::kFind) {
    AppendKey(&out, "concept");
    out += std::to_string(request.concept_id);
  }
  if (request.op == RequestOp::kView) {
    AppendKey(&out, "depth");
    out += std::to_string(request.depth);
  }
  out.push_back('}');
  return out;
}

WireError ParseRequest(std::string_view line, Request* out,
                       std::string* error_message) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    *error_message = parsed.status().message();
    return WireError::kBadRequest;
  }
  const JsonValue& doc = parsed.ValueOrDie();
  if (!doc.is_object()) {
    *error_message = "request must be a JSON object";
    return WireError::kBadRequest;
  }
  const JsonValue* version = doc.Find("v");
  if (version == nullptr || !version->is_number()) {
    // Absent or ill-typed "v" is a version we do not speak, not a malformed
    // request — the reply tells the peer which version this server wants.
    *error_message = "missing protocol version field \"v\"; server speaks " +
                     std::to_string(kProtocolVersion);
    return WireError::kUnsupportedVersion;
  }
  if (static_cast<int>(version->number_value()) != kProtocolVersion) {
    *error_message = "server speaks protocol version " +
                     std::to_string(kProtocolVersion);
    return WireError::kUnsupportedVersion;
  }
  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    *error_message = "missing request field \"op\"";
    return WireError::kBadRequest;
  }
  Request request;
  request.version = kProtocolVersion;
  if (!RequestOpFromName(op->string_value(), &request.op)) {
    *error_message = "unknown op '" + op->string_value() + "'";
    return WireError::kBadRequest;
  }
  if (request.op == RequestOp::kQuery) {
    const JsonValue* query = doc.Find("query");
    if (query == nullptr || !query->is_string() ||
        query->string_value().empty()) {
      *error_message = "QUERY requires a non-empty string field \"query\"";
      return WireError::kBadRequest;
    }
    request.query = query->string_value();
  }
  if (NeedsToken(request.op)) {
    const JsonValue* token = doc.Find("token");
    if (token == nullptr || !token->is_string() ||
        token->string_value().empty()) {
      *error_message = std::string(RequestOpName(request.op)) +
                       " requires a string field \"token\"";
      return WireError::kBadRequest;
    }
    request.token = token->string_value();
  }
  if (request.op == RequestOp::kExpand ||
      request.op == RequestOp::kShowResults) {
    const JsonValue* node = doc.Find("node");
    if (node == nullptr || !node->is_number()) {
      *error_message = std::string(RequestOpName(request.op)) +
                       " requires a numeric field \"node\"";
      return WireError::kBadRequest;
    }
    request.node = static_cast<NavNodeId>(node->number_value());
  }
  if (request.op == RequestOp::kShowResults) {
    int64_t retstart = doc.IntOr("retstart", 0);
    int64_t retmax = doc.IntOr("retmax", 0);
    if (retstart < 0 || retmax < 0) {
      *error_message = "retstart/retmax must be non-negative";
      return WireError::kBadRequest;
    }
    request.retstart = static_cast<uint64_t>(retstart);
    request.retmax = static_cast<uint64_t>(retmax);
  }
  if (request.op == RequestOp::kFind) {
    const JsonValue* concept_field = doc.Find("concept");
    if (concept_field == nullptr || !concept_field->is_number()) {
      *error_message = "FIND requires a numeric field \"concept\"";
      return WireError::kBadRequest;
    }
    request.concept_id = static_cast<ConceptId>(concept_field->number_value());
  }
  if (request.op == RequestOp::kView) {
    request.depth = static_cast<int>(doc.IntOr("depth", 100));
  }
  *out = request;
  error_message->clear();
  return WireError::kNone;
}

// ---------------------------------------------------------------------------
// Responses and errors
// ---------------------------------------------------------------------------

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kNone: return "NONE";
    case WireError::kBadRequest: return "BAD_REQUEST";
    case WireError::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case WireError::kUnknownSession: return "UNKNOWN_SESSION";
    case WireError::kRetryLater: return "RETRY_LATER";
    case WireError::kShuttingDown: return "SHUTTING_DOWN";
    case WireError::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireError::kNotFound: return "NOT_FOUND";
    case WireError::kFailedPrecondition: return "FAILED_PRECONDITION";
    case WireError::kInternal: return "INTERNAL";
  }
  return "INTERNAL";
}

std::string ErrorReply(WireError error, std::string_view message) {
  BIONAV_CHECK(error != WireError::kNone) << "ErrorReply on success";
  return "{\"v\":" + std::to_string(kProtocolVersion) +
         ",\"ok\":false,\"error\":\"" + WireErrorName(error) +
         "\",\"message\":\"" + JsonEscape(std::string(message)) + "\"}";
}

WireError WireErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      BIONAV_CHECK(false) << "WireErrorFromStatus on OK";
      return WireError::kInternal;
    case StatusCode::kInvalidArgument: return WireError::kInvalidArgument;
    case StatusCode::kNotFound: return WireError::kNotFound;
    case StatusCode::kOutOfRange: return WireError::kInvalidArgument;
    case StatusCode::kFailedPrecondition: return WireError::kFailedPrecondition;
    case StatusCode::kInternal: return WireError::kInternal;
    case StatusCode::kIOError: return WireError::kInternal;
    // Client-side deadline; a server never produces it on the wire.
    case StatusCode::kDeadlineExceeded: return WireError::kInternal;
  }
  return WireError::kInternal;
}

Status StatusFromWireError(std::string_view error_name,
                           std::string_view message) {
  std::string msg(message);
  if (error_name == WireErrorName(WireError::kInvalidArgument) ||
      error_name == WireErrorName(WireError::kBadRequest) ||
      error_name == WireErrorName(WireError::kUnsupportedVersion)) {
    return Status::InvalidArgument(msg);
  }
  if (error_name == WireErrorName(WireError::kNotFound) ||
      error_name == WireErrorName(WireError::kUnknownSession)) {
    return Status::NotFound(msg);
  }
  if (error_name == WireErrorName(WireError::kRetryLater) ||
      error_name == WireErrorName(WireError::kShuttingDown) ||
      error_name == WireErrorName(WireError::kFailedPrecondition)) {
    // Shed / drain replies keep their code name so callers can detect
    // backpressure without string-matching free-form messages.
    if (error_name != WireErrorName(WireError::kFailedPrecondition)) {
      return Status::FailedPrecondition(std::string(error_name) + ": " + msg);
    }
    return Status::FailedPrecondition(msg);
  }
  return Status::Internal(std::string(error_name) + ": " + msg);
}

ResponseBuilder::ResponseBuilder(RequestOp op) {
  out_ = "{\"v\":" + std::to_string(kProtocolVersion) +
         ",\"ok\":true,\"op\":\"" + RequestOpName(op) + "\"";
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key, int64_t value) {
  AppendKey(&out_, key);
  out_ += std::to_string(value);
  return *this;
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key, uint64_t value) {
  AppendKey(&out_, key);
  out_ += std::to_string(value);
  return *this;
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key, int value) {
  return Add(key, static_cast<int64_t>(value));
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key, bool value) {
  AppendKey(&out_, key);
  out_ += value ? "true" : "false";
  return *this;
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key,
                                      std::string_view value) {
  AppendKey(&out_, key);
  out_ += '"' + JsonEscape(std::string(value)) + '"';
  return *this;
}

ResponseBuilder& ResponseBuilder::AddRaw(std::string_view key,
                                         std::string_view raw_json) {
  AppendKey(&out_, key);
  out_.append(raw_json);
  return *this;
}

std::string ResponseBuilder::Finish() {
  out_.push_back('}');
  return std::move(out_);
}

}  // namespace bionav
