#include "server/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/json_export.h"

namespace bionav {

// ---------------------------------------------------------------------------
// JsonValue
// ---------------------------------------------------------------------------

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(Array a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(a);
  return v;
}

JsonValue JsonValue::MakeObject(Object o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(o);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

int64_t JsonValue::IntOr(std::string_view key, int64_t def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? static_cast<int64_t>(v->number_)
                                        : def;
}

double JsonValue::NumberOr(std::string_view key, double def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_ : def;
}

bool JsonValue::BoolOr(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_ : def;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string_view def) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_ : std::string(def);
}

// ---------------------------------------------------------------------------
// JSON parser (recursive descent, depth-capped)
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxJsonDepth = 64;

// Local analogue of BIONAV_RETURN_IF_ERROR for functions returning
// Result<JsonValue> (the Status error converts implicitly).
#define BIONAV_RETURN_IF_ERROR_RESULT(expr)  \
  do {                                       \
    ::bionav::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (0)

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    BIONAV_RETURN_IF_ERROR_RESULT(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Fail(std::string_view message) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::string(message));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\r' ||
            text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxJsonDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        BIONAV_RETURN_IF_ERROR_RESULT(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue::MakeBool(true);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue::MakeBool(false);
          return Status::OK();
        }
        return Fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue();
          return Status::OK();
        }
        return Fail("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      BIONAV_RETURN_IF_ERROR_RESULT(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' in object");
      JsonValue value;
      BIONAV_RETURN_IF_ERROR_RESULT(ParseValue(&value, depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    JsonValue::Array items;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(items));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      BIONAV_RETURN_IF_ERROR_RESULT(ParseValue(&value, depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(items));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("invalid hex digit in \\u escape");
            }
          }
          // Encode the code point as UTF-8 (surrogate pairs are passed
          // through as two 3-byte sequences — the protocol's own payloads
          // are ASCII, this path only affects user-supplied queries).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  bool ConsumeDigits() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  /// Strict JSON number grammar: -? (0 | [1-9][0-9]*) frac? exp? — rejects
  /// the strtod extensions ("+1", "01", "1.", ".5", hex, inf/nan).
  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    Consume('-');
    if (pos_ < text_.size() && text_[pos_] == '0') {
      ++pos_;
    } else if (!ConsumeDigits()) {
      return Fail("malformed number");
    }
    if (Consume('.') && !ConsumeDigits()) return Fail("malformed number");
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) return Fail("malformed number");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(value)) {
      return Fail("malformed number");
    }
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

#undef BIONAV_RETURN_IF_ERROR_RESULT

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

namespace {

void WriteJsonTo(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      return;
    case JsonValue::Type::kBool:
      out->append(value.bool_value() ? "true" : "false");
      return;
    case JsonValue::Type::kNumber: {
      double n = value.number_value();
      if (n == static_cast<double>(static_cast<int64_t>(n))) {
        out->append(std::to_string(static_cast<int64_t>(n)));
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", n);
        out->append(buffer);
      }
      return;
    }
    case JsonValue::Type::kString:
      out->push_back('"');
      out->append(JsonEscape(value.string_value()));
      out->push_back('"');
      return;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        WriteJsonTo(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, member] : value.object_items()) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        out->append(JsonEscape(key));
        out->append("\":");
        WriteJsonTo(member, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

std::string WriteJson(const JsonValue& value) {
  std::string out;
  WriteJsonTo(value, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Frame assembly
// ---------------------------------------------------------------------------

bool LineFrameDecoder::Feed(std::string_view data) {
  if (overflowed_) return false;
  // Compact lazily: only when the consumed prefix dominates, so a steady
  // stream of small frames does not memmove per frame.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
  // Overflow only counts an *unterminated* tail: a Feed carrying several
  // complete pipelined frames may legitimately exceed one frame's budget.
  size_t last_newline = buffer_.find_last_of('\n');
  size_t tail_start = last_newline == std::string::npos ? consumed_
                                                        : last_newline + 1;
  if (tail_start < consumed_) tail_start = consumed_;
  if (buffer_.size() - tail_start > max_frame_bytes_) {
    overflowed_ = true;
    return false;
  }
  return true;
}

bool LineFrameDecoder::Next(std::string* line) {
  size_t newline = buffer_.find('\n', consumed_);
  if (newline == std::string::npos) return false;
  line->assign(buffer_, consumed_, newline - consumed_);
  if (!line->empty() && line->back() == '\r') line->pop_back();
  consumed_ = newline + 1;
  return true;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const char* RequestOpName(RequestOp op) {
  switch (op) {
    case RequestOp::kQuery: return "QUERY";
    case RequestOp::kExpand: return "EXPAND";
    case RequestOp::kShowResults: return "SHOWRESULTS";
    case RequestOp::kBacktrack: return "BACKTRACK";
    case RequestOp::kFind: return "FIND";
    case RequestOp::kView: return "VIEW";
    case RequestOp::kClose: return "CLOSE";
    case RequestOp::kStats: return "STATS";
    case RequestOp::kMetrics: return "METRICS";
    case RequestOp::kBatchExpand: return "BATCH_EXPAND";
    case RequestOp::kFetchArtifact: return "FETCH_ARTIFACT";
    case RequestOp::kTopology: return "TOPOLOGY";
  }
  return "UNKNOWN";
}

namespace {

bool RequestOpFromName(std::string_view name, RequestOp* out) {
  static constexpr RequestOp kOps[] = {
      RequestOp::kQuery,         RequestOp::kExpand,
      RequestOp::kShowResults,   RequestOp::kBacktrack,
      RequestOp::kFind,          RequestOp::kView,
      RequestOp::kClose,         RequestOp::kStats,
      RequestOp::kMetrics,       RequestOp::kBatchExpand,
      RequestOp::kFetchArtifact, RequestOp::kTopology,
  };
  for (RequestOp op : kOps) {
    if (name == RequestOpName(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

bool NeedsToken(RequestOp op) {
  return op != RequestOp::kQuery && op != RequestOp::kStats &&
         op != RequestOp::kMetrics && op != RequestOp::kFetchArtifact &&
         op != RequestOp::kTopology;
}

/// Ops that carry the "query" field: QUERY carries the raw query string,
/// FETCH_ARTIFACT the normalized artifact key.
bool CarriesQuery(RequestOp op) {
  return op == RequestOp::kQuery || op == RequestOp::kFetchArtifact;
}

void AppendKey(std::string* out, std::string_view key) {
  out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
}

}  // namespace

std::string SerializeRequest(const Request& request) {
  std::string out = "{\"v\":" + std::to_string(request.version) +
                    ",\"op\":\"" + RequestOpName(request.op) + "\"";
  if (CarriesQuery(request.op)) {
    AppendKey(&out, "query");
    out += '"' + JsonEscape(request.query) + '"';
  }
  if (NeedsToken(request.op)) {
    AppendKey(&out, "token");
    out += '"' + JsonEscape(request.token) + '"';
  }
  if (request.op == RequestOp::kExpand ||
      request.op == RequestOp::kShowResults) {
    AppendKey(&out, "node");
    out += std::to_string(request.node);
  }
  if (request.op == RequestOp::kShowResults) {
    AppendKey(&out, "retstart");
    out += std::to_string(request.retstart);
    AppendKey(&out, "retmax");
    out += std::to_string(request.retmax);
  }
  if (request.op == RequestOp::kBatchExpand) {
    AppendKey(&out, "nodes");
    out.push_back('[');
    for (size_t i = 0; i < request.nodes.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += std::to_string(request.nodes[i]);
    }
    out.push_back(']');
  }
  if (request.op == RequestOp::kFind) {
    AppendKey(&out, "concept");
    out += std::to_string(request.concept_id);
  }
  if (request.op == RequestOp::kView) {
    AppendKey(&out, "depth");
    out += std::to_string(request.depth);
  }
  out.push_back('}');
  return out;
}

WireError ParseRequest(std::string_view line, Request* out,
                       std::string* error_message) {
  Result<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) {
    *error_message = parsed.status().message();
    return WireError::kBadRequest;
  }
  const JsonValue& doc = parsed.ValueOrDie();
  if (!doc.is_object()) {
    *error_message = "request must be a JSON object";
    return WireError::kBadRequest;
  }
  const JsonValue* version = doc.Find("v");
  if (version == nullptr || !version->is_number()) {
    // Absent or ill-typed "v" is a version we do not speak, not a malformed
    // request — the reply tells the peer which version this server wants.
    *error_message = "missing protocol version field \"v\"; server speaks " +
                     std::to_string(kProtocolVersion);
    return WireError::kUnsupportedVersion;
  }
  if (static_cast<int>(version->number_value()) != kProtocolVersion) {
    *error_message = "server speaks protocol version " +
                     std::to_string(kProtocolVersion);
    return WireError::kUnsupportedVersion;
  }
  const JsonValue* op = doc.Find("op");
  if (op == nullptr || !op->is_string()) {
    *error_message = "missing request field \"op\"";
    return WireError::kBadRequest;
  }
  Request request;
  request.version = kProtocolVersion;
  if (!RequestOpFromName(op->string_value(), &request.op)) {
    *error_message = "unknown op '" + op->string_value() + "'";
    return WireError::kBadRequest;
  }
  if (CarriesQuery(request.op)) {
    const JsonValue* query = doc.Find("query");
    if (query == nullptr || !query->is_string() ||
        query->string_value().empty()) {
      *error_message = std::string(RequestOpName(request.op)) +
                       " requires a non-empty string field \"query\"";
      return WireError::kBadRequest;
    }
    request.query = query->string_value();
  }
  if (NeedsToken(request.op)) {
    const JsonValue* token = doc.Find("token");
    if (token == nullptr || !token->is_string() ||
        token->string_value().empty()) {
      *error_message = std::string(RequestOpName(request.op)) +
                       " requires a string field \"token\"";
      return WireError::kBadRequest;
    }
    request.token = token->string_value();
  }
  if (request.op == RequestOp::kExpand ||
      request.op == RequestOp::kShowResults) {
    const JsonValue* node = doc.Find("node");
    if (node == nullptr || !node->is_number()) {
      *error_message = std::string(RequestOpName(request.op)) +
                       " requires a numeric field \"node\"";
      return WireError::kBadRequest;
    }
    request.node = static_cast<NavNodeId>(node->number_value());
  }
  if (request.op == RequestOp::kShowResults) {
    int64_t retstart = doc.IntOr("retstart", 0);
    int64_t retmax = doc.IntOr("retmax", 0);
    if (retstart < 0 || retmax < 0) {
      *error_message = "retstart/retmax must be non-negative";
      return WireError::kBadRequest;
    }
    request.retstart = static_cast<uint64_t>(retstart);
    request.retmax = static_cast<uint64_t>(retmax);
  }
  if (request.op == RequestOp::kBatchExpand) {
    const JsonValue* nodes = doc.Find("nodes");
    if (nodes == nullptr || !nodes->is_array() ||
        nodes->array_items().empty()) {
      *error_message =
          "BATCH_EXPAND requires a non-empty array field \"nodes\"";
      return WireError::kBadRequest;
    }
    if (nodes->array_items().size() > kMaxBatchExpandNodes) {
      *error_message = "BATCH_EXPAND accepts at most " +
                       std::to_string(kMaxBatchExpandNodes) + " nodes";
      return WireError::kBadRequest;
    }
    request.nodes.reserve(nodes->array_items().size());
    for (const JsonValue& item : nodes->array_items()) {
      if (!item.is_number()) {
        *error_message = "BATCH_EXPAND \"nodes\" entries must be numeric";
        return WireError::kBadRequest;
      }
      request.nodes.push_back(static_cast<NavNodeId>(item.number_value()));
    }
  }
  if (request.op == RequestOp::kFind) {
    const JsonValue* concept_field = doc.Find("concept");
    if (concept_field == nullptr || !concept_field->is_number()) {
      *error_message = "FIND requires a numeric field \"concept\"";
      return WireError::kBadRequest;
    }
    request.concept_id = static_cast<ConceptId>(concept_field->number_value());
  }
  if (request.op == RequestOp::kView) {
    request.depth = static_cast<int>(doc.IntOr("depth", 100));
  }
  *out = request;
  error_message->clear();
  return WireError::kNone;
}

// ---------------------------------------------------------------------------
// Responses and errors
// ---------------------------------------------------------------------------

const char* WireErrorName(WireError error) {
  switch (error) {
    case WireError::kNone: return "NONE";
    case WireError::kBadRequest: return "BAD_REQUEST";
    case WireError::kUnsupportedVersion: return "UNSUPPORTED_VERSION";
    case WireError::kUnknownSession: return "UNKNOWN_SESSION";
    case WireError::kRetryLater: return "RETRY_LATER";
    case WireError::kShuttingDown: return "SHUTTING_DOWN";
    case WireError::kInvalidArgument: return "INVALID_ARGUMENT";
    case WireError::kNotFound: return "NOT_FOUND";
    case WireError::kFailedPrecondition: return "FAILED_PRECONDITION";
    case WireError::kInternal: return "INTERNAL";
  }
  return "INTERNAL";
}

std::string ErrorReply(WireError error, std::string_view message) {
  BIONAV_CHECK(error != WireError::kNone) << "ErrorReply on success";
  return "{\"v\":" + std::to_string(kProtocolVersion) +
         ",\"ok\":false,\"error\":\"" + WireErrorName(error) +
         "\",\"message\":\"" + JsonEscape(std::string(message)) + "\"}";
}

WireError WireErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      BIONAV_CHECK(false) << "WireErrorFromStatus on OK";
      return WireError::kInternal;
    case StatusCode::kInvalidArgument: return WireError::kInvalidArgument;
    case StatusCode::kNotFound: return WireError::kNotFound;
    case StatusCode::kOutOfRange: return WireError::kInvalidArgument;
    case StatusCode::kFailedPrecondition: return WireError::kFailedPrecondition;
    case StatusCode::kInternal: return WireError::kInternal;
    case StatusCode::kIOError: return WireError::kInternal;
    // Client-side deadline; a server never produces it on the wire.
    case StatusCode::kDeadlineExceeded: return WireError::kInternal;
    // Corrupt persisted state; the session layer translates it to
    // NotFound before the wire, so this is a defensive mapping.
    case StatusCode::kDataLoss: return WireError::kInternal;
  }
  return WireError::kInternal;
}

Status StatusFromWireError(std::string_view error_name,
                           std::string_view message) {
  std::string msg(message);
  if (error_name == WireErrorName(WireError::kInvalidArgument) ||
      error_name == WireErrorName(WireError::kBadRequest) ||
      error_name == WireErrorName(WireError::kUnsupportedVersion)) {
    return Status::InvalidArgument(msg);
  }
  if (error_name == WireErrorName(WireError::kNotFound) ||
      error_name == WireErrorName(WireError::kUnknownSession)) {
    return Status::NotFound(msg);
  }
  if (error_name == WireErrorName(WireError::kRetryLater) ||
      error_name == WireErrorName(WireError::kShuttingDown) ||
      error_name == WireErrorName(WireError::kFailedPrecondition)) {
    // Shed / drain replies keep their code name so callers can detect
    // backpressure without string-matching free-form messages.
    if (error_name != WireErrorName(WireError::kFailedPrecondition)) {
      return Status::FailedPrecondition(std::string(error_name) + ": " + msg);
    }
    return Status::FailedPrecondition(msg);
  }
  return Status::Internal(std::string(error_name) + ": " + msg);
}

ResponseBuilder::ResponseBuilder(RequestOp op) {
  out_ = "{\"v\":" + std::to_string(kProtocolVersion) +
         ",\"ok\":true,\"op\":\"" + RequestOpName(op) + "\"";
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key, int64_t value) {
  AppendKey(&out_, key);
  out_ += std::to_string(value);
  return *this;
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key, uint64_t value) {
  AppendKey(&out_, key);
  out_ += std::to_string(value);
  return *this;
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key, int value) {
  return Add(key, static_cast<int64_t>(value));
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key, bool value) {
  AppendKey(&out_, key);
  out_ += value ? "true" : "false";
  return *this;
}

ResponseBuilder& ResponseBuilder::Add(std::string_view key,
                                      std::string_view value) {
  AppendKey(&out_, key);
  out_ += '"' + JsonEscape(std::string(value)) + '"';
  return *this;
}

ResponseBuilder& ResponseBuilder::AddRaw(std::string_view key,
                                         std::string_view raw_json) {
  AppendKey(&out_, key);
  out_.append(raw_json);
  return *this;
}

std::string ResponseBuilder::Finish() {
  out_.push_back('}');
  return std::move(out_);
}

// ---------------------------------------------------------------------------
// Binary protocol v2
// ---------------------------------------------------------------------------

const char* WireProtoName(WireProto proto) {
  switch (proto) {
    case WireProto::kJson: return "json";
    case WireProto::kBinary: return "binary";
  }
  return "json";
}

void AppendVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool ReadVarint(std::string_view data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= data.size()) return false;
    uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;  // More than 10 continuation bytes: not a valid varint.
}

namespace {

void AppendU32LE(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t ReadU32LE(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

/// Self-describing value encodings of a binary field. Unknown field *ids*
/// are skippable by type; an unknown *type* makes the frame undecodable.
enum FieldType : uint8_t {
  kFieldUVarint = 0,
  kFieldSVarint = 1,
  kFieldBool = 2,
  kFieldString = 3,   // varint length + bytes
  kFieldJson = 4,     // varint length + serialized JSON text
  kFieldIntList = 5,  // varint count + zigzag varints
};

void AppendFieldUInt(std::string* out, uint8_t id, uint64_t value) {
  out->push_back(static_cast<char>(id));
  out->push_back(static_cast<char>(kFieldUVarint));
  AppendVarint(out, value);
}

void AppendFieldInt(std::string* out, uint8_t id, int64_t value) {
  out->push_back(static_cast<char>(id));
  out->push_back(static_cast<char>(kFieldSVarint));
  AppendVarint(out, ZigzagEncode(value));
}

void AppendFieldBool(std::string* out, uint8_t id, bool value) {
  out->push_back(static_cast<char>(id));
  out->push_back(static_cast<char>(kFieldBool));
  out->push_back(value ? '\1' : '\0');
}

void AppendFieldBytes(std::string* out, uint8_t id, uint8_t type,
                      std::string_view bytes) {
  out->push_back(static_cast<char>(id));
  out->push_back(static_cast<char>(type));
  AppendVarint(out, bytes.size());
  out->append(bytes);
}

void AppendFieldIntList(std::string* out, uint8_t id,
                        const std::vector<NavNodeId>& ids) {
  out->push_back(static_cast<char>(id));
  out->push_back(static_cast<char>(kFieldIntList));
  AppendVarint(out, ids.size());
  for (NavNodeId node : ids) {
    AppendVarint(out, ZigzagEncode(static_cast<int64_t>(node)));
  }
}

/// One decoded field value; which member is live depends on `type`.
struct FieldValue {
  uint64_t uval = 0;
  int64_t ival = 0;
  bool bval = false;
  std::string_view bytes;          // kFieldString / kFieldJson
  std::vector<int64_t> list;       // kFieldIntList
};

/// Decodes (and thereby skips) one field value of the given type at `*pos`.
/// False on truncation, overlong lengths, or an unknown type.
bool ReadFieldValue(std::string_view body, size_t* pos, uint8_t type,
                    FieldValue* out) {
  switch (type) {
    case kFieldUVarint:
      return ReadVarint(body, pos, &out->uval);
    case kFieldSVarint: {
      uint64_t raw = 0;
      if (!ReadVarint(body, pos, &raw)) return false;
      out->ival = ZigzagDecode(raw);
      return true;
    }
    case kFieldBool:
      if (*pos >= body.size()) return false;
      out->bval = body[(*pos)++] != '\0';
      return true;
    case kFieldString:
    case kFieldJson: {
      uint64_t length = 0;
      if (!ReadVarint(body, pos, &length)) return false;
      if (length > body.size() - *pos) return false;
      out->bytes = body.substr(*pos, length);
      *pos += length;
      return true;
    }
    case kFieldIntList: {
      uint64_t count = 0;
      if (!ReadVarint(body, pos, &count)) return false;
      if (count > body.size() - *pos) return false;  // >= 1 byte per entry
      out->list.clear();
      out->list.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t raw = 0;
        if (!ReadVarint(body, pos, &raw)) return false;
        out->list.push_back(ZigzagDecode(raw));
      }
      return true;
    }
    default:
      return false;
  }
}

/// Binary request field ids (private to the request codec; response fields
/// use the public WireField registry).
enum ReqField : uint8_t {
  kReqToken = 1,
  kReqQuery = 2,
  kReqNode = 3,
  kReqConcept = 4,
  kReqRetstart = 5,
  kReqRetmax = 6,
  kReqDepth = 7,
  kReqNodes = 8,
};

/// Error responses carry this op byte (JSON errors carry no "op" member).
constexpr uint8_t kBinaryOpError = 0xFF;
/// Whole-JSON passthrough frames (STATS/METRICS) carry this op byte; the
/// decoder returns the embedded document, so the byte never surfaces.
constexpr uint8_t kBinaryOpWhole = 0xFE;

std::string FinishBinaryFrame(std::string body) {
  std::string frame;
  frame.reserve(kBinaryFrameHeaderBytes + body.size());
  frame.push_back(static_cast<char>(kBinaryFrameMagic));
  AppendU32LE(&frame, static_cast<uint32_t>(body.size()));
  frame.append(body);
  return frame;
}

}  // namespace

// ---------------------------------------------------------------------------
// BinaryFrameDecoder
// ---------------------------------------------------------------------------

bool BinaryFrameDecoder::Feed(std::string_view data) {
  if (broken()) return false;
  // Same lazy compaction policy as LineFrameDecoder.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
  ScanHead();
  return !broken();
}

void BinaryFrameDecoder::ScanHead() {
  if (broken()) return;
  size_t avail = buffer_.size() - consumed_;
  if (avail == 0) return;
  if (static_cast<uint8_t>(buffer_[consumed_]) != kBinaryFrameMagic) {
    corrupted_ = true;
    return;
  }
  if (avail < kBinaryFrameHeaderBytes) return;
  if (ReadU32LE(buffer_.data() + consumed_ + 1) > max_frame_bytes_) {
    overflowed_ = true;
  }
}

bool BinaryFrameDecoder::has_frame() const {
  if (broken()) return false;
  size_t avail = buffer_.size() - consumed_;
  if (avail < kBinaryFrameHeaderBytes) return false;
  return avail - kBinaryFrameHeaderBytes >=
         ReadU32LE(buffer_.data() + consumed_ + 1);
}

bool BinaryFrameDecoder::Next(std::string* body) {
  if (!has_frame()) return false;
  uint32_t length = ReadU32LE(buffer_.data() + consumed_ + 1);
  body->assign(buffer_, consumed_ + kBinaryFrameHeaderBytes, length);
  consumed_ += kBinaryFrameHeaderBytes + length;
  // Validate the next frame's head right away so broken() trips as soon as
  // the stream goes bad, not one Feed later.
  ScanHead();
  return true;
}

// ---------------------------------------------------------------------------
// Binary requests
// ---------------------------------------------------------------------------

RequestView MakeRequestView(const Request& request) {
  RequestView view;
  view.version = request.version;
  view.op = request.op;
  view.token = request.token;
  view.query = request.query;
  view.node = request.node;
  view.nodes = request.nodes;
  view.concept_id = request.concept_id;
  view.retstart = request.retstart;
  view.retmax = request.retmax;
  view.depth = request.depth;
  return view;
}

std::string SerializeRequestBinary(const Request& request) {
  std::string body;
  body.push_back(static_cast<char>(kBinaryProtocolVersion));
  body.push_back(static_cast<char>(request.op));
  if (CarriesQuery(request.op)) {
    AppendFieldBytes(&body, kReqQuery, kFieldString, request.query);
  }
  if (NeedsToken(request.op)) {
    AppendFieldBytes(&body, kReqToken, kFieldString, request.token);
  }
  if (request.op == RequestOp::kExpand ||
      request.op == RequestOp::kShowResults) {
    AppendFieldInt(&body, kReqNode, static_cast<int64_t>(request.node));
  }
  if (request.op == RequestOp::kShowResults) {
    AppendFieldUInt(&body, kReqRetstart, request.retstart);
    AppendFieldUInt(&body, kReqRetmax, request.retmax);
  }
  if (request.op == RequestOp::kBatchExpand) {
    AppendFieldIntList(&body, kReqNodes, request.nodes);
  }
  if (request.op == RequestOp::kFind) {
    AppendFieldInt(&body, kReqConcept, static_cast<int64_t>(request.concept_id));
  }
  if (request.op == RequestOp::kView) {
    AppendFieldInt(&body, kReqDepth, request.depth);
  }
  return FinishBinaryFrame(std::move(body));
}

WireError ParseRequestBinary(std::string_view body, RequestView* out,
                             std::string* error_message) {
  if (body.size() < 2) {
    *error_message = "binary request body too short";
    return WireError::kBadRequest;
  }
  int version = static_cast<uint8_t>(body[0]);
  if (version != kBinaryProtocolVersion) {
    *error_message = "server speaks binary protocol version " +
                     std::to_string(kBinaryProtocolVersion);
    return WireError::kUnsupportedVersion;
  }
  uint8_t op_byte = static_cast<uint8_t>(body[1]);
  if (op_byte > static_cast<uint8_t>(RequestOp::kTopology)) {
    *error_message = "unknown op byte " + std::to_string(op_byte);
    return WireError::kBadRequest;
  }
  RequestView view;
  view.version = version;
  view.op = static_cast<RequestOp>(op_byte);
  bool has_node = false;
  bool has_concept = false;
  size_t pos = 2;
  while (pos < body.size()) {
    if (pos + 2 > body.size()) {
      *error_message = "truncated field header";
      return WireError::kBadRequest;
    }
    uint8_t id = static_cast<uint8_t>(body[pos]);
    uint8_t type = static_cast<uint8_t>(body[pos + 1]);
    pos += 2;
    FieldValue value;
    if (!ReadFieldValue(body, &pos, type, &value)) {
      *error_message = "malformed field " + std::to_string(id);
      return WireError::kBadRequest;
    }
    // A known id with an unexpected type counts as absent (the per-op
    // required-field validation below reports it), matching the JSON
    // parser's treatment of ill-typed members.
    switch (id) {
      case kReqToken:
        if (type == kFieldString) view.token = value.bytes;
        break;
      case kReqQuery:
        if (type == kFieldString) view.query = value.bytes;
        break;
      case kReqNode:
        if (type == kFieldSVarint) {
          view.node = static_cast<NavNodeId>(value.ival);
          has_node = true;
        }
        break;
      case kReqConcept:
        if (type == kFieldSVarint) {
          view.concept_id = static_cast<ConceptId>(value.ival);
          has_concept = true;
        }
        break;
      case kReqRetstart:
        if (type == kFieldUVarint) view.retstart = value.uval;
        break;
      case kReqRetmax:
        if (type == kFieldUVarint) view.retmax = value.uval;
        break;
      case kReqDepth:
        if (type == kFieldSVarint) view.depth = static_cast<int>(value.ival);
        break;
      case kReqNodes:
        if (type == kFieldIntList) {
          view.nodes.clear();
          view.nodes.reserve(value.list.size());
          for (int64_t v : value.list) {
            view.nodes.push_back(static_cast<NavNodeId>(v));
          }
        }
        break;
      default:
        break;  // Unknown field: skipped by its self-describing type.
    }
  }
  if (CarriesQuery(view.op) && view.query.empty()) {
    *error_message = std::string(RequestOpName(view.op)) +
                     " requires a non-empty string field \"query\"";
    return WireError::kBadRequest;
  }
  if (NeedsToken(view.op) && view.token.empty()) {
    *error_message = std::string(RequestOpName(view.op)) +
                     " requires a string field \"token\"";
    return WireError::kBadRequest;
  }
  if ((view.op == RequestOp::kExpand || view.op == RequestOp::kShowResults) &&
      !has_node) {
    *error_message = std::string(RequestOpName(view.op)) +
                     " requires a numeric field \"node\"";
    return WireError::kBadRequest;
  }
  if (view.op == RequestOp::kFind && !has_concept) {
    *error_message = "FIND requires a numeric field \"concept\"";
    return WireError::kBadRequest;
  }
  if (view.op == RequestOp::kBatchExpand) {
    if (view.nodes.empty()) {
      *error_message =
          "BATCH_EXPAND requires a non-empty array field \"nodes\"";
      return WireError::kBadRequest;
    }
    if (view.nodes.size() > kMaxBatchExpandNodes) {
      *error_message = "BATCH_EXPAND accepts at most " +
                       std::to_string(kMaxBatchExpandNodes) + " nodes";
      return WireError::kBadRequest;
    }
  }
  *out = view;
  error_message->clear();
  return WireError::kNone;
}

// ---------------------------------------------------------------------------
// Proto-generic responses
// ---------------------------------------------------------------------------

const char* WireFieldName(WireField field) {
  switch (field) {
    case WireField::kToken: return "token";
    case WireField::kResultSize: return "result_size";
    case WireField::kCached: return "cached";
    case WireField::kRevealed: return "revealed";
    case WireField::kTotal: return "total";
    case WireField::kSummaries: return "summaries";
    case WireField::kUndone: return "undone";
    case WireField::kFound: return "found";
    case WireField::kNode: return "node";
    case WireField::kVisible: return "visible";
    case WireField::kComponentRoot: return "component_root";
    case WireField::kDistinct: return "distinct";
    case WireField::kTree: return "tree";
    case WireField::kClosed: return "closed";
    case WireField::kError: return "error";
    case WireField::kMessage: return "message";
    case WireField::kWhole: return "whole";
    case WireField::kResults: return "results";
    case WireField::kExpanded: return "expanded";
    case WireField::kArtifact: return "artifact";
  }
  return nullptr;
}

namespace {

/// WireFieldName over a raw id byte; nullptr for ids this build ignores.
const char* WireFieldNameOrNull(uint8_t id) {
  if (id < static_cast<uint8_t>(WireField::kToken) ||
      id > static_cast<uint8_t>(WireField::kArtifact)) {
    return nullptr;
  }
  return WireFieldName(static_cast<WireField>(id));
}

}  // namespace

WirePayload& WirePayload::AddUInt(WireField field, uint64_t value) {
  if (proto_ == WireProto::kJson) {
    AppendKey(&out_, WireFieldName(field));
    out_ += std::to_string(value);
  } else {
    AppendFieldUInt(&out_, static_cast<uint8_t>(field), value);
  }
  return *this;
}

WirePayload& WirePayload::AddInt(WireField field, int64_t value) {
  if (proto_ == WireProto::kJson) {
    AppendKey(&out_, WireFieldName(field));
    out_ += std::to_string(value);
  } else {
    AppendFieldInt(&out_, static_cast<uint8_t>(field), value);
  }
  return *this;
}

WirePayload& WirePayload::AddBool(WireField field, bool value) {
  if (proto_ == WireProto::kJson) {
    AppendKey(&out_, WireFieldName(field));
    out_ += value ? "true" : "false";
  } else {
    AppendFieldBool(&out_, static_cast<uint8_t>(field), value);
  }
  return *this;
}

WirePayload& WirePayload::AddString(WireField field, std::string_view value) {
  if (proto_ == WireProto::kJson) {
    AppendKey(&out_, WireFieldName(field));
    out_ += '"' + JsonEscape(std::string(value)) + '"';
  } else {
    AppendFieldBytes(&out_, static_cast<uint8_t>(field), kFieldString, value);
  }
  return *this;
}

WirePayload& WirePayload::AddRawJson(WireField field,
                                     std::string_view raw_json) {
  if (proto_ == WireProto::kJson) {
    AppendKey(&out_, WireFieldName(field));
    out_.append(raw_json);
  } else {
    AppendFieldBytes(&out_, static_cast<uint8_t>(field), kFieldJson, raw_json);
  }
  return *this;
}

WirePayload& WirePayload::AddIntList(WireField field,
                                     const std::vector<NavNodeId>& ids) {
  if (proto_ == WireProto::kJson) {
    AppendKey(&out_, WireFieldName(field));
    out_.push_back('[');
    bool first = true;
    for (NavNodeId node : ids) {
      if (!first) out_.push_back(',');
      first = false;
      out_ += std::to_string(node);
    }
    out_.push_back(']');
  } else {
    AppendFieldIntList(&out_, static_cast<uint8_t>(field), ids);
  }
  return *this;
}

std::string WirePayload::Finish() {
  if (proto_ == WireProto::kJson) out_.append("}\n");
  return std::move(out_);
}

namespace {

/// The per-request binary response prefix: [version][flags][op].
std::string BinaryResponseHead(bool ok, uint8_t op_byte) {
  std::string head;
  head.push_back(static_cast<char>(kBinaryProtocolVersion));
  head.push_back(ok ? '\1' : '\0');
  head.push_back(static_cast<char>(op_byte));
  return head;
}

}  // namespace

WireResponse::WireResponse(WireProto proto, RequestOp op)
    : proto_(proto), op_(op), fields_(proto) {}

WireResponse& WireResponse::AddUInt(WireField field, uint64_t value) {
  fields_.AddUInt(field, value);
  return *this;
}

WireResponse& WireResponse::AddInt(WireField field, int64_t value) {
  fields_.AddInt(field, value);
  return *this;
}

WireResponse& WireResponse::AddBool(WireField field, bool value) {
  fields_.AddBool(field, value);
  return *this;
}

WireResponse& WireResponse::AddString(WireField field, std::string_view value) {
  fields_.AddString(field, value);
  return *this;
}

WireResponse& WireResponse::AddRawJson(WireField field,
                                       std::string_view raw_json) {
  fields_.AddRawJson(field, raw_json);
  return *this;
}

WireResponse& WireResponse::AddIntList(WireField field,
                                       const std::vector<NavNodeId>& ids) {
  fields_.AddIntList(field, ids);
  return *this;
}

WireFrame WireResponse::Finish() {
  WireFrame frame;
  if (proto_ == WireProto::kJson) {
    frame.head = "{\"v\":" + std::to_string(kProtocolVersion) +
                 ",\"ok\":true,\"op\":\"" + RequestOpName(op_) + "\"" +
                 fields_.Finish();
  } else {
    frame.head = FinishBinaryFrame(
        BinaryResponseHead(true, static_cast<uint8_t>(op_)) +
        fields_.Finish());
  }
  return frame;
}

WireFrame WireResponse::FinishWithPayload(
    std::shared_ptr<const std::string> payload) {
  BIONAV_CHECK(payload != nullptr) << "FinishWithPayload on null payload";
  WireFrame frame;
  if (proto_ == WireProto::kJson) {
    // The shared payload closes the object and carries the '\n'.
    frame.head = "{\"v\":" + std::to_string(kProtocolVersion) +
                 ",\"ok\":true,\"op\":\"" + RequestOpName(op_) + "\"" +
                 std::move(fields_.out_);
  } else {
    std::string inner =
        BinaryResponseHead(true, static_cast<uint8_t>(op_)) +
        std::move(fields_.out_);
    frame.head.reserve(kBinaryFrameHeaderBytes + inner.size());
    frame.head.push_back(static_cast<char>(kBinaryFrameMagic));
    AppendU32LE(&frame.head,
                static_cast<uint32_t>(inner.size() + payload->size()));
    frame.head.append(inner);
  }
  frame.body = std::move(payload);
  return frame;
}

WireFrame WireResponse::Error(WireProto proto, WireError error,
                              std::string_view message) {
  WireFrame frame;
  if (proto == WireProto::kJson) {
    frame.head = ErrorReply(error, message) + "\n";
    return frame;
  }
  BIONAV_CHECK(error != WireError::kNone) << "Error frame on success";
  std::string body = BinaryResponseHead(false, kBinaryOpError);
  AppendFieldBytes(&body, static_cast<uint8_t>(WireField::kError),
                   kFieldString, WireErrorName(error));
  AppendFieldBytes(&body, static_cast<uint8_t>(WireField::kMessage),
                   kFieldString, message);
  frame.head = FinishBinaryFrame(std::move(body));
  return frame;
}

WireFrame WrapWholeJson(WireProto proto, std::string json_line) {
  WireFrame frame;
  if (proto == WireProto::kJson) {
    frame.head = std::move(json_line) + "\n";
    return frame;
  }
  std::string body = BinaryResponseHead(true, kBinaryOpWhole);
  AppendFieldBytes(&body, static_cast<uint8_t>(WireField::kWhole), kFieldJson,
                   json_line);
  frame.head = FinishBinaryFrame(std::move(body));
  return frame;
}

Result<JsonValue> DecodeBinaryResponse(std::string_view body) {
  if (body.size() < 3) {
    return Status::InvalidArgument("binary response body too short");
  }
  if (static_cast<uint8_t>(body[0]) != kBinaryProtocolVersion) {
    return Status::InvalidArgument("unexpected binary response version byte");
  }
  bool ok = (static_cast<uint8_t>(body[1]) & 1) != 0;
  uint8_t op_byte = static_cast<uint8_t>(body[2]);
  JsonValue::Object members;
  members.emplace_back("v", JsonValue::MakeNumber(kBinaryProtocolVersion));
  members.emplace_back("ok", JsonValue::MakeBool(ok));
  // Error frames carry no "op" member, matching the JSON error shape.
  if (op_byte <= static_cast<uint8_t>(RequestOp::kTopology)) {
    members.emplace_back(
        "op", JsonValue::MakeString(
                  RequestOpName(static_cast<RequestOp>(op_byte))));
  }
  size_t pos = 3;
  while (pos < body.size()) {
    if (pos + 2 > body.size()) {
      return Status::InvalidArgument("truncated response field header");
    }
    uint8_t id = static_cast<uint8_t>(body[pos]);
    uint8_t type = static_cast<uint8_t>(body[pos + 1]);
    pos += 2;
    FieldValue value;
    if (!ReadFieldValue(body, &pos, type, &value)) {
      return Status::InvalidArgument("malformed response field " +
                                     std::to_string(id));
    }
    if (id == static_cast<uint8_t>(WireField::kWhole)) {
      // Whole-JSON passthrough: the embedded document IS the response.
      return ParseJson(value.bytes);
    }
    const char* name = WireFieldNameOrNull(id);
    if (name == nullptr) continue;  // Forward compatibility: skip unknown.
    switch (type) {
      case kFieldUVarint:
        members.emplace_back(
            name, JsonValue::MakeNumber(static_cast<double>(value.uval)));
        break;
      case kFieldSVarint:
        members.emplace_back(
            name, JsonValue::MakeNumber(static_cast<double>(value.ival)));
        break;
      case kFieldBool:
        members.emplace_back(name, JsonValue::MakeBool(value.bval));
        break;
      case kFieldString:
        members.emplace_back(name,
                             JsonValue::MakeString(std::string(value.bytes)));
        break;
      case kFieldJson: {
        Result<JsonValue> parsed = ParseJson(value.bytes);
        if (!parsed.ok()) return parsed.status();
        members.emplace_back(name, std::move(parsed.ValueOrDie()));
        break;
      }
      case kFieldIntList: {
        JsonValue::Array items;
        items.reserve(value.list.size());
        for (int64_t v : value.list) {
          items.push_back(JsonValue::MakeNumber(static_cast<double>(v)));
        }
        members.emplace_back(name, JsonValue::MakeArray(std::move(items)));
        break;
      }
    }
  }
  return JsonValue::MakeObject(std::move(members));
}

}  // namespace bionav
