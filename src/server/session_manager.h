#ifndef BIONAV_SERVER_SESSION_MANAGER_H_
#define BIONAV_SERVER_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "cache/query_artifact_cache.h"
#include "persist/spill_store.h"
#include "sim/session.h"

namespace bionav {

/// Tuning knobs of the session store. The defaults suit an interactive
/// deployment: a navigation dialogue that pauses for ten minutes has been
/// abandoned, and a few hundred live trees bound the server's memory.
struct SessionManagerOptions {
  /// Live-session capacity; creating one past it evicts the least recently
  /// used session. Clamped to >= 1.
  size_t max_sessions = 256;
  /// Idle time after which a session expires; 0 disables TTL expiry.
  int64_t ttl_ms = 10 * 60 * 1000;
  /// Prepended to every minted session token ("shard0-s17"). Tokens are
  /// opaque to clients but must be unique across a whole serving tier:
  /// bionav_route pins sessions to shards by token, so two backends
  /// minting the same "s1" would alias in the router's pin map. Empty
  /// (the default) for single-process deployments.
  std::string token_prefix;
  /// Millisecond clock used for TTL/LRU accounting. Defaults to
  /// std::chrono::steady_clock; tests inject a fake to step time manually.
  /// Also handed to the query-artifact cache, so session TTL and artifact
  /// TTL tick on the same (possibly fake) clock.
  std::function<int64_t()> clock;
  /// Share query artifacts (result set, frozen navigation tree, cost
  /// model) across sessions of the same normalized query. When false,
  /// every QUERY rebuilds privately (the pre-cache behavior).
  bool cache_enabled = true;
  /// Byte budget / TTL / shard count of the artifact cache; see
  /// QueryArtifactCacheOptions. The cache's clock is always inherited from
  /// `clock` above.
  size_t cache_max_bytes = QueryArtifactCacheOptions().max_bytes;
  int64_t cache_ttl_ms = 0;
  size_t cache_shards = 8;
  /// Directory for the spill tier; empty disables spilling. With spill on,
  /// idle and capacity-evicted sessions are snapshotted to disk instead of
  /// destroyed, and the next touch of their token restores them
  /// transparently — millions of parked dialogues fit a small heap.
  std::string spill_dir;
  /// Idle time after which SpillIdle writes a session out. 0 means "only
  /// spill on capacity eviction or SpillAll". Should be well below ttl_ms:
  /// TTL still destroys *resident* sessions, while parked snapshots live
  /// until CLOSE or restore (steady clocks do not survive a restart, so
  /// on-disk records carry no trustworthy idle age).
  int64_t spill_after_ms = 0;
  /// Cross-shard artifact sharing: tried (with the normalized query key)
  /// inside the cache's singleflight builder before a local build. Return
  /// the ring-owner's bundle, or nullptr to fall back to building locally
  /// (key self-owned, fleet unconfigured, peer down, record corrupt). The
  /// hook runs outside every SessionManager lock but inside the cache's
  /// per-key singleflight, so a shard issues at most one fetch per key no
  /// matter how many sessions pile up. Bundles it returns must be frozen.
  /// Only consulted when cache_enabled is true — without the cache there
  /// is no singleflight to gate the fetch.
  std::function<std::shared_ptr<const QueryArtifacts>(const std::string&)>
      peer_fetcher;
};

/// Lifetime counters. `active` is the instantaneous live-session count;
/// the rest are monotone since construction.
struct SessionManagerStats {
  size_t active = 0;
  int64_t created = 0;
  int64_t evicted_lru = 0;
  int64_t expired_ttl = 0;
  int64_t closed = 0;
  /// Operations dispatched through WithSession (EXPAND, SHOWRESULTS, ...).
  int64_t operations = 0;
  /// Spill-tier traffic (all zero when spill_dir is empty).
  int64_t spilled = 0;
  int64_t restored = 0;
  int64_t restore_failed = 0;
  /// Sessions currently parked on disk.
  size_t spilled_now = 0;
  /// Estimated heap bytes of the resident sessions (the spill tier's
  /// memory-bounding claim is judged against this gauge).
  size_t resident_bytes = 0;
  /// Artifact provenance. `artifact_builds` counts bundles this manager
  /// built from scratch; peer_fetch_hits bundles obtained from the ring
  /// owner; peer_fetch_misses peer attempts that fell back to a local
  /// build. Per-manager (unlike bionav_artifact_builds_total, which is
  /// process-wide), so a test hosting several in-process shards can
  /// attribute builds to the shard that ran them.
  int64_t artifact_builds = 0;
  int64_t peer_fetch_hits = 0;
  int64_t peer_fetch_misses = 0;
};

/// Owns the live NavigationSessions of a serving process, keyed by opaque
/// token. Thread-safe: the token map is guarded by one mutex, and every
/// session carries its own operation mutex — two EXPANDs on one session
/// serialize (an ActiveTree is stateful), while operations on distinct
/// sessions proceed concurrently on the server's thread pool.
///
/// Eviction never blocks on a session being operated on: entries are
/// shared_ptr-owned, so an LRU/TTL eviction or CLOSE unlinks the entry from
/// the map and the in-flight operation finishes on the (now unlisted)
/// session before it is destroyed.
class SessionManager {
 public:
  SessionManager(const ConceptHierarchy* hierarchy, const EUtilsClient* eutils,
                 StrategyFactory strategy_factory,
                 SessionManagerOptions options = SessionManagerOptions(),
                 CostModelParams cost_params = CostModelParams());
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// What CreateSession produced: the registered session's token, the
  /// query's result size, and whether the artifacts came from the shared
  /// cache (false on a cold build or when the cache is disabled).
  struct CreateInfo {
    std::string token;
    size_t result_size = 0;
    bool cache_hit = false;
    /// The session's (possibly shared) artifacts — the server serves
    /// pre-rendered response templates straight off the bundle on hits.
    std::shared_ptr<const QueryArtifacts> artifacts;
  };

  /// Runs the online pipeline for `query` (ESearch -> navigation tree ->
  /// active tree) — or, on a cache hit, reuses the shared frozen artifacts
  /// of an earlier session with the same normalized query — and registers
  /// the session. Expensive on a miss (tree construction), so the build
  /// runs outside every lock; concurrent creates of *distinct* queries
  /// overlap, while concurrent creates of the *same* query singleflight on
  /// one build.
  Result<CreateInfo> CreateSession(const std::string& query);

  /// Back-compat wrapper over CreateSession: returns the token; the result
  /// size is reported through `*result_size` when non-null.
  Result<std::string> Create(const std::string& query,
                             size_t* result_size = nullptr);

  /// Looks up `token`, refreshes its TTL/LRU stamp, and runs `fn` on the
  /// session under its per-session mutex. A token parked in the spill tier
  /// is restored first (artifact rebuild + replay), transparently to the
  /// caller. Returns NotFound if the token is not live (never created,
  /// closed, evicted, expired, or its snapshot is unreadable) — the only
  /// NotFound this method itself produces; any other status comes from
  /// `fn`. Takes a view so arena-backed binary request tokens flow through
  /// without materializing a std::string.
  Status WithSession(std::string_view token,
                     const std::function<Status(NavigationSession&)>& fn);

  /// Closes (unregisters) a session, resident or spilled. False if the
  /// token was not live.
  bool Close(std::string_view token);

  /// Spills every resident session idle for spill_after_ms (skipping any
  /// with an operation in flight) to disk and drops it from the heap.
  /// Returns the number written. No-op unless spill is configured.
  size_t SpillIdle();

  /// Spills every resident session regardless of idleness and persists the
  /// token counter in the spill manifest — the warm-restart path (call
  /// after the server drained, so nothing is in flight). Returns the
  /// number written.
  size_t SpillAll();

  /// Owner-side half of FETCH_ARTIFACT: the (already normalized) key's
  /// bundle from the shared cache, building locally on a miss — inside the
  /// same singleflight QUERYs use, so a fetch and a concurrent QUERY of
  /// one key share a single build. Never consults peer_fetcher: the ring
  /// owner is the end of the chain (a fetch loop between two shards that
  /// disagree about ownership must terminate in a local build).
  /// FailedPrecondition when caching is disabled — there is no shared
  /// bundle to export.
  Result<std::shared_ptr<const QueryArtifacts>> ArtifactsForKey(
      const std::string& key);

  bool spill_enabled() const { return spill_ != nullptr; }

  size_t active() const;
  SessionManagerStats stats() const;

  /// The shared artifact cache, or nullptr when cache_enabled is false.
  const QueryArtifactCache* cache() const { return cache_.get(); }

 private:
  struct Entry {
    std::string token;
    std::unique_ptr<NavigationSession> session;
    /// Serializes operations on this session.
    std::mutex op_mu;
    /// Guarded by SessionManager::mu_.
    int64_t last_used_ms = 0;
    /// Operations between lookup and release (guarded by mu_). Spill and
    /// spill-backed eviction skip pinned entries: snapshotting a session
    /// mid-mutation would persist a stale tree and lose the op — the
    /// touch-during-spill race the regression tests pin down.
    int inflight = 0;
    /// Last MemoryBytes() estimate, for the resident-heap gauge (mu_).
    size_t mem_bytes = 0;
  };

  int64_t NowMs() const;
  /// Resolves artifacts for `query`: peer fetch first (when configured and
  /// `allow_peer`), local build otherwise. Runs outside every lock — it is
  /// the cache's singleflight builder on the cached path.
  std::shared_ptr<const QueryArtifacts> ResolveArtifacts(
      const std::string& query, bool freeze, bool allow_peer);
  /// Drops every TTL-expired entry. Requires mu_ held.
  void SweepExpiredLocked(int64_t now_ms);
  /// Evicts least-recently-used entries until below capacity (spilling
  /// them first when the spill tier is on). Requires mu_ held.
  void EvictToCapacityLocked();
  /// Snapshots `entry` to the spill store. Requires mu_ held and
  /// entry->inflight == 0 (the lock plus the zero pin count guarantee no
  /// thread is touching the session). Does not unlink from the map.
  bool SpillEntryLocked(const std::shared_ptr<Entry>& entry);
  /// Restores `token` from the spill tier, registers it, and returns the
  /// entry pinned (inflight incremented). On failure returns null and
  /// reports through `status`.
  std::shared_ptr<Entry> RestoreFromSpill(std::string_view token,
                                          Status* status);

  const ConceptHierarchy* hierarchy_;
  const EUtilsClient* eutils_;
  StrategyFactory strategy_factory_;
  SessionManagerOptions options_;
  CostModelParams cost_params_;
  /// Shared per-query artifacts; null when caching is disabled.
  std::unique_ptr<QueryArtifactCache> cache_;

  /// Transparent hashing so string_view tokens (viewing a binary request
  /// frame) probe the map without an allocating conversion.
  struct TokenHash {
    using is_transparent = void;
    size_t operator()(std::string_view token) const {
      return std::hash<std::string_view>()(token);
    }
  };
  using SessionMap = std::unordered_map<std::string, std::shared_ptr<Entry>,
                                        TokenHash, std::equal_to<>>;

  /// Unlinks a resident entry and settles the live/heap gauges. Requires
  /// mu_ held. Returns the next iterator.
  SessionMap::iterator EraseResidentLocked(SessionMap::iterator it);

  /// The spill store, or null when options_.spill_dir is empty.
  std::unique_ptr<SpillStore> spill_;

  mutable std::mutex mu_;
  SessionMap sessions_;
  /// Tokens currently parked on disk (mirrors the spill directory, so a
  /// WithSession miss never pays a disk probe for a genuinely unknown
  /// token). Guarded by mu_.
  std::unordered_set<std::string, TokenHash, std::equal_to<>> spilled_tokens_;
  /// Running MemoryBytes() total of resident sessions. Guarded by mu_.
  size_t resident_bytes_ = 0;
  uint64_t next_token_ = 1;
  SessionManagerStats counters_;  // `active` field unused; derived from map.
  /// Artifact provenance; atomics because they tick inside the cache's
  /// builder, which runs outside mu_.
  std::atomic<int64_t> artifact_builds_{0};
  std::atomic<int64_t> peer_fetch_hits_{0};
  std::atomic<int64_t> peer_fetch_misses_{0};
};

}  // namespace bionav

#endif  // BIONAV_SERVER_SESSION_MANAGER_H_
