#include "server/nav_client.h"

#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "util/string_util.h"

namespace bionav {

namespace {

/// connect() bounded by a deadline: the socket goes non-blocking for the
/// handshake (poll for writability, then harvest SO_ERROR) and returns to
/// blocking mode afterwards. timeout_ms <= 0 means plain blocking connect.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addrlen,
                          int64_t timeout_ms) {
  if (timeout_ms <= 0) {
    while (::connect(fd, addr, addrlen) != 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("connect: ") + std::strerror(errno));
    }
    return Status::OK();
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  Status status = Status::OK();
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      status = Status::IOError(std::string("connect: ") +
                               std::strerror(errno));
    } else {
      pollfd pfd{fd, POLLOUT, 0};
      int ready;
      do {
        ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        status = Status::DeadlineExceeded(
            "connect timed out after " + std::to_string(timeout_ms) + " ms");
      } else if (ready < 0) {
        status = Status::IOError(std::string("poll: ") + std::strerror(errno));
      } else {
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
        if (soerr != 0) {
          status = Status::IOError(std::string("connect: ") +
                                   std::strerror(soerr));
        }
      }
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return status;
}

}  // namespace

Result<std::unique_ptr<NavClient>> NavClient::Connect(
    const std::string& host, int port, NavClientOptions options) {
  // Full-jitter backoff: each retry sleeps uniform(0, cap) with the cap
  // doubling 50ms -> 1s. A deterministic ladder synchronizes every client
  // racing one restarting backend into retry waves that land together;
  // the jitter spreads the reconnect burst across the whole window.
  std::minstd_rand rng(std::random_device{}());
  int64_t cap_ms = 50;
  for (int attempt = 0;; ++attempt) {
    Result<std::unique_ptr<NavClient>> connected =
        ConnectOnce(host, port, options);
    if (connected.ok() || attempt >= options.connect_retries) {
      return connected;
    }
    std::uniform_int_distribution<int64_t> jitter(0, cap_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(jitter(rng)));
    cap_ms = std::min<int64_t>(cap_ms * 2, 1000);
  }
}

Result<std::unique_ptr<NavClient>> NavClient::ConnectOnce(
    const std::string& host, int port, const NavClientOptions& options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints,
                         &result);
  if (rc != 0) {
    return Status::IOError("getaddrinfo(" + host + "): " + gai_strerror(rc));
  }
  int fd = -1;
  Status last = Status::IOError("no usable address for " + host);
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    last = ConnectWithTimeout(fd, ai->ai_addr, ai->ai_addrlen,
                              options.connect_timeout_ms);
    if (last.ok()) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    if (last.code() == StatusCode::kDeadlineExceeded) return last;
    return Status::IOError("cannot connect to " + host + ":" +
                           std::to_string(port) + ": " + last.message());
  }
  if (options.recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = options.recv_timeout_ms / 1000;
    tv.tv_usec = (options.recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (options.proto == WireProto::kBinary) {
    // Negotiate v2 before the first request: the server switches this
    // connection to binary framing on these four bytes.
    size_t sent = 0;
    while (sent < sizeof(kBinaryPreamble)) {
      ssize_t n = ::send(fd, kBinaryPreamble + sent,
                         sizeof(kBinaryPreamble) - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        ::close(fd);
        return Status::IOError("connection lost while negotiating protocol");
      }
      sent += static_cast<size_t>(n);
    }
  }
  return std::unique_ptr<NavClient>(new NavClient(fd, options.proto));
}

NavClient::~NavClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status NavClient::Send(const Request& request) {
  std::string frame;
  if (proto_ == WireProto::kBinary && !json_fallback_) {
    frame = SerializeRequestBinary(request);
  } else {
    frame = SerializeRequest(request);
    frame.push_back('\n');
  }
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return Status::IOError("connection lost while sending request");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<JsonValue> NavClient::Receive() {
  // One response frame per request, in order (the server releases pipelined
  // responses in arrival order, so Receive N pairs with Send N).
  if (proto_ == WireProto::kBinary && !json_fallback_) {
    std::string body;
    while (true) {
      if (bdecoder_.Next(&body)) {
        Result<JsonValue> decoded = DecodeBinaryResponse(body);
        if (!decoded.ok()) {
          return Status::Internal("malformed binary response from server: " +
                                  decoded.status().message());
        }
        return decoded;
      }
      if (bdecoder_.broken()) {
        return Status::Internal("malformed binary response frame");
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n > 0) {
        if (!saw_response_byte_) {
          saw_response_byte_ = true;
          if (chunk[0] == '{') {
            // The server answered in JSON before reading our preamble
            // (accept-path shedding) — it is about to close. Fall back to
            // line framing so the typed error surfaces normally.
            json_fallback_ = true;
            if (!decoder_.Feed(
                    std::string_view(chunk, static_cast<size_t>(n)))) {
              return Status::Internal(
                  "response frame exceeds client frame limit");
            }
            break;  // Continue on the JSON loop below.
          }
        }
        if (!bdecoder_.Feed(std::string_view(chunk,
                                             static_cast<size_t>(n)))) {
          return Status::Internal("malformed binary response frame");
        }
        continue;
      }
      if (n == 0) {
        return Status::IOError("connection closed before response");
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("timed out waiting for response");
      }
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
  }
  std::string response;
  while (!decoder_.Next(&response)) {
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      saw_response_byte_ = true;
      if (!decoder_.Feed(std::string_view(chunk, static_cast<size_t>(n)))) {
        return Status::Internal("response frame exceeds client frame limit");
      }
      continue;
    }
    if (n == 0) {
      return Status::IOError("connection closed before response");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired with the response still outstanding.
      return Status::DeadlineExceeded("timed out waiting for response");
    }
    return Status::IOError(std::string("recv: ") + std::strerror(errno));
  }
  Result<JsonValue> parsed = ParseJson(response);
  if (!parsed.ok()) {
    return Status::Internal("malformed response from server: " +
                            parsed.status().message());
  }
  if (!parsed.ValueOrDie().is_object()) {
    return Status::Internal("response is not a JSON object");
  }
  return parsed;
}

Result<JsonValue> NavClient::CallRaw(const Request& request) {
  Status sent = Send(request);
  if (!sent.ok()) return sent;
  return Receive();
}

Result<JsonValue> NavClient::Call(const Request& request) {
  Result<JsonValue> response = CallRaw(request);
  if (!response.ok()) return response;
  const JsonValue& doc = response.ValueOrDie();
  if (!doc.BoolOr("ok", false)) {
    return StatusFromWireError(doc.StringOr("error", "INTERNAL"),
                               doc.StringOr("message", ""));
  }
  return response;
}

Result<NavClient::QueryReply> NavClient::Query(const std::string& query) {
  Request request;
  request.op = RequestOp::kQuery;
  request.query = query;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  const JsonValue& doc = response.ValueOrDie();
  QueryReply reply;
  reply.token = doc.StringOr("token", "");
  reply.result_size = static_cast<size_t>(doc.IntOr("result_size", 0));
  reply.cached = doc.BoolOr("cached", false);
  if (reply.token.empty()) {
    return Status::Internal("QUERY response carries no token");
  }
  return reply;
}

Result<std::vector<NavNodeId>> NavClient::Expand(const std::string& token,
                                                 NavNodeId node) {
  Request request;
  request.op = RequestOp::kExpand;
  request.token = token;
  request.node = node;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  const JsonValue* revealed = response.ValueOrDie().Find("revealed");
  if (revealed == nullptr || !revealed->is_array()) {
    return Status::Internal("EXPAND response carries no revealed array");
  }
  std::vector<NavNodeId> ids;
  ids.reserve(revealed->array_items().size());
  for (const JsonValue& item : revealed->array_items()) {
    if (!item.is_number()) {
      return Status::Internal("non-numeric node id in revealed array");
    }
    ids.push_back(static_cast<NavNodeId>(item.number_value()));
  }
  return ids;
}

Result<NavClient::BatchExpandReply> NavClient::ExpandMany(
    const std::string& token, const std::vector<NavNodeId>& nodes) {
  Request request;
  request.op = RequestOp::kBatchExpand;
  request.token = token;
  request.nodes = nodes;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  const JsonValue& doc = response.ValueOrDie();
  BatchExpandReply reply;
  reply.expanded = static_cast<uint64_t>(doc.IntOr("expanded", 0));
  const JsonValue* revealed = doc.Find("revealed");
  if (revealed == nullptr || !revealed->is_array()) {
    return Status::Internal("BATCH_EXPAND response carries no revealed array");
  }
  reply.revealed.reserve(revealed->array_items().size());
  for (const JsonValue& item : revealed->array_items()) {
    if (!item.is_number()) {
      return Status::Internal("non-numeric node id in revealed array");
    }
    reply.revealed.push_back(static_cast<NavNodeId>(item.number_value()));
  }
  const JsonValue* results = doc.Find("results");
  if (results == nullptr || !results->is_array()) {
    return Status::Internal("BATCH_EXPAND response carries no results array");
  }
  reply.outcomes.reserve(results->array_items().size());
  for (const JsonValue& item : results->array_items()) {
    if (!item.is_object()) {
      return Status::Internal("non-object entry in results array");
    }
    BatchExpandReply::Outcome outcome;
    outcome.node = static_cast<NavNodeId>(item.IntOr("node", kInvalidNavNode));
    outcome.ok = item.BoolOr("ok", false);
    if (outcome.ok) {
      const JsonValue* ids = item.Find("revealed");
      if (ids != nullptr && ids->is_array()) {
        for (const JsonValue& id : ids->array_items()) {
          if (!id.is_number()) {
            return Status::Internal("non-numeric node id in outcome");
          }
          outcome.revealed.push_back(static_cast<NavNodeId>(id.number_value()));
        }
      }
    } else {
      outcome.error = item.StringOr("error", "");
      outcome.message = item.StringOr("message", "");
    }
    reply.outcomes.push_back(std::move(outcome));
  }
  return reply;
}

Result<NavClient::ShowReply> NavClient::ShowResults(const std::string& token,
                                                    NavNodeId node,
                                                    uint64_t retstart,
                                                    uint64_t retmax) {
  Request request;
  request.op = RequestOp::kShowResults;
  request.token = token;
  request.node = node;
  request.retstart = retstart;
  request.retmax = retmax;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  const JsonValue& doc = response.ValueOrDie();
  ShowReply reply;
  reply.total = static_cast<size_t>(doc.IntOr("total", 0));
  const JsonValue* summaries = doc.Find("summaries");
  if (summaries == nullptr || !summaries->is_array()) {
    return Status::Internal("SHOWRESULTS response carries no summaries");
  }
  for (const JsonValue& item : summaries->array_items()) {
    CitationSummary summary;
    summary.pmid = static_cast<uint64_t>(item.IntOr("pmid", 0));
    summary.year = static_cast<int>(item.IntOr("year", 0));
    summary.title = item.StringOr("title", "");
    reply.summaries.push_back(std::move(summary));
  }
  return reply;
}

Result<bool> NavClient::Backtrack(const std::string& token) {
  Request request;
  request.op = RequestOp::kBacktrack;
  request.token = token;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  return response.ValueOrDie().BoolOr("undone", false);
}

Result<NavClient::FindReply> NavClient::Find(const std::string& token,
                                             ConceptId concept_id) {
  Request request;
  request.op = RequestOp::kFind;
  request.token = token;
  request.concept_id = concept_id;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  const JsonValue& doc = response.ValueOrDie();
  FindReply reply;
  reply.found = doc.BoolOr("found", false);
  reply.node = static_cast<NavNodeId>(doc.IntOr("node", kInvalidNavNode));
  reply.visible = doc.BoolOr("visible", false);
  reply.component_root =
      static_cast<NavNodeId>(doc.IntOr("component_root", kInvalidNavNode));
  reply.distinct = static_cast<int>(doc.IntOr("distinct", 0));
  return reply;
}

Result<std::string> NavClient::View(const std::string& token, int depth) {
  Request request;
  request.op = RequestOp::kView;
  request.token = token;
  request.depth = depth;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  const JsonValue* tree = response.ValueOrDie().Find("tree");
  if (tree == nullptr) {
    return Status::Internal("VIEW response carries no tree");
  }
  return WriteJson(*tree);
}

Status NavClient::CloseSession(const std::string& token) {
  Request request;
  request.op = RequestOp::kClose;
  request.token = token;
  Result<JsonValue> response = Call(request);
  return response.ok() ? Status::OK() : response.status();
}

Result<JsonValue> NavClient::Stats() {
  Request request;
  request.op = RequestOp::kStats;
  return Call(request);
}

Result<std::string> NavClient::Metrics() {
  Request request;
  request.op = RequestOp::kMetrics;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  const JsonValue* text = response.ValueOrDie().Find("text");
  if (text == nullptr || !text->is_string()) {
    return Status::Internal("METRICS response carries no text");
  }
  return text->string_value();
}

Result<std::string> NavClient::FetchArtifact(const std::string& key) {
  Request request;
  request.op = RequestOp::kFetchArtifact;
  request.query = key;
  Result<JsonValue> response = Call(request);
  if (!response.ok()) return response.status();
  const JsonValue* artifact = response.ValueOrDie().Find("artifact");
  if (artifact == nullptr || !artifact->is_string()) {
    return Status::Internal("FETCH_ARTIFACT response carries no artifact");
  }
  std::string record;
  if (!Base64Decode(artifact->string_value(), &record)) {
    return Status::Internal("FETCH_ARTIFACT artifact is not valid base64");
  }
  return record;
}

Result<JsonValue> NavClient::Topology() {
  Request request;
  request.op = RequestOp::kTopology;
  return Call(request);
}

}  // namespace bionav
