#include "server/nav_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "core/json_export.h"
#include "obs/trace.h"

namespace bionav {

namespace {

/// Reads '\n'-terminated lines from a blocking socket. Returns false on
/// EOF/error with no complete line buffered.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool ReadLine(std::string* line) {
    while (true) {
      size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line->assign(buffer_, 0, newline);
        if (!line->empty() && line->back() == '\r') line->pop_back();
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Writes the whole buffer; MSG_NOSIGNAL keeps a dead peer from raising
/// SIGPIPE. False once the peer is gone.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SendLine(int fd, std::string line) {
  line.push_back('\n');
  return SendAll(fd, line);
}

/// Request latency by wire op — the serving-side counterpart of the
/// client-observed numbers bench_serving reports. Registered once per op.
LatencyHistogram* OpLatencyHistogram(RequestOp op) {
  static LatencyHistogram* hists[] = {
      GlobalMetrics().GetHistogram("bionav_server_op_query_us",
                                   "QUERY request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_expand_us",
                                   "EXPAND request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_showresults_us",
                                   "SHOWRESULTS request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_backtrack_us",
                                   "BACKTRACK request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_find_us",
                                   "FIND request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_view_us",
                                   "VIEW request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_close_us",
                                   "CLOSE request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_stats_us",
                                   "STATS request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_metrics_us",
                                   "METRICS request latency"),
  };
  static_assert(sizeof(hists) / sizeof(hists[0]) ==
                    static_cast<size_t>(RequestOp::kMetrics) + 1,
                "one histogram per wire op");
  return hists[static_cast<size_t>(op)];
}

}  // namespace

NavServer::NavServer(const ConceptHierarchy* hierarchy,
                     const EUtilsClient* eutils,
                     StrategyFactory strategy_factory, NavServerOptions options)
    : options_(std::move(options)),
      sessions_(hierarchy, eutils,
                strategy_factory ? std::move(strategy_factory)
                                 : MakeBioNavStrategyFactory(),
                options_.session, options_.cost_params),
      pool_(options_.threads < 1 ? 1 : options_.threads) {
  if (options_.max_pending < 0) options_.max_pending = 0;
}

Status NavServer::Start() {
  BIONAV_CHECK(!started_.load()) << "NavServer started twice";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status =
        Status::IOError(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  started_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NavServer::AcceptLoop() {
  const int admission_limit = pool_.num_threads() + options_.max_pending;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // Listener shut down (or unrecoverable): stop accepting.
    }
    if (shutting_down_.load(std::memory_order_acquire)) {
      SendLine(fd, ErrorReply(WireError::kShuttingDown, "server is draining"));
      ::close(fd);
      break;
    }
    // Disable Nagle: the protocol is strictly request/response with small
    // frames, so coalescing only adds latency.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    static Counter* accepted = GlobalMetrics().GetCounter(
        "bionav_server_connections_accepted_total", "Connections accepted");
    accepted->Increment();
    // Admission control: every live handler occupies either a pool worker
    // or a bounded queue slot. Past that, shed with RETRY_LATER — the
    // client backs off; the server never builds an unbounded backlog.
    int live = live_handlers_.load(std::memory_order_acquire);
    if (live >= admission_limit) {
      SendLine(fd, ErrorReply(WireError::kRetryLater,
                              "server at capacity, retry later"));
      ::close(fd);
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      static Counter* shed = GlobalMetrics().GetCounter(
          "bionav_server_connections_shed_total",
          "Connections shed by admission control");
      shed->Increment();
      continue;
    }
    live_handlers_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_fds_.insert(fd);
    }
    pool_.Submit([this, fd] { HandleConnection(fd); });
  }
}

void NavServer::HandleConnection(int fd) {
  LineReader reader(fd);
  std::string line;
  while (reader.ReadLine(&line)) {
    if (line.empty()) continue;
    std::string response = HandleRequestLine(line);
    if (!SendLine(fd, std::move(response))) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    open_fds_.erase(fd);
  }
  ::close(fd);
  live_handlers_.fetch_sub(1, std::memory_order_acq_rel);
}

std::string NavServer::HandleRequestLine(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  static Counter* requests = GlobalMetrics().GetCounter(
      "bionav_server_requests_total", "Request lines received");
  static Counter* errors = GlobalMetrics().GetCounter(
      "bionav_server_protocol_errors_total",
      "Request lines rejected before dispatch");
  requests->Increment();
  Request request;
  std::string error_message;
  WireError error = ParseRequest(line, &request, &error_message);
  if (error != WireError::kNone) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    errors->Increment();
    return ErrorReply(error, error_message);
  }
  TraceSpan span("server_op", OpLatencyHistogram(request.op));
  switch (request.op) {
    case RequestOp::kQuery: return HandleQuery(request);
    case RequestOp::kExpand: return HandleExpand(request);
    case RequestOp::kShowResults: return HandleShowResults(request);
    case RequestOp::kBacktrack: return HandleBacktrack(request);
    case RequestOp::kFind: return HandleFind(request);
    case RequestOp::kView: return HandleView(request);
    case RequestOp::kClose: return HandleClose(request);
    case RequestOp::kStats: return HandleStats(request);
    case RequestOp::kMetrics: return HandleMetrics(request);
  }
  return ErrorReply(WireError::kInternal, "unhandled op");
}

namespace {

/// A SessionManager-level NotFound means the token is not live; op-level
/// statuses pass through with their own codes (see WithSession contract).
std::string SessionErrorReply(const Status& status) {
  if (status.code() == StatusCode::kNotFound) {
    return ErrorReply(WireError::kUnknownSession, status.message());
  }
  return ErrorReply(WireErrorFromStatus(status), status.message());
}

}  // namespace

std::string NavServer::HandleQuery(const Request& request) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return ErrorReply(WireError::kShuttingDown, "server is draining");
  }
  Result<SessionManager::CreateInfo> info =
      sessions_.CreateSession(request.query);
  if (!info.ok()) {
    return ErrorReply(WireErrorFromStatus(info.status()),
                      info.status().message());
  }
  return ResponseBuilder(RequestOp::kQuery)
      .Add("token", std::string_view(info.ValueOrDie().token))
      .Add("result_size", static_cast<uint64_t>(info.ValueOrDie().result_size))
      .Add("cached", info.ValueOrDie().cache_hit)
      .Finish();
}

std::string NavServer::HandleExpand(const Request& request) {
  std::vector<NavNodeId> revealed;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        Result<std::vector<NavNodeId>> r = session.Expand(request.node);
        if (!r.ok()) return r.status();
        revealed = r.TakeValue();
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorReply(status);
  std::string ids = "[";
  for (size_t i = 0; i < revealed.size(); ++i) {
    if (i > 0) ids.push_back(',');
    ids += std::to_string(revealed[i]);
  }
  ids.push_back(']');
  return ResponseBuilder(RequestOp::kExpand).AddRaw("revealed", ids).Finish();
}

std::string NavServer::HandleShowResults(const Request& request) {
  std::vector<CitationSummary> summaries;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        Result<std::vector<CitationSummary>> r = session.ShowResults(
            request.node, request.retstart, request.retmax);
        if (!r.ok()) return r.status();
        summaries = r.TakeValue();
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorReply(status);
  return ResponseBuilder(RequestOp::kShowResults)
      .Add("total", static_cast<uint64_t>(summaries.size()))
      .AddRaw("summaries", SummariesToJson(summaries))
      .Finish();
}

std::string NavServer::HandleBacktrack(const Request& request) {
  bool undone = false;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        undone = session.Backtrack();
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorReply(status);
  return ResponseBuilder(RequestOp::kBacktrack).Add("undone", undone).Finish();
}

std::string NavServer::HandleFind(const Request& request) {
  bool found = false, visible = false;
  NavNodeId node = kInvalidNavNode, root = kInvalidNavNode;
  int distinct = 0;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        const NavigationTree& nav = session.navigation_tree();
        node = nav.NodeOfConcept(request.concept_id);
        if (node == kInvalidNavNode) return Status::OK();
        found = true;
        const ActiveTree& active = session.active_tree();
        int comp = active.ComponentOf(node);
        visible = active.IsVisible(node);
        root = active.ComponentRoot(comp);
        distinct = active.ComponentDistinctCount(comp);
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorReply(status);
  return ResponseBuilder(RequestOp::kFind)
      .Add("found", found)
      .Add("node", static_cast<int64_t>(node))
      .Add("visible", visible)
      .Add("component_root", static_cast<int64_t>(root))
      .Add("distinct", static_cast<int64_t>(distinct))
      .Finish();
}

std::string NavServer::HandleView(const Request& request) {
  std::string tree;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        tree = VisualizationToJson(session.active_tree(), session.cost_model(),
                                   request.depth);
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorReply(status);
  return ResponseBuilder(RequestOp::kView).AddRaw("tree", tree).Finish();
}

std::string NavServer::HandleClose(const Request& request) {
  bool closed = sessions_.Close(request.token);
  if (!closed) {
    return ErrorReply(WireError::kUnknownSession,
                      "unknown session '" + request.token + "'");
  }
  return ResponseBuilder(RequestOp::kClose).Add("closed", true).Finish();
}

std::string NavServer::HandleStats(const Request&) {
  NavServerStats s = stats();
  std::string sessions =
      "{\"active\":" + std::to_string(s.sessions.active) +
      ",\"created\":" + std::to_string(s.sessions.created) +
      ",\"evicted_lru\":" + std::to_string(s.sessions.evicted_lru) +
      ",\"expired_ttl\":" + std::to_string(s.sessions.expired_ttl) +
      ",\"closed\":" + std::to_string(s.sessions.closed) +
      ",\"operations\":" + std::to_string(s.sessions.operations) + "}";
  // Artifact-cache section: enabled:false (and zeros) when --cache=off, so
  // scrapers can rely on the section's presence either way.
  QueryArtifactCacheStats c;
  const QueryArtifactCache* cache = sessions_.cache();
  if (cache != nullptr) c = cache->stats();
  std::string cache_json =
      std::string("{\"enabled\":") + (cache != nullptr ? "true" : "false") +
      ",\"hits\":" + std::to_string(c.hits) +
      ",\"misses\":" + std::to_string(c.misses) +
      ",\"singleflight_waits\":" + std::to_string(c.singleflight_waits) +
      ",\"evicted_lru\":" + std::to_string(c.evicted_lru) +
      ",\"expired_ttl\":" + std::to_string(c.expired_ttl) +
      ",\"entries\":" + std::to_string(c.entries) +
      ",\"bytes\":" + std::to_string(c.bytes) +
      ",\"build_us_saved\":" + std::to_string(c.build_us_saved) + "}";
  return ResponseBuilder(RequestOp::kStats)
      .Add("connections_accepted", s.connections_accepted)
      .Add("connections_shed", s.connections_shed)
      .Add("requests", s.requests)
      .Add("protocol_errors", s.protocol_errors)
      .Add("threads", pool_.num_threads())
      .AddRaw("sessions", sessions)
      .AddRaw("cache", cache_json)
      .AddRaw("metrics", GlobalMetrics().ToJson())
      .Finish();
}

std::string NavServer::HandleMetrics(const Request&) {
  // The exposition travels as one JSON string field; JsonEscape turns the
  // newlines into \n so the line protocol survives, and clients (or
  // `bionav_cli stats --prom`) unescape on print.
  return ResponseBuilder(RequestOp::kMetrics)
      .Add("text", std::string_view(GlobalMetrics().ToPrometheusText()))
      .Finish();
}

NavServerStats NavServer::stats() const {
  NavServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.sessions = sessions_.stats();
  return s;
}

void NavServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (!started_.load() || shutting_down_.load()) return;
  shutting_down_.store(true, std::memory_order_release);
  // 1. Stop admitting: half-close the listener so the blocking accept
  //    returns, then join the accept thread before closing the fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Drain: half-close the read side of every live connection. A handler
  //    mid-request finishes and writes its response (the write side stays
  //    open); its next read sees EOF and the handler exits.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RD);
  }
  pool_.Wait();
}

NavServer::~NavServer() { Shutdown(); }

}  // namespace bionav
