#include "server/nav_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "core/json_export.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace bionav {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Best-effort one-line reply on a socket about to be closed (accept-path
/// shedding). The socket buffer of a fresh connection swallows a short
/// line, so a single non-blocking send suffices. Shed replies are always
/// JSON: they may fire before the peer's first byte decides its protocol,
/// and a binary client recognizes the '{' as the JSON fallback signal.
void SendLineBestEffort(int fd, std::string line) {
  line.push_back('\n');
  [[maybe_unused]] ssize_t n =
      ::send(fd, line.data(), line.size(), MSG_NOSIGNAL | MSG_DONTWAIT);
}

/// iovec segments per sendmsg. Each queued frame spends at most two (owned
/// head + shared template body), so one flush coalesces up to 32 responses.
constexpr size_t kMaxIov = 64;

Gauge* OpenConnectionsGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge(
      "bionav_server_open_connections", "Connections currently open");
  return gauge;
}

Gauge* WriteQueueBytesGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge(
      "bionav_server_write_queue_bytes",
      "Total response bytes queued across connections");
  return gauge;
}

Gauge* EpollWakeupsGauge() {
  static Gauge* gauge = GlobalMetrics().GetGauge(
      "bionav_server_epoll_wakeups", "Reactor epoll_wait returns (monotone)");
  return gauge;
}

Counter* RxBytesCounter() {
  static Counter* counter = GlobalMetrics().GetCounter(
      "bionav_server_bytes_rx_total", "Request bytes read from client sockets");
  return counter;
}

Counter* TxBytesCounter() {
  static Counter* counter = GlobalMetrics().GetCounter(
      "bionav_server_bytes_tx_total",
      "Response bytes written to client sockets");
  return counter;
}

LatencyHistogram* FlushBatchHistogram() {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_server_flush_batch", "Response frames coalesced per sendmsg");
  return hist;
}

LatencyHistogram* ReadToDispatchHistogram() {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_server_read_to_dispatch_us",
      "Frame decode to compute pickup latency");
  return hist;
}

/// Request latency by wire op — the serving-side counterpart of the
/// client-observed numbers bench_serving reports. Registered once per op.
LatencyHistogram* OpLatencyHistogram(RequestOp op) {
  static LatencyHistogram* hists[] = {
      GlobalMetrics().GetHistogram("bionav_server_op_query_us",
                                   "QUERY request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_expand_us",
                                   "EXPAND request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_showresults_us",
                                   "SHOWRESULTS request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_backtrack_us",
                                   "BACKTRACK request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_find_us",
                                   "FIND request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_view_us",
                                   "VIEW request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_close_us",
                                   "CLOSE request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_stats_us",
                                   "STATS request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_metrics_us",
                                   "METRICS request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_batch_expand_us",
                                   "BATCH_EXPAND request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_fetch_artifact_us",
                                   "FETCH_ARTIFACT request latency"),
      GlobalMetrics().GetHistogram("bionav_server_op_topology_us",
                                   "TOPOLOGY request latency"),
  };
  static_assert(sizeof(hists) / sizeof(hists[0]) ==
                    static_cast<size_t>(RequestOp::kTopology) + 1,
                "one histogram per wire op");
  return hists[static_cast<size_t>(op)];
}

}  // namespace

NavServer::NavServer(const ConceptHierarchy* hierarchy,
                     const EUtilsClient* eutils,
                     StrategyFactory strategy_factory, NavServerOptions options)
    : options_(std::move(options)),
      sessions_(hierarchy, eutils,
                strategy_factory ? std::move(strategy_factory)
                                 : MakeBioNavStrategyFactory(),
                options_.session, options_.cost_params),
      pool_(options_.threads < 1 ? 1 : options_.threads) {
  if (options_.io_threads < 1) options_.io_threads = 1;
  if (options_.max_connections < 1) options_.max_connections = 1;
  if (options_.max_inflight_per_connection < 1) {
    options_.max_inflight_per_connection = 1;
  }
  if (options_.max_write_queue_bytes < 4096) {
    options_.max_write_queue_bytes = 4096;
  }
}

Status NavServer::Start() {
  BIONAV_CHECK(!started_.load()) << "NavServer started twice";

  sockaddr_in addr{};
  if (options_.inherit_listen_fd >= 0) {
    // Warm restart: the predecessor's listener, already bound and
    // listening, arrives across exec. Re-assert the flags Start would have
    // set (the dup dropped CLOEXEC deliberately; NONBLOCK is shared but
    // cheap to enforce) and read the port back off the socket.
    listen_fd_ = options_.inherit_listen_fd;
    int flags = ::fcntl(listen_fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
      Status status = Status::IOError(
          std::string("inherited listener unusable: ") + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    ::fcntl(listen_fd_, F_SETFD, FD_CLOEXEC);
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
    if (listen_fd_ < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      return Status::InvalidArgument("bad bind address '" +
                                     options_.bind_address + "'");
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status status =
          Status::IOError(std::string("bind: ") + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
    if (::listen(listen_fd_, 512) != 0) {
      Status status =
          Status::IOError(std::string("listen: ") + std::strerror(errno));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return status;
    }
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  loops_.clear();
  loop_conns_.clear();
  for (int i = 0; i < options_.io_threads; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
  }
  loop_conns_.resize(loops_.size());

  // Pre-Run registration is safe: no loop thread is running yet. The
  // listener lives on loop 0; accepted fds are spread round-robin.
  Status added = loops_[0]->Add(listen_fd_, EventLoop::kReadable,
                                [this](uint32_t) { OnAcceptable(); });
  if (!added.ok()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return added;
  }

  // The idle-spill sweep also registers pre-Run (same safety argument).
  if (sessions_.spill_enabled() && options_.session.spill_after_ms > 0) {
    ArmSpillSweep();
  }

  started_.store(true);
  for (size_t i = 0; i < loops_.size(); ++i) {
    io_threads_.emplace_back([this, i] { IoThreadMain(i); });
  }
  return Status::OK();
}

void NavServer::IoThreadMain(size_t loop_index) {
  loops_[loop_index]->Run();
}

void NavServer::ArmSpillSweep() {
  // Runs on loop 0 (or before the loops start). Re-arms itself each tick;
  // the chain dies with the loop on Shutdown. Sweeping at a quarter of the
  // idle threshold keeps the worst-case overshoot at ~25%.
  const int64_t period =
      std::max<int64_t>(options_.session.spill_after_ms / 4, 50);
  loops_[0]->AddTimer(period, [this] {
    if (shutting_down_.load(std::memory_order_acquire)) return;
    if (!spill_sweep_inflight_.exchange(true)) {
      pool_.Submit([this] {
        sessions_.SpillIdle();
        spill_sweep_inflight_.store(false);
      });
    }
    ArmSpillSweep();
  });
}

int NavServer::DetachListener() {
  if (!started_.load() || listen_fd_ < 0) return -1;
  // F_DUPFD (not F_DUPFD_CLOEXEC): the whole point is surviving exec.
  return ::fcntl(listen_fd_, F_DUPFD, 3);
}

void NavServer::OnAcceptable() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or listener gone.
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    static Counter* accepted = GlobalMetrics().GetCounter(
        "bionav_server_connections_accepted_total", "Connections accepted");
    accepted->Increment();
    if (shutting_down_.load(std::memory_order_acquire)) {
      SendLineBestEffort(
          fd, ErrorReply(WireError::kShuttingDown, "server is draining"));
      ::close(fd);
      continue;
    }
    // Admission control at the accept path: past max_connections the
    // connection is shed with RETRY_LATER — the client backs off, the
    // server never builds an unbounded connection table.
    if (connections_open_.load(std::memory_order_acquire) >=
        options_.max_connections) {
      SendLineBestEffort(fd, ErrorReply(WireError::kRetryLater,
                                        "server at capacity, retry later"));
      ::close(fd);
      connections_shed_.fetch_add(1, std::memory_order_relaxed);
      static Counter* shed = GlobalMetrics().GetCounter(
          "bionav_server_connections_shed_total",
          "Connections shed by admission control");
      shed->Increment();
      continue;
    }
    AdmitConnection(fd);
  }
}

void NavServer::AdmitConnection(int fd) {
  // Disable Nagle: responses are small frames written as soon as they are
  // released; coalescing only adds latency.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  connections_open_.fetch_add(1, std::memory_order_acq_rel);
  OpenConnectionsGauge()->Add(1);

  size_t loop_index =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  ConnPtr conn = std::make_shared<Connection>(options_.max_frame_bytes);
  conn->fd = fd;
  conn->loop_index = loop_index;
  conn->last_activity_ms = SteadyNowMs();

  EventLoop* loop = loops_[loop_index].get();
  loop->RunInLoop([this, loop, conn] {
    if (shutting_down_.load(std::memory_order_acquire)) {
      // Raced with drain: this connection would never be drained by
      // Shutdown's sweep, so refuse it here.
      SendLineBestEffort(conn->fd, ErrorReply(WireError::kShuttingDown,
                                              "server is draining"));
      ::close(conn->fd);
      conn->closed = true;
      connections_open_.fetch_sub(1, std::memory_order_acq_rel);
      OpenConnectionsGauge()->Add(-1);
      drain_cv_.notify_all();
      return;
    }
    loop_conns_[conn->loop_index].emplace(conn->fd, conn);
    Status added =
        loop->Add(conn->fd, EventLoop::kReadable,
                  [this, conn](uint32_t events) {
                    OnConnectionEvent(conn, events);
                  });
    if (!added.ok()) {
      loop_conns_[conn->loop_index].erase(conn->fd);
      ::close(conn->fd);
      conn->closed = true;
      connections_open_.fetch_sub(1, std::memory_order_acq_rel);
      OpenConnectionsGauge()->Add(-1);
      drain_cv_.notify_all();
      return;
    }
    ArmIdleTimer(conn);
  });
}

void NavServer::OnConnectionEvent(const ConnPtr& conn, uint32_t events) {
  if (conn->closed) return;
  if (events & EventLoop::kError) {
    CloseConnection(conn);
    return;
  }
  if (events & EventLoop::kWritable) FlushWrites(conn);
  if (conn->closed) return;
  if (events & EventLoop::kReadable) ReadConnection(conn);
}

bool NavServer::FeedConnection(const ConnPtr& conn, std::string_view data) {
  if (!conn->proto_decided) {
    conn->preamble.append(data.data(), data.size());
    if (conn->preamble.empty()) return true;
    if (conn->preamble[0] != kBinaryPreamble[0]) {
      // A JSON request line always starts with '{': the connection is v1.
      // Replay everything buffered so far into the line decoder.
      conn->proto = WireProto::kJson;
      conn->proto_decided = true;
      std::string buffered = std::move(conn->preamble);
      conn->preamble.clear();
      return conn->decoder.Feed(buffered);
    }
    if (conn->preamble.size() < sizeof(kBinaryPreamble)) return true;
    if (std::memcmp(conn->preamble.data(), kBinaryPreamble,
                    sizeof(kBinaryPreamble)) != 0) {
      conn->preamble_error = true;
      return false;
    }
    conn->proto = WireProto::kBinary;
    conn->proto_decided = true;
    std::string buffered = std::move(conn->preamble);
    conn->preamble.clear();
    return conn->bdecoder.Feed(
        std::string_view(buffered).substr(sizeof(kBinaryPreamble)));
  }
  return conn->proto == WireProto::kBinary ? conn->bdecoder.Feed(data)
                                           : conn->decoder.Feed(data);
}

bool NavServer::HasBufferedFrame(const ConnPtr& conn) const {
  if (!conn->proto_decided) return false;
  return conn->proto == WireProto::kBinary ? conn->bdecoder.has_frame()
                                           : conn->decoder.has_frame();
}

bool NavServer::NextBufferedFrame(const ConnPtr& conn, std::string* payload) {
  if (!conn->proto_decided) return false;
  return conn->proto == WireProto::kBinary ? conn->bdecoder.Next(payload)
                                           : conn->decoder.Next(payload);
}

bool NavServer::DecoderBroken(const ConnPtr& conn) const {
  if (conn->preamble_error) return true;
  if (!conn->proto_decided) return false;
  return conn->proto == WireProto::kBinary ? conn->bdecoder.broken()
                                           : conn->decoder.overflowed();
}

void NavServer::ReadConnection(const ConnPtr& conn) {
  // Bounded reads per readiness event so one firehose connection cannot
  // starve its loop siblings; level-triggering redrives the remainder.
  char chunk[16384];
  int64_t received = 0;
  bool peer_eof = false;
  for (int i = 0; i < 4; ++i) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      received += n;
      if (!FeedConnection(conn, std::string_view(chunk,
                                                 static_cast<size_t>(n)))) {
        break;  // Preamble error or broken decoder; handled below.
      }
      // A short read almost always means the buffer is drained — skip the
      // EAGAIN-confirming recv (level-triggering re-fires on the rare
      // refill race, so this trades no correctness for one syscall).
      if (static_cast<size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(conn);  // Reset or hard error: responses are moot.
    return;
  }
  if (received > 0) {
    conn->last_activity_ms = SteadyNowMs();
    bytes_rx_.fetch_add(received, std::memory_order_relaxed);
    RxBytesCounter()->Increment(received);
  }

  DispatchFrames(conn);
  if (conn->closed) return;

  if (conn->preamble_error && !conn->draining) {
    // First bytes were 'B'-led but not "BNV2": the peer speaks neither
    // protocol. Answer in JSON (its encoding is unknowable) and close.
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    uint64_t seq = conn->next_dispatch_seq++;
    ++conn->inflight;
    conn->draining = true;
    conn->close_after_flush = true;
    CompleteRequest(conn, seq,
                    WireResponse::Error(WireProto::kJson,
                                        WireError::kBadRequest,
                                        "unrecognized protocol preamble"));
    return;
  }
  if (DecoderBroken(conn) && !conn->draining) {
    // Slow-loris / runaway frame (either framing), or a binary stream that
    // lost sync: answer with a typed error in sequence (after any complete
    // frames that preceded it), then drain and close.
    bool oversized = conn->proto == WireProto::kBinary
                         ? conn->bdecoder.overflowed()
                         : conn->decoder.overflowed();
    if (oversized) oversized_frames_.fetch_add(1, std::memory_order_relaxed);
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    requests_.fetch_add(1, std::memory_order_relaxed);
    uint64_t seq = conn->next_dispatch_seq++;
    ++conn->inflight;
    conn->draining = true;
    conn->close_after_flush = true;
    std::string message =
        oversized ? "request frame exceeds " +
                        std::to_string(options_.max_frame_bytes) + " bytes"
                  : "malformed binary frame header";
    CompleteRequest(conn, seq,
                    WireResponse::Error(conn->proto, WireError::kBadRequest,
                                        message));
    return;
  }
  if (peer_eof) {
    // Half-close: the client is done sending. Already-buffered pipelined
    // frames still execute and their responses flush before the close. A
    // mid-frame EOF (partial binary frame, unterminated line, or a torn
    // preamble) has no buffered frame and closes cleanly here.
    conn->close_after_flush = true;
    UpdateInterest(conn);
    if (conn->inflight == 0 && conn->write_queue.empty() &&
        !HasBufferedFrame(conn)) {
      CloseConnection(conn);
    }
    return;
  }
  UpdateInterest(conn);
}

void NavServer::DispatchFrames(const ConnPtr& conn) {
  // Re-entrancy guard: an inline completion below calls back into
  // CompleteRequest, whose refill would otherwise recurse here once per
  // buffered frame. The outer invocation's loop drains them instead.
  if (conn->dispatching) return;
  conn->dispatching = true;
  std::string payload;
  while (!conn->closed) {
    if (conn->draining) {
      // Shutdown drain: every queued pipelined request still gets a
      // definite answer instead of silence (no cap — answers are local).
      if (!NextBufferedFrame(conn, &payload)) break;
      if (payload.empty() && conn->proto == WireProto::kJson) continue;
      requests_.fetch_add(1, std::memory_order_relaxed);
      uint64_t seq = conn->next_dispatch_seq++;
      ++conn->inflight;
      CompleteRequest(conn, seq,
                      WireResponse::Error(conn->proto,
                                          WireError::kShuttingDown,
                                          "server is draining"));
      continue;
    }
    if (conn->inflight >= options_.max_inflight_per_connection) break;
    if (!NextBufferedFrame(conn, &payload)) break;
    if (payload.empty() && conn->proto == WireProto::kJson) continue;
    uint64_t seq = conn->next_dispatch_seq++;
    ++conn->inflight;
    // Inline fast path: with no pipeline backlog, a request that cannot
    // stall the loop (parse error, or a QUERY whose artifacts are already
    // cached) executes on the reactor thread itself. That skips both
    // scheduler handoffs of the pool round-trip — on a saturated box they
    // dominate the latency of the warm interactive case the cache exists
    // to serve. With a backlog the parse itself moves to the pool.
    if (conn->inflight == 1) {
      Request request;  // Owned storage for the JSON parse path.
      RequestView view;
      std::string error_message;
      WireError parse_error;
      if (conn->proto == WireProto::kBinary) {
        parse_error = ParseRequestBinary(payload, &view, &error_message);
      } else {
        parse_error = ParseRequest(payload, &request, &error_message);
        if (parse_error == WireError::kNone) view = MakeRequestView(request);
      }
      if (parse_error != WireError::kNone) {
        ReadToDispatchHistogram()->Record(0);
        CompleteRequest(
            conn, seq,
            HandleParseError(conn->proto, parse_error, error_message));
        continue;  // The loop condition re-checks closed.
      }
      if (FastPathEligible(view)) {
        ReadToDispatchHistogram()->Record(0);
        CompleteRequest(conn, seq, HandleRequest(view, conn->proto));
        continue;
      }
    }
    DispatchRequest(conn, seq, std::move(payload));
  }
  conn->dispatching = false;
}

bool NavServer::FastPathEligible(const RequestView& request) const {
  if (request.op != RequestOp::kQuery) return false;
  // Contains() is false for entries still building (singleflight), so an
  // inline Open never waits behind a cold tree build. The probe can go
  // stale (eviction before Open), costing one inline cold build — the
  // race window is microseconds against an LRU/TTL horizon of minutes.
  const QueryArtifactCache* cache = sessions_.cache();
  return cache != nullptr && cache->Contains(NormalizeQueryKey(request.query));
}

void NavServer::DispatchRequest(const ConnPtr& conn, uint64_t seq,
                                std::string payload) {
  EventLoop* loop = loops_[conn->loop_index].get();
  WireProto proto = conn->proto;  // Loop-thread state; read before Submit.
  int64_t decoded_us = SteadyNowUs();
  pool_.Submit([this, loop, conn, seq, proto, decoded_us,
                payload = std::move(payload)]() mutable {
    ReadToDispatchHistogram()->Record(SteadyNowUs() - decoded_us);
    WireFrame response = HandleFrame(proto, payload);
    loop->RunInLoop([this, conn, seq,
                     response = std::move(response)]() mutable {
      CompleteRequest(conn, seq, std::move(response));
    });
  });
}

void NavServer::CompleteRequest(const ConnPtr& conn, uint64_t seq,
                                WireFrame response) {
  if (conn->closed) return;  // Completion raced with a reset/force-close.
  --conn->inflight;
  if (seq == conn->next_release_seq && conn->completed.empty()) {
    // In-order completion — the only case on the inline fast path and the
    // common one under pipelining — skips the reorder map and its per-node
    // allocation.
    size_t bytes = response.size();
    conn->write_queue_bytes += bytes;
    WriteQueueBytesGauge()->Add(static_cast<int64_t>(bytes));
    conn->write_queue.push_back(std::move(response));
    ++conn->next_release_seq;
  } else {
    conn->completed.emplace(seq, std::move(response));
    // Release every response whose predecessors are all out: pipelined
    // responses hit the wire in request arrival order, whatever order the
    // pool finished them in.
    while (!conn->completed.empty() &&
           conn->completed.begin()->first == conn->next_release_seq) {
      WireFrame& ready = conn->completed.begin()->second;
      size_t bytes = ready.size();
      conn->write_queue_bytes += bytes;
      WriteQueueBytesGauge()->Add(static_cast<int64_t>(bytes));
      conn->write_queue.push_back(std::move(ready));
      conn->completed.erase(conn->completed.begin());
      ++conn->next_release_seq;
    }
  }
  FlushWrites(conn);
  if (conn->closed) return;
  // Capacity freed (inflight slot and possibly queue bytes): pull more
  // buffered frames, then recompute read interest.
  if (HasBufferedFrame(conn)) DispatchFrames(conn);
  if (!conn->closed) UpdateInterest(conn);
}

void NavServer::FlushWrites(const ConnPtr& conn) {
  while (!conn->write_queue.empty()) {
    // Coalesce the ready responses into one sendmsg. Template-served
    // responses contribute their shared body segment by reference — the
    // kernel reads the cached bytes in place, no copy, no re-render.
    iovec iov[kMaxIov];
    size_t iov_count = 0;
    size_t batch_bytes = 0;
    int64_t frames = 0;
    size_t skip = conn->write_offset;  // Partially-written front frame.
    for (const WireFrame& frame : conn->write_queue) {
      if (iov_count + 2 > kMaxIov) break;
      if (skip < frame.head.size()) {
        iov[iov_count].iov_base =
            const_cast<char*>(frame.head.data()) + skip;
        iov[iov_count].iov_len = frame.head.size() - skip;
        batch_bytes += iov[iov_count].iov_len;
        ++iov_count;
        skip = 0;
      } else {
        skip -= frame.head.size();
      }
      if (frame.body != nullptr) {
        if (skip < frame.body->size()) {
          iov[iov_count].iov_base =
              const_cast<char*>(frame.body->data()) + skip;
          iov[iov_count].iov_len = frame.body->size() - skip;
          batch_bytes += iov[iov_count].iov_len;
          ++iov_count;
          skip = 0;
        } else {
          skip -= frame.body->size();
        }
      }
      ++frames;
    }
    if (iov_count == 0) break;
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConnection(conn);  // Peer gone; drop the queue.
      return;
    }
    FlushBatchHistogram()->Record(frames);
    bytes_tx_.fetch_add(n, std::memory_order_relaxed);
    TxBytesCounter()->Increment(n);
    conn->write_queue_bytes -= static_cast<size_t>(n);
    WriteQueueBytesGauge()->Add(-static_cast<int64_t>(n));
    conn->write_offset += static_cast<size_t>(n);
    while (!conn->write_queue.empty() &&
           conn->write_offset >= conn->write_queue.front().size()) {
      conn->write_offset -= conn->write_queue.front().size();
      conn->write_queue.pop_front();
    }
    if (static_cast<size_t>(n) < batch_bytes) break;  // Socket buffer full.
  }
  UpdateInterest(conn);
  if (conn->close_after_flush && conn->inflight == 0 &&
      conn->write_queue.empty() && conn->completed.empty() &&
      !HasBufferedFrame(conn)) {
    CloseConnection(conn);
  }
}

void NavServer::UpdateInterest(const ConnPtr& conn) {
  if (conn->closed) return;
  bool want_read = !conn->draining && !conn->close_after_flush &&
                   !DecoderBroken(conn) &&
                   conn->inflight < options_.max_inflight_per_connection &&
                   conn->write_queue_bytes < options_.max_write_queue_bytes;
  bool want_write = !conn->write_queue.empty();
  if (want_read == conn->reading && want_write == conn->want_write) return;
  uint32_t events = (want_read ? EventLoop::kReadable : 0) |
                    (want_write ? EventLoop::kWritable : 0);
  loops_[conn->loop_index]->Modify(conn->fd, events);
  conn->reading = want_read;
  conn->want_write = want_write;
}

void NavServer::ArmIdleTimer(const ConnPtr& conn) {
  if (options_.idle_timeout_ms <= 0 || conn->closed) return;
  int64_t idle = SteadyNowMs() - conn->last_activity_ms;
  int64_t remaining = options_.idle_timeout_ms - idle;
  if (remaining <= 0) {
    // Only reap a connection that is truly quiet — in-flight work or
    // unflushed responses count as activity.
    if (conn->inflight == 0 && conn->write_queue.empty() &&
        conn->completed.empty()) {
      connections_idle_closed_.fetch_add(1, std::memory_order_relaxed);
      CloseConnection(conn);
      return;
    }
    remaining = options_.idle_timeout_ms;
  }
  conn->idle_timer = loops_[conn->loop_index]->AddTimer(
      remaining, [this, conn] {
        conn->idle_timer = kInvalidTimer;
        ArmIdleTimer(conn);
      });
}

void NavServer::CloseConnection(const ConnPtr& conn) {
  if (conn->closed) return;
  conn->closed = true;
  EventLoop* loop = loops_[conn->loop_index].get();
  if (conn->idle_timer != kInvalidTimer) {
    loop->CancelTimer(conn->idle_timer);
    conn->idle_timer = kInvalidTimer;
  }
  loop->Remove(conn->fd);
  ::close(conn->fd);
  if (conn->write_queue_bytes > 0) {
    WriteQueueBytesGauge()->Add(-static_cast<int64_t>(conn->write_queue_bytes));
    conn->write_queue_bytes = 0;
  }
  loop_conns_[conn->loop_index].erase(conn->fd);
  connections_open_.fetch_sub(1, std::memory_order_acq_rel);
  OpenConnectionsGauge()->Add(-1);
  drain_cv_.notify_all();
}

void NavServer::DrainConnection(const ConnPtr& conn) {
  if (conn->closed) return;
  conn->draining = true;
  conn->close_after_flush = true;
  DispatchFrames(conn);  // Buffered pipelined frames answer SHUTTING_DOWN.
  UpdateInterest(conn);
  if (conn->inflight == 0 && conn->write_queue.empty() &&
      conn->completed.empty()) {
    CloseConnection(conn);
  }
}

WireFrame NavServer::HandleFrame(WireProto proto, const std::string& payload) {
  if (proto == WireProto::kBinary) {
    // Arena decode: the view's string fields point into `payload`, which
    // outlives the whole handler call.
    RequestView view;
    std::string error_message;
    WireError error = ParseRequestBinary(payload, &view, &error_message);
    if (error != WireError::kNone) {
      return HandleParseError(proto, error, error_message);
    }
    return HandleRequest(view, proto);
  }
  Request request;
  std::string error_message;
  WireError error = ParseRequest(payload, &request, &error_message);
  if (error != WireError::kNone) {
    return HandleParseError(proto, error, error_message);
  }
  return HandleRequest(MakeRequestView(request), proto);
}

WireFrame NavServer::HandleParseError(WireProto proto, WireError error,
                                      const std::string& message) {
  CountRequest();
  static Counter* errors = GlobalMetrics().GetCounter(
      "bionav_server_protocol_errors_total",
      "Request frames rejected before dispatch");
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  errors->Increment();
  return WireResponse::Error(proto, error, message);
}

void NavServer::CountRequest() {
  requests_.fetch_add(1, std::memory_order_relaxed);
  static Counter* requests = GlobalMetrics().GetCounter(
      "bionav_server_requests_total", "Request frames received");
  requests->Increment();
}

WireFrame NavServer::HandleRequest(const RequestView& request,
                                   WireProto proto) {
  CountRequest();
  TraceSpan span("server_op", OpLatencyHistogram(request.op));
  switch (request.op) {
    case RequestOp::kQuery: return HandleQuery(request, proto);
    case RequestOp::kExpand: return HandleExpand(request, proto);
    case RequestOp::kShowResults: return HandleShowResults(request, proto);
    case RequestOp::kBacktrack: return HandleBacktrack(request, proto);
    case RequestOp::kFind: return HandleFind(request, proto);
    case RequestOp::kView: return HandleView(request, proto);
    case RequestOp::kClose: return HandleClose(request, proto);
    case RequestOp::kStats: return HandleStats(request, proto);
    case RequestOp::kMetrics: return HandleMetrics(request, proto);
    case RequestOp::kBatchExpand: return HandleBatchExpand(request, proto);
    case RequestOp::kFetchArtifact:
      return HandleFetchArtifact(request, proto);
    case RequestOp::kTopology: return HandleTopology(request, proto);
  }
  return WireResponse::Error(proto, WireError::kInternal, "unhandled op");
}

namespace {

/// A SessionManager-level NotFound means the token is not live; op-level
/// statuses pass through with their own codes (see WithSession contract).
WireFrame SessionErrorFrame(WireProto proto, const Status& status) {
  if (status.code() == StatusCode::kNotFound) {
    return WireResponse::Error(proto, WireError::kUnknownSession,
                               status.message());
  }
  return WireResponse::Error(proto, WireErrorFromStatus(status),
                             status.message());
}

}  // namespace

WireFrame NavServer::HandleQuery(const RequestView& request, WireProto proto) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return WireResponse::Error(proto, WireError::kShuttingDown,
                               "server is draining");
  }
  Result<SessionManager::CreateInfo> info =
      sessions_.CreateSession(std::string(request.query));
  if (!info.ok()) {
    return WireResponse::Error(proto, WireErrorFromStatus(info.status()),
                               info.status().message());
  }
  const SessionManager::CreateInfo& created = info.ValueOrDie();
  WireResponse response(proto, RequestOp::kQuery);
  response.AddString(WireField::kToken, created.token);
  if (created.cache_hit && created.artifacts != nullptr) {
    // Warm path: every session of a cached query answers with the same
    // (result_size, cached:true) suffix — rendered once per encoding on
    // the shared bundle, then served by reference forever after.
    std::shared_ptr<const std::string> payload =
        created.artifacts->templates.GetOrRender(
            "Q", static_cast<int>(proto), [&] {
              return WirePayload(proto)
                  .AddUInt(WireField::kResultSize, created.result_size)
                  .AddBool(WireField::kCached, true)
                  .Finish();
            });
    return response.FinishWithPayload(std::move(payload));
  }
  return response.AddUInt(WireField::kResultSize, created.result_size)
      .AddBool(WireField::kCached, created.cache_hit)
      .Finish();
}

WireFrame NavServer::HandleExpand(const RequestView& request,
                                  WireProto proto) {
  std::vector<NavNodeId> revealed;
  std::shared_ptr<const QueryArtifacts> artifacts;
  std::string template_key;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        // Template eligibility must be probed before Expand mutates the
        // active tree: expanding a *visible* node whose component was
        // never split reveals a node set that is a pure function of the
        // frozen artifacts (tree + cost model + shared strategy), so the
        // serialized reply is identical across sessions and cacheable.
        bool eligible = false;
        if (request.node >= 0 &&
            static_cast<size_t>(request.node) <
                session.navigation_tree().size()) {
          const ActiveTree& active = session.active_tree();
          if (active.IsVisible(request.node)) {
            eligible =
                active.ComponentIsIntact(active.ComponentOf(request.node));
          }
        }
        Result<std::vector<NavNodeId>> r = session.Expand(request.node);
        if (!r.ok()) return r.status();
        revealed = r.TakeValue();
        if (eligible) {
          artifacts = session.artifacts();
          template_key = "E|" + std::to_string(request.node);
        }
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorFrame(proto, status);
  WireResponse response(proto, RequestOp::kExpand);
  if (artifacts != nullptr) {
    std::shared_ptr<const std::string> payload =
        artifacts->templates.GetOrRender(
            template_key, static_cast<int>(proto), [&] {
              return WirePayload(proto)
                  .AddIntList(WireField::kRevealed, revealed)
                  .Finish();
            });
    return response.FinishWithPayload(std::move(payload));
  }
  return response.AddIntList(WireField::kRevealed, revealed).Finish();
}

WireFrame NavServer::HandleBatchExpand(const RequestView& request,
                                       WireProto proto) {
  // Applies the cuts sequentially inside one session lock acquisition —
  // exactly what a client issuing the EXPANDs one by one would get, minus
  // the round trips. Per-node failures do not abort the batch: later nodes
  // may be independent components, and the per-node outcomes report what
  // happened. Each applied cut appends its own ExpandRecord, so snapshots
  // and replay see a BATCH_EXPAND exactly as the equivalent EXPAND chain.
  std::vector<NavNodeId> combined;
  std::string outcomes = "[";
  uint64_t applied = 0;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        for (size_t i = 0; i < request.nodes.size(); ++i) {
          NavNodeId node = request.nodes[i];
          if (i != 0) outcomes.push_back(',');
          Result<std::vector<NavNodeId>> r = session.Expand(node);
          if (r.ok()) {
            ++applied;
            const std::vector<NavNodeId>& revealed = r.ValueOrDie();
            // A revealed node stays visible for the rest of the batch, so
            // the concatenation is exactly the frontier the batch added —
            // no deduplication needed.
            outcomes += "{\"node\":" + std::to_string(node) +
                        ",\"ok\":true,\"revealed\":[";
            for (size_t k = 0; k < revealed.size(); ++k) {
              if (k != 0) outcomes.push_back(',');
              outcomes += std::to_string(revealed[k]);
            }
            outcomes += "]}";
            combined.insert(combined.end(), revealed.begin(), revealed.end());
          } else {
            outcomes += "{\"node\":" + std::to_string(node) +
                        ",\"ok\":false,\"error\":\"" +
                        WireErrorName(WireErrorFromStatus(r.status())) +
                        "\",\"message\":\"" +
                        JsonEscape(r.status().message()) + "\"}";
          }
        }
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorFrame(proto, status);
  outcomes.push_back(']');
  return WireResponse(proto, RequestOp::kBatchExpand)
      .AddUInt(WireField::kExpanded, applied)
      .AddIntList(WireField::kRevealed, combined)
      .AddRawJson(WireField::kResults, outcomes)
      .Finish();
}

WireFrame NavServer::HandleShowResults(const RequestView& request,
                                       WireProto proto) {
  std::vector<CitationSummary> summaries;
  std::shared_ptr<const QueryArtifacts> artifacts;
  std::string template_key;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        Result<std::vector<CitationSummary>> r = session.ShowResults(
            request.node, request.retstart, request.retmax);
        if (!r.ok()) return r.status();
        summaries = r.TakeValue();
        // Same intact-component gate as EXPAND: the citations attached
        // under a visible, never-split component are exactly its frozen
        // navigation subtree's, and their ranking depends only on the
        // session query — which therefore joins the template key.
        if (request.node >= 0 &&
            static_cast<size_t>(request.node) <
                session.navigation_tree().size()) {
          const ActiveTree& active = session.active_tree();
          if (active.IsVisible(request.node) &&
              active.ComponentIsIntact(active.ComponentOf(request.node))) {
            artifacts = session.artifacts();
            template_key = "S|" + std::to_string(request.node) + "|" +
                           std::to_string(request.retstart) + "|" +
                           std::to_string(request.retmax) + "|" +
                           session.query();
          }
        }
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorFrame(proto, status);
  WireResponse response(proto, RequestOp::kShowResults);
  if (artifacts != nullptr) {
    std::shared_ptr<const std::string> payload =
        artifacts->templates.GetOrRender(
            template_key, static_cast<int>(proto), [&] {
              return WirePayload(proto)
                  .AddUInt(WireField::kTotal, summaries.size())
                  .AddRawJson(WireField::kSummaries,
                              SummariesToJson(summaries))
                  .Finish();
            });
    return response.FinishWithPayload(std::move(payload));
  }
  return response.AddUInt(WireField::kTotal, summaries.size())
      .AddRawJson(WireField::kSummaries, SummariesToJson(summaries))
      .Finish();
}

WireFrame NavServer::HandleBacktrack(const RequestView& request,
                                     WireProto proto) {
  bool undone = false;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        undone = session.Backtrack();
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorFrame(proto, status);
  return WireResponse(proto, RequestOp::kBacktrack)
      .AddBool(WireField::kUndone, undone)
      .Finish();
}

WireFrame NavServer::HandleFind(const RequestView& request, WireProto proto) {
  bool found = false, visible = false;
  NavNodeId node = kInvalidNavNode, root = kInvalidNavNode;
  int distinct = 0;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        const NavigationTree& nav = session.navigation_tree();
        node = nav.NodeOfConcept(request.concept_id);
        if (node == kInvalidNavNode) return Status::OK();
        found = true;
        const ActiveTree& active = session.active_tree();
        int comp = active.ComponentOf(node);
        visible = active.IsVisible(node);
        root = active.ComponentRoot(comp);
        distinct = active.ComponentDistinctCount(comp);
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorFrame(proto, status);
  return WireResponse(proto, RequestOp::kFind)
      .AddBool(WireField::kFound, found)
      .AddInt(WireField::kNode, static_cast<int64_t>(node))
      .AddBool(WireField::kVisible, visible)
      .AddInt(WireField::kComponentRoot, static_cast<int64_t>(root))
      .AddInt(WireField::kDistinct, static_cast<int64_t>(distinct))
      .Finish();
}

WireFrame NavServer::HandleView(const RequestView& request, WireProto proto) {
  std::string tree;
  Status status = sessions_.WithSession(
      request.token, [&](NavigationSession& session) -> Status {
        tree = VisualizationToJson(session.active_tree(), session.cost_model(),
                                   request.depth);
        return Status::OK();
      });
  if (!status.ok()) return SessionErrorFrame(proto, status);
  return WireResponse(proto, RequestOp::kView)
      .AddRawJson(WireField::kTree, tree)
      .Finish();
}

WireFrame NavServer::HandleClose(const RequestView& request, WireProto proto) {
  bool closed = sessions_.Close(request.token);
  if (!closed) {
    return WireResponse::Error(
        proto, WireError::kUnknownSession,
        "unknown session '" + std::string(request.token) + "'");
  }
  return WireResponse(proto, RequestOp::kClose)
      .AddBool(WireField::kClosed, true)
      .Finish();
}

WireFrame NavServer::HandleFetchArtifact(const RequestView& request,
                                         WireProto proto) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return WireResponse::Error(proto, WireError::kShuttingDown,
                               "server is draining");
  }
  Result<std::shared_ptr<const QueryArtifacts>> artifacts =
      sessions_.ArtifactsForKey(std::string(request.query));
  if (!artifacts.ok()) {
    return WireResponse::Error(proto, WireErrorFromStatus(artifacts.status()),
                               artifacts.status().message());
  }
  // Base64 in both encodings: JSON strings cannot carry raw bytes, and one
  // representation keeps owner/replica wire responses oracle-identical.
  return WireResponse(proto, RequestOp::kFetchArtifact)
      .AddString(WireField::kArtifact,
                 Base64Encode(artifacts.ValueOrDie()->Serialize()))
      .Finish();
}

WireFrame NavServer::HandleTopology(const RequestView&, WireProto proto) {
  return WireResponse::Error(
      proto, WireError::kFailedPrecondition,
      "TOPOLOGY is answered by the routing tier, not a bare backend");
}

WireFrame NavServer::HandleStats(const RequestView&, WireProto proto) {
  NavServerStats s = stats();
  std::string sessions =
      "{\"active\":" + std::to_string(s.sessions.active) +
      ",\"created\":" + std::to_string(s.sessions.created) +
      ",\"evicted_lru\":" + std::to_string(s.sessions.evicted_lru) +
      ",\"expired_ttl\":" + std::to_string(s.sessions.expired_ttl) +
      ",\"closed\":" + std::to_string(s.sessions.closed) +
      ",\"operations\":" + std::to_string(s.sessions.operations) +
      ",\"spilled\":" + std::to_string(s.sessions.spilled) +
      ",\"restored\":" + std::to_string(s.sessions.restored) +
      ",\"restore_failed\":" + std::to_string(s.sessions.restore_failed) +
      ",\"spilled_now\":" + std::to_string(s.sessions.spilled_now) +
      ",\"resident_bytes\":" + std::to_string(s.sessions.resident_bytes) +
      "}";
  // Artifact-cache section: enabled:false (and zeros) when --cache=off, so
  // scrapers can rely on the section's presence either way.
  QueryArtifactCacheStats c;
  const QueryArtifactCache* cache = sessions_.cache();
  if (cache != nullptr) c = cache->stats();
  std::string cache_json =
      std::string("{\"enabled\":") + (cache != nullptr ? "true" : "false") +
      ",\"hits\":" + std::to_string(c.hits) +
      ",\"misses\":" + std::to_string(c.misses) +
      ",\"singleflight_waits\":" + std::to_string(c.singleflight_waits) +
      ",\"evicted_lru\":" + std::to_string(c.evicted_lru) +
      ",\"expired_ttl\":" + std::to_string(c.expired_ttl) +
      ",\"entries\":" + std::to_string(c.entries) +
      ",\"bytes\":" + std::to_string(c.bytes) +
      ",\"build_us_saved\":" + std::to_string(c.build_us_saved) +
      ",\"builds\":" + std::to_string(s.sessions.artifact_builds) +
      ",\"peer_fetch_hits\":" + std::to_string(s.sessions.peer_fetch_hits) +
      ",\"peer_fetch_misses\":" +
      std::to_string(s.sessions.peer_fetch_misses) + "}";
  // The exposition-sized payload has no hot-path template; both protocols
  // carry the identical JSON document (binary wraps it as a kWhole field).
  std::string line =
      ResponseBuilder(RequestOp::kStats)
          .Add("connections_accepted", s.connections_accepted)
          .Add("connections_shed", s.connections_shed)
          .Add("connections_open", s.connections_open)
          .Add("connections_idle_closed", s.connections_idle_closed)
          .Add("requests", s.requests)
          .Add("protocol_errors", s.protocol_errors)
          .Add("oversized_frames", s.oversized_frames)
          .Add("epoll_wakeups", s.epoll_wakeups)
          .Add("bytes_rx", s.bytes_rx)
          .Add("bytes_tx", s.bytes_tx)
          .Add("threads", pool_.num_threads())
          .Add("io_threads", static_cast<int64_t>(loops_.size()))
          .AddRaw("sessions", sessions)
          .AddRaw("cache", cache_json)
          .AddRaw("metrics", GlobalMetrics().ToJson())
          .Finish();
  return WrapWholeJson(proto, std::move(line));
}

WireFrame NavServer::HandleMetrics(const RequestView&, WireProto proto) {
  int64_t wakeups = 0;
  for (const std::unique_ptr<EventLoop>& loop : loops_) {
    wakeups += loop->wakeups();
  }
  EpollWakeupsGauge()->Set(wakeups);
  // The exposition travels as one JSON string field; JsonEscape turns the
  // newlines into \n so the line protocol survives, and clients (or
  // `bionav_cli stats --prom`) unescape on print.
  std::string line =
      ResponseBuilder(RequestOp::kMetrics)
          .Add("text", std::string_view(GlobalMetrics().ToPrometheusText()))
          .Finish();
  return WrapWholeJson(proto, std::move(line));
}

NavServerStats NavServer::stats() const {
  NavServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  s.connections_open = connections_open_.load(std::memory_order_relaxed);
  s.connections_idle_closed =
      connections_idle_closed_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.oversized_frames = oversized_frames_.load(std::memory_order_relaxed);
  s.bytes_rx = bytes_rx_.load(std::memory_order_relaxed);
  s.bytes_tx = bytes_tx_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<EventLoop>& loop : loops_) {
    s.epoll_wakeups += loop->wakeups();
  }
  // Pull-refreshed at exposition: STATS/METRICS are exactly when the value
  // is read, so the reactor threads never spend a timer keeping it warm.
  EpollWakeupsGauge()->Set(s.epoll_wakeups);
  s.sessions = sessions_.stats();
  return s;
}

void NavServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  if (!started_.load() || shutting_down_.load()) return;
  shutting_down_.store(true, std::memory_order_release);

  // 1. Stop admitting: unregister and close the listener on its loop so
  //    no accept races the teardown.
  {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    loops_[0]->RunInLoop([&] {
      loops_[0]->Remove(listen_fd_);
      ::close(listen_fd_);
      listen_fd_ = -1;
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      cv.notify_one();
    });
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done; });
  }

  // 2. Drain every connection: in-flight requests finish normally,
  //    buffered-but-undispatched pipelined frames answer SHUTTING_DOWN,
  //    write queues flush before fds close.
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->RunInLoop([this, i] {
      std::vector<ConnPtr> conns;
      conns.reserve(loop_conns_[i].size());
      for (const auto& [fd, conn] : loop_conns_[i]) conns.push_back(conn);
      for (const ConnPtr& conn : conns) DrainConnection(conn);
    });
  }

  // 3. Let the pool finish every dispatched request (their completions
  //    re-enter the still-running loops and flush).
  pool_.Wait();

  // 4. Bounded drain: wait for the loops to report every connection
  //    closed, then force-close stragglers (dead peers that never drain
  //    their receive window).
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.drain_deadline_ms),
        [this] { return connections_open_.load() == 0; });
  }
  if (connections_open_.load() > 0) {
    for (size_t i = 0; i < loops_.size(); ++i) {
      loops_[i]->RunInLoop([this, i] {
        std::vector<ConnPtr> conns;
        conns.reserve(loop_conns_[i].size());
        for (const auto& [fd, conn] : loop_conns_[i]) conns.push_back(conn);
        for (const ConnPtr& conn : conns) CloseConnection(conn);
      });
    }
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1000),
                       [this] { return connections_open_.load() == 0; });
  }

  // 5. Stop and join the reactors.
  for (std::unique_ptr<EventLoop>& loop : loops_) loop->Stop();
  for (std::thread& t : io_threads_) {
    if (t.joinable()) t.join();
  }
  io_threads_.clear();
}

NavServer::~NavServer() { Shutdown(); }

}  // namespace bionav
