#ifndef BIONAV_SERVER_NAV_SERVER_H_
#define BIONAV_SERVER_NAV_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>

#include "server/protocol.h"
#include "server/session_manager.h"
#include "util/thread_pool.h"

namespace bionav {

struct NavServerOptions {
  /// Bind address (loopback by default — fronting proxies terminate the
  /// public edge in the paper's architecture).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, readable via port() after Start.
  int port = 0;
  /// Worker threads serving connections (clamped to >= 1).
  int threads = 4;
  /// Admission control: connections beyond `threads + max_pending` are shed
  /// with a RETRY_LATER reply instead of queuing unboundedly on the pool.
  int max_pending = 16;
  SessionManagerOptions session;
  CostModelParams cost_params;
};

/// Server-level counters (session counters live in SessionManagerStats).
struct NavServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_shed = 0;
  int64_t requests = 0;
  int64_t protocol_errors = 0;
  SessionManagerStats sessions;
};

/// The navigation service of the paper's Section VII deployment: a
/// blocking-socket TCP server speaking the line-delimited protocol of
/// server/protocol.h. One accept thread admits connections and dispatches
/// a per-connection handler onto the PR-1 ThreadPool; each handler reads
/// request lines, executes them against the SessionManager, and writes one
/// response line per request.
///
/// Backpressure: a connection admitted while `threads + max_pending`
/// handlers are already live is answered with a single RETRY_LATER error
/// line and closed — load is shed at the edge, never queued unboundedly.
///
/// Shutdown is graceful: Shutdown() stops the accept loop, half-closes the
/// read side of every live connection, and drains the pool — a request
/// already being processed completes and its response is written before
/// the connection is torn down.
class NavServer {
 public:
  /// The hierarchy/eutils substrate must outlive the server. The strategy
  /// factory is shared by all sessions (BioNav policy by default).
  NavServer(const ConceptHierarchy* hierarchy, const EUtilsClient* eutils,
            StrategyFactory strategy_factory = nullptr,
            NavServerOptions options = NavServerOptions());

  NavServer(const NavServer&) = delete;
  NavServer& operator=(const NavServer&) = delete;

  /// Binds, listens and starts the accept thread. IOError on bind failure.
  Status Start();

  /// Bound TCP port (valid after a successful Start).
  int port() const { return port_; }

  /// Graceful shutdown; idempotent, also run by the destructor.
  void Shutdown();

  ~NavServer();

  NavServerStats stats() const;
  SessionManager& session_manager() { return sessions_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Executes one request line, returns the response line (no newline).
  std::string HandleRequestLine(const std::string& line);

  std::string HandleQuery(const Request& request);
  std::string HandleExpand(const Request& request);
  std::string HandleShowResults(const Request& request);
  std::string HandleBacktrack(const Request& request);
  std::string HandleFind(const Request& request);
  std::string HandleView(const Request& request);
  std::string HandleClose(const Request& request);
  std::string HandleStats(const Request& request);
  std::string HandleMetrics(const Request& request);

  NavServerOptions options_;
  SessionManager sessions_;
  ThreadPool pool_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> shutting_down_{false};
  std::atomic<int> live_handlers_{0};

  mutable std::mutex conn_mu_;
  std::unordered_set<int> open_fds_;
  std::mutex shutdown_mu_;  // Serializes Shutdown (idempotence).

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_shed_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> protocol_errors_{0};
};

}  // namespace bionav

#endif  // BIONAV_SERVER_NAV_SERVER_H_
