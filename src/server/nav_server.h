#ifndef BIONAV_SERVER_NAV_SERVER_H_
#define BIONAV_SERVER_NAV_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/protocol.h"
#include "server/session_manager.h"
#include "util/event_loop.h"
#include "util/thread_pool.h"

namespace bionav {

struct NavServerOptions {
  /// Bind address (loopback by default — fronting proxies terminate the
  /// public edge in the paper's architecture).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port, readable via port() after Start.
  int port = 0;
  /// Compute workers (the PR-1 ThreadPool) executing decoded requests.
  int threads = 4;
  /// Reactor threads owning the non-blocking sockets. 1–2 saturate the
  /// line-protocol I/O for thousands of connections; compute stays on the
  /// pool above. Clamped to >= 1.
  int io_threads = 1;
  /// Admission control at the accept path: a connection arriving while
  /// this many are open is answered RETRY_LATER and closed. Connections
  /// are cheap reactor state, so the default holds thousands.
  int max_connections = 4096;
  /// Pipelining depth: decoded-but-unanswered requests per connection.
  /// Past it the reactor stops reading that connection until responses
  /// drain (per-connection backpressure, never a global stall).
  int max_inflight_per_connection = 64;
  /// Write-queue backpressure: when a connection's queued response bytes
  /// exceed this, reading it pauses until the queue drains below.
  size_t max_write_queue_bytes = 4 << 20;
  /// A request line may grow to this many bytes before termination; past
  /// it the connection gets a typed BAD_REQUEST and is closed (slow-loris
  /// defense; see LineFrameDecoder).
  size_t max_frame_bytes = LineFrameDecoder::kDefaultMaxFrameBytes;
  /// Idle connections are closed after this long without a readable byte
  /// (enforced by the reactor's timer wheel). 0 disables.
  int64_t idle_timeout_ms = 5 * 60 * 1000;
  /// Shutdown drains pending write queues for at most this long before
  /// force-closing what remains.
  int64_t drain_deadline_ms = 2000;
  /// Warm restart: adopt this already-bound, already-listening fd instead
  /// of socket/bind/listen. The predecessor process dups its listener
  /// CLOEXEC-free (DetachListener), execs the new binary, and connections
  /// queued in the listen backlog ride through the swap. -1 disables.
  int inherit_listen_fd = -1;
  SessionManagerOptions session;
  CostModelParams cost_params;
};

/// Server-level counters (session counters live in SessionManagerStats).
struct NavServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_shed = 0;
  int64_t connections_open = 0;
  int64_t connections_idle_closed = 0;
  int64_t requests = 0;
  int64_t protocol_errors = 0;
  int64_t oversized_frames = 0;
  int64_t epoll_wakeups = 0;
  /// Wire bytes received/sent across all connections (both protocols).
  int64_t bytes_rx = 0;
  int64_t bytes_tx = 0;
  SessionManagerStats sessions;
};

/// The navigation service of the paper's Section VII deployment, serving
/// the wire protocol of server/protocol.h over TCP — rebuilt as an
/// event-driven reactor so "heavy traffic from millions of users" is a
/// connection-count problem, not a thread-count problem. Each connection
/// negotiates its encoding on its first bytes: the "BNV2" preamble selects
/// length-prefixed binary v2; everything else stays line-delimited JSON v1,
/// so one server concurrently serves a mixed fleet. Hot responses
/// (cache-hit QUERY, first EXPAND/SHOWRESULTS of an intact component) are
/// served from pre-rendered templates on the shared QueryArtifacts — one
/// serialization per (request shape, encoding), then writev of {owned
/// header, shared body} for every later session.
///
/// Threading: `io_threads` reactor threads (EventLoop each) own the
/// non-blocking sockets. They accept, assemble frames incrementally from
/// partial reads, and hand decoded request lines to the compute ThreadPool;
/// finished responses marshal back to the owning loop, which writes them
/// out through a per-connection bounded queue. A connection is a small
/// state object pinned to one loop — all its state is loop-thread-only, so
/// the hot path takes no locks.
///
/// Pipelining: a client may send many requests without waiting; they
/// execute concurrently on the pool but responses are written in request
/// arrival order (sequence numbers reorder completions). Requests that
/// cannot stall the loop (parse errors, cache-hit QUERYs) execute inline
/// on the reactor when the connection has no backlog, skipping the pool
/// round-trip's two scheduler handoffs on the warm interactive path.
///
/// Backpressure: reading pauses per connection when its in-flight count or
/// queued write bytes exceed their caps, and resumes as responses drain;
/// admission is shed at the accept path past max_connections.
///
/// Shutdown is graceful: the listener closes, already-decoded requests
/// complete, frames buffered but not yet dispatched are answered
/// SHUTTING_DOWN, and write queues are flushed under drain_deadline_ms
/// before fds close.
class NavServer {
 public:
  /// The hierarchy/eutils substrate must outlive the server. The strategy
  /// factory is shared by all sessions (BioNav policy by default).
  NavServer(const ConceptHierarchy* hierarchy, const EUtilsClient* eutils,
            StrategyFactory strategy_factory = nullptr,
            NavServerOptions options = NavServerOptions());

  NavServer(const NavServer&) = delete;
  NavServer& operator=(const NavServer&) = delete;

  /// Binds, listens, and starts the reactor threads. IOError on failure.
  Status Start();

  /// Bound TCP port (valid after a successful Start).
  int port() const { return port_; }

  /// Graceful shutdown; idempotent, also run by the destructor.
  void Shutdown();

  /// Warm-restart support: dups the listening socket WITHOUT close-on-exec
  /// and returns the new fd (-1 if not listening). The dup keeps the
  /// kernel's listen backlog alive across Shutdown + exec — clients
  /// connecting during the swap queue there instead of seeing RST. Call
  /// before Shutdown, pass the fd to the next binary via
  /// --inherit-listen-fd.
  int DetachListener();

  ~NavServer();

  NavServerStats stats() const;
  SessionManager& session_manager() { return sessions_; }

 private:
  /// Per-connection reactor state. Every field is touched only on the
  /// owning loop's thread; pool completions re-enter via RunInLoop.
  struct Connection {
    explicit Connection(size_t max_frame_bytes)
        : decoder(max_frame_bytes), bdecoder(max_frame_bytes) {}

    int fd = -1;
    size_t loop_index = 0;
    /// Wire encoding, decided by the connection's very first bytes: the
    /// "BNV2" preamble selects binary; anything else (a JSON line always
    /// starts with '{') keeps v1 JSON. Until decided, bytes accumulate in
    /// `preamble` (at most 4) and neither decoder is fed.
    WireProto proto = WireProto::kJson;
    bool proto_decided = false;
    /// First bytes were 'B'-led but not the preamble: answer BAD_REQUEST
    /// (in JSON — the peer's encoding is unknowable) and close.
    bool preamble_error = false;
    std::string preamble;
    LineFrameDecoder decoder;     // JSON framing.
    BinaryFrameDecoder bdecoder;  // Binary framing.
    /// Responses released in order, front may be partially written.
    std::deque<WireFrame> write_queue;
    size_t write_offset = 0;
    size_t write_queue_bytes = 0;
    /// Pipelining bookkeeping: requests are numbered on decode; responses
    /// park in `completed` until every earlier one has been released.
    uint64_t next_dispatch_seq = 0;
    uint64_t next_release_seq = 0;
    std::map<uint64_t, WireFrame> completed;
    int inflight = 0;
    bool reading = true;      // kReadable currently in the interest set.
    bool want_write = false;  // kWritable currently in the interest set.
    bool dispatching = false;  // DispatchFrames re-entrancy guard.
    bool draining = false;    // No new dispatches (EOF, error, shutdown).
    bool close_after_flush = false;
    bool closed = false;
    int64_t last_activity_ms = 0;
    TimerId idle_timer = kInvalidTimer;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void IoThreadMain(size_t loop_index);
  /// Arms (and re-arms) the periodic idle-spill sweep on loop 0. The sweep
  /// body runs on the compute pool — disk writes never block the reactor.
  void ArmSpillSweep();
  void OnAcceptable();
  void AdmitConnection(int fd);
  void OnConnectionEvent(const ConnPtr& conn, uint32_t events);
  void ReadConnection(const ConnPtr& conn);
  /// Routes received bytes through protocol negotiation into the
  /// connection's decoder. False once the stream is unrecoverable
  /// (preamble error or a broken decoder latch).
  bool FeedConnection(const ConnPtr& conn, std::string_view data);
  /// Negotiation-aware views over the connection's active decoder.
  bool HasBufferedFrame(const ConnPtr& conn) const;
  bool NextBufferedFrame(const ConnPtr& conn, std::string* payload);
  bool DecoderBroken(const ConnPtr& conn) const;
  /// Decodes buffered frames and dispatches them to the pool (or answers
  /// SHUTTING_DOWN when draining). Honors the pipelining cap.
  void DispatchFrames(const ConnPtr& conn);
  void DispatchRequest(const ConnPtr& conn, uint64_t seq,
                       std::string payload);
  /// True when a parsed request may execute inline on the reactor thread
  /// without risking a loop stall: a QUERY whose artifacts the cache
  /// already holds built. (Parse failures are always inline-safe — their
  /// reply is a constant error frame — and are handled before this check.)
  bool FastPathEligible(const RequestView& request) const;
  /// Loop-thread: files a finished response under its sequence number and
  /// releases every in-order response to the write queue.
  void CompleteRequest(const ConnPtr& conn, uint64_t seq,
                       WireFrame response);
  /// Coalesces every ready response (owned heads and shared template
  /// bodies alike) into one sendmsg before re-arming EPOLLOUT.
  void FlushWrites(const ConnPtr& conn);
  void UpdateInterest(const ConnPtr& conn);
  /// (Re)arms the idle timer against last_activity_ms.
  void ArmIdleTimer(const ConnPtr& conn);
  void CloseConnection(const ConnPtr& conn);
  /// Loop-thread: transitions a connection into drain (no more reads or
  /// dispatches; buffered frames answered SHUTTING_DOWN; close on flush).
  void DrainConnection(const ConnPtr& conn);

  /// Executes one request frame (parse + dispatch) in the connection's
  /// encoding, returns the finished response frame. Runs on a pool thread
  /// or inline on a reactor thread; everything it touches is thread-safe.
  WireFrame HandleFrame(WireProto proto, const std::string& payload);
  /// Dispatches an already-parsed request (the inline fast path parses on
  /// the loop thread and must not pay for a second parse).
  WireFrame HandleRequest(const RequestView& request, WireProto proto);
  WireFrame HandleParseError(WireProto proto, WireError error,
                             const std::string& message);
  void CountRequest();

  WireFrame HandleQuery(const RequestView& request, WireProto proto);
  WireFrame HandleExpand(const RequestView& request, WireProto proto);
  WireFrame HandleShowResults(const RequestView& request, WireProto proto);
  WireFrame HandleBacktrack(const RequestView& request, WireProto proto);
  WireFrame HandleBatchExpand(const RequestView& request, WireProto proto);
  WireFrame HandleFind(const RequestView& request, WireProto proto);
  WireFrame HandleView(const RequestView& request, WireProto proto);
  WireFrame HandleClose(const RequestView& request, WireProto proto);
  WireFrame HandleStats(const RequestView& request, WireProto proto);
  WireFrame HandleMetrics(const RequestView& request, WireProto proto);
  /// Owner-side artifact export: serializes the key's bundle (building it
  /// inside the cache's singleflight on a miss) into a base64 "artifact"
  /// field. Peer shards call this; it never recurses into a peer fetch.
  WireFrame HandleFetchArtifact(const RequestView& request, WireProto proto);
  /// Bare backends hold no shard map; the routing tier answers TOPOLOGY.
  WireFrame HandleTopology(const RequestView& request, WireProto proto);

  NavServerOptions options_;
  SessionManager sessions_;
  ThreadPool pool_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::vector<std::unique_ptr<EventLoop>> loops_;
  std::vector<std::thread> io_threads_;
  /// Connections owned by each loop (loop-thread-only containers; indexed
  /// by loop). Used by drain and the idle sweep.
  std::vector<std::unordered_map<int, ConnPtr>> loop_conns_;
  std::atomic<size_t> next_loop_{0};  // Round-robin connection placement.

  std::atomic<bool> started_{false};
  std::atomic<bool> shutting_down_{false};
  /// One idle-spill sweep at a time; a slow disk must not pile up sweeps.
  std::atomic<bool> spill_sweep_inflight_{false};
  std::mutex shutdown_mu_;  // Serializes Shutdown (idempotence).

  /// Signaled by loops as connections close; Shutdown waits on it for the
  /// bounded drain.
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_shed_{0};
  std::atomic<int64_t> connections_open_{0};
  std::atomic<int64_t> connections_idle_closed_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> oversized_frames_{0};
  std::atomic<int64_t> bytes_rx_{0};
  std::atomic<int64_t> bytes_tx_{0};
};

}  // namespace bionav

#endif  // BIONAV_SERVER_NAV_SERVER_H_
