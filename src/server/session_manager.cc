#include "server/session_manager.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "persist/session_snapshot.h"

namespace bionav {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t WallUnixMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Global mirrors of the per-manager counters_ so STATS/METRICS see session
// churn without holding any manager's lock. All increments below happen
// under the owning manager's mu_, but the metrics themselves are shared by
// every manager in the process.
Counter* SessionsCreated() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_created_total", "Navigation sessions created");
  return c;
}
Counter* SessionsClosed() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_closed_total", "Sessions closed by the client");
  return c;
}
Counter* SessionsEvicted() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_evicted_total", "Sessions evicted by the LRU cap");
  return c;
}
Counter* SessionsExpired() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_expired_total", "Sessions expired by TTL");
  return c;
}
Gauge* SessionsLive() {
  static Gauge* g = GlobalMetrics().GetGauge("bionav_sessions_live",
                                             "Sessions currently resident");
  return g;
}
Counter* SessionsSpilled() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_spilled_total", "Session snapshots written to disk");
  return c;
}
Counter* SessionsRestored() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_restored_total",
      "Sessions resurrected from the spill tier");
  return c;
}
Counter* SessionsRestoreFailed() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_session_restore_failed_total",
      "Parked sessions dropped because their snapshot was unusable");
  return c;
}
Gauge* SessionsSpilledNow() {
  static Gauge* g = GlobalMetrics().GetGauge(
      "bionav_sessions_spilled", "Sessions currently parked on disk");
  return g;
}
Gauge* SessionHeapBytes() {
  static Gauge* g = GlobalMetrics().GetGauge(
      "bionav_session_heap_bytes",
      "Estimated heap bytes of resident session state");
  return g;
}
LatencyHistogram* RestoreLatency() {
  static LatencyHistogram* h = GlobalMetrics().GetHistogram(
      "bionav_session_restore_us",
      "Restore-on-touch: snapshot read, decode, artifact lookup and replay");
  return h;
}

/// Numeric suffix of a minted token ("shard0-s17" -> 17), or 0 if the
/// token does not look minted. Used to keep next_token_ ahead of whatever
/// is parked on disk after an unclean restart.
uint64_t TokenOrdinal(const std::string& token) {
  size_t s = token.rfind('s');
  if (s == std::string::npos || s + 1 >= token.size()) return 0;
  uint64_t value = 0;
  for (size_t i = s + 1; i < token.size(); ++i) {
    if (token[i] < '0' || token[i] > '9') return 0;
    value = value * 10 + static_cast<uint64_t>(token[i] - '0');
  }
  return value;
}

}  // namespace

SessionManager::SessionManager(const ConceptHierarchy* hierarchy,
                               const EUtilsClient* eutils,
                               StrategyFactory strategy_factory,
                               SessionManagerOptions options,
                               CostModelParams cost_params)
    : hierarchy_(hierarchy),
      eutils_(eutils),
      strategy_factory_(std::move(strategy_factory)),
      options_(std::move(options)),
      cost_params_(cost_params) {
  BIONAV_CHECK(hierarchy_ != nullptr);
  BIONAV_CHECK(eutils_ != nullptr);
  BIONAV_CHECK(strategy_factory_ != nullptr);
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  if (!options_.clock) options_.clock = SteadyNowMs;
  if (options_.cache_enabled) {
    QueryArtifactCacheOptions cache_options;
    cache_options.max_bytes = options_.cache_max_bytes;
    cache_options.ttl_ms = options_.cache_ttl_ms;
    cache_options.shards = options_.cache_shards;
    cache_options.clock = options_.clock;
    cache_ = std::make_unique<QueryArtifactCache>(std::move(cache_options));
  }
  if (!options_.spill_dir.empty()) {
    spill_ = std::make_unique<SpillStore>(options_.spill_dir);
    spill_->Init().CheckOK();
    // Adopt whatever a predecessor left parked, and keep the token mint
    // ahead of it: after a warm restart (manifest) or a crash (scan), a
    // fresh "s17" must never alias a parked "s17".
    uint64_t max_seen = 0;
    for (std::string& token : spill_->ListTokens()) {
      max_seen = std::max(max_seen, TokenOrdinal(token));
      spilled_tokens_.insert(std::move(token));
    }
    next_token_ = max_seen + 1;
    Result<uint64_t> manifest = spill_->ReadManifest();
    if (manifest.ok()) {
      next_token_ = std::max(next_token_, manifest.ValueOrDie());
    }
    SessionsSpilledNow()->Add(static_cast<int64_t>(spilled_tokens_.size()));
  }
}

SessionManager::~SessionManager() {
  // Sessions dying with their manager leave the process-wide gauges;
  // without this, every short-lived manager (tests, restarts under one
  // process) would leak residue into bionav_sessions_live and friends.
  SessionsLive()->Add(-static_cast<int64_t>(sessions_.size()));
  SessionHeapBytes()->Add(-static_cast<int64_t>(resident_bytes_));
  SessionsSpilledNow()->Add(-static_cast<int64_t>(spilled_tokens_.size()));
}

int64_t SessionManager::NowMs() const { return options_.clock(); }

std::shared_ptr<const QueryArtifacts> SessionManager::ResolveArtifacts(
    const std::string& query, bool freeze, bool allow_peer) {
  if (allow_peer && options_.peer_fetcher) {
    std::shared_ptr<const QueryArtifacts> fetched =
        options_.peer_fetcher(NormalizeQueryKey(query));
    if (fetched != nullptr) {
      peer_fetch_hits_.fetch_add(1, std::memory_order_relaxed);
      return fetched;
    }
    peer_fetch_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  artifact_builds_.fetch_add(1, std::memory_order_relaxed);
  return BuildQueryArtifacts(*hierarchy_, *eutils_, query, cost_params_,
                             freeze);
}

Result<std::string> SessionManager::Create(const std::string& query,
                                           size_t* result_size) {
  Result<CreateInfo> info = CreateSession(query);
  if (!info.ok()) return info.status();
  if (result_size != nullptr) *result_size = info.ValueOrDie().result_size;
  return info.TakeValue().token;
}

Result<SessionManager::CreateInfo> SessionManager::CreateSession(
    const std::string& query) {
  if (query.empty()) {
    return Status::InvalidArgument("empty query");
  }
  // Resolve the artifacts outside the session-map lock: navigation-tree
  // construction is the expensive part of QUERY and must not serialize
  // against other sessions. With the cache on, the build also singleflights
  // — concurrent QUERYs of one normalized key share a single build.
  CreateInfo info;
  std::shared_ptr<const QueryArtifacts> artifacts;
  if (cache_ != nullptr) {
    QueryArtifactCache::Lookup lookup =
        cache_->GetOrBuild(NormalizeQueryKey(query), [&] {
          return ResolveArtifacts(query, /*freeze=*/true, /*allow_peer=*/true);
        });
    artifacts = std::move(lookup.artifacts);
    info.cache_hit = lookup.hit;
  } else {
    artifacts = ResolveArtifacts(query, /*freeze=*/false, /*allow_peer=*/false);
  }
  info.artifacts = artifacts;
  auto entry = std::make_shared<Entry>();
  entry->session = std::make_unique<NavigationSession>(
      eutils_, std::move(artifacts), query, strategy_factory_);
  info.result_size = entry->session->result_size();
  entry->mem_bytes = entry->session->MemoryBytes();

  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowMs();
  SweepExpiredLocked(now);
  // Built in two steps: gcc 12's -Wrestrict misfires on the
  // `"s" + std::to_string(...)` rvalue-insert path at -O2.
  entry->token = std::to_string(next_token_++);
  entry->token.insert(0, 1, 's');
  entry->token.insert(0, options_.token_prefix);
  entry->last_used_ms = now;
  sessions_.emplace(entry->token, entry);
  resident_bytes_ += entry->mem_bytes;
  SessionHeapBytes()->Add(static_cast<int64_t>(entry->mem_bytes));
  ++counters_.created;
  SessionsCreated()->Increment();
  SessionsLive()->Add(1);
  EvictToCapacityLocked();
  info.token = entry->token;
  return info;
}

Status SessionManager::WithSession(
    std::string_view token,
    const std::function<Status(NavigationSession&)>& fn) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it != sessions_.end()) {
      int64_t now = NowMs();
      if (options_.ttl_ms > 0 &&
          now - it->second->last_used_ms > options_.ttl_ms) {
        ++counters_.expired_ttl;
        SessionsExpired()->Increment();
        EraseResidentLocked(it);
        return Status::NotFound("session '" + std::string(token) +
                                "' expired");
      }
      it->second->last_used_ms = now;
      entry = it->second;
      // Pin: spill and spill-backed eviction skip entries with an op in
      // flight, so the session we are about to mutate cannot be
      // snapshotted (stale) or unlinked-to-disk underneath us.
      ++entry->inflight;
      ++counters_.operations;
    }
  }
  if (entry == nullptr) {
    Status restore_status;
    entry = RestoreFromSpill(token, &restore_status);
    if (entry == nullptr) return restore_status;
  }
  Status result;
  size_t bytes = 0;
  {
    // Per-session serialization; the map lock is already released, so a
    // slow EXPAND on one session never stalls traffic to the others. The
    // byte count is taken here too: under mu_ alone it would race with a
    // concurrent op mutating this session's tree under op_mu.
    std::lock_guard<std::mutex> op_lock(entry->op_mu);
    result = fn(*entry->session);
    bytes = entry->session->MemoryBytes();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --entry->inflight;
    auto it = sessions_.find(entry->token);
    if (it != sessions_.end() && it->second == entry) {
      entry->last_used_ms = NowMs();
      int64_t delta = static_cast<int64_t>(bytes) -
                      static_cast<int64_t>(entry->mem_bytes);
      entry->mem_bytes = bytes;
      resident_bytes_ =
          static_cast<size_t>(static_cast<int64_t>(resident_bytes_) + delta);
      SessionHeapBytes()->Add(delta);
    }
  }
  return result;
}

std::shared_ptr<SessionManager::Entry> SessionManager::RestoreFromSpill(
    std::string_view token, Status* status) {
  *status = Status::NotFound("unknown session '" + std::string(token) + "'");
  if (spill_ == nullptr) return nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (spilled_tokens_.find(token) == spilled_tokens_.end()) return nullptr;
  }
  const std::string token_str(token);
  const auto t0 = std::chrono::steady_clock::now();

  // Read, decode, rebuild artifacts and replay — all outside mu_; a cold
  // restore costs a disk read plus (usually) an artifact-cache hit, and
  // must not stall traffic to resident sessions.
  Status fail;
  std::unique_ptr<NavigationSession> restored;
  Result<std::string> raw = spill_->Get(token_str);
  if (!raw.ok()) {
    fail = raw.status();
  } else {
    Result<SessionSnapshot> decoded = DecodeSnapshot(raw.ValueOrDie());
    if (!decoded.ok()) {
      fail = decoded.status();
    } else {
      const SessionSnapshot& snap = decoded.ValueOrDie();
      std::shared_ptr<const QueryArtifacts> artifacts;
      if (cache_ != nullptr) {
        artifacts = cache_
                        ->GetOrBuild(NormalizeQueryKey(snap.query),
                                     [&] {
                                       return ResolveArtifacts(
                                           snap.query, /*freeze=*/true,
                                           /*allow_peer=*/true);
                                     })
                        .artifacts;
      } else {
        artifacts = ResolveArtifacts(snap.query, /*freeze=*/false,
                                     /*allow_peer=*/false);
      }
      Result<std::unique_ptr<NavigationSession>> session = RestoreSession(
          snap, eutils_, std::move(artifacts), strategy_factory_);
      if (!session.ok()) {
        fail = session.status();
      } else {
        restored = session.TakeValue();
      }
    }
  }

  if (restored == nullptr) {
    // The parked record is unusable (corrupt, or the world changed under
    // it). Drop it so the failure is not sticky, and surface a NotFound —
    // the wire maps it to UNKNOWN_SESSION like any dead token.
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = spilled_tokens_.find(token);
      if (it != spilled_tokens_.end()) {
        spilled_tokens_.erase(it);
        SessionsSpilledNow()->Add(-1);
      }
      ++counters_.restore_failed;
    }
    SessionsRestoreFailed()->Increment();
    spill_->Delete(token_str);
    *status = Status::NotFound("session '" + token_str +
                               "' unrecoverable: " + fail.ToString());
    return nullptr;
  }

  const int64_t restore_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count();
  std::shared_ptr<Entry> entry;
  bool won = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it != sessions_.end()) {
      // A concurrent touch restored it first; ours was wasted work.
      entry = it->second;
    } else {
      entry = std::make_shared<Entry>();
      entry->token = token_str;
      entry->session = std::move(restored);
      entry->mem_bytes = entry->session->MemoryBytes();
      sessions_.emplace(entry->token, entry);
      resident_bytes_ += entry->mem_bytes;
      SessionHeapBytes()->Add(static_cast<int64_t>(entry->mem_bytes));
      SessionsLive()->Add(1);
      auto parked = spilled_tokens_.find(token);
      if (parked != spilled_tokens_.end()) {
        spilled_tokens_.erase(parked);
        SessionsSpilledNow()->Add(-1);
      }
      ++counters_.restored;
      SessionsRestored()->Increment();
      RestoreLatency()->Record(restore_us);
      won = true;
    }
    entry->last_used_ms = NowMs();
    ++entry->inflight;
    ++counters_.operations;
    if (won) EvictToCapacityLocked();
  }
  if (won) spill_->Delete(token_str);
  *status = Status::OK();
  return entry;
}

Result<std::shared_ptr<const QueryArtifacts>> SessionManager::ArtifactsForKey(
    const std::string& key) {
  if (cache_ == nullptr) {
    return Status::FailedPrecondition(
        "artifact cache disabled; no shared bundle to export");
  }
  QueryArtifactCache::Lookup lookup =
      cache_->GetOrBuild(NormalizeQueryKey(key), [&] {
        return ResolveArtifacts(key, /*freeze=*/true, /*allow_peer=*/false);
      });
  return lookup.artifacts;
}

bool SessionManager::Close(std::string_view token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(token);
  if (it != sessions_.end()) {
    EraseResidentLocked(it);
    ++counters_.closed;
    SessionsClosed()->Increment();
    return true;
  }
  auto parked = spilled_tokens_.find(token);
  if (parked != spilled_tokens_.end()) {
    spill_->Delete(*parked);
    spilled_tokens_.erase(parked);
    SessionsSpilledNow()->Add(-1);
    ++counters_.closed;
    SessionsClosed()->Increment();
    return true;
  }
  return false;
}

size_t SessionManager::SpillIdle() {
  if (spill_ == nullptr || options_.spill_after_ms <= 0) return 0;
  // Candidates are collected first, then spilled one map-lock hold each:
  // a 10k-session idle sweep is a burst of small writes, and the map must
  // stay responsive to live traffic between them.
  std::vector<std::string> candidates;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t now = NowMs();
    for (const auto& [token, entry] : sessions_) {
      if (entry->inflight == 0 &&
          now - entry->last_used_ms >= options_.spill_after_ms) {
        candidates.push_back(token);
      }
    }
  }
  size_t spilled = 0;
  for (const std::string& token : candidates) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it == sessions_.end()) continue;
    const std::shared_ptr<Entry>& entry = it->second;
    // Re-check under the lock: the session may have been touched (or an op
    // may be in flight) since the candidate scan.
    if (entry->inflight != 0) continue;
    if (NowMs() - entry->last_used_ms < options_.spill_after_ms) continue;
    if (SpillEntryLocked(entry)) {
      EraseResidentLocked(it);
      ++spilled;
    }
  }
  return spilled;
}

size_t SessionManager::SpillAll() {
  if (spill_ == nullptr) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  size_t spilled = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->inflight == 0 && SpillEntryLocked(it->second)) {
      it = EraseResidentLocked(it);
      ++spilled;
    } else {
      ++it;
    }
  }
  // The manifest marks a clean spill and carries the token mint; if the
  // write fails the successor falls back to scanning parked tokens.
  (void)spill_->WriteManifest(next_token_);
  return spilled;
}

bool SessionManager::SpillEntryLocked(const std::shared_ptr<Entry>& entry) {
  BIONAV_CHECK_EQ(entry->inflight, 0);
  SessionSnapshot snap =
      SnapshotSession(*entry->session, entry->token, WallUnixMs());
  Status written = spill_->Put(entry->token, EncodeSnapshot(snap));
  if (!written.ok()) {
    BIONAV_LOG(Error) << "spill of '" << entry->token
                      << "' failed: " << written.ToString();
    return false;
  }
  if (spilled_tokens_.insert(entry->token).second) {
    SessionsSpilledNow()->Add(1);
  }
  ++counters_.spilled;
  SessionsSpilled()->Increment();
  return true;
}

SessionManager::SessionMap::iterator SessionManager::EraseResidentLocked(
    SessionMap::iterator it) {
  resident_bytes_ -= it->second->mem_bytes;
  SessionHeapBytes()->Add(-static_cast<int64_t>(it->second->mem_bytes));
  SessionsLive()->Add(-1);
  return sessions_.erase(it);
}

size_t SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionManagerStats out = counters_;
  out.active = sessions_.size();
  out.spilled_now = spilled_tokens_.size();
  out.resident_bytes = resident_bytes_;
  out.artifact_builds = artifact_builds_.load(std::memory_order_relaxed);
  out.peer_fetch_hits = peer_fetch_hits_.load(std::memory_order_relaxed);
  out.peer_fetch_misses = peer_fetch_misses_.load(std::memory_order_relaxed);
  return out;
}

void SessionManager::SweepExpiredLocked(int64_t now_ms) {
  if (options_.ttl_ms <= 0) return;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->inflight == 0 &&
        now_ms - it->second->last_used_ms > options_.ttl_ms) {
      ++counters_.expired_ttl;
      SessionsExpired()->Increment();
      it = EraseResidentLocked(it);
    } else {
      ++it;
    }
  }
}

void SessionManager::EvictToCapacityLocked() {
  // Linear LRU scan: capacity is a few hundred sessions, and eviction only
  // runs on Create/restore, so O(n) beats maintaining an intrusive list.
  // With the spill tier on, eviction parks the victim on disk instead of
  // destroying it. In-flight entries are never victims: a mid-op snapshot
  // would persist a stale tree.
  while (sessions_.size() > options_.max_sessions) {
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->second->inflight != 0) continue;
      if (victim == sessions_.end() ||
          it->second->last_used_ms < victim->second->last_used_ms ||
          (it->second->last_used_ms == victim->second->last_used_ms &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    // Everything is pinned by an in-flight op: stay over capacity for a
    // moment rather than lose or corrupt a session.
    if (victim == sessions_.end()) break;
    if (spill_ == nullptr || !SpillEntryLocked(victim->second)) {
      ++counters_.evicted_lru;
      SessionsEvicted()->Increment();
    }
    EraseResidentLocked(victim);
  }
}

}  // namespace bionav
