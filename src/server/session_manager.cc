#include "server/session_manager.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace bionav {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Global mirrors of the per-manager counters_ so STATS/METRICS see session
// churn without holding any manager's lock. All increments below happen
// under the owning manager's mu_, but the metrics themselves are shared by
// every manager in the process.
Counter* SessionsCreated() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_created_total", "Navigation sessions created");
  return c;
}
Counter* SessionsClosed() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_closed_total", "Sessions closed by the client");
  return c;
}
Counter* SessionsEvicted() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_evicted_total", "Sessions evicted by the LRU cap");
  return c;
}
Counter* SessionsExpired() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_sessions_expired_total", "Sessions expired by TTL");
  return c;
}
Gauge* SessionsLive() {
  static Gauge* g = GlobalMetrics().GetGauge("bionav_sessions_live",
                                             "Sessions currently resident");
  return g;
}

}  // namespace

SessionManager::SessionManager(const ConceptHierarchy* hierarchy,
                               const EUtilsClient* eutils,
                               StrategyFactory strategy_factory,
                               SessionManagerOptions options,
                               CostModelParams cost_params)
    : hierarchy_(hierarchy),
      eutils_(eutils),
      strategy_factory_(std::move(strategy_factory)),
      options_(std::move(options)),
      cost_params_(cost_params) {
  BIONAV_CHECK(hierarchy_ != nullptr);
  BIONAV_CHECK(eutils_ != nullptr);
  BIONAV_CHECK(strategy_factory_ != nullptr);
  if (options_.max_sessions == 0) options_.max_sessions = 1;
  if (!options_.clock) options_.clock = SteadyNowMs;
  if (options_.cache_enabled) {
    QueryArtifactCacheOptions cache_options;
    cache_options.max_bytes = options_.cache_max_bytes;
    cache_options.ttl_ms = options_.cache_ttl_ms;
    cache_options.shards = options_.cache_shards;
    cache_options.clock = options_.clock;
    cache_ = std::make_unique<QueryArtifactCache>(std::move(cache_options));
  }
}

SessionManager::~SessionManager() {
  // Sessions dying with their manager leave the process-wide live gauge;
  // without this, every short-lived manager (tests, restarts under one
  // process) would leak residue into bionav_sessions_live.
  SessionsLive()->Add(-static_cast<int64_t>(sessions_.size()));
}

int64_t SessionManager::NowMs() const { return options_.clock(); }

Result<std::string> SessionManager::Create(const std::string& query,
                                           size_t* result_size) {
  Result<CreateInfo> info = CreateSession(query);
  if (!info.ok()) return info.status();
  if (result_size != nullptr) *result_size = info.ValueOrDie().result_size;
  return info.TakeValue().token;
}

Result<SessionManager::CreateInfo> SessionManager::CreateSession(
    const std::string& query) {
  if (query.empty()) {
    return Status::InvalidArgument("empty query");
  }
  // Resolve the artifacts outside the session-map lock: navigation-tree
  // construction is the expensive part of QUERY and must not serialize
  // against other sessions. With the cache on, the build also singleflights
  // — concurrent QUERYs of one normalized key share a single build.
  CreateInfo info;
  std::shared_ptr<const QueryArtifacts> artifacts;
  if (cache_ != nullptr) {
    QueryArtifactCache::Lookup lookup =
        cache_->GetOrBuild(NormalizeQueryKey(query), [&] {
          return BuildQueryArtifacts(*hierarchy_, *eutils_, query,
                                     cost_params_, /*freeze=*/true);
        });
    artifacts = std::move(lookup.artifacts);
    info.cache_hit = lookup.hit;
  } else {
    artifacts = BuildQueryArtifacts(*hierarchy_, *eutils_, query,
                                    cost_params_, /*freeze=*/false);
  }
  info.artifacts = artifacts;
  auto entry = std::make_shared<Entry>();
  entry->session = std::make_unique<NavigationSession>(
      eutils_, std::move(artifacts), query, strategy_factory_);
  info.result_size = entry->session->result_size();

  std::lock_guard<std::mutex> lock(mu_);
  int64_t now = NowMs();
  SweepExpiredLocked(now);
  // Built in two steps: gcc 12's -Wrestrict misfires on the
  // `"s" + std::to_string(...)` rvalue-insert path at -O2.
  entry->token = std::to_string(next_token_++);
  entry->token.insert(0, 1, 's');
  entry->token.insert(0, options_.token_prefix);
  entry->last_used_ms = now;
  sessions_.emplace(entry->token, entry);
  ++counters_.created;
  SessionsCreated()->Increment();
  SessionsLive()->Add(1);
  EvictToCapacityLocked();
  info.token = entry->token;
  return info;
}

Status SessionManager::WithSession(
    std::string_view token,
    const std::function<Status(NavigationSession&)>& fn) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(token);
    if (it == sessions_.end()) {
      return Status::NotFound("unknown session '" + std::string(token) + "'");
    }
    int64_t now = NowMs();
    if (options_.ttl_ms > 0 && now - it->second->last_used_ms > options_.ttl_ms) {
      sessions_.erase(it);
      ++counters_.expired_ttl;
      SessionsExpired()->Increment();
      SessionsLive()->Add(-1);
      return Status::NotFound("session '" + std::string(token) + "' expired");
    }
    it->second->last_used_ms = now;
    entry = it->second;
    ++counters_.operations;
  }
  // Per-session serialization; the map lock is already released, so a slow
  // EXPAND on one session never stalls traffic to the others.
  std::lock_guard<std::mutex> op_lock(entry->op_mu);
  return fn(*entry->session);
}

bool SessionManager::Close(std::string_view token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(token);
  if (it == sessions_.end()) return false;
  sessions_.erase(it);
  ++counters_.closed;
  SessionsClosed()->Increment();
  SessionsLive()->Add(-1);
  return true;
}

size_t SessionManager::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

SessionManagerStats SessionManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SessionManagerStats out = counters_;
  out.active = sessions_.size();
  return out;
}

void SessionManager::SweepExpiredLocked(int64_t now_ms) {
  if (options_.ttl_ms <= 0) return;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (now_ms - it->second->last_used_ms > options_.ttl_ms) {
      it = sessions_.erase(it);
      ++counters_.expired_ttl;
      SessionsExpired()->Increment();
      SessionsLive()->Add(-1);
    } else {
      ++it;
    }
  }
}

void SessionManager::EvictToCapacityLocked() {
  // Linear LRU scan: capacity is a few hundred sessions, and eviction only
  // runs on Create, so O(n) beats maintaining an intrusive list.
  while (sessions_.size() > options_.max_sessions) {
    auto victim = sessions_.end();
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (victim == sessions_.end() ||
          it->second->last_used_ms < victim->second->last_used_ms ||
          (it->second->last_used_ms == victim->second->last_used_ms &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    sessions_.erase(victim);
    ++counters_.evicted_lru;
    SessionsEvicted()->Increment();
    SessionsLive()->Add(-1);
  }
}

}  // namespace bionav
