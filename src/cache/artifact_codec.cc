#include <cstring>

#include "cache/query_artifacts.h"
#include "persist/session_snapshot.h"
#include "server/protocol.h"

// QueryArtifacts::{Serialize,Deserialize} — the FETCH_ARTIFACT payload
// codec. Kept out of query_artifacts.cc so the cache layer's core stays
// free of wire/persist dependencies for readers; the record discipline
// (framing, CRC, typed rejection of anything untrustworthy) deliberately
// mirrors src/persist/session_snapshot.cc.

namespace bionav {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, 4);
}

uint32_t ReadU32(std::string_view data, size_t pos) {
  return static_cast<uint32_t>(static_cast<unsigned char>(data[pos])) |
         static_cast<uint32_t>(static_cast<unsigned char>(data[pos + 1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[pos + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[pos + 3]))
             << 24;
}

/// Doubles travel as their IEEE-754 bit pattern, fixed 8 bytes LE — varints
/// would bloat (mantissa bits are high) and round-tripping through decimal
/// would break the "cost model re-derives identically" contract.
void AppendF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((bits >> (8 * i)) & 0xff);
  }
  out->append(bytes, 8);
}

bool ReadF64(std::string_view data, size_t* pos, double* out) {
  if (data.size() - *pos < 8) return false;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<unsigned char>(data[*pos + i]))
            << (8 * i);
  }
  *pos += 8;
  std::memcpy(out, &bits, sizeof(*out));
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::DataLoss("artifact record " + what);
}

}  // namespace

std::string QueryArtifacts::Serialize() const {
  BIONAV_CHECK(result != nullptr && nav != nullptr && cost_model != nullptr)
      << "serializing a partial artifact bundle";
  std::string payload;
  AppendVarint(&payload, kArtifactFormatVersion);
  AppendVarint(&payload, key.size());
  payload.append(key);
  AppendVarint(&payload, ZigzagEncode(build_us));

  const CostModelParams& params = cost_model->params();
  AppendF64(&payload, params.expand_cost);
  AppendF64(&payload, params.reveal_cost);
  AppendF64(&payload, params.show_cost);
  AppendVarint(&payload, static_cast<uint64_t>(params.expand_upper_threshold));
  AppendVarint(&payload, static_cast<uint64_t>(params.expand_lower_threshold));
  AppendVarint(&payload, static_cast<uint64_t>(params.explore_weight_mode));

  // Citation ids in the result set's own (first-occurrence) order: the
  // ResultSet constructor preserves it, so local bitset indexes carried by
  // the tree nodes stay valid on the other side.
  AppendVarint(&payload, result->size());
  for (CitationId cid : result->citations()) {
    AppendVarint(&payload, ZigzagEncode(cid));
  }

  std::vector<SerializedNavNode> nodes = nav->ToSerializedNodes();
  AppendVarint(&payload, nodes.size());
  for (const SerializedNavNode& node : nodes) {
    AppendVarint(&payload, static_cast<uint64_t>(node.concept_id));
    // parent+1 so the root's kInvalidNavNode (-1) stays a 1-byte varint.
    AppendVarint(&payload, static_cast<uint64_t>(node.parent + 1));
    AppendVarint(&payload, static_cast<uint64_t>(node.global_count));
    AppendVarint(&payload, node.result_indexes.size());
    // Ascending indexes delta-encode small: first absolute, then gaps.
    uint32_t prev = 0;
    for (size_t k = 0; k < node.result_indexes.size(); ++k) {
      uint32_t idx = node.result_indexes[k];
      AppendVarint(&payload, k == 0 ? idx : idx - prev);
      prev = idx;
    }
  }

  std::string record;
  record.reserve(kArtifactHeaderBytes + payload.size());
  record.append(kArtifactMagic, sizeof(kArtifactMagic));
  AppendU32(&record, static_cast<uint32_t>(payload.size()));
  AppendU32(&record, Crc32(payload));
  record.append(payload);
  return record;
}

Result<std::shared_ptr<const QueryArtifacts>> QueryArtifacts::Deserialize(
    const ConceptHierarchy& hierarchy, std::string_view record) {
  if (record.size() < kArtifactHeaderBytes) {
    return Corrupt("truncated before the header (" +
                   std::to_string(record.size()) + " bytes)");
  }
  if (std::memcmp(record.data(), kArtifactMagic, sizeof(kArtifactMagic)) !=
      0) {
    return Corrupt("has no BNA1 magic");
  }
  const uint32_t payload_len = ReadU32(record, 4);
  const uint32_t crc = ReadU32(record, 8);
  if (record.size() - kArtifactHeaderBytes != payload_len) {
    return Corrupt("length mismatch: header says " +
                   std::to_string(payload_len) + " payload bytes, " +
                   std::to_string(record.size() - kArtifactHeaderBytes) +
                   " present");
  }
  std::string_view payload = record.substr(kArtifactHeaderBytes);
  if (Crc32(payload) != crc) {
    return Corrupt("checksum mismatch");
  }

  size_t pos = 0;
  uint64_t version = 0;
  if (!ReadVarint(payload, &pos, &version)) return Corrupt("payload underrun");
  if (version != kArtifactFormatVersion) {
    return Status::InvalidArgument("unsupported artifact format version " +
                                   std::to_string(version));
  }

  auto artifacts = std::make_shared<QueryArtifacts>();
  uint64_t key_len = 0;
  if (!ReadVarint(payload, &pos, &key_len)) return Corrupt("payload underrun");
  if (key_len > payload.size() - pos) return Corrupt("key overrun");
  artifacts->key.assign(payload.substr(pos, static_cast<size_t>(key_len)));
  pos += static_cast<size_t>(key_len);
  uint64_t build = 0;
  if (!ReadVarint(payload, &pos, &build)) return Corrupt("payload underrun");
  artifacts->build_us = ZigzagDecode(build);

  CostModelParams params;
  uint64_t upper = 0, lower = 0, mode = 0;
  if (!ReadF64(payload, &pos, &params.expand_cost) ||
      !ReadF64(payload, &pos, &params.reveal_cost) ||
      !ReadF64(payload, &pos, &params.show_cost) ||
      !ReadVarint(payload, &pos, &upper) ||
      !ReadVarint(payload, &pos, &lower) ||
      !ReadVarint(payload, &pos, &mode)) {
    return Corrupt("payload underrun in cost params");
  }
  if (upper > 1u << 30 || lower > 1u << 30 || mode > 2) {
    return Corrupt("has implausible cost params");
  }
  params.expand_upper_threshold = static_cast<int>(upper);
  params.expand_lower_threshold = static_cast<int>(lower);
  params.explore_weight_mode = static_cast<ExploreWeightMode>(mode);

  uint64_t citation_count = 0;
  if (!ReadVarint(payload, &pos, &citation_count)) {
    return Corrupt("payload underrun");
  }
  // Each citation id takes at least one payload byte.
  if (citation_count > payload.size() - pos) {
    return Corrupt("citation count overrun");
  }
  std::vector<CitationId> citations;
  citations.reserve(static_cast<size_t>(citation_count));
  for (uint64_t i = 0; i < citation_count; ++i) {
    uint64_t raw = 0;
    if (!ReadVarint(payload, &pos, &raw)) {
      return Corrupt("payload underrun in citation list");
    }
    int64_t cid = ZigzagDecode(raw);
    if (cid < INT32_MIN || cid > INT32_MAX) {
      return Corrupt("citation id out of range");
    }
    citations.push_back(static_cast<CitationId>(cid));
  }
  auto result = std::make_shared<const ResultSet>(citations);
  if (result->size() != citations.size()) {
    // The constructor collapsed duplicates, so the carried local indexes
    // would be off by the collapsed amount — refuse rather than misattach.
    return Corrupt("repeats citation ids");
  }

  uint64_t node_count = 0;
  if (!ReadVarint(payload, &pos, &node_count)) {
    return Corrupt("payload underrun");
  }
  // A node takes at least 4 payload bytes (concept, parent, global, count).
  if (node_count > (payload.size() - pos) / 4 + 1) {
    return Corrupt("node count overrun");
  }
  std::vector<SerializedNavNode> nodes;
  nodes.reserve(static_cast<size_t>(node_count));
  for (uint64_t i = 0; i < node_count; ++i) {
    SerializedNavNode node;
    uint64_t concept_raw = 0, parent_plus1 = 0, global_raw = 0,
             index_count = 0;
    if (!ReadVarint(payload, &pos, &concept_raw) ||
        !ReadVarint(payload, &pos, &parent_plus1) ||
        !ReadVarint(payload, &pos, &global_raw) ||
        !ReadVarint(payload, &pos, &index_count)) {
      return Corrupt("payload underrun in node list");
    }
    if (concept_raw > INT32_MAX || parent_plus1 > node_count ||
        global_raw > INT64_MAX / 2) {
      return Corrupt("node field out of range");
    }
    if (index_count > payload.size() - pos) {
      return Corrupt("result index count overrun");
    }
    node.concept_id = static_cast<ConceptId>(concept_raw);
    node.parent = static_cast<NavNodeId>(parent_plus1) - 1;
    node.global_count = static_cast<int64_t>(global_raw);
    node.result_indexes.reserve(static_cast<size_t>(index_count));
    uint64_t idx = 0;
    for (uint64_t k = 0; k < index_count; ++k) {
      uint64_t delta = 0;
      if (!ReadVarint(payload, &pos, &delta)) {
        return Corrupt("payload underrun in result indexes");
      }
      idx = k == 0 ? delta : idx + delta;
      if (idx > result->size()) return Corrupt("result index out of range");
      node.result_indexes.push_back(static_cast<uint32_t>(idx));
    }
    nodes.push_back(std::move(node));
  }
  if (pos != payload.size()) {
    return Corrupt("trailing garbage after the node list");
  }

  auto tree = NavigationTree::FromSerializedNodes(hierarchy, result, nodes);
  if (!tree.ok()) return tree.status();
  std::shared_ptr<NavigationTree> nav = tree.TakeValue();
  artifacts->result = std::move(result);
  artifacts->cost_model =
      std::make_shared<const CostModel>(nav.get(), params);
  artifacts->nav = std::move(nav);
  return std::shared_ptr<const QueryArtifacts>(std::move(artifacts));
}

}  // namespace bionav
