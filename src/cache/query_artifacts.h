#ifndef BIONAV_CACHE_QUERY_ARTIFACTS_H_
#define BIONAV_CACHE_QUERY_ARTIFACTS_H_

#include <memory>
#include <string>
#include <string_view>

#include "core/cost_model.h"
#include "core/navigation_tree.h"
#include "core/result_set.h"
#include "medline/eutils.h"

namespace bionav {

/// The immutable per-query outcome of the online pipeline of Section VII:
/// ESearch result, the maximum-embedding navigation tree and its cost
/// model. Everything mutable about a navigation dialogue (ActiveTree,
/// strategy memos, trace ring) lives in the NavigationSession; this bundle
/// is what QueryArtifactCache shares across sessions, so once published it
/// must never change — trees destined for sharing are Freeze()d so even
/// their lazy subtree caches are fully materialized before first use.
struct QueryArtifacts {
  /// Normalized cache key the bundle was built for (NormalizeQueryKey).
  std::string key;
  std::shared_ptr<const ResultSet> result;
  std::shared_ptr<const NavigationTree> nav;
  std::shared_ptr<const CostModel> cost_model;
  /// Wall time the build took — re-recorded as "build time saved" every
  /// time a later session is served from the cache instead of rebuilding.
  int64_t build_us = 0;

  /// Heap bytes held by the bundle (result set, tree incl. precomputed
  /// subtree caches, cost model) — the unit of the cache's byte budget.
  size_t MemoryFootprint() const;
};

/// Cache key of a query string: ASCII-lowercased with whitespace runs
/// collapsed to single spaces and outer whitespace stripped. Deliberately
/// conservative — term order and repetition are preserved, so two queries
/// share a key only when the backend trivially treats them identically
/// (ESearch keyword matching is case- and spacing-insensitive; reordering
/// is not assumed, mirroring PubMed query semantics).
std::string NormalizeQueryKey(std::string_view query);

/// Runs the full per-query pipeline (ESearch -> navigation tree -> cost
/// model) and bundles the artifacts. `freeze` precomputes the tree's
/// subtree-results/distinct caches so the bundle is safe to share across
/// threads (always pass true when the result goes into a cache); building
/// a private per-session bundle can skip it and keep the lazy fill.
std::shared_ptr<const QueryArtifacts> BuildQueryArtifacts(
    const ConceptHierarchy& hierarchy, const EUtilsClient& eutils,
    const std::string& query, CostModelParams params, bool freeze);

}  // namespace bionav

#endif  // BIONAV_CACHE_QUERY_ARTIFACTS_H_
