#ifndef BIONAV_CACHE_QUERY_ARTIFACTS_H_
#define BIONAV_CACHE_QUERY_ARTIFACTS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/cost_model.h"
#include "core/navigation_tree.h"
#include "core/result_set.h"
#include "medline/eutils.h"
#include "util/status.h"

namespace bionav {

/// Pre-serialized response payloads keyed by (request shape, encoding) —
/// the zero-copy unit of wire protocol v2. A frozen navigation tree
/// answers the same QUERY/EXPAND/SHOWRESULTS requests with byte-identical
/// payloads for every session sharing it, so the serialization is rendered
/// once per encoding, held refcounted, and served via writev without
/// copying. The store is attached to (immutable, shared) QueryArtifacts;
/// lazily filling it is the one sanctioned mutation, guarded here.
class ResponseTemplateStore {
 public:
  /// Encodings are opaque small ints here (the server passes its WireProto)
  /// so the cache layer does not depend on protocol headers.
  static constexpr int kNumEncodings = 2;

  struct Stats {
    int64_t renders[kNumEncodings] = {0, 0};  // Misses that ran `render`.
    int64_t hits = 0;                         // Served without rendering.
    size_t bytes = 0;                         // Resident payload bytes.
  };

  /// Returns the payload for `key`+`encoding`, invoking `render` exactly
  /// once per (key, encoding) across all threads (later callers share the
  /// first result — the render runs under the store lock, which is what
  /// makes "rendered once" an invariant rather than a likelihood).
  std::shared_ptr<const std::string> GetOrRender(
      const std::string& key, int encoding,
      const std::function<std::string()>& render) const;

  /// Resident payload bytes (keys + rendered payloads + table overhead);
  /// folded into QueryArtifacts::MemoryFootprint so the cache byte budget
  /// counts templates.
  size_t bytes() const { return bytes_.load(std::memory_order_relaxed); }

  Stats stats() const;

 private:
  mutable std::mutex mu_;
  mutable std::unordered_map<std::string,
                             std::shared_ptr<const std::string>> map_;
  mutable int64_t renders_[kNumEncodings] = {0, 0};
  mutable int64_t hits_ = 0;
  mutable std::atomic<size_t> bytes_{0};
};

/// The immutable per-query outcome of the online pipeline of Section VII:
/// ESearch result, the maximum-embedding navigation tree and its cost
/// model. Everything mutable about a navigation dialogue (ActiveTree,
/// strategy memos, trace ring) lives in the NavigationSession; this bundle
/// is what QueryArtifactCache shares across sessions, so once published it
/// must never change — trees destined for sharing are Freeze()d so even
/// their lazy subtree caches are fully materialized before first use.
struct QueryArtifacts {
  /// Normalized cache key the bundle was built for (NormalizeQueryKey).
  std::string key;
  std::shared_ptr<const ResultSet> result;
  std::shared_ptr<const NavigationTree> nav;
  std::shared_ptr<const CostModel> cost_model;
  /// Wall time the build took — re-recorded as "build time saved" every
  /// time a later session is served from the cache instead of rebuilding.
  int64_t build_us = 0;
  /// Pre-serialized wire responses for this bundle's frozen tree, filled
  /// lazily by the server on first touch per (request shape, encoding).
  ResponseTemplateStore templates;

  /// Heap bytes held by the bundle (result set, tree incl. precomputed
  /// subtree caches, cost model, rendered response templates) — the unit
  /// of the cache's byte budget. Grows as templates render; the cache
  /// re-reads it on hits to keep its budget honest.
  size_t MemoryFootprint() const;

  /// Serializes the bundle into a framed, checksummed record — the payload
  /// of the FETCH_ARTIFACT wire op. Same record discipline as the session
  /// snapshots (see kArtifactMagic below): magic, length, CRC-32, then a
  /// varint payload carrying the key, the cost-model parameters, the
  /// result-set citation ids and the pre-order tree nodes. Response
  /// templates are NOT serialized — they are per-encoding render caches
  /// the receiving shard refills lazily.
  std::string Serialize() const;

  /// Parses a record produced by Serialize on another shard: rebuilds the
  /// ResultSet (first-occurrence order round-trips exactly), reconstructs
  /// and Freeze()s the NavigationTree against the local hierarchy, and
  /// re-derives the CostModel from the carried parameters (its weights are
  /// a deterministic function of tree + params). Returns kDataLoss for
  /// anything untrustworthy — short header, bad magic, CRC mismatch,
  /// underrun/overrun, structurally invalid tree — and kInvalidArgument
  /// for an unknown format version; it never crashes on arbitrary bytes.
  static Result<std::shared_ptr<const QueryArtifacts>> Deserialize(
      const ConceptHierarchy& hierarchy, std::string_view record);
};

/// On-disk/wire record layout of a serialized artifact bundle (integers
/// little-endian), mirroring the BNS1 session-snapshot framing:
///
///   [0..3]   magic "BNA1"
///   [4..7]   u32 payload length
///   [8..11]  u32 CRC-32 (IEEE) of the payload
///   [12.. ]  payload: varint-encoded fields, version first
inline constexpr char kArtifactMagic[4] = {'B', 'N', 'A', '1'};
inline constexpr uint64_t kArtifactFormatVersion = 1;
inline constexpr size_t kArtifactHeaderBytes = 12;

/// Cache key of a query string: ASCII-lowercased with whitespace runs
/// collapsed to single spaces and outer whitespace stripped. Deliberately
/// conservative — term order and repetition are preserved, so two queries
/// share a key only when the backend trivially treats them identically
/// (ESearch keyword matching is case- and spacing-insensitive; reordering
/// is not assumed, mirroring PubMed query semantics).
std::string NormalizeQueryKey(std::string_view query);

/// Runs the full per-query pipeline (ESearch -> navigation tree -> cost
/// model) and bundles the artifacts. `freeze` precomputes the tree's
/// subtree-results/distinct caches so the bundle is safe to share across
/// threads (always pass true when the result goes into a cache); building
/// a private per-session bundle can skip it and keep the lazy fill.
std::shared_ptr<const QueryArtifacts> BuildQueryArtifacts(
    const ConceptHierarchy& hierarchy, const EUtilsClient& eutils,
    const std::string& query, CostModelParams params, bool freeze);

}  // namespace bionav

#endif  // BIONAV_CACHE_QUERY_ARTIFACTS_H_
