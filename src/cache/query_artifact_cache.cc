#include "cache/query_artifact_cache.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "util/timer.h"

namespace bionav {

namespace {

int64_t SteadyNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Global mirrors of the per-cache counters_, so STATS/METRICS expose cache
// effectiveness without holding any cache's lock (same pattern as the
// session-manager metrics). Increments happen under the owning shard or
// stats mutex; the metrics are shared by every cache in the process.
Counter* CacheHits() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_qcache_hits_total",
      "QUERYs served from the query-artifact cache");
  return c;
}
Counter* CacheMisses() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_qcache_misses_total",
      "QUERYs that built their navigation artifacts");
  return c;
}
Counter* CacheWaits() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_qcache_singleflight_waits_total",
      "Cache hits that blocked on another caller's in-flight build");
  return c;
}
Counter* CacheEvictions() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_qcache_evictions_total",
      "Artifact bundles evicted by the LRU byte budget");
  return c;
}
Counter* CacheExpirations() {
  static Counter* c = GlobalMetrics().GetCounter(
      "bionav_qcache_expirations_total", "Artifact bundles expired by TTL");
  return c;
}
Gauge* CacheBytes() {
  static Gauge* g = GlobalMetrics().GetGauge(
      "bionav_qcache_bytes", "Resident bytes of cached query artifacts");
  return g;
}
Gauge* CacheEntries() {
  static Gauge* g = GlobalMetrics().GetGauge(
      "bionav_qcache_entries", "Resident cached query-artifact bundles");
  return g;
}
LatencyHistogram* CacheBuildHist() {
  static LatencyHistogram* h = GlobalMetrics().GetHistogram(
      "bionav_qcache_build_us", "Artifact build wall time on cache misses");
  return h;
}
LatencyHistogram* CacheSavedHist() {
  static LatencyHistogram* h = GlobalMetrics().GetHistogram(
      "bionav_qcache_build_saved_us",
      "Original build time amortized away per cache hit");
  return h;
}
LatencyHistogram* CacheWaitHist() {
  static LatencyHistogram* h = GlobalMetrics().GetHistogram(
      "bionav_qcache_singleflight_wait_us",
      "Time hits spent blocked on an in-flight build");
  return h;
}

}  // namespace

QueryArtifactCache::QueryArtifactCache(QueryArtifactCacheOptions options)
    : options_(std::move(options)) {
  if (options_.max_bytes == 0) options_.max_bytes = 1;
  options_.shards = std::clamp<size_t>(options_.shards, 1, 64);
  if (!options_.clock) options_.clock = SteadyNowMs;
  shard_budget_ = std::max<size_t>(options_.max_bytes / options_.shards, 1);
  shards_.reserve(options_.shards);
  for (size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

QueryArtifactCache::~QueryArtifactCache() {
  // Leave the process-wide gauges: a dying cache (tests, reconfiguration)
  // must not strand its resident bytes in bionav_qcache_bytes.
  std::lock_guard<std::mutex> lock(stats_mu_);
  CacheBytes()->Add(-bytes_);
  CacheEntries()->Add(-entries_);
}

QueryArtifactCache::Shard& QueryArtifactCache::ShardOf(
    const std::string& key) const {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

int64_t QueryArtifactCache::NowMs() const { return options_.clock(); }

QueryArtifactCache::Lookup QueryArtifactCache::GetOrBuild(
    const std::string& key, const Builder& builder) {
  Shard& shard = ShardOf(key);
  std::shared_future<std::shared_ptr<const QueryArtifacts>> wait_on;
  std::promise<std::shared_ptr<const QueryArtifacts>> promise;
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    int64_t now = NowMs();
    SweepExpiredLocked(shard, now);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      Entry& e = *it->second;
      if (e.building) {
        wait_on = e.pending;
      } else {
        e.last_used_ms = now;
        Lookup result{e.artifacts, /*hit=*/true, /*waited=*/false};
        int64_t build_us = e.build_us;
        // Response templates render lazily after insert and grow the
        // bundle's footprint; re-read it on hits so the byte budget stays
        // honest (and over-budget shards evict — our own copy above keeps
        // this bundle alive even if it is the victim).
        size_t footprint = result.artifacts->MemoryFootprint();
        if (footprint != e.bytes) {
          int64_t delta = static_cast<int64_t>(footprint) -
                          static_cast<int64_t>(e.bytes);
          shard.resident_bytes = shard.resident_bytes - e.bytes + footprint;
          e.bytes = footprint;
          {
            std::lock_guard<std::mutex> stats_lock(stats_mu_);
            bytes_ += delta;
          }
          CacheBytes()->Add(delta);
          EvictShardLocked(shard);
        }
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++counters_.hits;
          counters_.build_us_saved += build_us;
        }
        CacheHits()->Increment();
        CacheSavedHist()->Record(build_us);
        return result;
      }
    } else {
      entry = std::make_shared<Entry>();
      entry->pending = promise.get_future().share();
      entry->sequence = shard.next_sequence++;
      entry->inserted_ms = now;
      entry->last_used_ms = now;
      shard.map.emplace(key, entry);
    }
  }

  if (wait_on.valid()) {
    // Singleflight: one builder is already at work on this key; join its
    // result instead of duplicating the pipeline.
    Timer waited;
    std::shared_ptr<const QueryArtifacts> artifacts = wait_on.get();
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++counters_.hits;
      ++counters_.singleflight_waits;
      counters_.build_us_saved += artifacts->build_us;
    }
    CacheHits()->Increment();
    CacheWaits()->Increment();
    CacheWaitHist()->Record(waited.ElapsedMicros());
    CacheSavedHist()->Record(artifacts->build_us);
    return {std::move(artifacts), /*hit=*/true, /*waited=*/true};
  }

  // We hold the build slot for this key; run the pipeline outside every
  // cache lock so other keys keep flowing.
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++counters_.misses;
  }
  CacheMisses()->Increment();
  std::shared_ptr<const QueryArtifacts> artifacts = builder();
  BIONAV_CHECK(artifacts != nullptr) << "cache builder returned null";
  CacheBuildHist()->Record(artifacts->build_us);
  // Unblock waiters before re-taking the shard lock: they only need the
  // bundle, not the map entry.
  promise.set_value(artifacts);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    int64_t now = NowMs();
    entry->artifacts = artifacts;
    entry->building = false;
    entry->bytes = artifacts->MemoryFootprint();
    entry->build_us = artifacts->build_us;
    entry->inserted_ms = now;  // TTL counts from build completion.
    entry->last_used_ms = now;
    shard.resident_bytes += entry->bytes;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      bytes_ += static_cast<int64_t>(entry->bytes);
      ++entries_;
    }
    CacheBytes()->Add(static_cast<int64_t>(entry->bytes));
    CacheEntries()->Add(1);
    EvictShardLocked(shard);
  }
  return {std::move(artifacts), /*hit=*/false, /*waited=*/false};
}

bool QueryArtifactCache::Contains(const std::string& key) const {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second->building) return false;
  if (options_.ttl_ms > 0 &&
      NowMs() - it->second->inserted_ms > options_.ttl_ms) {
    return false;
  }
  return true;
}

std::shared_ptr<const QueryArtifacts> QueryArtifactCache::Peek(
    const std::string& key) const {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second->building) return nullptr;
  if (options_.ttl_ms > 0 &&
      NowMs() - it->second->inserted_ms > options_.ttl_ms) {
    return nullptr;
  }
  return it->second->artifacts;
}

bool QueryArtifactCache::Invalidate(const std::string& key) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second->building) return false;
  size_t bytes = it->second->bytes;
  shard.resident_bytes -= bytes;
  shard.map.erase(it);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    bytes_ -= static_cast<int64_t>(bytes);
    --entries_;
  }
  CacheBytes()->Add(-static_cast<int64_t>(bytes));
  CacheEntries()->Add(-1);
  return true;
}

QueryArtifactCacheStats QueryArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  QueryArtifactCacheStats out = counters_;
  out.bytes = bytes_;
  out.entries = entries_;
  return out;
}

void QueryArtifactCache::SweepExpiredLocked(Shard& shard, int64_t now_ms) {
  if (options_.ttl_ms <= 0) return;
  for (auto it = shard.map.begin(); it != shard.map.end();) {
    Entry& e = *it->second;
    // In-flight builds are pinned: their TTL starts when the build lands.
    if (!e.building && now_ms - e.inserted_ms > options_.ttl_ms) {
      shard.resident_bytes -= e.bytes;
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++counters_.expired_ttl;
        bytes_ -= static_cast<int64_t>(e.bytes);
        --entries_;
      }
      CacheExpirations()->Increment();
      CacheBytes()->Add(-static_cast<int64_t>(e.bytes));
      CacheEntries()->Add(-1);
      it = shard.map.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryArtifactCache::EvictShardLocked(Shard& shard) {
  // Linear LRU scan per eviction: a shard holds at most a few dozen
  // artifact bundles (each is a whole navigation tree), so O(n) beats
  // maintaining an intrusive list.
  while (shard.resident_bytes > shard_budget_) {
    // The most-recently-used ready entry is exempt: a just-inserted or
    // just-refreshed bundle (template renders grow footprints on hits)
    // must not self-evict, however oversized. Sequence breaks ties so a
    // same-tick insert still outranks the entry it displaced.
    auto mru = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      Entry& e = *it->second;
      if (e.building) continue;
      if (mru == shard.map.end() ||
          e.last_used_ms > mru->second->last_used_ms ||
          (e.last_used_ms == mru->second->last_used_ms &&
           e.sequence > mru->second->sequence)) {
        mru = it;
      }
    }
    auto victim = shard.map.end();
    for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
      Entry& e = *it->second;
      if (e.building || it == mru) continue;
      if (victim == shard.map.end() ||
          e.last_used_ms < victim->second->last_used_ms ||
          (e.last_used_ms == victim->second->last_used_ms &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    if (victim == shard.map.end()) break;  // Only the MRU bundle left.
    shard.resident_bytes -= victim->second->bytes;
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++counters_.evicted_lru;
      bytes_ -= static_cast<int64_t>(victim->second->bytes);
      --entries_;
    }
    CacheEvictions()->Increment();
    CacheBytes()->Add(-static_cast<int64_t>(victim->second->bytes));
    CacheEntries()->Add(-1);
    shard.map.erase(victim);
  }
}

}  // namespace bionav
