#ifndef BIONAV_CACHE_QUERY_ARTIFACT_CACHE_H_
#define BIONAV_CACHE_QUERY_ARTIFACT_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/query_artifacts.h"

namespace bionav {

/// Tuning knobs of the query-artifact cache.
struct QueryArtifactCacheOptions {
  /// Byte budget over all cached artifact bundles (MemoryFootprint-based
  /// accounting). The budget is split evenly across shards and enforced
  /// per shard by LRU eviction; the most recently inserted entry of a
  /// shard is never evicted, so a single oversized artifact can exceed its
  /// shard's slice rather than thrash. Clamped to >= 1.
  size_t max_bytes = size_t{256} << 20;
  /// Age after which a cached bundle is invalid (rebuilt on next lookup);
  /// 0 disables TTL invalidation. Age counts from insert, not last use —
  /// a popular stale entry must still refresh.
  int64_t ttl_ms = 0;
  /// Lock shards; key -> shard by hash. Clamped to [1, 64].
  size_t shards = 8;
  /// Millisecond clock for TTL accounting; tests inject a fake. Defaults
  /// to std::chrono::steady_clock. SessionManager passes its own clock
  /// down so session TTL and artifact TTL tick together.
  std::function<int64_t()> clock;
};

/// Lifetime counters of one cache instance. `bytes`/`entries` are
/// instantaneous; the rest are monotone. A "hit" is any lookup served
/// without running the builder — `singleflight_waits` counts the subset
/// that blocked on another thread's in-flight build; a "miss" ran the
/// builder itself.
struct QueryArtifactCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t singleflight_waits = 0;
  int64_t evicted_lru = 0;
  int64_t expired_ttl = 0;
  int64_t bytes = 0;
  int64_t entries = 0;
  /// Sum over hits of the original build wall time — the work the cache
  /// amortized away.
  int64_t build_us_saved = 0;

  double hit_rate() const {
    int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

/// Process-wide shared cache of per-query navigation artifacts, keyed by
/// NormalizeQueryKey(query). The dominant cost of a QUERY is building the
/// navigation tree; PubMed-style traffic repeats head queries heavily, so
/// one build can serve every concurrent and future session of that query.
///
/// Concurrency contract:
///  - sharded mutexes: lookups of different keys rarely contend;
///  - singleflight: concurrent GetOrBuild calls for one key run the
///    builder exactly once — the first caller builds (outside any lock),
///    the rest block on a shared_future and receive the same bundle;
///  - artifacts are ref-counted (shared_ptr): eviction unlinks a bundle
///    from the map while live sessions keep using their reference;
///  - cached bundles are immutable — builders must Freeze() the tree so
///    concurrent readers never race on its lazy caches (TSan-verified).
class QueryArtifactCache {
 public:
  using Builder = std::function<std::shared_ptr<const QueryArtifacts>()>;

  explicit QueryArtifactCache(
      QueryArtifactCacheOptions options = QueryArtifactCacheOptions());
  ~QueryArtifactCache();

  QueryArtifactCache(const QueryArtifactCache&) = delete;
  QueryArtifactCache& operator=(const QueryArtifactCache&) = delete;

  struct Lookup {
    std::shared_ptr<const QueryArtifacts> artifacts;
    /// Served without running the builder ourselves.
    bool hit = false;
    /// Hit that blocked on another caller's in-flight build.
    bool waited = false;
  };

  /// Returns the artifacts for `key`, running `builder` if (and only if)
  /// no fresh entry exists and no other caller is already building it.
  /// The builder runs outside all cache locks.
  Lookup GetOrBuild(const std::string& key, const Builder& builder);

  /// True if a ready, unexpired entry for `key` is resident (no LRU
  /// refresh; test/introspection helper).
  bool Contains(const std::string& key) const;

  /// The resident bundle for `key`, or null if absent, still building, or
  /// expired. No LRU refresh and no hit accounting — an introspection
  /// window (e.g. asserting on a bundle's response-template stats) that
  /// leaves the cache's behavior unobserved.
  std::shared_ptr<const QueryArtifacts> Peek(const std::string& key) const;

  /// Drops a ready entry; live sessions keep their references. False if
  /// the key was absent (or still building — in-flight builds are pinned).
  bool Invalidate(const std::string& key);

  QueryArtifactCacheStats stats() const;

 private:
  struct Entry {
    /// Null until the build completes; waiters use `pending` instead.
    std::shared_ptr<const QueryArtifacts> artifacts;
    std::shared_future<std::shared_ptr<const QueryArtifacts>> pending;
    bool building = true;
    size_t bytes = 0;
    int64_t build_us = 0;
    int64_t inserted_ms = 0;
    /// Guarded by the owning shard's mutex.
    int64_t last_used_ms = 0;
    /// Insert sequence; the newest entry of a shard is exempt from LRU
    /// eviction so a bundle larger than the shard budget still serves.
    uint64_t sequence = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::shared_ptr<Entry>> map;
    /// Bytes of the ready entries in `map`. Guarded by `mu`.
    size_t resident_bytes = 0;
    uint64_t next_sequence = 0;
  };

  Shard& ShardOf(const std::string& key) const;
  int64_t NowMs() const;
  /// Drops expired entries of one shard. Requires the shard's mutex held.
  void SweepExpiredLocked(Shard& shard, int64_t now_ms);
  /// LRU-evicts ready entries of one shard until it fits its byte slice.
  /// Requires the shard's mutex held.
  void EvictShardLocked(Shard& shard);

  QueryArtifactCacheOptions options_;
  size_t shard_budget_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex stats_mu_;
  QueryArtifactCacheStats counters_;  // bytes/entries derived live.
  int64_t bytes_ = 0;
  int64_t entries_ = 0;
};

}  // namespace bionav

#endif  // BIONAV_CACHE_QUERY_ARTIFACT_CACHE_H_
