#include "cache/query_artifacts.h"

#include <cctype>

#include "util/timer.h"

namespace bionav {

size_t QueryArtifacts::MemoryFootprint() const {
  size_t bytes = sizeof(QueryArtifacts) + key.capacity();
  if (result != nullptr) bytes += result->MemoryFootprint();
  if (nav != nullptr) bytes += nav->MemoryFootprint();
  if (cost_model != nullptr) bytes += cost_model->MemoryFootprint();
  return bytes;
}

std::string NormalizeQueryKey(std::string_view query) {
  std::string key;
  key.reserve(query.size());
  for (char c : query) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!key.empty() && key.back() != ' ') key.push_back(' ');
    } else {
      key.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!key.empty() && key.back() == ' ') key.pop_back();
  return key;
}

std::shared_ptr<const QueryArtifacts> BuildQueryArtifacts(
    const ConceptHierarchy& hierarchy, const EUtilsClient& eutils,
    const std::string& query, CostModelParams params, bool freeze) {
  Timer timer;
  auto artifacts = std::make_shared<QueryArtifacts>();
  artifacts->key = NormalizeQueryKey(query);
  artifacts->result =
      std::make_shared<const ResultSet>(eutils.ESearch(query));
  auto nav = std::make_shared<NavigationTree>(hierarchy, eutils.associations(),
                                              artifacts->result);
  if (freeze) nav->Freeze();
  artifacts->cost_model = std::make_shared<const CostModel>(nav.get(), params);
  artifacts->nav = std::move(nav);
  artifacts->build_us = static_cast<int64_t>(timer.ElapsedMicros());
  return artifacts;
}

}  // namespace bionav
