#include "cache/query_artifacts.h"

#include <cctype>

#include "obs/metrics.h"
#include "util/status.h"
#include "util/timer.h"

namespace bionav {

namespace {

/// Charged per template entry on top of the key and payload bytes (table
/// node, two control blocks, shared_ptr) — an estimate, like the other
/// MemoryFootprint accounting, but keeps many-small-template bundles from
/// looking free.
constexpr size_t kTemplateEntryOverhead = 96;

}  // namespace

std::shared_ptr<const std::string> ResponseTemplateStore::GetOrRender(
    const std::string& key, int encoding,
    const std::function<std::string()>& render) const {
  BIONAV_CHECK(encoding >= 0 && encoding < kNumEncodings)
      << "bad template encoding " << encoding;
  std::string full_key = std::to_string(encoding) + "|" + key;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(full_key);
  if (it != map_.end()) {
    ++hits_;
    return it->second;
  }
  auto payload = std::make_shared<const std::string>(render());
  ++renders_[encoding];
  bytes_.fetch_add(full_key.size() + payload->size() + kTemplateEntryOverhead,
                   std::memory_order_relaxed);
  map_.emplace(std::move(full_key), payload);
  return payload;
}

ResponseTemplateStore::Stats ResponseTemplateStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  for (int i = 0; i < kNumEncodings; ++i) stats.renders[i] = renders_[i];
  stats.hits = hits_;
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  return stats;
}

size_t QueryArtifacts::MemoryFootprint() const {
  size_t bytes = sizeof(QueryArtifacts) + key.capacity();
  if (result != nullptr) bytes += result->MemoryFootprint();
  if (nav != nullptr) bytes += nav->MemoryFootprint();
  if (cost_model != nullptr) bytes += cost_model->MemoryFootprint();
  bytes += templates.bytes();
  return bytes;
}

std::string NormalizeQueryKey(std::string_view query) {
  std::string key;
  key.reserve(query.size());
  for (char c : query) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!key.empty() && key.back() != ' ') key.push_back(' ');
    } else {
      key.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    }
  }
  if (!key.empty() && key.back() == ' ') key.pop_back();
  return key;
}

std::shared_ptr<const QueryArtifacts> BuildQueryArtifacts(
    const ConceptHierarchy& hierarchy, const EUtilsClient& eutils,
    const std::string& query, CostModelParams params, bool freeze) {
  // Fleet-wide count of from-scratch builds: the cross-shard singleflight
  // A/B gate asserts this equals the distinct-key count when peer fetch is
  // on (a FETCH_ARTIFACT arrival deliberately does not pass through here).
  static Counter* builds = GlobalMetrics().GetCounter(
      "bionav_artifact_builds_total",
      "Query artifact bundles built from scratch (not cache or peer hits)");
  builds->Increment();
  Timer timer;
  auto artifacts = std::make_shared<QueryArtifacts>();
  artifacts->key = NormalizeQueryKey(query);
  artifacts->result =
      std::make_shared<const ResultSet>(eutils.ESearch(query));
  auto nav = std::make_shared<NavigationTree>(hierarchy, eutils.associations(),
                                              artifacts->result);
  if (freeze) nav->Freeze();
  artifacts->cost_model = std::make_shared<const CostModel>(nav.get(), params);
  artifacts->nav = std::move(nav);
  artifacts->build_us = static_cast<int64_t>(timer.ElapsedMicros());
  return artifacts;
}

}  // namespace bionav
