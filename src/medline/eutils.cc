#include "medline/eutils.h"

namespace bionav {

std::vector<CitationSummary> EUtilsClient::ESummary(
    const std::vector<CitationId>& ids) const {
  std::vector<CitationSummary> out;
  out.reserve(ids.size());
  for (CitationId id : ids) {
    const Citation& c = store_->Get(id);
    out.push_back(CitationSummary{c.pmid, c.title, c.year});
  }
  return out;
}

}  // namespace bionav
