// BioNav database serialization format (text, line-oriented):
//
//   BIONAVDB 1
//   HIERARCHY <node-count>
//   <tree-number>\t<label>                       x node-count (pre-order)
//   CITATIONS <citation-count>
//   <pmid>\t<year>\t<title>\t<terms,>\t<annotated-tns,>\t<indexed-tns,>
//                                                x citation-count
//   END
//
// Titles have tabs/newlines replaced by spaces on write; terms and tree
// numbers never contain commas, so comma-joined lists are unambiguous.

#include "medline/bionav_database.h"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "hierarchy/hierarchy_io.h"
#include "util/string_util.h"

namespace bionav {

namespace {

constexpr char kMagic[] = "BIONAVDB 1";

std::string SanitizeTitle(std::string_view title) {
  std::string out(title);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::string JoinNonEmpty(const std::vector<std::string>& pieces) {
  return Join(pieces, ",");
}

Status ParseCount(const std::string& line, const char* keyword,
                  size_t* count) {
  std::istringstream iss(line);
  std::string word;
  long long n = -1;
  iss >> word >> n;
  if (word != keyword || n < 0) {
    return Status::InvalidArgument(std::string("expected '") + keyword +
                                   " <count>', got '" + line + "'");
  }
  *count = static_cast<size_t>(n);
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<BioNavDatabase>> BioNavDatabase::Build(
    ConceptHierarchy hierarchy,
    const std::vector<CitationSourceRecord>& records) {
  if (!hierarchy.frozen()) {
    return Status::FailedPrecondition("hierarchy must be frozen");
  }
  std::unique_ptr<BioNavDatabase> db(new BioNavDatabase());
  db->hierarchy_ = std::move(hierarchy);
  db->associations_ = AssociationTable(db->hierarchy_.size());

  for (const CitationSourceRecord& record : records) {
    Citation citation;
    citation.pmid = record.pmid;
    citation.year = record.year;
    citation.title = record.title;
    for (const std::string& term : record.terms) {
      citation.term_ids.push_back(db->store_.InternTerm(term));
    }
    if (db->store_.FindByPmid(record.pmid) != kInvalidCitation) {
      return Status::InvalidArgument("duplicate PMID " +
                                     std::to_string(record.pmid));
    }
    CitationId id = db->store_.Add(std::move(citation));

    auto associate = [&](const std::vector<std::string>& tns,
                         AssociationKind kind) -> Status {
      for (const std::string& tn : tns) {
        ConceptId c = db->hierarchy_.FindByTreeNumber(tn);
        if (c == kInvalidConcept) {
          return Status::NotFound("unknown tree number '" + tn +
                                  "' for PMID " +
                                  std::to_string(record.pmid));
        }
        db->associations_.Associate(id, c, kind);
      }
      return Status::OK();
    };
    BIONAV_RETURN_IF_ERROR(
        associate(record.annotated_tree_numbers, AssociationKind::kAnnotated));
    BIONAV_RETURN_IF_ERROR(
        associate(record.indexed_tree_numbers, AssociationKind::kIndexed));
  }
  db->index_ = std::make_unique<InvertedIndex>(db->store_);
  return db;
}

Status WriteDatabaseStream(const ConceptHierarchy& hierarchy,
                           const CitationStore& store,
                           const AssociationTable& associations,
                           std::ostream* out) {
  if (!hierarchy.frozen()) {
    return Status::FailedPrecondition("hierarchy must be frozen");
  }
  *out << kMagic << '\n';
  *out << "HIERARCHY " << hierarchy.size() << '\n';
  BIONAV_RETURN_IF_ERROR(WriteHierarchy(hierarchy, out));
  *out << "CITATIONS " << store.size() << '\n';
  for (CitationId id = 0; id < static_cast<CitationId>(store.size()); ++id) {
    const Citation& c = store.Get(id);
    std::vector<std::string> terms;
    terms.reserve(c.term_ids.size());
    for (int32_t t : c.term_ids) terms.push_back(store.TermText(t));

    std::vector<std::string> annotated;
    std::vector<std::string> indexed;
    for (ConceptId concept_id :
         associations.ConceptsOf(id, AssociationKind::kAnnotated)) {
      annotated.push_back(hierarchy.tree_number(concept_id).ToString());
    }
    for (ConceptId concept_id :
         associations.ConceptsOf(id, AssociationKind::kIndexed)) {
      indexed.push_back(hierarchy.tree_number(concept_id).ToString());
    }

    *out << c.pmid << '\t' << c.year << '\t' << SanitizeTitle(c.title)
         << '\t' << JoinNonEmpty(terms) << '\t' << JoinNonEmpty(annotated)
         << '\t' << JoinNonEmpty(indexed) << '\n';
  }
  *out << "END\n";
  if (!*out) return Status::IOError("write failed");
  return Status::OK();
}

Status BioNavDatabase::Save(std::ostream* out) const {
  return WriteDatabaseStream(hierarchy_, store_, associations_, out);
}

Status BioNavDatabase::SaveToFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return Save(&out);
}

Status SaveCorpusToFile(const ConceptHierarchy& hierarchy,
                        const SyntheticCorpus& corpus,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteDatabaseStream(hierarchy, corpus.store, corpus.associations,
                             &out);
}

Result<std::unique_ptr<BioNavDatabase>> BioNavDatabase::Load(
    std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || StripWhitespace(line) != kMagic) {
    return Status::InvalidArgument("missing BIONAVDB header");
  }
  size_t node_count = 0;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("truncated database: no HIERARCHY line");
  }
  BIONAV_RETURN_IF_ERROR(ParseCount(line, "HIERARCHY", &node_count));

  // Parse the hierarchy section in place: the bounded reader consumes
  // exactly node_count lines of the main stream, so the section is never
  // copied through an intermediate ostringstream.
  Result<ConceptHierarchy> hierarchy = ReadHierarchyLines(in, node_count);
  if (!hierarchy.ok()) return hierarchy.status();
  if (hierarchy.ValueOrDie().size() != node_count) {
    return Status::InvalidArgument("hierarchy node count mismatch");
  }

  size_t citation_count = 0;
  if (!std::getline(*in, line)) {
    return Status::InvalidArgument("truncated database: no CITATIONS line");
  }
  BIONAV_RETURN_IF_ERROR(ParseCount(line, "CITATIONS", &citation_count));

  std::vector<CitationSourceRecord> records;
  records.reserve(citation_count);
  for (size_t i = 0; i < citation_count; ++i) {
    if (!std::getline(*in, line)) {
      return Status::InvalidArgument("truncated citations section");
    }
    // Field parsing stays zero-copy until the final std::string fields of
    // the record: views into `line`, no intermediate Split allocations.
    std::vector<std::string_view> fields = SplitViews(line, '\t');
    if (fields.size() != 6) {
      return Status::InvalidArgument(
          "citation line " + std::to_string(i + 1) + ": expected 6 fields, got " +
          std::to_string(fields.size()));
    }
    CitationSourceRecord record;
    auto [pmid_ptr, pmid_ec] = std::from_chars(
        fields[0].data(), fields[0].data() + fields[0].size(), record.pmid);
    auto [year_ptr, year_ec] = std::from_chars(
        fields[1].data(), fields[1].data() + fields[1].size(), record.year);
    if (pmid_ec != std::errc() || pmid_ptr != fields[0].data() + fields[0].size() ||
        year_ec != std::errc() || year_ptr != fields[1].data() + fields[1].size()) {
      return Status::InvalidArgument("citation line " + std::to_string(i + 1) +
                                     ": bad pmid/year");
    }
    record.title = std::string(fields[2]);
    auto split_list = [](std::string_view s, std::vector<std::string>* out) {
      if (s.empty()) return;
      for (std::string_view piece : SplitViews(s, ',')) {
        if (!piece.empty()) out->emplace_back(piece);
      }
    };
    split_list(fields[3], &record.terms);
    split_list(fields[4], &record.annotated_tree_numbers);
    split_list(fields[5], &record.indexed_tree_numbers);
    records.push_back(std::move(record));
  }
  if (!std::getline(*in, line) || StripWhitespace(line) != "END") {
    return Status::InvalidArgument("missing END marker");
  }
  return Build(hierarchy.TakeValue(), records);
}

Result<std::unique_ptr<BioNavDatabase>> BioNavDatabase::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return Load(&in);
}

}  // namespace bionav
