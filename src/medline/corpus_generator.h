#ifndef BIONAV_MEDLINE_CORPUS_GENERATOR_H_
#define BIONAV_MEDLINE_CORPUS_GENERATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "hierarchy/concept_hierarchy.h"
#include "medline/association_table.h"
#include "medline/citation_store.h"
#include "medline/eutils.h"
#include "medline/inverted_index.h"

namespace bionav {

/// Specification of one synthetic keyword query, the unit of the paper's
/// workload (Table I). The knobs map to the characteristics the paper calls
/// out when explaining per-query behaviour.
struct QuerySpec {
  /// Display name ("prothymosin").
  std::string name;
  /// Keyword(s) the user types; each result citation carries these terms.
  std::string keyword;
  /// Desired number of citations in the query result.
  int result_size = 300;
  /// Desired depth (MeSH level) of the navigation target concept.
  int target_depth = 5;
  /// Number of independent research themes the literature covers
  /// (prothymosin: several; vardenafil: few and targeted).
  int num_themes = 4;
  /// Mean count of theme-focused concept annotations per citation.
  double focus_annotations_mean = 5.0;
  /// Mean count of unrelated (noise) concept annotations per citation.
  /// Noise concepts are drawn from a per-query pool (see pool_size_factor)
  /// rather than i.i.d. over the whole hierarchy: real citations share
  /// secondary topics, so scattered concepts repeat across the result.
  double random_annotations_mean = 4.0;
  /// Size of the per-query scattered-concept pool, as a multiple of the
  /// result size. Controls navigation-tree size (Table I's "Tree Size").
  double pool_size_factor = 12.0;
  /// Field-literature background: citations (per result citation) written
  /// by the same research communities but not matching the query. They
  /// raise |LT(n)| of theme concepts, giving realistic selectivities
  /// |L(n)|/|LT(n)| — the quantity the EXPLORE probability is built on.
  double field_background_factor = 3.0;
  /// Probability that a result citation is annotated with the target
  /// concept itself (controls |L(target)|).
  double target_attach_prob = 0.12;
  /// Extra MEDLINE-wide citations attached to the target concept, inflating
  /// |LT(target)| and hence deflating the target's EXPLORE probability.
  /// The paper's "ice nucleation" outlier has an extremely unselective
  /// target ("Plants, Genetically Modified"); set this high to reproduce it.
  int target_global_extra = 0;
};

/// One generated query with its ground truth.
struct GeneratedQuery {
  QuerySpec spec;
  ConceptId target = kInvalidConcept;
  std::vector<ConceptId> themes;
  /// The exact result set (equals ESearch(spec.keyword) by construction).
  std::vector<CitationId> result;
};

/// Corpus-level generation knobs.
struct CorpusGeneratorOptions {
  uint64_t seed = 42;
  /// Background (non-result) citations approximating the rest of MEDLINE.
  int background_citations = 40000;
  /// Mean concept annotations per background citation.
  double background_annotations_mean = 14.0;
  /// Probability of also annotating each ancestor while walking up from an
  /// annotated concept (creates correlated multi-level annotations and the
  /// duplicate structure the paper's EdgeCut optimization exploits).
  double ancestor_walk_prob = 0.55;
  /// Zipf skew of global concept popularity.
  double concept_zipf_s = 1.05;
};

/// A fully materialized synthetic MEDLINE: citations, keyword index,
/// concept associations and the generated query workload. The hierarchy is
/// referenced, not owned. Immovable: the inverted index points into the
/// citation store, so the corpus lives behind a unique_ptr.
struct SyntheticCorpus {
  SyntheticCorpus() = default;
  SyntheticCorpus(const SyntheticCorpus&) = delete;
  SyntheticCorpus& operator=(const SyntheticCorpus&) = delete;

  const ConceptHierarchy* hierarchy = nullptr;
  CitationStore store;
  AssociationTable associations{0};
  std::unique_ptr<InvertedIndex> index;
  std::vector<GeneratedQuery> queries;

  /// Convenience eutils facade over this corpus.
  EUtilsClient MakeClient() const {
    return EUtilsClient(&store, index.get(), &associations);
  }
};

/// Generates a synthetic corpus over `hierarchy` realizing all `specs`.
/// Deterministic in (options.seed, hierarchy, specs).
std::unique_ptr<SyntheticCorpus> GenerateCorpus(
    const ConceptHierarchy& hierarchy, const std::vector<QuerySpec>& specs,
    const CorpusGeneratorOptions& options);

}  // namespace bionav

#endif  // BIONAV_MEDLINE_CORPUS_GENERATOR_H_
