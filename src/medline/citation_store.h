#ifndef BIONAV_MEDLINE_CITATION_STORE_H_
#define BIONAV_MEDLINE_CITATION_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace bionav {

/// Dense in-memory citation identifier (index into the store). Distinct
/// from the PubMed identifier (PMID), which is an opaque external number.
using CitationId = int32_t;
inline constexpr CitationId kInvalidCitation = -1;

/// One MEDLINE citation record. Terms are stored as term-dictionary ids
/// (see CitationStore::InternTerm); full text is not retained — like
/// PubMed's ESearch, keyword matching happens against the indexed terms.
struct Citation {
  uint64_t pmid = 0;
  std::string title;
  int year = 0;
  std::vector<int32_t> term_ids;
};

/// In-memory stand-in for the MEDLINE citation database. Owns the citation
/// records and the term dictionary shared with the inverted index.
class CitationStore {
 public:
  CitationStore() = default;
  CitationStore(const CitationStore&) = delete;
  CitationStore& operator=(const CitationStore&) = delete;
  CitationStore(CitationStore&&) = default;
  CitationStore& operator=(CitationStore&&) = default;

  /// Adds a citation and returns its dense id. PMIDs must be unique.
  CitationId Add(Citation citation);

  size_t size() const { return citations_.size(); }

  const Citation& Get(CitationId id) const {
    BIONAV_CHECK_GE(id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(id), citations_.size());
    return citations_[static_cast<size_t>(id)];
  }

  /// Dense id for a PMID, or kInvalidCitation.
  CitationId FindByPmid(uint64_t pmid) const;

  /// Interns a (lower-cased) term and returns its dictionary id.
  int32_t InternTerm(const std::string& term);

  /// Dictionary id of an existing term, or -1 if never interned.
  int32_t LookupTerm(const std::string& term) const;

  const std::string& TermText(int32_t term_id) const {
    BIONAV_CHECK_GE(term_id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(term_id), terms_.size());
    return terms_[static_cast<size_t>(term_id)];
  }

  size_t TermCount() const { return terms_.size(); }

 private:
  std::vector<Citation> citations_;
  std::unordered_map<uint64_t, CitationId> by_pmid_;
  std::vector<std::string> terms_;
  std::unordered_map<std::string, int32_t> term_ids_;
};

}  // namespace bionav

#endif  // BIONAV_MEDLINE_CITATION_STORE_H_
