#ifndef BIONAV_MEDLINE_INVERTED_INDEX_H_
#define BIONAV_MEDLINE_INVERTED_INDEX_H_

#include <string>
#include <vector>

#include "medline/citation_store.h"

namespace bionav {

/// Keyword inverted index over a CitationStore — the local equivalent of
/// PubMed's ESearch backend. Postings are sorted citation-id lists; a
/// multi-term query is the intersection (PubMed's implicit AND).
class InvertedIndex {
 public:
  /// Builds the index from every citation currently in the store.
  explicit InvertedIndex(const CitationStore& store);

  InvertedIndex(const InvertedIndex&) = delete;
  InvertedIndex& operator=(const InvertedIndex&) = delete;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  /// Citations matching all terms of the (free-text) query, sorted by id.
  /// An empty or unknown-term query returns an empty result.
  std::vector<CitationId> Search(const std::string& query) const;

  /// Posting list for one exact term; empty if unknown.
  const std::vector<CitationId>& Postings(const std::string& term) const;

  /// Number of citations containing the term.
  size_t DocumentFrequency(const std::string& term) const {
    return Postings(term).size();
  }

 private:
  const CitationStore* store_;
  // Indexed by term id; term ids are assigned by the store's dictionary.
  std::vector<std::vector<CitationId>> postings_;
  std::vector<CitationId> empty_;
};

/// Sorted-list intersection helper (exposed for tests and reuse).
std::vector<CitationId> IntersectSorted(const std::vector<CitationId>& a,
                                        const std::vector<CitationId>& b);

}  // namespace bionav

#endif  // BIONAV_MEDLINE_INVERTED_INDEX_H_
