#include "medline/association_table.h"

#include <algorithm>

namespace bionav {

AssociationTable::AssociationTable(size_t num_concepts)
    : global_counts_(num_concepts, 0) {}

void AssociationTable::Associate(CitationId citation, ConceptId concept_id,
                                 AssociationKind kind) {
  BIONAV_CHECK_GE(citation, 0);
  BIONAV_CHECK_GE(concept_id, 0);
  BIONAV_CHECK_LT(static_cast<size_t>(concept_id), global_counts_.size());
  if (static_cast<size_t>(citation) >= by_citation_.size()) {
    by_citation_.resize(static_cast<size_t>(citation) + 1);
    concept_view_.resize(by_citation_.size());
  }
  auto& entries = by_citation_[static_cast<size_t>(citation)];
  for (const Entry& e : entries) {
    if (e.concept_id == concept_id) return;  // Duplicate pair: ignore.
  }
  entries.push_back({concept_id, kind});
  concept_view_[static_cast<size_t>(citation)].push_back(concept_id);
  global_counts_[static_cast<size_t>(concept_id)]++;
  total_pairs_++;
}

const std::vector<ConceptId>& AssociationTable::ConceptsOf(
    CitationId citation) const {
  BIONAV_CHECK_GE(citation, 0);
  static const std::vector<ConceptId> kEmpty;
  if (static_cast<size_t>(citation) >= by_citation_.size()) return kEmpty;
  return concept_view_[static_cast<size_t>(citation)];
}

std::vector<ConceptId> AssociationTable::ConceptsOf(
    CitationId citation, AssociationKind kind) const {
  BIONAV_CHECK_GE(citation, 0);
  std::vector<ConceptId> out;
  if (static_cast<size_t>(citation) >= by_citation_.size()) return out;
  for (const Entry& e : by_citation_[static_cast<size_t>(citation)]) {
    if (e.kind == kind) out.push_back(e.concept_id);
  }
  return out;
}

}  // namespace bionav
