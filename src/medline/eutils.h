#ifndef BIONAV_MEDLINE_EUTILS_H_
#define BIONAV_MEDLINE_EUTILS_H_

#include <string>
#include <vector>

#include "medline/association_table.h"
#include "medline/citation_store.h"
#include "medline/inverted_index.h"

namespace bionav {

/// High-level citation summary, as returned by PubMed's ESummary utility.
struct CitationSummary {
  uint64_t pmid = 0;
  std::string title;
  int year = 0;
};

/// Local facade with the shape of the Entrez Programming Utilities (eutils)
/// calls that BioNav's online pipeline performs (paper Section VII):
///   - ESearch: keyword query -> citation ids,
///   - ESummary: citation ids -> display summaries,
///   - concept associations for navigation-tree construction (served from
///     the pre-built BioNav association table in the real system).
/// The paper's system calls NCBI over HTTP; everything here is served from
/// the in-process synthetic MEDLINE, which preserves the data flow while
/// removing the network dependency.
class EUtilsClient {
 public:
  EUtilsClient(const CitationStore* store, const InvertedIndex* index,
               const AssociationTable* associations)
      : store_(store), index_(index), associations_(associations) {
    BIONAV_CHECK(store != nullptr);
    BIONAV_CHECK(index != nullptr);
    BIONAV_CHECK(associations != nullptr);
  }

  /// ESearch: ids (dense CitationIds) of citations matching the query.
  std::vector<CitationId> ESearch(const std::string& query) const {
    return index_->Search(query);
  }

  /// ESearch result count only (PubMed's retmax=0 mode) — used offline to
  /// record per-concept global counts.
  size_t ESearchCount(const std::string& query) const {
    return index_->Search(query).size();
  }

  /// ESummary: display summaries for the given citations.
  std::vector<CitationSummary> ESummary(
      const std::vector<CitationId>& ids) const;

  /// Concept associations of one citation (BioNav database lookup).
  const std::vector<ConceptId>& ConceptsOf(CitationId id) const {
    return associations_->ConceptsOf(id);
  }

  const CitationStore& store() const { return *store_; }
  const AssociationTable& associations() const { return *associations_; }

 private:
  const CitationStore* store_;
  const InvertedIndex* index_;
  const AssociationTable* associations_;
};

}  // namespace bionav

#endif  // BIONAV_MEDLINE_EUTILS_H_
