#ifndef BIONAV_MEDLINE_ASSOCIATION_TABLE_H_
#define BIONAV_MEDLINE_ASSOCIATION_TABLE_H_

#include <cstdint>
#include <vector>

#include "hierarchy/concept_hierarchy.h"
#include "medline/citation_store.h"

namespace bionav {

/// How a citation is associated with a MeSH concept (paper Section VII).
/// MEDLINE explicitly *annotates* each citation with ~20 concepts; PubMed's
/// own indexing additionally associates ~90 concepts per citation through
/// text mentions. BioNav's offline pre-processing collected the latter; we
/// keep both so the difference can be studied.
enum class AssociationKind : uint8_t {
  kAnnotated = 0,  // MEDLINE descriptor annotation.
  kIndexed = 1,    // PubMed keyword-index association (superset in spirit).
};

/// The concept<->citation association store: BioNav's offline-built
/// "747 million tuple" table, scaled down and kept in memory. Provides both
/// directions (concept -> citations for global counts, citation -> concepts
/// for navigation-tree construction) plus the per-concept corpus-wide count
/// |LT(n)| that the EXPLORE probability needs.
class AssociationTable {
 public:
  /// `num_concepts` is hierarchy.size(); citations may be added afterwards.
  explicit AssociationTable(size_t num_concepts);

  AssociationTable(const AssociationTable&) = delete;
  AssociationTable& operator=(const AssociationTable&) = delete;
  AssociationTable(AssociationTable&&) = default;
  AssociationTable& operator=(AssociationTable&&) = default;

  /// Records that `citation` is associated with `concept`. Duplicate pairs
  /// are ignored (a citation is associated with a concept at most once, as
  /// in the de-normalized BioNav table).
  void Associate(CitationId citation, ConceptId concept_id,
                 AssociationKind kind);

  /// Concepts associated with the citation (both kinds), unsorted. Pure
  /// read (the view is maintained incrementally by Associate), so a frozen
  /// table is safe to share read-only across parallel sessions.
  const std::vector<ConceptId>& ConceptsOf(CitationId citation) const;

  /// Concepts of a citation restricted to one association kind.
  std::vector<ConceptId> ConceptsOf(CitationId citation,
                                    AssociationKind kind) const;

  /// Corpus-wide number of citations associated with the concept — the
  /// paper's |LT(n)| ("Citations of Target Concept in MEDLINE").
  int64_t GlobalCount(ConceptId concept_id) const {
    BIONAV_CHECK_GE(concept_id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(concept_id), global_counts_.size());
    return global_counts_[static_cast<size_t>(concept_id)];
  }

  /// Total number of (concept, citation) association pairs.
  int64_t TotalPairs() const { return total_pairs_; }

  size_t num_concepts() const { return global_counts_.size(); }

 private:
  struct Entry {
    ConceptId concept_id;
    AssociationKind kind;
  };

  // citation -> entries; grown on demand.
  std::vector<std::vector<Entry>> by_citation_;
  // Concept-id view per citation, kept in sync by Associate. Previously a
  // lazily rebuilt mutable cache, which made const ConceptsOf a hidden
  // write — a data race once navigation trees build concurrently.
  std::vector<std::vector<ConceptId>> concept_view_;
  std::vector<int64_t> global_counts_;
  int64_t total_pairs_ = 0;
};

}  // namespace bionav

#endif  // BIONAV_MEDLINE_ASSOCIATION_TABLE_H_
