#include "medline/inverted_index.h"

#include <algorithm>

#include "util/string_util.h"

namespace bionav {

InvertedIndex::InvertedIndex(const CitationStore& store) : store_(&store) {
  postings_.resize(store.TermCount());
  for (CitationId id = 0; id < static_cast<CitationId>(store.size()); ++id) {
    for (int32_t term_id : store.Get(id).term_ids) {
      BIONAV_CHECK_GE(term_id, 0);
      BIONAV_CHECK_LT(static_cast<size_t>(term_id), postings_.size());
      auto& list = postings_[static_cast<size_t>(term_id)];
      // Citations are scanned in increasing id order; avoid duplicates when
      // a citation lists the same term twice.
      if (list.empty() || list.back() != id) list.push_back(id);
    }
  }
}

std::vector<CitationId> IntersectSorted(const std::vector<CitationId>& a,
                                        const std::vector<CitationId>& b) {
  std::vector<CitationId> out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

std::vector<CitationId> InvertedIndex::Search(const std::string& query) const {
  std::vector<std::string> terms = TokenizeTerms(query);
  if (terms.empty()) return {};
  std::vector<const std::vector<CitationId>*> lists;
  lists.reserve(terms.size());
  for (const std::string& t : terms) {
    const auto& p = Postings(t);
    if (p.empty()) return {};
    lists.push_back(&p);
  }
  // Intersect smallest-first for speed.
  std::sort(lists.begin(), lists.end(),
            [](const auto* a, const auto* b) { return a->size() < b->size(); });
  std::vector<CitationId> result = *lists[0];
  for (size_t i = 1; i < lists.size() && !result.empty(); ++i) {
    result = IntersectSorted(result, *lists[i]);
  }
  return result;
}

const std::vector<CitationId>& InvertedIndex::Postings(
    const std::string& term) const {
  int32_t id = store_->LookupTerm(term);
  if (id < 0 || static_cast<size_t>(id) >= postings_.size()) return empty_;
  return postings_[static_cast<size_t>(id)];
}

}  // namespace bionav
