#include "medline/citation_store.h"

#include "util/string_util.h"

namespace bionav {

CitationId CitationStore::Add(Citation citation) {
  CitationId id = static_cast<CitationId>(citations_.size());
  auto [it, inserted] = by_pmid_.emplace(citation.pmid, id);
  (void)it;
  BIONAV_CHECK(inserted) << "duplicate PMID " << citation.pmid;
  citations_.push_back(std::move(citation));
  return id;
}

CitationId CitationStore::FindByPmid(uint64_t pmid) const {
  auto it = by_pmid_.find(pmid);
  return it == by_pmid_.end() ? kInvalidCitation : it->second;
}

int32_t CitationStore::InternTerm(const std::string& term) {
  std::string lower = ToLower(term);
  auto it = term_ids_.find(lower);
  if (it != term_ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(terms_.size());
  terms_.push_back(lower);
  term_ids_.emplace(terms_.back(), id);
  return id;
}

int32_t CitationStore::LookupTerm(const std::string& term) const {
  auto it = term_ids_.find(ToLower(term));
  return it == term_ids_.end() ? -1 : it->second;
}

}  // namespace bionav
