#include "medline/corpus_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/rng.h"
#include "util/string_util.h"

namespace bionav {

namespace {

/// O(log n) categorical sampler over fixed weights (CDF + binary search).
/// Rng::Zipf is O(n) per draw, which is too slow for the millions of
/// annotation draws the corpus needs.
class CdfSampler {
 public:
  explicit CdfSampler(std::vector<double> weights) : cdf_(std::move(weights)) {
    BIONAV_CHECK(!cdf_.empty());
    double acc = 0;
    for (double& w : cdf_) {
      BIONAV_CHECK_GE(w, 0.0);
      acc += w;
      w = acc;
    }
    BIONAV_CHECK_GT(acc, 0.0);
    total_ = acc;
  }

  size_t Sample(Rng* rng) const {
    double r = rng->UniformDouble() * total_;
    auto it = std::upper_bound(cdf_.begin(), cdf_.end(), r);
    if (it == cdf_.end()) --it;
    return static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  double total_;
};

int ClampedGaussianCount(Rng* rng, double mean, double lo, double hi) {
  double v = rng->Gaussian(mean, mean / 2.5);
  v = std::max(lo, std::min(hi, v));
  return static_cast<int>(std::lround(v));
}

/// Annotates `citation` with `concept_id` and probabilistically with its
/// ancestors (excluding the root), reproducing correlated multi-level
/// annotations — the source of the duplicates the EdgeCut cost model must
/// reason about.
void AnnotateWithWalkUp(const ConceptHierarchy& h, AssociationTable* assoc,
                        CitationId citation, ConceptId concept_id,
                        AssociationKind kind, double walk_prob, Rng* rng) {
  assoc->Associate(citation, concept_id, kind);
  ConceptId u = h.parent(concept_id);
  while (u != kInvalidConcept && u != ConceptHierarchy::kRoot &&
         rng->Bernoulli(walk_prob)) {
    assoc->Associate(citation, u, kind);
    u = h.parent(u);
  }
}

}  // namespace

std::unique_ptr<SyntheticCorpus> GenerateCorpus(
    const ConceptHierarchy& hierarchy, const std::vector<QuerySpec>& specs,
    const CorpusGeneratorOptions& options) {
  BIONAV_CHECK(hierarchy.frozen());
  Rng rng(options.seed);

  auto corpus_ptr = std::make_unique<SyntheticCorpus>();
  SyntheticCorpus& corpus = *corpus_ptr;
  corpus.hierarchy = &hierarchy;
  corpus.associations = AssociationTable(hierarchy.size());

  const size_t n_concepts = hierarchy.size();
  BIONAV_CHECK_GT(n_concepts, 2u);

  // --- Global concept popularity: a random permutation of non-root
  // concepts with Zipf-decaying weights. Shallow concepts get a popularity
  // bonus (general MeSH terms such as "Humans" are attached to a large
  // fraction of MEDLINE).
  std::vector<ConceptId> concept_perm;
  concept_perm.reserve(n_concepts - 1);
  for (ConceptId c = 1; c < static_cast<ConceptId>(n_concepts); ++c) {
    concept_perm.push_back(c);
  }
  rng.Shuffle(&concept_perm);
  std::vector<double> global_weights(concept_perm.size());
  for (size_t rank = 0; rank < concept_perm.size(); ++rank) {
    ConceptId c = concept_perm[rank];
    double w = 1.0 / std::pow(static_cast<double>(rank + 1),
                              options.concept_zipf_s);
    int d = hierarchy.depth(c);
    if (d <= 2) w *= 6.0;
    global_weights[rank] = w;
  }
  CdfSampler global_sampler(std::move(global_weights));
  auto sample_global_concept = [&]() {
    return concept_perm[global_sampler.Sample(&rng)];
  };

  // --- Filler vocabulary, disjoint from query-keyword tokens by
  // construction ("bgterm####" never collides with biomedical keywords).
  std::unordered_set<std::string> reserved_tokens;
  for (const QuerySpec& spec : specs) {
    for (const std::string& tok : TokenizeTerms(spec.keyword)) {
      reserved_tokens.insert(tok);
    }
  }
  constexpr int kFillerVocab = 2000;
  std::vector<int32_t> filler_ids(kFillerVocab);
  for (int i = 0; i < kFillerVocab; ++i) {
    std::string term = "bgterm" + std::to_string(i);
    BIONAV_CHECK(!reserved_tokens.count(term));
    filler_ids[static_cast<size_t>(i)] = corpus.store.InternTerm(term);
  }
  std::vector<double> filler_weights(kFillerVocab);
  for (int i = 0; i < kFillerVocab; ++i) {
    filler_weights[static_cast<size_t>(i)] =
        1.0 / std::pow(static_cast<double>(i + 1), 0.9);
  }
  CdfSampler filler_sampler(std::move(filler_weights));

  uint64_t next_pmid = 10000000;
  auto add_citation = [&](std::string title,
                          const std::vector<std::string>& keyword_tokens,
                          int n_filler) {
    Citation c;
    c.pmid = next_pmid++;
    c.title = std::move(title);
    c.year = static_cast<int>(1990 + rng.Uniform(19));
    for (const std::string& tok : keyword_tokens) {
      c.term_ids.push_back(corpus.store.InternTerm(tok));
    }
    for (int i = 0; i < n_filler; ++i) {
      c.term_ids.push_back(filler_ids[filler_sampler.Sample(&rng)]);
    }
    return corpus.store.Add(std::move(c));
  };

  // --- Per-query generation.
  std::vector<ConceptId> nodes_by_depth_scratch;
  for (const QuerySpec& spec : specs) {
    GeneratedQuery gq;
    gq.spec = spec;

    // Pick the target concept: a random node at the requested depth,
    // falling back to shallower depths on small hierarchies.
    int want_depth = spec.target_depth;
    while (want_depth >= 1) {
      nodes_by_depth_scratch.clear();
      hierarchy.PreOrder([&](ConceptId id) {
        if (id != ConceptHierarchy::kRoot &&
            hierarchy.depth(id) == want_depth) {
          nodes_by_depth_scratch.push_back(id);
        }
      });
      if (!nodes_by_depth_scratch.empty()) break;
      --want_depth;
    }
    BIONAV_CHECK(!nodes_by_depth_scratch.empty())
        << "no candidate target concepts for query " << spec.name;
    gq.target =
        nodes_by_depth_scratch[rng.Uniform(nodes_by_depth_scratch.size())];

    // Themes: the first theme is an ancestor neighbourhood of the target so
    // the target's research line receives mass; the rest are independent
    // subtrees (the paper's "independent lines of research").
    ConceptId target_theme = gq.target;
    for (int up = 0; up < 2; ++up) {
      ConceptId p = hierarchy.parent(target_theme);
      if (p != kInvalidConcept && p != ConceptHierarchy::kRoot) {
        target_theme = p;
      }
    }
    gq.themes.push_back(target_theme);
    int attempts = 0;
    while (static_cast<int>(gq.themes.size()) < std::max(1, spec.num_themes) &&
           attempts++ < 1000) {
      ConceptId c = sample_global_concept();
      int d = hierarchy.depth(c);
      if (d < 2 || d > spec.target_depth + 2) continue;
      bool related = false;
      for (ConceptId t : gq.themes) {
        if (hierarchy.IsAncestorOrSelf(t, c) ||
            hierarchy.IsAncestorOrSelf(c, t)) {
          related = true;
          break;
        }
      }
      if (!related) gq.themes.push_back(c);
    }

    // Per-theme focus samplers over the theme subtree, biased deeper
    // (specific concepts get annotated more than their broad parents).
    std::vector<std::vector<ConceptId>> theme_nodes;
    std::vector<std::unique_ptr<CdfSampler>> theme_samplers;
    for (ConceptId t : gq.themes) {
      std::vector<ConceptId> sub = hierarchy.Subtree(t);
      std::vector<double> w(sub.size());
      for (size_t i = 0; i < sub.size(); ++i) {
        int rel_depth = hierarchy.depth(sub[i]) - hierarchy.depth(t);
        w[i] = std::pow(1.6, rel_depth);
      }
      theme_nodes.push_back(std::move(sub));
      theme_samplers.push_back(std::make_unique<CdfSampler>(std::move(w)));
    }
    std::vector<double> theme_weights(gq.themes.size());
    for (size_t i = 0; i < theme_weights.size(); ++i) {
      theme_weights[i] = 1.0 / static_cast<double>(i + 1);
    }
    CdfSampler theme_sampler(std::move(theme_weights));

    // Per-query scattered-concept pool with Zipf popularity: citations of
    // one literature share secondary topics, so noise annotations repeat
    // across the result instead of being i.i.d. over 48k concepts. This is
    // what gives component subtrees the "few duplicates across them"
    // structure the paper's Section I example describes.
    std::vector<ConceptId> pool;
    {
      size_t pool_target = static_cast<size_t>(
          std::max(8.0, spec.pool_size_factor * spec.result_size));
      std::unordered_set<ConceptId> seen;
      int tries = 0;
      while (pool.size() < pool_target &&
             tries++ < static_cast<int>(pool_target) * 20) {
        ConceptId c = sample_global_concept();
        if (seen.insert(c).second) pool.push_back(c);
      }
    }
    std::vector<double> pool_w(pool.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      pool_w[i] = 1.0 / static_cast<double>(i + 1);
    }
    CdfSampler pool_sampler(std::move(pool_w));

    std::vector<std::string> keyword_tokens = TokenizeTerms(spec.keyword);
    for (int i = 0; i < spec.result_size; ++i) {
      size_t ti = theme_sampler.Sample(&rng);
      CitationId cit = add_citation(
          spec.name + " study of " +
              hierarchy.label(theme_nodes[ti][theme_samplers[ti]->Sample(&rng)]),
          keyword_tokens, ClampedGaussianCount(&rng, 4, 2, 8));

      int nf = ClampedGaussianCount(&rng, spec.focus_annotations_mean, 1,
                                    spec.focus_annotations_mean * 2.5);
      for (int f = 0; f < nf; ++f) {
        // Mostly the citation's main theme, sometimes a secondary one.
        size_t th = rng.Bernoulli(0.75) ? ti : theme_sampler.Sample(&rng);
        ConceptId c = theme_nodes[th][theme_samplers[th]->Sample(&rng)];
        AnnotateWithWalkUp(hierarchy, &corpus.associations, cit, c,
                           AssociationKind::kAnnotated,
                           options.ancestor_walk_prob, &rng);
      }
      if (rng.Bernoulli(spec.target_attach_prob)) {
        AnnotateWithWalkUp(hierarchy, &corpus.associations, cit, gq.target,
                           AssociationKind::kAnnotated,
                           options.ancestor_walk_prob, &rng);
      }
      int nr = ClampedGaussianCount(&rng, spec.random_annotations_mean, 0,
                                    spec.random_annotations_mean * 3);
      for (int r = 0; r < nr && !pool.empty(); ++r) {
        AnnotateWithWalkUp(hierarchy, &corpus.associations, cit,
                           pool[pool_sampler.Sample(&rng)],
                           AssociationKind::kIndexed, 0.25, &rng);
      }
      gq.result.push_back(cit);
    }

    // Field-literature background: same research communities, different
    // papers — raises |LT| of theme concepts so the query's selectivity on
    // them is realistic (a query selects a few percent of its field).
    int n_field = static_cast<int>(spec.field_background_factor *
                                   spec.result_size);
    for (int b = 0; b < n_field; ++b) {
      CitationId cit =
          add_citation("field literature (" + spec.name + ")", {},
                       ClampedGaussianCount(&rng, 4, 2, 8));
      size_t ti = theme_sampler.Sample(&rng);
      int nf = ClampedGaussianCount(&rng, 3, 1, 6);
      for (int f = 0; f < nf; ++f) {
        ConceptId c = theme_nodes[ti][theme_samplers[ti]->Sample(&rng)];
        AnnotateWithWalkUp(hierarchy, &corpus.associations, cit, c,
                           AssociationKind::kIndexed,
                           options.ancestor_walk_prob, &rng);
      }
    }

    // The experiment's oracle navigation requires the target to appear in
    // the navigation tree, i.e. to have at least one attached citation.
    bool target_attached = false;
    for (CitationId cit : gq.result) {
      for (ConceptId c : corpus.associations.ConceptsOf(cit)) {
        if (c == gq.target) {
          target_attached = true;
          break;
        }
      }
      if (target_attached) break;
    }
    if (!target_attached && !gq.result.empty()) {
      corpus.associations.Associate(gq.result.front(), gq.target,
                                    AssociationKind::kAnnotated);
    }

    // Extra MEDLINE-wide citations on the target concept (unselective
    // targets, e.g. the paper's "Plants, Genetically Modified").
    for (int e = 0; e < spec.target_global_extra; ++e) {
      CitationId cit = add_citation("background on " +
                                        hierarchy.label(gq.target),
                                    {}, ClampedGaussianCount(&rng, 4, 2, 8));
      AnnotateWithWalkUp(hierarchy, &corpus.associations, cit, gq.target,
                         AssociationKind::kIndexed, 0.4, &rng);
      for (int r = 0; r < 4; ++r) {
        corpus.associations.Associate(cit, sample_global_concept(),
                                      AssociationKind::kIndexed);
      }
    }

    corpus.queries.push_back(std::move(gq));
  }

  // --- Background corpus (the rest of MEDLINE).
  for (int b = 0; b < options.background_citations; ++b) {
    std::vector<std::string> tokens;
    // Occasionally reuse a single token of a multi-token keyword so the
    // index's AND semantics is exercised without polluting any result set.
    if (rng.Bernoulli(0.05) && !specs.empty()) {
      const QuerySpec& s = specs[rng.Uniform(specs.size())];
      std::vector<std::string> ks = TokenizeTerms(s.keyword);
      if (ks.size() >= 2) tokens.push_back(ks[rng.Uniform(ks.size())]);
    }
    CitationId cit = add_citation("background citation", tokens,
                                  ClampedGaussianCount(&rng, 5, 3, 9));
    int na = ClampedGaussianCount(&rng, options.background_annotations_mean, 2,
                                  options.background_annotations_mean * 3);
    for (int a = 0; a < na; ++a) {
      AnnotateWithWalkUp(hierarchy, &corpus.associations, cit,
                         sample_global_concept(), AssociationKind::kIndexed,
                         0.35, &rng);
    }
  }

  corpus.index = std::make_unique<InvertedIndex>(corpus.store);

  // Every generated result set must round-trip through ESearch exactly.
  for (const GeneratedQuery& gq : corpus.queries) {
    std::vector<CitationId> found = corpus.index->Search(gq.spec.keyword);
    std::vector<CitationId> expected = gq.result;
    std::sort(expected.begin(), expected.end());
    BIONAV_CHECK(found == expected)
        << "ESearch mismatch for query " << gq.spec.name << ": " << found.size()
        << " vs " << expected.size();
  }
  return corpus_ptr;
}

}  // namespace bionav
