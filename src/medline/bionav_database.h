#ifndef BIONAV_MEDLINE_BIONAV_DATABASE_H_
#define BIONAV_MEDLINE_BIONAV_DATABASE_H_

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "hierarchy/concept_hierarchy.h"
#include "medline/association_table.h"
#include "medline/citation_store.h"
#include "medline/corpus_generator.h"
#include "medline/eutils.h"
#include "medline/inverted_index.h"
#include "util/status.h"

namespace bionav {

/// One citation as delivered by the off-line download (paper Fig 7: the
/// eutils crawl that took 20 days and yielded 747M concept-citation
/// tuples). Concepts are referenced by MeSH tree number, the stable
/// location-encoding identifier the paper's pipeline uses.
struct CitationSourceRecord {
  uint64_t pmid = 0;
  int year = 0;
  std::string title;
  std::vector<std::string> terms;
  /// MEDLINE descriptor annotations (~20 per citation in the paper).
  std::vector<std::string> annotated_tree_numbers;
  /// Additional PubMed-index associations (~90 per citation in total).
  std::vector<std::string> indexed_tree_numbers;
};

/// The BioNav database of Section VII: the MeSH hierarchy plus the
/// de-normalized citation/concept association store and the keyword index,
/// built once off-line and then serving every on-line query. Owns all of
/// its parts; a database is the single object an application needs to run
/// NavigationSessions.
class BioNavDatabase {
 public:
  BioNavDatabase(const BioNavDatabase&) = delete;
  BioNavDatabase& operator=(const BioNavDatabase&) = delete;

  /// Off-line preprocessing: ingests the citation records into the store,
  /// the association table (with global counts) and the inverted index.
  /// Unknown tree numbers are an error — the hierarchy must be the same
  /// release the records were annotated against.
  static Result<std::unique_ptr<BioNavDatabase>> Build(
      ConceptHierarchy hierarchy,
      const std::vector<CitationSourceRecord>& records);

  /// Deserializes a database written by Save / WriteDatabaseStream.
  static Result<std::unique_ptr<BioNavDatabase>> Load(std::istream* in);
  static Result<std::unique_ptr<BioNavDatabase>> LoadFromFile(
      const std::string& path);

  /// Serializes the database (text format; see bionav_database.cc header
  /// comment). Round-trips through Load.
  Status Save(std::ostream* out) const;
  Status SaveToFile(const std::string& path) const;

  const ConceptHierarchy& hierarchy() const { return hierarchy_; }
  const CitationStore& store() const { return store_; }
  const AssociationTable& associations() const { return associations_; }
  const InvertedIndex& index() const { return *index_; }

  /// eutils facade bound to this database.
  EUtilsClient MakeClient() const {
    return EUtilsClient(&store_, index_.get(), &associations_);
  }

 private:
  BioNavDatabase() : associations_(0) {}

  ConceptHierarchy hierarchy_;
  CitationStore store_;
  AssociationTable associations_;
  std::unique_ptr<InvertedIndex> index_;
};

/// Serializes an existing (hierarchy, store, associations) triple — e.g.
/// a generated SyntheticCorpus — in the BioNavDatabase format, so the
/// expensive generation step can be cached on disk and reloaded with
/// BioNavDatabase::Load.
Status WriteDatabaseStream(const ConceptHierarchy& hierarchy,
                           const CitationStore& store,
                           const AssociationTable& associations,
                           std::ostream* out);

/// Convenience: persists a synthetic corpus to a file.
Status SaveCorpusToFile(const ConceptHierarchy& hierarchy,
                        const SyntheticCorpus& corpus,
                        const std::string& path);

}  // namespace bionav

#endif  // BIONAV_MEDLINE_BIONAV_DATABASE_H_
