#ifndef BIONAV_WORKLOAD_TABLE_FORMAT_H_
#define BIONAV_WORKLOAD_TABLE_FORMAT_H_

#include <string>
#include <vector>

namespace bionav {

/// Minimal aligned ASCII table writer used by the benchmark binaries to
/// print the paper's tables and figure data series.
class TextTable {
 public:
  /// Sets the column headers (fixes the column count).
  void SetHeader(std::vector<std::string> header);

  /// Adds a row; must match the header's column count.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double value, int precision = 1);

  /// Renders the table with column alignment and a separator line.
  std::string ToString() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bionav

#endif  // BIONAV_WORKLOAD_TABLE_FORMAT_H_
