#include "workload/table_format.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace bionav {

void TextTable::SetHeader(std::vector<std::string> header) {
  BIONAV_CHECK(!header.empty());
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  BIONAV_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace bionav
