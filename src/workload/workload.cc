#include "workload/workload.h"

#include <algorithm>
#include <cmath>

#include "core/result_set.h"
#include "hierarchy/hierarchy_generator.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace bionav {

int64_t WorkloadRunResult::total_navigation_cost() const {
  int64_t total = 0;
  for (const SessionOutcome& s : sessions) total += s.metrics.navigation_cost();
  return total;
}

int64_t WorkloadRunResult::total_static_cost() const {
  int64_t total = 0;
  for (const SessionOutcome& s : sessions) {
    total += s.static_metrics.navigation_cost();
  }
  return total;
}

int64_t WorkloadRunResult::total_expand_actions() const {
  int64_t total = 0;
  for (const SessionOutcome& s : sessions) total += s.metrics.expand_actions;
  return total;
}

std::vector<QuerySpec> PaperQuerySpecs(double result_scale) {
  auto scaled = [result_scale](int n) {
    return std::max(12, static_cast<int>(std::lround(n * result_scale)));
  };
  std::vector<QuerySpec> specs;

  {
    QuerySpec s;
    s.name = "LbetaT2";
    s.keyword = "lbetat2";
    s.result_size = scaled(110);
    s.target_depth = 3;
    s.num_themes = 3;
    specs.push_back(s);
  }
  {
    QuerySpec s;
    s.name = "melibiose permease";
    s.keyword = "melibiose permease";
    s.result_size = scaled(130);
    s.target_depth = 4;
    s.num_themes = 3;
    specs.push_back(s);
  }
  {
    QuerySpec s;
    s.name = "varenicline";
    s.keyword = "varenicline";
    s.result_size = scaled(150);
    s.target_depth = 5;
    s.num_themes = 2;
    s.random_annotations_mean = 2.5;
    specs.push_back(s);
  }
  {
    QuerySpec s;
    s.name = "Na+/I- symporter";
    s.keyword = "na+/i- symporter";
    s.result_size = scaled(185);
    s.target_depth = 6;
    s.num_themes = 3;
    specs.push_back(s);
  }
  {
    // Broad literature across many research lines (Table I's biggest
    // navigation tree relative to its result size).
    QuerySpec s;
    s.name = "prothymosin";
    s.keyword = "prothymosin";
    s.result_size = scaled(313);
    s.target_depth = 6;
    s.num_themes = 6;
    s.random_annotations_mean = 4.0;
    s.target_attach_prob = 0.15;
    specs.push_back(s);
  }
  {
    // The paper's outlier: a target very high in the hierarchy with an
    // extremely large |LT| (unselective), yielding the smallest improvement
    // and the most EXPAND actions.
    QuerySpec s;
    s.name = "ice nucleation";
    s.keyword = "ice nucleation";
    s.result_size = scaled(260);
    s.target_depth = 2;
    s.num_themes = 4;
    s.target_attach_prob = 0.06;
    s.target_global_extra = 12000;
    specs.push_back(s);
  }
  {
    // Large result but targeted literature (few themes).
    QuerySpec s;
    s.name = "vardenafil";
    s.keyword = "vardenafil";
    s.result_size = scaled(486);
    s.target_depth = 5;
    s.num_themes = 2;
    s.random_annotations_mean = 2.0;
    specs.push_back(s);
  }
  {
    QuerySpec s;
    s.name = "dyslexia genetics";
    s.keyword = "dyslexia genetics";
    s.result_size = scaled(320);
    s.target_depth = 5;
    s.num_themes = 4;
    specs.push_back(s);
  }
  {
    QuerySpec s;
    s.name = "syntaxin 1A";
    s.keyword = "syntaxin 1a";
    s.result_size = scaled(350);
    s.target_depth = 7;
    s.num_themes = 4;
    specs.push_back(s);
  }
  {
    QuerySpec s;
    s.name = "follistatin";
    s.keyword = "follistatin";
    s.result_size = scaled(600);
    s.target_depth = 5;
    s.num_themes = 4;
    specs.push_back(s);
  }
  return specs;
}

std::vector<std::string> PaperTargetLabels() {
  return {
      "Mice, Transgenic",
      "Substrate Specificity",
      "Nicotinic Agonists",
      "Perchloric Acid",
      "Histones",
      "Plants, Genetically Modified",
      "Phosphodiesterase Inhibitors",
      "Polymorphism, Single Nucleotide",
      "GABA Plasma Membrane Transport Proteins",
      "Follicle Stimulating Hormone",
  };
}

Workload::Workload(const WorkloadOptions& options) : options_(options) {
  HierarchyGeneratorOptions hopts;
  hopts.seed = options.seed;
  hopts.target_nodes = options.hierarchy_nodes;
  hierarchy_ = GenerateMeshLikeHierarchy(hopts);

  CorpusGeneratorOptions copts;
  copts.seed = options.seed + 1;
  copts.background_citations = options.background_citations;
  corpus_ = GenerateCorpus(hierarchy_, PaperQuerySpecs(options.result_scale),
                           copts);

  // Rename targets to the paper's target-concept labels for presentation.
  std::vector<std::string> labels = PaperTargetLabels();
  for (size_t i = 0; i < corpus_->queries.size() && i < labels.size(); ++i) {
    hierarchy_.RenameNode(corpus_->queries[i].target, labels[i]);
  }
}

std::unique_ptr<NavigationTree> Workload::BuildNavigationTree(
    size_t i) const {
  const GeneratedQuery& q = query(i);
  auto result = std::make_shared<const ResultSet>(
      corpus_->index->Search(q.spec.keyword));
  return std::make_unique<NavigationTree>(hierarchy_, corpus_->associations,
                                          result);
}

WorkloadRunResult Workload::Run(const WorkloadRunOptions& options) const {
  BIONAV_CHECK_GE(options.repeats, 1);
  StrategyFactory factory = options.strategy_factory
                                ? options.strategy_factory
                                : MakeBioNavStrategyFactory();
  StrategyFactory static_factory =
      options.run_static_baseline ? MakeStaticStrategyFactory()
                                  : StrategyFactory();

  const size_t n_sessions =
      static_cast<size_t>(options.repeats) * num_queries();
  WorkloadRunResult run;
  run.threads = options.threads < 1 ? 1 : options.threads;
  run.sessions.resize(n_sessions);

  Timer timer;
  ParallelFor(run.threads, n_sessions, [&](size_t s) {
    const size_t qi = s % num_queries();
    SessionOutcome& out = run.sessions[s];
    out.session_index = s;
    out.query_index = qi;

    // Everything below is session-local; the workload itself is only read.
    std::unique_ptr<NavigationTree> nav = BuildNavigationTree(qi);
    CostModel cost_model(nav.get(), options.cost_params);
    std::unique_ptr<ExpandStrategy> strategy = factory(&cost_model);
    out.metrics = NavigateToTarget(*nav, query(qi).target, strategy.get());
    if (static_factory) {
      std::unique_ptr<ExpandStrategy> baseline = static_factory(&cost_model);
      out.static_metrics =
          NavigateToTarget(*nav, query(qi).target, baseline.get());
    }
  });
  run.wall_ms = timer.ElapsedMillis();
  return run;
}

}  // namespace bionav
