#ifndef BIONAV_WORKLOAD_WORKLOAD_H_
#define BIONAV_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/navigation_tree.h"
#include "hierarchy/concept_hierarchy.h"
#include "medline/corpus_generator.h"

namespace bionav {

/// Scale knobs of the paper workload. Defaults reproduce the paper's setup
/// (a ~48k-concept MeSH, result sizes 110-600); tests use smaller scales.
struct WorkloadOptions {
  uint64_t seed = 2009;
  int hierarchy_nodes = 48000;
  int background_citations = 40000;
  /// Scales every query's result size (tests can use 0.2 for speed).
  double result_scale = 1.0;
};

/// The materialized paper workload: hierarchy + corpus + the 10 queries of
/// Table I, with targets renamed to the paper's target-concept labels.
class Workload {
 public:
  explicit Workload(const WorkloadOptions& options);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  const ConceptHierarchy& hierarchy() const { return hierarchy_; }
  const SyntheticCorpus& corpus() const { return *corpus_; }
  const WorkloadOptions& options() const { return options_; }

  size_t num_queries() const { return corpus_->queries.size(); }
  const GeneratedQuery& query(size_t i) const {
    BIONAV_CHECK_LT(i, corpus_->queries.size());
    return corpus_->queries[i];
  }

  /// Builds the navigation tree for query `i` through the full on-line
  /// pipeline (ESearch + association lookups).
  std::unique_ptr<NavigationTree> BuildNavigationTree(size_t i) const;

 private:
  WorkloadOptions options_;
  ConceptHierarchy hierarchy_;
  std::unique_ptr<SyntheticCorpus> corpus_;
};

/// The 10 query specifications modeled on the paper's Table I workload.
/// `result_scale` multiplies the result sizes.
std::vector<QuerySpec> PaperQuerySpecs(double result_scale = 1.0);

/// Paper target-concept display labels, parallel to PaperQuerySpecs().
std::vector<std::string> PaperTargetLabels();

}  // namespace bionav

#endif  // BIONAV_WORKLOAD_WORKLOAD_H_
