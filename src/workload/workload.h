#ifndef BIONAV_WORKLOAD_WORKLOAD_H_
#define BIONAV_WORKLOAD_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/navigation_tree.h"
#include "hierarchy/concept_hierarchy.h"
#include "medline/corpus_generator.h"
#include "sim/navigator.h"
#include "sim/session.h"

namespace bionav {

/// Scale knobs of the paper workload. Defaults reproduce the paper's setup
/// (a ~48k-concept MeSH, result sizes 110-600); tests use smaller scales.
struct WorkloadOptions {
  uint64_t seed = 2009;
  int hierarchy_nodes = 48000;
  int background_citations = 40000;
  /// Scales every query's result size (tests can use 0.2 for speed).
  double result_scale = 1.0;
};

/// Options of one Workload::Run — a batch of navigation sessions served by
/// the parallel query engine.
struct WorkloadRunOptions {
  /// Worker threads; <= 1 runs sessions inline on the calling thread.
  int threads = 1;
  /// Passes over the query set: the batch is repeats * num_queries()
  /// sessions (bench_scaling uses > 1 for stable sessions/sec numbers).
  int repeats = 1;
  CostModelParams cost_params;
  /// Strategy under test; null selects the BioNav policy
  /// (MakeBioNavStrategyFactory()).
  StrategyFactory strategy_factory;
  /// Also run the static all-children baseline on every session (for
  /// improvement-% reporting).
  bool run_static_baseline = false;
};

/// Outcome of one navigation session (one oracle run of one query).
struct SessionOutcome {
  size_t session_index = 0;
  size_t query_index = 0;
  NavigationMetrics metrics;
  /// Valid iff WorkloadRunOptions::run_static_baseline.
  NavigationMetrics static_metrics;
};

/// Result of a Workload::Run batch. `sessions` is ordered by session index
/// regardless of the thread count — every per-session field is bit-identical
/// to the sequential run, only wall_ms varies.
struct WorkloadRunResult {
  std::vector<SessionOutcome> sessions;
  int threads = 1;
  double wall_ms = 0;

  double sessions_per_sec() const {
    return wall_ms > 0 ? 1000.0 * static_cast<double>(sessions.size()) / wall_ms
                       : 0;
  }
  /// Sum of navigation costs (revealed concepts + EXPANDs) over the batch.
  int64_t total_navigation_cost() const;
  int64_t total_static_cost() const;
  int64_t total_expand_actions() const;
};

/// The materialized paper workload: hierarchy + corpus + the 10 queries of
/// Table I, with targets renamed to the paper's target-concept labels.
class Workload {
 public:
  explicit Workload(const WorkloadOptions& options);

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  const ConceptHierarchy& hierarchy() const { return hierarchy_; }
  const SyntheticCorpus& corpus() const { return *corpus_; }
  const WorkloadOptions& options() const { return options_; }

  size_t num_queries() const { return corpus_->queries.size(); }
  const GeneratedQuery& query(size_t i) const {
    BIONAV_CHECK_LT(i, corpus_->queries.size());
    return corpus_->queries[i];
  }

  /// Builds the navigation tree for query `i` through the full on-line
  /// pipeline (ESearch + association lookups).
  std::unique_ptr<NavigationTree> BuildNavigationTree(size_t i) const;

  /// Serves a batch of navigation sessions — session s runs query
  /// s % num_queries() through the full pipeline (ESearch → navigation
  /// tree → oracle EdgeCut loop → cost accounting). Sessions are fully
  /// independent (the hierarchy, associations and inverted index are read
  /// read-only; every session builds its own tree, cost model and
  /// strategy), so with options.threads > 1 they are fanned out over a
  /// ThreadPool. Results are written by session index: the output is
  /// bit-identical to the sequential run for any thread count.
  WorkloadRunResult Run(const WorkloadRunOptions& options =
                            WorkloadRunOptions()) const;

 private:
  WorkloadOptions options_;
  ConceptHierarchy hierarchy_;
  std::unique_ptr<SyntheticCorpus> corpus_;
};

/// The 10 query specifications modeled on the paper's Table I workload.
/// `result_scale` multiplies the result sizes.
std::vector<QuerySpec> PaperQuerySpecs(double result_scale = 1.0);

/// Paper target-concept display labels, parallel to PaperQuerySpecs().
std::vector<std::string> PaperTargetLabels();

}  // namespace bionav

#endif  // BIONAV_WORKLOAD_WORKLOAD_H_
