#ifndef BIONAV_CORE_ACTIVE_TREE_H_
#define BIONAV_CORE_ACTIVE_TREE_H_

#include <string>
#include <vector>

#include "core/navigation_tree.h"
#include "util/status.h"

namespace bionav {

/// A valid EdgeCut (paper Definition 3): a set of navigation-tree edges,
/// each identified by its child endpoint, such that no two edges lie on one
/// root-to-leaf path (i.e., the child endpoints form an antichain).
struct EdgeCut {
  std::vector<NavNodeId> cut_children;

  bool empty() const { return cut_children.empty(); }
  size_t size() const { return cut_children.size(); }
};

/// The paper's Active Tree (Definition 4): the navigation tree partitioned
/// into component subtrees by the EdgeCuts applied so far. Each component
/// is identified by an index; its member set is the paper's I(n) for its
/// root n. Supports the user actions EXPAND (ApplyEdgeCut) and BACKTRACK
/// (undo), plus the Definition-5 visualization of visible concepts.
class ActiveTree {
 public:
  /// Starts with a single component containing every node, rooted at the
  /// navigation-tree root. `nav` must outlive the active tree.
  explicit ActiveTree(const NavigationTree* nav);

  ActiveTree(const ActiveTree&) = delete;
  ActiveTree& operator=(const ActiveTree&) = delete;
  ActiveTree(ActiveTree&&) = default;
  ActiveTree& operator=(ActiveTree&&) = default;

  const NavigationTree& nav() const { return *nav_; }

  /// Component index of a node.
  int ComponentOf(NavNodeId id) const {
    BIONAV_CHECK_GE(id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(id), comp_of_.size());
    return comp_of_[static_cast<size_t>(id)];
  }

  /// Root node of a component.
  NavNodeId ComponentRoot(int comp) const {
    return components_[CheckComp(comp)].root;
  }

  /// True iff the node is the root of its component — i.e. visible in the
  /// interface.
  bool IsVisible(NavNodeId id) const {
    return ComponentRoot(ComponentOf(id)) == id;
  }

  /// Members of a component (the paper's I(n)), in navigation pre-order.
  std::vector<NavNodeId> ComponentMembers(int comp) const;

  /// True iff the component is exactly the full navigation subtree of its
  /// root (no descendant has been cut out of it). Intact components admit
  /// O(1) answers from the navigation tree's subtree caches — the common
  /// case while EXPAND works its way down fresh subtrees.
  bool ComponentIsIntact(int comp) const {
    const Component& c = components_[static_cast<size_t>(CheckComp(comp))];
    return c.num_members == nav_->SubtreeEnd(c.root) - c.root;
  }

  /// Number of nodes in the component.
  size_t ComponentSize(int comp) const {
    return static_cast<size_t>(components_[CheckComp(comp)].num_members);
  }

  /// Distinct citations attached within the component — |L(I(n))|, the
  /// count displayed next to the visible root.
  int ComponentDistinctCount(int comp) const {
    return components_[CheckComp(comp)].distinct;
  }

  /// Citation set of the component.
  const DynamicBitset& ComponentResults(int comp) const {
    return components_[CheckComp(comp)].results;
  }

  /// Checks a cut for validity w.r.t. an EXPAND of the component rooted at
  /// `root`: `root` must be a visible component root with >= 2 members; all
  /// cut children must be proper members of that component and form an
  /// antichain; the cut must be non-empty.
  Status ValidateEdgeCut(NavNodeId root, const EdgeCut& cut) const;

  /// Performs the EXPAND (EdgeCut operation). Returns the roots of the
  /// newly created lower component subtrees, in cut order. The expanded
  /// component keeps its index and becomes the upper component subtree.
  Result<std::vector<NavNodeId>> ApplyEdgeCut(NavNodeId root,
                                              const EdgeCut& cut);

  /// Undoes the most recent EXPAND (the paper's BACKTRACK action). Returns
  /// false if there is nothing to undo.
  bool Backtrack();

  /// Number of EXPAND operations that can be backtracked.
  size_t HistorySize() const { return history_.size(); }

  /// Estimated heap footprint of the per-session state (component table,
  /// citation bitsets, backtrack history). Excludes the shared navigation
  /// tree. Drives the session-heap gauge the spill tier is judged by.
  size_t MemoryBytes() const;

  /// Visualization of the active tree (Definition 5): the embedded tree of
  /// visible nodes, each with its component's distinct citation count and
  /// an "expandable" flag (>>> hyperlink).
  struct VisNode {
    NavNodeId node = kInvalidNavNode;
    ConceptId concept_id = kInvalidConcept;
    int distinct_count = 0;
    bool expandable = false;
    std::vector<int> children;  // Indexes into VisTree::nodes.
  };
  struct VisTree {
    std::vector<VisNode> nodes;  // nodes[0] is the root.
  };
  VisTree Visualize() const;

  /// ASCII rendering of Visualize() with concept labels — what the BioNav
  /// web interface displays (used by the examples and for debugging).
  std::string RenderAscii(int max_depth = 100) const;

 private:
  struct Component {
    NavNodeId root = kInvalidNavNode;
    DynamicBitset results;
    int distinct = 0;
    int num_members = 0;
    bool alive = true;
  };

  struct HistoryEntry {
    int upper_comp = -1;
    std::vector<NavNodeId> reassigned;  // Nodes moved to lower components.
    std::vector<int> new_comps;
    DynamicBitset old_results;
    int old_distinct = 0;
    int old_num_members = 0;
  };

  int CheckComp(int comp) const {
    BIONAV_CHECK_GE(comp, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(comp), components_.size());
    BIONAV_CHECK(components_[static_cast<size_t>(comp)].alive);
    return comp;
  }

  /// Visits the members of `comp` in pre-order, skipping foreign regions in
  /// O(1) each: components are connected and up-closed toward their roots,
  /// so on hitting a node of another component the walk can jump past that
  /// component root's entire navigation subtree (no member of `comp` can
  /// hide inside it — once a node leaves a component it never returns,
  /// Backtrack excepted, and Backtrack restores whole snapshots).
  template <typename Fn>
  void ForEachMember(int comp, Fn&& fn) const {
    NavNodeId root = components_[static_cast<size_t>(comp)].root;
    NavNodeId end = nav_->SubtreeEnd(root);
    for (NavNodeId id = root; id < end;) {
      int c = comp_of_[static_cast<size_t>(id)];
      if (c == comp) {
        fn(id);
        ++id;
      } else {
        id = nav_->SubtreeEnd(components_[static_cast<size_t>(c)].root);
      }
    }
  }

  const NavigationTree* nav_;
  std::vector<int> comp_of_;
  std::vector<Component> components_;
  std::vector<HistoryEntry> history_;
};

}  // namespace bionav

#endif  // BIONAV_CORE_ACTIVE_TREE_H_
