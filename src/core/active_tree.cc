#include "core/active_tree.h"

#include <algorithm>
#include <sstream>

#include "obs/trace.h"

namespace bionav {

ActiveTree::ActiveTree(const NavigationTree* nav) : nav_(nav) {
  BIONAV_CHECK(nav != nullptr);
  comp_of_.assign(nav->size(), 0);
  Component all;
  all.root = NavigationTree::kRoot;
  all.results = nav->SubtreeResultsCached(NavigationTree::kRoot);
  all.distinct = nav->SubtreeDistinct(NavigationTree::kRoot);
  all.num_members = static_cast<int>(nav->size());
  components_.push_back(std::move(all));
}

std::vector<NavNodeId> ActiveTree::ComponentMembers(int comp) const {
  CheckComp(comp);
  std::vector<NavNodeId> out;
  out.reserve(static_cast<size_t>(components_[static_cast<size_t>(comp)].num_members));
  ForEachMember(comp, [&](NavNodeId id) { out.push_back(id); });
  return out;
}

Status ActiveTree::ValidateEdgeCut(NavNodeId root, const EdgeCut& cut) const {
  if (root < 0 || static_cast<size_t>(root) >= nav_->size()) {
    return Status::InvalidArgument("node id out of range");
  }
  int comp = ComponentOf(root);
  if (ComponentRoot(comp) != root) {
    return Status::FailedPrecondition("EXPAND must target a visible node");
  }
  if (cut.empty()) {
    return Status::InvalidArgument("EdgeCut must be non-empty");
  }
  if (ComponentSize(comp) < 2) {
    return Status::FailedPrecondition(
        "component is a singleton; nothing to expand");
  }
  for (NavNodeId u : cut.cut_children) {
    if (u < 0 || static_cast<size_t>(u) >= nav_->size()) {
      return Status::InvalidArgument("cut child out of range");
    }
    if (u == root) {
      return Status::InvalidArgument(
          "cut child equals the expanded component root");
    }
    if (ComponentOf(u) != comp) {
      return Status::InvalidArgument(
          "cut child is outside the expanded component");
    }
  }
  // Antichain check (Definition 3). Components are up-closed toward their
  // root, so navigation-tree ancestry is the right partial order here.
  for (size_t i = 0; i < cut.cut_children.size(); ++i) {
    for (size_t j = 0; j < cut.cut_children.size(); ++j) {
      if (i == j) continue;
      NavNodeId a = cut.cut_children[i];
      NavNodeId b = cut.cut_children[j];
      if (nav_->IsAncestorOrSelf(a, b)) {
        return Status::InvalidArgument(
            "invalid EdgeCut: two cut edges share a root-to-leaf path");
      }
    }
  }
  return Status::OK();
}

Result<std::vector<NavNodeId>> ActiveTree::ApplyEdgeCut(NavNodeId root,
                                                        const EdgeCut& cut) {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_engine_apply_cut_us",
      "ActiveTree EdgeCut application (component split + history)");
  TraceSpan span("apply_cut", hist);
  BIONAV_RETURN_IF_ERROR(ValidateEdgeCut(root, cut));
  const int comp = ComponentOf(root);

  HistoryEntry h;
  h.upper_comp = comp;
  // NOTE: components_ grows below, so access the upper component by index,
  // never through a cached reference.
  h.old_results = components_[static_cast<size_t>(comp)].results;
  h.old_distinct = components_[static_cast<size_t>(comp)].distinct;
  h.old_num_members = components_[static_cast<size_t>(comp)].num_members;

  // Intact components (the common case: EXPAND descending a fresh subtree)
  // contain every cut child's full navigation subtree, so each lower
  // component's citation set comes straight from the tree's subtree cache.
  const bool intact = ComponentIsIntact(comp);

  std::vector<NavNodeId> lower_roots;
  lower_roots.reserve(cut.size());
  for (NavNodeId u : cut.cut_children) {
    int new_comp = static_cast<int>(components_.size());
    Component lower;
    lower.root = u;
    NavNodeId end = nav_->SubtreeEnd(u);
    if (intact) {
      lower.results = nav_->SubtreeResultsCached(u);
      lower.distinct = nav_->SubtreeDistinct(u);
      lower.num_members = end - u;
      for (NavNodeId id = u; id < end; ++id) {
        comp_of_[static_cast<size_t>(id)] = new_comp;
        h.reassigned.push_back(id);
      }
    } else {
      lower.results = nav_->result().MakeBitset();
      // Skip regions belonging to other components in O(1) each (see
      // ForEachMember for why the jump is sound).
      for (NavNodeId id = u; id < end;) {
        int c = comp_of_[static_cast<size_t>(id)];
        if (c != comp) {
          id = nav_->SubtreeEnd(components_[static_cast<size_t>(c)].root);
          continue;
        }
        comp_of_[static_cast<size_t>(id)] = new_comp;
        lower.results.UnionWith(nav_->results(id));
        lower.num_members++;
        h.reassigned.push_back(id);
        ++id;
      }
      lower.distinct = static_cast<int>(lower.results.Count());
    }
    components_[static_cast<size_t>(comp)].num_members -= lower.num_members;
    components_.push_back(std::move(lower));
    h.new_comps.push_back(new_comp);
    lower_roots.push_back(u);
  }

  // Recompute the (shrunken) upper component's citation set. Distinct
  // counts are not subtractive under duplicates, so re-aggregate members
  // (skipping foreign subtrees wholesale).
  Component& upper = components_[static_cast<size_t>(comp)];
  upper.results.Clear();
  ForEachMember(comp, [&](NavNodeId id) {
    upper.results.UnionWith(nav_->results(id));
  });
  upper.distinct = static_cast<int>(upper.results.Count());

  history_.push_back(std::move(h));
  return lower_roots;
}

bool ActiveTree::Backtrack() {
  if (history_.empty()) return false;
  HistoryEntry h = std::move(history_.back());
  history_.pop_back();

  Component& upper = components_[static_cast<size_t>(h.upper_comp)];
  for (NavNodeId id : h.reassigned) {
    comp_of_[static_cast<size_t>(id)] = h.upper_comp;
  }
  upper.results = std::move(h.old_results);
  upper.distinct = h.old_distinct;
  upper.num_members = h.old_num_members;

  // The undone lower components are the most recently created ones.
  for (auto it = h.new_comps.rbegin(); it != h.new_comps.rend(); ++it) {
    BIONAV_CHECK_EQ(*it, static_cast<int>(components_.size()) - 1)
        << "backtrack invariant violated";
    components_.pop_back();
  }
  return true;
}

ActiveTree::VisTree ActiveTree::Visualize() const {
  VisTree vis;
  // Visible nodes in pre-order; node ids are pre-order, components' roots
  // scanned in increasing id order give exactly that.
  std::vector<int> vis_index(nav_->size(), -1);
  struct StackEntry {
    NavNodeId node;
    int vis;
  };
  std::vector<StackEntry> stack;
  for (NavNodeId id = 0; id < static_cast<NavNodeId>(nav_->size()); ++id) {
    if (!IsVisible(id)) continue;
    int comp = ComponentOf(id);
    VisNode vn;
    vn.node = id;
    vn.concept_id = nav_->concept_of(id);
    vn.distinct_count = ComponentDistinctCount(comp);
    vn.expandable = ComponentSize(comp) >= 2;
    while (!stack.empty() && !nav_->IsAncestorOrSelf(stack.back().node, id)) {
      stack.pop_back();
    }
    int my_index = static_cast<int>(vis.nodes.size());
    if (!stack.empty()) {
      vis.nodes[static_cast<size_t>(stack.back().vis)].children.push_back(
          my_index);
    }
    vis.nodes.push_back(std::move(vn));
    vis_index[static_cast<size_t>(id)] = my_index;
    stack.push_back({id, my_index});
  }
  BIONAV_CHECK(!vis.nodes.empty());
  BIONAV_CHECK_EQ(vis.nodes[0].node, NavigationTree::kRoot);
  return vis;
}

std::string ActiveTree::RenderAscii(int max_depth) const {
  VisTree vis = Visualize();
  std::ostringstream out;
  const ConceptHierarchy& h = nav_->hierarchy();

  struct Frame {
    int vis;
    int depth;
  };
  std::vector<Frame> stack = {{0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.depth > max_depth) continue;
    const VisNode& vn = vis.nodes[static_cast<size_t>(f.vis)];
    for (int i = 0; i < f.depth; ++i) out << "  ";
    out << h.label(vn.concept_id) << " (" << vn.distinct_count << ")";
    if (vn.expandable) out << " >>>";
    out << "\n";
    for (auto it = vn.children.rbegin(); it != vn.children.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return out.str();
}

size_t ActiveTree::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += comp_of_.capacity() * sizeof(int);
  bytes += components_.capacity() * sizeof(Component);
  for (const Component& c : components_) bytes += c.results.MemoryBytes();
  bytes += history_.capacity() * sizeof(HistoryEntry);
  for (const HistoryEntry& h : history_) {
    bytes += h.reassigned.capacity() * sizeof(NavNodeId);
    bytes += h.new_comps.capacity() * sizeof(int);
    bytes += h.old_results.MemoryBytes();
  }
  return bytes;
}

}  // namespace bionav
