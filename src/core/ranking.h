#ifndef BIONAV_CORE_RANKING_H_
#define BIONAV_CORE_RANKING_H_

#include <string>
#include <vector>

#include "core/active_tree.h"
#include "core/cost_model.h"
#include "medline/citation_store.h"

namespace bionav {

/// Simple ranking techniques augmenting the categorization (paper Section
/// I: "We augment our categorization techniques with simple ranking
/// techniques"; Section II: revealed concepts "are ranked by their
/// relevance to the user query").

/// Relevance of a component for concept ordering: the sum of its members'
/// EXPLORE weights |L(n)|^2/|LT(n)| — the same quantity the cost model's
/// exploration probability is built on.
double ComponentRelevance(const ActiveTree& active,
                          const CostModel& cost_model, int component);

/// Definition-5 visualization with every node's children ordered by
/// descending component relevance (ties broken by pre-order id, so the
/// result is deterministic).
ActiveTree::VisTree VisualizeRanked(const ActiveTree& active,
                                    const CostModel& cost_model);

/// ASCII rendering of VisualizeRanked — the interface of Fig 2, where the
/// most relevant revealed concept lists first.
std::string RenderAsciiRanked(const ActiveTree& active,
                              const CostModel& cost_model,
                              int max_depth = 100);

/// One ranked SHOWRESULTS entry.
struct RankedCitation {
  CitationId id = kInvalidCitation;
  double score = 0;
};

/// Ranks citations for display after SHOWRESULTS: primary key is the
/// number of query terms the citation's indexed terms match, secondary key
/// is recency (publication year), final tie-break is the PMID. Scores are
/// match_count + year/10000 so they are also directly comparable.
std::vector<RankedCitation> RankCitations(const CitationStore& store,
                                          const std::vector<CitationId>& ids,
                                          const std::string& query);

}  // namespace bionav

#endif  // BIONAV_CORE_RANKING_H_
