#ifndef BIONAV_CORE_TREE_STATS_H_
#define BIONAV_CORE_TREE_STATS_H_

#include <cstdint>

#include "core/navigation_tree.h"

namespace bionav {

/// The per-query navigation-tree characteristics the paper reports in
/// Table I, as a reusable API (the Table I bench and the CLI both print
/// these).
struct NavigationTreeStats {
  /// Distinct citations in the query result.
  int result_citations = 0;
  /// Navigation-tree node count (after maximum embedding).
  int tree_size = 0;
  /// Maximum number of nodes on one level.
  int max_width = 0;
  /// Maximum node depth (root = 0).
  int height = 0;
  /// Total attachments, counting a citation once per concept it is
  /// attached to ("Citations in Navigation Tree w/ Duplicates").
  int64_t attachments_with_duplicates = 0;
  /// Maximum child fan-out of any single node.
  int max_fanout = 0;
  /// Average attachments per node, attachments_with_duplicates/tree_size.
  double mean_attachments_per_node = 0;
};

/// Computes the statistics for one navigation tree (single pass).
NavigationTreeStats ComputeTreeStats(const NavigationTree& nav);

/// Target-concept characteristics (the right half of Table I).
struct TargetConceptStats {
  /// Depth of the concept in the concept hierarchy ("MeSH Level").
  int mesh_level = 0;
  /// Citations of the target in the query result, |L(t)|.
  int attached_in_result = 0;
  /// Citations of the target corpus-wide, |LT(t)|.
  int64_t global_count = 0;
  /// Query selectivity on the target, |L|/|LT| (0 when |LT| = 0).
  double selectivity = 0;
  /// True when the target survived into the navigation tree.
  bool in_navigation_tree = false;
};

/// Computes the target-concept columns for a (tree, concept) pair.
TargetConceptStats ComputeTargetStats(const NavigationTree& nav,
                                      ConceptId target);

}  // namespace bionav

#endif  // BIONAV_CORE_TREE_STATS_H_
