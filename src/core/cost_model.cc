#include "core/cost_model.h"

#include <cmath>

namespace bionav {

CostModel::CostModel(const NavigationTree* nav, CostModelParams params)
    : nav_(nav), params_(params) {
  BIONAV_CHECK(nav != nullptr);
  BIONAV_CHECK_GE(params_.expand_lower_threshold, 0);
  BIONAV_CHECK_GE(params_.expand_upper_threshold,
                  params_.expand_lower_threshold);
  weights_.resize(nav->size());
  for (size_t i = 0; i < nav->size(); ++i) {
    const NavNode& n = nav->node(static_cast<NavNodeId>(i));
    double attached = static_cast<double>(n.attached_count);
    // |LT(n)| >= |L(n)| always holds for real association data; synthetic
    // or hand-built fixtures may omit global counts, so guard the ratio.
    double global = static_cast<double>(
        n.global_count > 0 ? n.global_count : n.attached_count);
    switch (params_.explore_weight_mode) {
      case ExploreWeightMode::kSquaredOverGlobal:
        weights_[i] = global > 0 ? attached * attached / global : 0.0;
        break;
      case ExploreWeightMode::kCount:
        weights_[i] = attached;
        break;
      case ExploreWeightMode::kSelectivity:
        weights_[i] = global > 0 ? attached / global : 0.0;
        break;
    }
    normalization_ += weights_[i];
  }
}

double CostModel::MemberEntropy(int distinct_count,
                                const std::vector<int>& member_counts) {
  if (distinct_count <= 0) return 0;
  double total = static_cast<double>(distinct_count);
  double entropy = 0;
  for (int c : member_counts) {
    if (c <= 0) continue;
    double p = static_cast<double>(c) / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double CostModel::ExpandProbability(
    int distinct_count, const std::vector<int>& member_counts) const {
  if (member_counts.size() <= 1) return 0;  // Singleton component or leaf.
  if (distinct_count > params_.expand_upper_threshold) return 1;
  if (distinct_count < params_.expand_lower_threshold) return 0;
  double max_entropy = std::log2(static_cast<double>(member_counts.size()));
  if (max_entropy <= 0) return 0;
  double p = MemberEntropy(distinct_count, member_counts) / max_entropy;
  return p < 0 ? 0 : (p > 1 ? 1 : p);
}

}  // namespace bionav
