#include "core/tree_stats.h"

#include <algorithm>
#include <vector>

namespace bionav {

NavigationTreeStats ComputeTreeStats(const NavigationTree& nav) {
  NavigationTreeStats stats;
  stats.result_citations = static_cast<int>(nav.result().size());
  stats.tree_size = static_cast<int>(nav.size());

  std::vector<int> depth(nav.size(), 0);
  std::vector<int> width;
  for (size_t i = 0; i < nav.size(); ++i) {
    const NavNode& node = nav.node(static_cast<NavNodeId>(i));
    if (i > 0) {
      depth[i] = depth[static_cast<size_t>(node.parent)] + 1;
    }
    if (static_cast<size_t>(depth[i]) >= width.size()) {
      width.resize(static_cast<size_t>(depth[i]) + 1, 0);
    }
    width[static_cast<size_t>(depth[i])]++;
    stats.height = std::max(stats.height, depth[i]);
    stats.attachments_with_duplicates += node.attached_count;
    stats.max_fanout =
        std::max(stats.max_fanout, static_cast<int>(node.children.size()));
  }
  stats.max_width =
      width.empty() ? 0 : *std::max_element(width.begin(), width.end());
  stats.mean_attachments_per_node =
      stats.tree_size > 0
          ? static_cast<double>(stats.attachments_with_duplicates) /
                static_cast<double>(stats.tree_size)
          : 0;
  return stats;
}

TargetConceptStats ComputeTargetStats(const NavigationTree& nav,
                                      ConceptId target) {
  TargetConceptStats stats;
  stats.mesh_level = nav.hierarchy().depth(target);
  NavNodeId node = nav.NodeOfConcept(target);
  stats.in_navigation_tree = node != kInvalidNavNode;
  if (stats.in_navigation_tree) {
    stats.attached_in_result = nav.attached_count(node);
    stats.global_count = nav.global_count(node);
    stats.selectivity =
        stats.global_count > 0
            ? static_cast<double>(stats.attached_in_result) /
                  static_cast<double>(stats.global_count)
            : 0;
  }
  return stats;
}

}  // namespace bionav
