#include "core/ranking.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/string_util.h"

namespace bionav {

double ComponentRelevance(const ActiveTree& active,
                          const CostModel& cost_model, int component) {
  double weight = 0;
  for (NavNodeId m : active.ComponentMembers(component)) {
    weight += cost_model.NodeExploreWeight(m);
  }
  return weight;
}

ActiveTree::VisTree VisualizeRanked(const ActiveTree& active,
                                    const CostModel& cost_model) {
  ActiveTree::VisTree vis = active.Visualize();
  // Relevance per vis node = its component's weight sum.
  std::vector<double> relevance(vis.nodes.size(), 0);
  for (size_t i = 0; i < vis.nodes.size(); ++i) {
    relevance[i] = ComponentRelevance(active, cost_model,
                                      active.ComponentOf(vis.nodes[i].node));
  }
  for (ActiveTree::VisNode& node : vis.nodes) {
    std::stable_sort(node.children.begin(), node.children.end(),
                     [&](int a, int b) {
                       double ra = relevance[static_cast<size_t>(a)];
                       double rb = relevance[static_cast<size_t>(b)];
                       if (ra != rb) return ra > rb;
                       return vis.nodes[static_cast<size_t>(a)].node <
                              vis.nodes[static_cast<size_t>(b)].node;
                     });
  }
  return vis;
}

std::string RenderAsciiRanked(const ActiveTree& active,
                              const CostModel& cost_model, int max_depth) {
  ActiveTree::VisTree vis = VisualizeRanked(active, cost_model);
  const ConceptHierarchy& h = active.nav().hierarchy();
  std::ostringstream out;
  struct Frame {
    int vis;
    int depth;
  };
  std::vector<Frame> stack = {{0, 0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.depth > max_depth) continue;
    const ActiveTree::VisNode& vn = vis.nodes[static_cast<size_t>(f.vis)];
    for (int i = 0; i < f.depth; ++i) out << "  ";
    out << h.label(vn.concept_id) << " (" << vn.distinct_count << ")";
    if (vn.expandable) out << " >>>";
    out << "\n";
    for (auto it = vn.children.rbegin(); it != vn.children.rend(); ++it) {
      stack.push_back({*it, f.depth + 1});
    }
  }
  return out.str();
}

std::vector<RankedCitation> RankCitations(const CitationStore& store,
                                          const std::vector<CitationId>& ids,
                                          const std::string& query) {
  std::unordered_set<int32_t> query_terms;
  for (const std::string& tok : TokenizeTerms(query)) {
    int32_t id = store.LookupTerm(tok);
    if (id >= 0) query_terms.insert(id);
  }

  std::vector<RankedCitation> ranked;
  ranked.reserve(ids.size());
  for (CitationId id : ids) {
    const Citation& c = store.Get(id);
    int matches = 0;
    std::unordered_set<int32_t> seen;
    for (int32_t t : c.term_ids) {
      if (query_terms.count(t) && seen.insert(t).second) ++matches;
    }
    RankedCitation rc;
    rc.id = id;
    rc.score = static_cast<double>(matches) +
               static_cast<double>(c.year) / 10000.0;
    ranked.push_back(rc);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](const RankedCitation& a, const RankedCitation& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return store.Get(a.id).pmid < store.Get(b.id).pmid;
                   });
  return ranked;
}

}  // namespace bionav
