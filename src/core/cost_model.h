#ifndef BIONAV_CORE_COST_MODEL_H_
#define BIONAV_CORE_COST_MODEL_H_

#include <vector>

#include "core/navigation_tree.h"

namespace bionav {

/// EXPLORE-weight formula variants (Section IV ablation). The paper argues
/// for |L(n)|^2/|LT(n)|: result size times query selectivity, penalizing
/// concepts that are globally common independently of the query (the IDF
/// analogy). The alternatives drop one of the two factors.
enum class ExploreWeightMode {
  /// |L(n)|^2 / |LT(n)| — the paper's formula.
  kSquaredOverGlobal,
  /// |L(n)| — raw result counts (no selectivity; what count-ranked
  /// interfaces implicitly use).
  kCount,
  /// |L(n)| / |LT(n)| — selectivity alone (no size factor).
  kSelectivity,
};

/// Tunable constants of the TOPDOWN cost model (paper Section III). The
/// paper sets every unit cost to 1 and notes that raising the EXPAND-action
/// cost makes each EXPAND reveal more concepts (our Ablation B sweeps it).
struct CostModelParams {
  /// Cost of executing one EXPAND action.
  double expand_cost = 1.0;
  /// Cost of examining one newly revealed concept.
  double reveal_cost = 1.0;
  /// Cost of examining one citation after SHOWRESULTS.
  double show_cost = 1.0;
  /// |L(I)| above which the EXPAND probability is pinned to 1.
  int expand_upper_threshold = 50;
  /// |L(I)| below which the EXPAND probability is pinned to 0.
  int expand_lower_threshold = 10;
  /// EXPLORE-weight formula (Ablation F sweeps the variants).
  ExploreWeightMode explore_weight_mode =
      ExploreWeightMode::kSquaredOverGlobal;
};

/// The navigation cost model of Sections III-IV: per-node EXPLORE weights
/// |L(n)|^2 / |LT(n)| with global normalization, and the entropy-based
/// EXPAND probability with the paper's 50/10 thresholds.
///
/// The model is bound to one navigation tree (one query result); the
/// EdgeCut optimizers consult it when scoring component subtrees.
class CostModel {
 public:
  explicit CostModel(const NavigationTree* nav,
                     CostModelParams params = CostModelParams());

  CostModel(const CostModel&) = delete;
  CostModel& operator=(const CostModel&) = delete;
  CostModel(CostModel&&) = default;
  CostModel& operator=(CostModel&&) = default;

  const CostModelParams& params() const { return params_; }
  const NavigationTree& nav() const { return *nav_; }

  /// Unnormalized EXPLORE weight of one node: |L(n)|^2 / |LT(n)|.
  double NodeExploreWeight(NavNodeId id) const {
    BIONAV_CHECK_GE(id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(id), weights_.size());
    return weights_[static_cast<size_t>(id)];
  }

  /// Normalization constant Z = sum of weights over the whole navigation
  /// tree, so that the initial active tree has EXPLORE probability 1.
  double normalization() const { return normalization_; }

  /// EXPLORE probability of a component whose members' weights sum to
  /// `weight_sum`: pE = weight_sum / Z.
  double ExploreProbability(double weight_sum) const {
    if (normalization_ <= 0) return 0;
    double p = weight_sum / normalization_;
    return p < 0 ? 0 : (p > 1 ? 1 : p);
  }

  /// EXPAND probability of a component with the given distinct citation
  /// count and per-member attached counts (|L(v)| for v in I):
  ///   - 0 for singleton components (and leaves);
  ///   - 1 if distinct > upper threshold;
  ///   - 0 if distinct < lower threshold;
  ///   - otherwise normalized entropy of the member distribution, clamped
  ///     to [0, 1] (duplicates can push the raw sum above the maximum).
  double ExpandProbability(int distinct_count,
                           const std::vector<int>& member_counts) const;

  /// Raw (unnormalized, unclamped) entropy term used by ExpandProbability —
  /// exposed for tests.
  static double MemberEntropy(int distinct_count,
                              const std::vector<int>& member_counts);

  /// Heap bytes of the weight table (QueryArtifactCache accounting).
  size_t MemoryFootprint() const {
    return sizeof(CostModel) + weights_.capacity() * sizeof(double);
  }

 private:
  const NavigationTree* nav_;
  CostModelParams params_;
  std::vector<double> weights_;
  double normalization_ = 0;
};

}  // namespace bionav

#endif  // BIONAV_CORE_COST_MODEL_H_
