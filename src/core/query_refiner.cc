#include "core/query_refiner.h"

#include <algorithm>
#include <unordered_map>

namespace bionav {

QueryRefiner::QueryRefiner(const ConceptHierarchy* hierarchy,
                           const EUtilsClient* eutils)
    : hierarchy_(hierarchy), eutils_(eutils) {
  BIONAV_CHECK(hierarchy != nullptr);
  BIONAV_CHECK(eutils != nullptr);
}

std::vector<RefinementSuggestion> QueryRefiner::Suggest(
    const std::vector<CitationId>& result, size_t k, int min_count) const {
  std::unordered_map<ConceptId, int> counts;
  for (CitationId id : result) {
    for (ConceptId c : eutils_->ConceptsOf(id)) counts[c]++;
  }
  std::vector<RefinementSuggestion> suggestions;
  suggestions.reserve(counts.size());
  for (const auto& [concept_id, count] : counts) {
    if (count < min_count) continue;
    if (count == static_cast<int>(result.size())) continue;  // No narrowing.
    RefinementSuggestion s;
    s.concept_id = concept_id;
    s.label = hierarchy_->label(concept_id);
    s.result_count = count;
    suggestions.push_back(std::move(s));
  }
  std::sort(suggestions.begin(), suggestions.end(),
            [](const RefinementSuggestion& a, const RefinementSuggestion& b) {
              if (a.result_count != b.result_count) {
                return a.result_count > b.result_count;
              }
              return a.concept_id < b.concept_id;
            });
  if (suggestions.size() > k) suggestions.resize(k);
  return suggestions;
}

std::vector<CitationId> QueryRefiner::Refine(
    const std::vector<CitationId>& result, ConceptId concept_id) const {
  std::vector<CitationId> refined;
  for (CitationId id : result) {
    const std::vector<ConceptId>& concepts = eutils_->ConceptsOf(id);
    if (std::find(concepts.begin(), concepts.end(), concept_id) !=
        concepts.end()) {
      refined.push_back(id);
    }
  }
  return refined;
}

namespace {

/// Number of citations in `result` associated with `target`.
int CountTarget(const EUtilsClient& eutils,
                const std::vector<CitationId>& result, ConceptId target) {
  int count = 0;
  for (CitationId id : result) {
    const std::vector<ConceptId>& concepts = eutils.ConceptsOf(id);
    if (std::find(concepts.begin(), concepts.end(), target) !=
        concepts.end()) {
      ++count;
    }
  }
  return count;
}

/// True when at least one citation of `result` is associated with
/// `target` — the oracle refuses refinements that would lose the target
/// literature entirely.
bool KeepsTarget(const EUtilsClient& eutils,
                 const std::vector<CitationId>& result, ConceptId target) {
  return CountTarget(eutils, result, target) > 0;
}

}  // namespace

RefinementMetrics NavigateByRefinement(const QueryRefiner& refiner,
                                       const EUtilsClient& eutils,
                                       const std::string& query,
                                       ConceptId target, size_t page_size,
                                       int stop_threshold, int max_rounds) {
  RefinementMetrics metrics;
  std::vector<CitationId> result = eutils.ESearch(query);
  metrics.target_citations_total = CountTarget(eutils, result, target);
  BIONAV_CHECK(metrics.target_citations_total > 0)
      << "target concept has no citations in this query result";

  while (static_cast<int>(result.size()) > stop_threshold &&
         metrics.rounds < max_rounds) {
    std::vector<RefinementSuggestion> suggestions =
        refiner.Suggest(result, page_size);
    metrics.suggestions_read += static_cast<int>(suggestions.size());
    // Oracle choice: the suggestion that narrows the most while keeping
    // the target literature reachable.
    std::vector<CitationId> best;
    bool found = false;
    for (const RefinementSuggestion& s : suggestions) {
      std::vector<CitationId> refined = refiner.Refine(result, s.concept_id);
      if (refined.size() >= result.size()) continue;
      if (!KeepsTarget(eutils, refined, target)) continue;
      if (!found || refined.size() < best.size()) {
        best = std::move(refined);
        found = true;
      }
    }
    if (!found) {
      metrics.stalled = true;
      break;
    }
    metrics.rounds++;
    result = std::move(best);
  }
  metrics.final_results = static_cast<int>(result.size());
  metrics.target_citations_retained = CountTarget(eutils, result, target);
  return metrics;
}

}  // namespace bionav
