#include "core/json_export.h"

#include <cstdio>
#include <sstream>

#include "core/ranking.h"

namespace bionav {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

void EmitNode(const ActiveTree::VisTree& vis, const ConceptHierarchy& h,
              int index, int depth, int max_depth, std::ostringstream* out) {
  const ActiveTree::VisNode& node = vis.nodes[static_cast<size_t>(index)];
  *out << "{\"label\":\"" << JsonEscape(h.label(node.concept_id))
       << "\",\"count\":" << node.distinct_count << ",\"expandable\":"
       << (node.expandable ? "true" : "false") << ",\"node\":" << node.node
       << ",\"children\":[";
  if (depth < max_depth) {
    bool first = true;
    for (int child : node.children) {
      if (!first) *out << ',';
      first = false;
      EmitNode(vis, h, child, depth + 1, max_depth, out);
    }
  }
  *out << "]}";
}

}  // namespace

std::string VisualizationToJson(const ActiveTree& active,
                                const CostModel& cost_model, int max_depth) {
  ActiveTree::VisTree vis = VisualizeRanked(active, cost_model);
  std::ostringstream out;
  EmitNode(vis, active.nav().hierarchy(), 0, 0, max_depth, &out);
  return out.str();
}

std::string SummariesToJson(const std::vector<CitationSummary>& summaries) {
  std::ostringstream out;
  out << '[';
  for (size_t i = 0; i < summaries.size(); ++i) {
    if (i) out << ',';
    out << "{\"pmid\":" << summaries[i].pmid
        << ",\"year\":" << summaries[i].year << ",\"title\":\""
        << JsonEscape(summaries[i].title) << "\"}";
  }
  out << ']';
  return out.str();
}

}  // namespace bionav
