#include "core/result_set.h"

namespace bionav {

ResultSet::ResultSet(const std::vector<CitationId>& citations) {
  citations_.reserve(citations.size());
  for (CitationId id : citations) {
    if (local_.emplace(id, static_cast<int>(citations_.size())).second) {
      citations_.push_back(id);
    }
  }
}

int ResultSet::LocalIndex(CitationId id) const {
  auto it = local_.find(id);
  return it == local_.end() ? -1 : it->second;
}

size_t ResultSet::MemoryFootprint() const {
  // The hash map's exact layout is implementation-defined; approximate
  // each slot as its key/value pair plus two pointers of node/bucket
  // overhead (libstdc++'s node-based unordered_map is close to this).
  return sizeof(ResultSet) + citations_.capacity() * sizeof(CitationId) +
         local_.size() *
             (sizeof(std::pair<CitationId, int>) + 2 * sizeof(void*)) +
         local_.bucket_count() * sizeof(void*);
}

}  // namespace bionav
