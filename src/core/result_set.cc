#include "core/result_set.h"

namespace bionav {

ResultSet::ResultSet(const std::vector<CitationId>& citations) {
  citations_.reserve(citations.size());
  for (CitationId id : citations) {
    if (local_.emplace(id, static_cast<int>(citations_.size())).second) {
      citations_.push_back(id);
    }
  }
}

int ResultSet::LocalIndex(CitationId id) const {
  auto it = local_.find(id);
  return it == local_.end() ? -1 : it->second;
}

}  // namespace bionav
