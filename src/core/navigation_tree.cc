#include "core/navigation_tree.h"

#include <algorithm>
#include <unordered_map>

#include "obs/trace.h"

namespace bionav {

NavigationTree::NavigationTree(const ConceptHierarchy& hierarchy,
                               const AssociationTable& associations,
                               std::shared_ptr<const ResultSet> result)
    : hierarchy_(&hierarchy), result_(std::move(result)) {
  static LatencyHistogram* hist = GlobalMetrics().GetHistogram(
      "bionav_engine_tree_build_us",
      "Navigation-tree construction (maximum embedding) per query");
  TraceSpan span("tree_build", hist);
  BIONAV_CHECK(hierarchy.frozen());
  BIONAV_CHECK(result_ != nullptr);

  // Initial navigation tree: attach each result citation to the concepts it
  // is associated with. Only concepts that receive at least one citation
  // survive the maximum embedding, so we materialize bitsets per touched
  // concept only.
  std::unordered_map<ConceptId, DynamicBitset> attached;
  for (size_t i = 0; i < result_->size(); ++i) {
    CitationId cid = result_->citation(i);
    for (ConceptId c : associations.ConceptsOf(cid)) {
      auto [it, inserted] = attached.try_emplace(c, result_->MakeBitset());
      (void)inserted;
      it->second.Set(i);
    }
  }
  // The hierarchy root is kept regardless (Definition 2 excludes it from
  // the non-empty requirement to avoid creating a forest) but citations
  // associated directly with the root, if any, are honored.
  concept_to_node_.assign(hierarchy.size(), kInvalidNavNode);

  // Maximum embedding via a single pre-order sweep over the hierarchy:
  // every kept node's parent is its nearest kept ancestor. This is exactly
  // the result of recursively splicing out empty nodes.
  struct StackEntry {
    ConceptId concept_id;
    NavNodeId node;
  };
  std::vector<StackEntry> stack;

  auto add_node = [&](ConceptId c, NavNodeId parent) {
    NavNodeId id = static_cast<NavNodeId>(nodes_.size());
    NavNode node;
    node.concept_id = c;
    node.parent = parent;
    auto it = attached.find(c);
    if (it != attached.end()) {
      node.results = std::move(it->second);
    } else {
      node.results = result_->MakeBitset();
    }
    node.attached_count = static_cast<int>(node.results.Count());
    node.global_count = associations.GlobalCount(c);
    nodes_.push_back(std::move(node));
    if (parent != kInvalidNavNode) {
      nodes_[static_cast<size_t>(parent)].children.push_back(id);
    }
    concept_to_node_[static_cast<size_t>(c)] = id;
    return id;
  };

  NavNodeId root = add_node(ConceptHierarchy::kRoot, kInvalidNavNode);
  BIONAV_CHECK_EQ(root, kRoot);
  stack.push_back({ConceptHierarchy::kRoot, root});

  hierarchy.PreOrder([&](ConceptId c) {
    if (c == ConceptHierarchy::kRoot) return;
    auto it = attached.find(c);
    if (it == attached.end() || !it->second.Any()) return;
    while (!stack.empty() &&
           !hierarchy.IsAncestorOrSelf(stack.back().concept_id, c)) {
      stack.pop_back();
    }
    BIONAV_CHECK(!stack.empty());
    NavNodeId id = add_node(c, stack.back().node);
    stack.push_back({c, id});
  });

  // Pre-order subtree intervals: nodes are created in pre-order, so each
  // node's interval end is the max over its descendants, computed by one
  // reverse sweep.
  subtree_end_.resize(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    subtree_end_[i] = static_cast<NavNodeId>(i + 1);
  }
  for (size_t i = nodes_.size(); i-- > 1;) {
    size_t p = static_cast<size_t>(nodes_[i].parent);
    subtree_end_[p] = std::max(subtree_end_[p], subtree_end_[i]);
  }

  attached_prefix_.resize(nodes_.size() + 1);
  attached_prefix_[0] = 0;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    attached_prefix_[i + 1] = attached_prefix_[i] + nodes_[i].attached_count;
  }
  subtree_results_.resize(nodes_.size());
  subtree_distinct_.assign(nodes_.size(), -1);
}

std::vector<SerializedNavNode> NavigationTree::ToSerializedNodes() const {
  std::vector<SerializedNavNode> out;
  out.reserve(nodes_.size());
  for (const NavNode& n : nodes_) {
    SerializedNavNode rec;
    rec.concept_id = n.concept_id;
    rec.parent = n.parent;
    rec.global_count = n.global_count;
    std::vector<size_t> idx = n.results.ToIndexes();
    rec.result_indexes.reserve(idx.size());
    for (size_t i : idx) rec.result_indexes.push_back(static_cast<uint32_t>(i));
    out.push_back(std::move(rec));
  }
  return out;
}

Result<std::shared_ptr<NavigationTree>> NavigationTree::FromSerializedNodes(
    const ConceptHierarchy& hierarchy, std::shared_ptr<const ResultSet> result,
    const std::vector<SerializedNavNode>& serialized) {
  auto bad = [](const std::string& what) {
    return Status::DataLoss("serialized navigation tree " + what);
  };
  if (result == nullptr) return bad("has no result set");
  if (serialized.empty()) return bad("is empty");
  if (serialized[0].parent != kInvalidNavNode ||
      serialized[0].concept_id != ConceptHierarchy::kRoot) {
    return bad("does not start at the hierarchy root");
  }
  // Structural validation happens up front, against the raw records: the
  // construction invariants below are enforced with CHECKs elsewhere in
  // this class, so anything not verified here could turn wire corruption
  // into a crash instead of a typed decode error.
  std::vector<bool> concept_seen(hierarchy.size(), false);
  // A valid pre-order layout means each node's parent is on the ancestor
  // path of the previous node (the "open" chain of unfinished subtrees).
  std::vector<NavNodeId> open;
  open.reserve(64);
  for (size_t i = 0; i < serialized.size(); ++i) {
    const SerializedNavNode& rec = serialized[i];
    if (rec.concept_id < 0 ||
        static_cast<size_t>(rec.concept_id) >= hierarchy.size()) {
      return bad("names concept " + std::to_string(rec.concept_id) +
                 " outside the hierarchy");
    }
    if (concept_seen[static_cast<size_t>(rec.concept_id)]) {
      return bad("repeats concept " + std::to_string(rec.concept_id));
    }
    concept_seen[static_cast<size_t>(rec.concept_id)] = true;
    if (rec.global_count < 0) return bad("has a negative global count");
    uint32_t prev = 0;
    for (size_t k = 0; k < rec.result_indexes.size(); ++k) {
      uint32_t idx = rec.result_indexes[k];
      if (idx >= result->size()) return bad("result index out of range");
      if (k > 0 && idx <= prev) return bad("result indexes not ascending");
      prev = idx;
    }
    if (i == 0) {
      open.push_back(0);
      continue;
    }
    if (rec.parent < 0 || static_cast<size_t>(rec.parent) >= i) {
      return bad("node " + std::to_string(i) + " has parent " +
                 std::to_string(rec.parent) + " not preceding it");
    }
    // Non-root nodes of a maximum embedding carry at least one citation,
    // and their concept nests under the parent's in the hierarchy.
    if (rec.result_indexes.empty()) {
      return bad("has an empty non-root node");
    }
    if (!hierarchy.IsAncestorOrSelf(serialized[static_cast<size_t>(rec.parent)]
                                        .concept_id,
                                    rec.concept_id)) {
      return bad("breaks hierarchy ancestry at node " + std::to_string(i));
    }
    while (!open.empty() && open.back() != rec.parent) open.pop_back();
    if (open.empty()) {
      return bad("is not a pre-order layout (parent " +
                 std::to_string(rec.parent) + " closed before node " +
                 std::to_string(i) + ")");
    }
    open.push_back(static_cast<NavNodeId>(i));
  }

  std::shared_ptr<NavigationTree> tree(
      new NavigationTree(&hierarchy, std::move(result)));
  tree->nodes_.reserve(serialized.size());
  tree->concept_to_node_.assign(hierarchy.size(), kInvalidNavNode);
  for (size_t i = 0; i < serialized.size(); ++i) {
    const SerializedNavNode& rec = serialized[i];
    NavNode node;
    node.concept_id = rec.concept_id;
    node.parent = rec.parent;
    node.results = tree->result_->MakeBitset();
    for (uint32_t idx : rec.result_indexes) node.results.Set(idx);
    node.attached_count = static_cast<int>(rec.result_indexes.size());
    node.global_count = rec.global_count;
    tree->nodes_.push_back(std::move(node));
    if (rec.parent != kInvalidNavNode) {
      tree->nodes_[static_cast<size_t>(rec.parent)].children.push_back(
          static_cast<NavNodeId>(i));
    }
    tree->concept_to_node_[static_cast<size_t>(rec.concept_id)] =
        static_cast<NavNodeId>(i);
  }
  // Derived tables, exactly as the associating constructor computes them.
  tree->subtree_end_.resize(tree->nodes_.size());
  for (size_t i = 0; i < tree->nodes_.size(); ++i) {
    tree->subtree_end_[i] = static_cast<NavNodeId>(i + 1);
  }
  for (size_t i = tree->nodes_.size(); i-- > 1;) {
    size_t p = static_cast<size_t>(tree->nodes_[i].parent);
    tree->subtree_end_[p] = std::max(tree->subtree_end_[p],
                                     tree->subtree_end_[i]);
  }
  tree->attached_prefix_.resize(tree->nodes_.size() + 1);
  tree->attached_prefix_[0] = 0;
  for (size_t i = 0; i < tree->nodes_.size(); ++i) {
    tree->attached_prefix_[i + 1] =
        tree->attached_prefix_[i] + tree->nodes_[i].attached_count;
  }
  tree->subtree_results_.resize(tree->nodes_.size());
  tree->subtree_distinct_.assign(tree->nodes_.size(), -1);
  // Shared across sessions by definition (it crossed a shard boundary), so
  // always freeze — this also runs the SoA==lazy cross-validation over the
  // freshly rebuilt layout.
  tree->Freeze();
  return tree;
}

int NavigationTree::NodeDepth(NavNodeId id) const {
  int d = 0;
  for (NavNodeId u = parent(id); u != kInvalidNavNode; u = parent(u)) {
    ++d;
  }
  return d;
}

NavNodeId NavigationTree::NodeOfConcept(ConceptId concept_id) const {
  BIONAV_CHECK_GE(concept_id, 0);
  BIONAV_CHECK_LT(static_cast<size_t>(concept_id), concept_to_node_.size());
  return concept_to_node_[static_cast<size_t>(concept_id)];
}

DynamicBitset NavigationTree::SubtreeResults(NavNodeId id) const {
  return SubtreeResultsCached(id);  // Copy.
}

const DynamicBitset& NavigationTree::SubtreeResultsCached(
    NavNodeId id) const {
  BIONAV_CHECK_GE(id, 0);
  BIONAV_CHECK_LT(static_cast<size_t>(id), nodes_.size());
  if (subtree_distinct_[static_cast<size_t>(id)] >= 0) {
    return subtree_results_[static_cast<size_t>(id)];
  }
  // Freeze() materialized every node, so a fill on a frozen tree means a
  // stale index or corrupted cache — and would race concurrent readers.
  BIONAV_CHECK(!frozen_) << "lazy subtree-cache fill on a frozen tree";
  // Fill the whole subtree in one reverse-pre-order sweep (children precede
  // parents); nodes already cached by earlier calls are reused as-is.
  NavNodeId end = SubtreeEnd(id);
  for (NavNodeId u = end; u-- > id;) {
    size_t i = static_cast<size_t>(u);
    if (subtree_distinct_[i] >= 0) continue;
    DynamicBitset acc = nodes_[i].results;
    for (NavNodeId c : nodes_[i].children) {
      acc.UnionWith(subtree_results_[static_cast<size_t>(c)]);
    }
    subtree_distinct_[i] = static_cast<int>(acc.Count());
    subtree_results_[i] = std::move(acc);
  }
  return subtree_results_[static_cast<size_t>(id)];
}

void NavigationTree::BuildFlatLayout() {
  size_t n = nodes_.size();
  soa_concept_.resize(n);
  soa_parent_.resize(n);
  soa_first_child_.resize(n);
  soa_next_sibling_.resize(n);
  soa_attached_.resize(n);
  soa_global_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const NavNode& node = nodes_[i];
    NavNodeId id = static_cast<NavNodeId>(i);
    soa_concept_[i] = node.concept_id;
    soa_parent_[i] = node.parent;
    soa_attached_[i] = node.attached_count;
    soa_global_[i] = node.global_count;
    // Child links come from pre-order arithmetic, not the child vectors:
    // the first child of a non-leaf is the next id, and a node's next
    // sibling starts where its subtree ends (if still inside the parent's
    // interval). Deriving them independently makes the equivalence check
    // below a real cross-validation of the two layouts.
    soa_first_child_[i] =
        subtree_end_[i] > id + 1 ? id + 1 : kInvalidNavNode;
    if (node.parent == kInvalidNavNode) {
      soa_next_sibling_[i] = kInvalidNavNode;
    } else {
      NavNodeId end = subtree_end_[i];
      soa_next_sibling_[i] =
          end < subtree_end_[static_cast<size_t>(node.parent)]
              ? end
              : kInvalidNavNode;
    }
  }
  // SoA == lazy equivalence: walking every sibling chain must reproduce
  // each pointer node's child vector exactly (same ids, same order).
  for (size_t i = 0; i < n; ++i) {
    const std::vector<NavNodeId>& children = nodes_[i].children;
    size_t k = 0;
    for (NavNodeId c = soa_first_child_[i]; c != kInvalidNavNode;
         c = soa_next_sibling_[static_cast<size_t>(c)]) {
      BIONAV_CHECK_LT(k, children.size())
          << "SoA sibling chain longer than child vector";
      BIONAV_CHECK_EQ(c, children[k]) << "SoA child order diverges";
      ++k;
    }
    BIONAV_CHECK_EQ(k, children.size())
        << "SoA sibling chain shorter than child vector";
  }
}

void NavigationTree::Freeze() {
  if (frozen_) return;
  // The root fill materializes the cache for every node in one sweep;
  // after this, every const method is a pure read.
  SubtreeResultsCached(kRoot);
  BuildFlatLayout();
  frozen_ = true;
}

size_t NavigationTree::MemoryFootprint() const {
  size_t bytes = sizeof(NavigationTree);
  for (const NavNode& n : nodes_) {
    bytes += sizeof(NavNode) + n.children.capacity() * sizeof(NavNodeId) +
             n.results.MemoryBytes();
  }
  bytes += (nodes_.capacity() - nodes_.size()) * sizeof(NavNode);
  bytes += concept_to_node_.capacity() * sizeof(NavNodeId);
  bytes += subtree_end_.capacity() * sizeof(NavNodeId);
  bytes += attached_prefix_.capacity() * sizeof(int64_t);
  bytes += subtree_distinct_.capacity() * sizeof(int);
  bytes += subtree_results_.capacity() * sizeof(DynamicBitset);
  for (const DynamicBitset& b : subtree_results_) bytes += b.MemoryBytes();
  bytes += soa_concept_.capacity() * sizeof(ConceptId);
  bytes += (soa_parent_.capacity() + soa_first_child_.capacity() +
            soa_next_sibling_.capacity()) *
           sizeof(NavNodeId);
  bytes += soa_attached_.capacity() * sizeof(int);
  bytes += soa_global_.capacity() * sizeof(int64_t);
  return bytes;
}

int NavigationTree::SubtreeDistinct(NavNodeId id) const {
  SubtreeResultsCached(id);
  return subtree_distinct_[static_cast<size_t>(id)];
}

int64_t NavigationTree::TotalAttachedWithDuplicates() const {
  return attached_prefix_.back();
}

int NavigationTree::MaxWidth() const {
  std::vector<int> depth(nodes_.size(), 0);
  std::vector<int> width;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    // Nodes are created in pre-order, so parents precede children.
    depth[i] = depth[static_cast<size_t>(nodes_[i].parent)] + 1;
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (static_cast<size_t>(depth[i]) >= width.size()) {
      width.resize(static_cast<size_t>(depth[i]) + 1, 0);
    }
    width[static_cast<size_t>(depth[i])]++;
  }
  return width.empty() ? 0 : *std::max_element(width.begin(), width.end());
}

int NavigationTree::Height() const {
  std::vector<int> depth(nodes_.size(), 0);
  int h = 0;
  for (size_t i = 1; i < nodes_.size(); ++i) {
    depth[i] = depth[static_cast<size_t>(nodes_[i].parent)] + 1;
    h = std::max(h, depth[i]);
  }
  return h;
}

std::vector<NavNodeId> NavigationTree::PreOrderIds() const {
  // Nodes are stored in pre-order by construction.
  std::vector<NavNodeId> ids(nodes_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<NavNodeId>(i);
  return ids;
}

}  // namespace bionav
