#ifndef BIONAV_CORE_NAVIGATION_TREE_H_
#define BIONAV_CORE_NAVIGATION_TREE_H_

#include <memory>
#include <vector>

#include "core/result_set.h"
#include "hierarchy/concept_hierarchy.h"
#include "medline/association_table.h"
#include "util/bitset.h"
#include "util/status.h"

namespace bionav {

/// Dense node index within one NavigationTree (distinct from ConceptId:
/// the navigation tree is the *maximum embedding* of the initial navigation
/// tree, so most hierarchy nodes do not appear in it).
using NavNodeId = int32_t;
inline constexpr NavNodeId kInvalidNavNode = -1;

/// One node of the navigation tree: a concept with a non-empty results list
/// (except possibly the root, kept to preserve a single tree).
struct NavNode {
  ConceptId concept_id = kInvalidConcept;
  NavNodeId parent = kInvalidNavNode;
  std::vector<NavNodeId> children;
  /// Citations (local result indexes) directly associated with the concept
  /// — the paper's L(n).
  DynamicBitset results;
  /// |L(n)| cached.
  int attached_count = 0;
  /// Corpus-wide citation count of the concept — the paper's |LT(n)|,
  /// the denominator of the EXPLORE probability.
  int64_t global_count = 0;
};

/// One node of a serialized navigation tree, in pre-order: what the
/// artifact codec moves between shards. Children vectors are not carried —
/// a valid pre-order layout reconstructs them (ascending-id append to the
/// parent reproduces the construction-time order exactly).
struct SerializedNavNode {
  ConceptId concept_id = kInvalidConcept;
  NavNodeId parent = kInvalidNavNode;
  int64_t global_count = 0;
  /// Local result indexes of L(n), strictly ascending (bitset order).
  std::vector<uint32_t> result_indexes;
};

/// The paper's Navigation Tree (Definition 2): the maximum embedding of the
/// initial navigation tree such that no node except the root has an empty
/// results list. Construction attaches each result citation to its
/// associated concepts (Definition: Initial Navigation Tree) and then
/// splices out empty nodes bottom-up, preserving ancestor/descendant
/// relationships.
class NavigationTree {
 public:
  /// Builds the navigation tree for `result` using the citation->concepts
  /// associations. The hierarchy and the tables must outlive the tree.
  NavigationTree(const ConceptHierarchy& hierarchy,
                 const AssociationTable& associations,
                 std::shared_ptr<const ResultSet> result);

  /// Reconstructs a tree from pre-order node records captured on another
  /// shard (the FETCH_ARTIFACT path). The records are untrusted: every
  /// structural invariant (root first, parents preceding children in a
  /// valid pre-order nesting, concepts unique and inside the hierarchy,
  /// result indexes ascending and inside the result set) is validated
  /// BEFORE any internal table is built, so arbitrary bytes yield a typed
  /// kDataLoss instead of tripping a CHECK. The returned tree is Freeze()d
  /// — byte-identical SoA layout and subtree caches to a locally built,
  /// frozen tree of the same shape.
  static Result<std::shared_ptr<NavigationTree>> FromSerializedNodes(
      const ConceptHierarchy& hierarchy,
      std::shared_ptr<const ResultSet> result,
      const std::vector<SerializedNavNode>& serialized);

  /// Pre-order node records describing this tree — the codec's source.
  std::vector<SerializedNavNode> ToSerializedNodes() const;

  NavigationTree(const NavigationTree&) = delete;
  NavigationTree& operator=(const NavigationTree&) = delete;
  NavigationTree(NavigationTree&&) = default;
  NavigationTree& operator=(NavigationTree&&) = default;

  size_t size() const { return nodes_.size(); }

  static constexpr NavNodeId kRoot = 0;

  const NavNode& node(NavNodeId id) const {
    BIONAV_CHECK_GE(id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(id), nodes_.size());
    return nodes_[static_cast<size_t>(id)];
  }

  // Structure-of-arrays accessors. Freeze() flattens the pointer-based
  // nodes into parallel index arrays (parent / first-child / next-sibling
  // plus scalar columns); frozen trees are immutable and shared read-only
  // across sessions, so the dense 4-8 byte strides replace ~100-byte
  // NavNode hops on every hot EXPAND loop. Before Freeze() the accessors
  // fall back to the lazy pointer tree, so call sites never branch on
  // frozen() themselves.

  NavNodeId parent(NavNodeId id) const {
    return frozen_ ? soa_parent_[CheckedIndex(id)] : node(id).parent;
  }
  ConceptId concept_of(NavNodeId id) const {
    return frozen_ ? soa_concept_[CheckedIndex(id)] : node(id).concept_id;
  }
  int attached_count(NavNodeId id) const {
    return frozen_ ? soa_attached_[CheckedIndex(id)] : node(id).attached_count;
  }
  int64_t global_count(NavNodeId id) const {
    return frozen_ ? soa_global_[CheckedIndex(id)] : node(id).global_count;
  }
  /// L(n), the citations attached directly to the node. Bitsets are heap
  /// objects either way, so both layouts serve them from the node store.
  const DynamicBitset& results(NavNodeId id) const { return node(id).results; }

  /// First child in pre-order, or kInvalidNavNode for a leaf (SoA chain;
  /// derived from the pointer tree before Freeze()).
  NavNodeId first_child(NavNodeId id) const {
    if (frozen_) return soa_first_child_[CheckedIndex(id)];
    const NavNode& n = node(id);
    return n.children.empty() ? kInvalidNavNode : n.children.front();
  }
  /// Next sibling in pre-order, or kInvalidNavNode for a last child.
  NavNodeId next_sibling(NavNodeId id) const {
    if (frozen_) return soa_next_sibling_[CheckedIndex(id)];
    const NavNode& n = node(id);
    if (n.parent == kInvalidNavNode) return kInvalidNavNode;
    const std::vector<NavNodeId>& sibs = node(n.parent).children;
    for (size_t i = 0; i + 1 < sibs.size(); ++i) {
      if (sibs[i] == id) return sibs[i + 1];
    }
    return kInvalidNavNode;
  }

  /// Visits the children of `id` in pre-order. Uses the SoA sibling chain
  /// when frozen, the pointer tree's child vector otherwise; both orders
  /// are identical (asserted at Freeze()).
  template <typename Fn>
  void ForEachChild(NavNodeId id, Fn&& fn) const {
    if (frozen_) {
      for (NavNodeId c = soa_first_child_[CheckedIndex(id)];
           c != kInvalidNavNode; c = soa_next_sibling_[static_cast<size_t>(c)])
        fn(c);
    } else {
      for (NavNodeId c : node(id).children) fn(c);
    }
  }

  const ConceptHierarchy& hierarchy() const { return *hierarchy_; }
  const ResultSet& result() const { return *result_; }
  std::shared_ptr<const ResultSet> result_ptr() const { return result_; }

  /// Navigation-tree node of a concept, or kInvalidNavNode if the concept
  /// has no attached citations (was embedded away).
  NavNodeId NodeOfConcept(ConceptId concept_id) const;

  /// Distinct citations attached anywhere in the subtree rooted at `id`
  /// (the per-node count displayed by the static interface of Fig 1).
  DynamicBitset SubtreeResults(NavNodeId id) const;

  /// Same set, but served from a lazy per-node cache: the first call walks
  /// the subtree once (filling the cache for every node in it), later
  /// calls are O(1). EXPAND repeatedly needs subtree unions while cutting
  /// its way down one root-to-leaf path, so this turns the per-EXPAND
  /// re-walk of pre-order ranges into a single amortized pass per tree.
  /// The cache is unsynchronized: an unfrozen NavigationTree is a
  /// per-session object (see DESIGN.md "Concurrency model"); Freeze() a
  /// tree before sharing it across threads.
  const DynamicBitset& SubtreeResultsCached(NavNodeId id) const;

  /// Precomputes the subtree-results/distinct caches for every node and
  /// marks the tree frozen. A frozen tree is deeply immutable — every
  /// const method is a pure read — so one instance can serve concurrent
  /// sessions (the QueryArtifactCache's sharing contract). Reaching the
  /// lazy fill path on a frozen tree is a checked invariant violation.
  void Freeze();

  /// True once Freeze() ran.
  bool frozen() const { return frozen_; }

  /// Heap bytes held by the tree: nodes (children lists, attached-citation
  /// bitsets), the concept index, pre-order intervals, prefix sums and
  /// whatever portion of the subtree caches is materialized. Feeds the
  /// QueryArtifactCache byte budget.
  size_t MemoryFootprint() const;

  /// |SubtreeResultsCached(id)|, cached alongside the set.
  int SubtreeDistinct(NavNodeId id) const;

  /// Sum of |L(n)| over the subtree of `id`, with duplicates — O(1) via
  /// pre-order prefix sums (the k-partition weight of an intact subtree).
  int64_t SubtreeAttachedTotal(NavNodeId id) const {
    NavNodeId end = SubtreeEnd(id);
    return attached_prefix_[static_cast<size_t>(end)] -
           attached_prefix_[static_cast<size_t>(id)];
  }

  /// Sum over all nodes of |L(n)| — the "Citations in Navigation Tree w/
  /// Duplicates" column of Table I.
  int64_t TotalAttachedWithDuplicates() const;

  /// Maximum number of nodes at any single depth of the navigation tree.
  int MaxWidth() const;

  /// Maximum depth (root = 0).
  int Height() const;

  /// Node ids in pre-order.
  std::vector<NavNodeId> PreOrderIds() const;

  /// Nodes are stored in pre-order, so the subtree of `id` occupies the
  /// contiguous id range [id, SubtreeEnd(id)).
  NavNodeId SubtreeEnd(NavNodeId id) const {
    BIONAV_CHECK_GE(id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(id), subtree_end_.size());
    return subtree_end_[static_cast<size_t>(id)];
  }

  /// True iff `a` is an ancestor of `b` or a == b (navigation-tree order).
  bool IsAncestorOrSelf(NavNodeId a, NavNodeId b) const {
    return a <= b && b < SubtreeEnd(a);
  }

  /// Depth of a node in the navigation tree (root = 0).
  int NodeDepth(NavNodeId id) const;

 private:
  /// Deserialization shell: binds the hierarchy/result, leaves the node
  /// store for FromSerializedNodes to fill.
  NavigationTree(const ConceptHierarchy* hierarchy,
                 std::shared_ptr<const ResultSet> result)
      : hierarchy_(hierarchy), result_(std::move(result)) {}

  size_t CheckedIndex(NavNodeId id) const {
    BIONAV_CHECK_GE(id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(id), nodes_.size());
    return static_cast<size_t>(id);
  }

  /// Builds the SoA columns from the pointer tree and cross-checks the two
  /// layouts (pre-order arithmetic vs child vectors) — Freeze()-time part
  /// of the SoA==lazy equivalence contract.
  void BuildFlatLayout();

  const ConceptHierarchy* hierarchy_;
  std::shared_ptr<const ResultSet> result_;
  std::vector<NavNode> nodes_;
  std::vector<NavNodeId> concept_to_node_;  // Indexed by ConceptId.
  std::vector<NavNodeId> subtree_end_;      // Pre-order interval ends.
  std::vector<int64_t> attached_prefix_;    // Size nodes+1.
  // Lazy subtree-results cache (unsynchronized until Freeze()).
  mutable std::vector<DynamicBitset> subtree_results_;
  mutable std::vector<int> subtree_distinct_;  // -1 = not yet computed.
  // Structure-of-arrays mirror of nodes_, filled by Freeze() (empty until
  // then). Index-parallel with nodes_.
  std::vector<ConceptId> soa_concept_;
  std::vector<NavNodeId> soa_parent_;
  std::vector<NavNodeId> soa_first_child_;
  std::vector<NavNodeId> soa_next_sibling_;
  std::vector<int> soa_attached_;
  std::vector<int64_t> soa_global_;
  bool frozen_ = false;
};

}  // namespace bionav

#endif  // BIONAV_CORE_NAVIGATION_TREE_H_
