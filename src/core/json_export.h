#ifndef BIONAV_CORE_JSON_EXPORT_H_
#define BIONAV_CORE_JSON_EXPORT_H_

#include <string>

#include "core/active_tree.h"
#include "core/cost_model.h"
#include "medline/eutils.h"

namespace bionav {

/// JSON export of the interface state — what the BioNav web front end
/// (Section VII's "Active Tree Visualization" box) would consume. The
/// format is stable and minimal:
///
///   {"label": "...", "count": 12, "expandable": true,
///    "node": 7, "children": [ ... ]}
///
/// Children are ordered by relevance (same order as RenderAsciiRanked).
/// Labels are JSON-escaped.
std::string VisualizationToJson(const ActiveTree& active,
                                const CostModel& cost_model,
                                int max_depth = 100);

/// JSON list of citation summaries (SHOWRESULTS payload):
///   [{"pmid": 123, "year": 2008, "title": "..."}, ...]
std::string SummariesToJson(const std::vector<CitationSummary>& summaries);

/// Escapes a string for embedding in JSON (quotes, backslashes, control
/// characters). Exposed for tests.
std::string JsonEscape(const std::string& text);

}  // namespace bionav

#endif  // BIONAV_CORE_JSON_EXPORT_H_
