#ifndef BIONAV_CORE_RESULT_SET_H_
#define BIONAV_CORE_RESULT_SET_H_

#include <unordered_map>
#include <vector>

#include "medline/citation_store.h"
#include "util/bitset.h"

namespace bionav {

/// The result of one keyword query, re-indexed densely so that citation
/// sets attached to navigation-tree nodes can be represented as bitsets of
/// |R| bits. All duplicate-aware distinct counting (|L(I)| in the paper's
/// cost model) reduces to word-parallel OR + popcount.
class ResultSet {
 public:
  /// `citations` are the (global) ids returned by ESearch; duplicates are
  /// collapsed.
  explicit ResultSet(const std::vector<CitationId>& citations);

  /// Number of distinct citations in the result.
  size_t size() const { return citations_.size(); }

  /// Global citation id of local index `i`.
  CitationId citation(size_t i) const {
    BIONAV_CHECK_LT(i, citations_.size());
    return citations_[i];
  }

  /// Local index of a global citation id, or -1 if not in the result.
  int LocalIndex(CitationId id) const;

  /// An empty bitset sized for this result.
  DynamicBitset MakeBitset() const { return DynamicBitset(citations_.size()); }

  const std::vector<CitationId>& citations() const { return citations_; }

  /// Heap bytes of the id list and the reverse index (QueryArtifactCache
  /// byte-budget accounting).
  size_t MemoryFootprint() const;

 private:
  std::vector<CitationId> citations_;
  std::unordered_map<CitationId, int> local_;
};

}  // namespace bionav

#endif  // BIONAV_CORE_RESULT_SET_H_
