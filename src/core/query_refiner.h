#ifndef BIONAV_CORE_QUERY_REFINER_H_
#define BIONAV_CORE_QUERY_REFINER_H_

#include <string>
#include <vector>

#include "hierarchy/concept_hierarchy.h"
#include "medline/eutils.h"

namespace bionav {

/// A PubReMiner/XplorMed-style query-refinement assistant (the related
/// systems of paper Section IX): instead of navigating a hierarchy, the
/// user is shown the concepts most frequent in the current result and
/// narrows the result by intersecting with one of them, repeatedly. The
/// paper argues this interaction is costlier than BioNav's cost-driven
/// navigation; implementing it makes that claim measurable
/// (bench_refinement).

/// One refinement suggestion.
struct RefinementSuggestion {
  ConceptId concept_id = kInvalidConcept;
  std::string label;
  /// Citations of the current result associated with the concept.
  int result_count = 0;
};

class QueryRefiner {
 public:
  QueryRefiner(const ConceptHierarchy* hierarchy, const EUtilsClient* eutils);

  /// Top-k concepts by frequency in `result`, PubReMiner-style. Concepts
  /// covering the whole result are skipped (intersecting with them cannot
  /// narrow anything), as are concepts below `min_count`.
  std::vector<RefinementSuggestion> Suggest(
      const std::vector<CitationId>& result, size_t k,
      int min_count = 2) const;

  /// Narrows a result to the citations associated with `concept_id` (the
  /// refinement "AND" step).
  std::vector<CitationId> Refine(const std::vector<CitationId>& result,
                                 ConceptId concept_id) const;

 private:
  const ConceptHierarchy* hierarchy_;
  const EUtilsClient* eutils_;
};

/// Metrics of one oracle refinement session (the analogue of the Section
/// VIII-A oracle navigation, for the refinement interaction model).
struct RefinementMetrics {
  /// Refinement rounds performed (each costs one action).
  int rounds = 0;
  /// Suggestions the user read across all rounds.
  int suggestions_read = 0;
  /// Result size when the session stopped.
  int final_results = 0;
  /// True when the loop stopped because no suggestion could narrow further
  /// while keeping the target literature.
  bool stalled = false;
  /// Citations attached to the target concept in the initial result...
  int target_citations_total = 0;
  /// ...and how many of them survived the refinements. The gap is the
  /// paper's Section I critique of refinement: over-specifying the query
  /// silently excludes relevant citations.
  int target_citations_retained = 0;

  /// Fraction of the target literature still reachable at the end.
  double target_recall() const {
    return target_citations_total > 0
               ? static_cast<double>(target_citations_retained) /
                     static_cast<double>(target_citations_total)
               : 0;
  }

  /// Total interaction cost, charged like the navigation cost model:
  /// 1 per suggestion read + 1 per refinement action + 1 per citation
  /// finally inspected.
  int cost() const { return suggestions_read + rounds + final_results; }
};

/// Simulates an oracle user refining toward the literature of `target`:
/// each round the user reads `page_size` suggestions and picks the one
/// that narrows the result the most while keeping at least one citation
/// attached to the target, stopping once the result fits `stop_threshold`
/// or no suggestion helps.
RefinementMetrics NavigateByRefinement(const QueryRefiner& refiner,
                                       const EUtilsClient& eutils,
                                       const std::string& query,
                                       ConceptId target,
                                       size_t page_size = 10,
                                       int stop_threshold = 20,
                                       int max_rounds = 50);

}  // namespace bionav

#endif  // BIONAV_CORE_QUERY_REFINER_H_
