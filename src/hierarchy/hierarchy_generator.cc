#include "hierarchy/hierarchy_generator.h"

#include <array>
#include <string>
#include <vector>

#include "util/rng.h"

namespace bionav {

namespace {

// The 16 MeSH 2008 top-level categories, used as flavor labels for the
// synthetic hierarchy's first level.
constexpr std::array<const char*, 16> kMeshCategories = {
    "Anatomy",
    "Organisms",
    "Diseases",
    "Chemicals and Drugs",
    "Analytical, Diagnostic and Therapeutic Techniques and Equipment",
    "Psychiatry and Psychology",
    "Biological Sciences",
    "Natural Sciences",
    "Anthropology, Education, Sociology and Social Phenomena",
    "Technology, Industry, Agriculture",
    "Humanities",
    "Information Science",
    "Named Groups",
    "Health Care",
    "Publication Characteristics",
    "Geographicals",
};

constexpr std::array<const char*, 24> kStems = {
    "Proteins",    "Neoplasms",   "Cells",       "Genes",      "Receptors",
    "Acids",       "Membranes",   "Kinases",     "Hormones",   "Syndromes",
    "Therapies",   "Viruses",     "Tissues",     "Enzymes",    "Transport",
    "Factors",     "Pathways",    "Disorders",   "Inhibitors", "Antigens",
    "Processes",   "Phenomena",   "Techniques",  "Models",
};

constexpr std::array<const char*, 20> kModifiers = {
    "Nuclear",    "Cellular",     "Genetic",     "Metabolic", "Immune",
    "Vascular",   "Neural",       "Epithelial",  "Hepatic",   "Cardiac",
    "Renal",      "Pulmonary",    "Endocrine",   "Synaptic",  "Mitochondrial",
    "Cytoplasmic", "Ribosomal",   "Lymphoid",    "Dermal",    "Skeletal",
};

std::string MakeLabel(Rng* rng, int depth, int serial) {
  std::string label;
  label += kModifiers[rng->Uniform(kModifiers.size())];
  label += ' ';
  label += kStems[rng->Uniform(kStems.size())];
  if (depth >= 3) {
    label += " Type ";
    label += std::to_string(serial % 997);
  }
  return label;
}

}  // namespace

ConceptHierarchy GenerateMeshLikeHierarchy(
    const HierarchyGeneratorOptions& options) {
  BIONAV_CHECK_GE(options.num_categories, 1);
  BIONAV_CHECK_GE(options.target_nodes, options.num_categories + 1);
  BIONAV_CHECK_GE(options.max_depth, 2);

  Rng rng(options.seed);
  ConceptHierarchy h;

  // Depth-1 categories.
  std::vector<std::vector<ConceptId>> by_depth(
      static_cast<size_t>(options.max_depth) + 1);
  for (int c = 0; c < options.num_categories; ++c) {
    std::string label = c < static_cast<int>(kMeshCategories.size())
                            ? kMeshCategories[static_cast<size_t>(c)]
                            : "Category " + std::to_string(c + 1);
    ConceptId id = h.AddNode(ConceptHierarchy::kRoot, std::move(label));
    by_depth[1].push_back(id);
  }

  // Parent-depth mixture calibrated to MeSH's node-depth histogram: most
  // descriptors sit at depths 4-6, the top is bushy, and the tree thins out
  // to depth ~11. Index = parent depth (child lands one deeper).
  std::vector<double> parent_depth_weight(
      static_cast<size_t>(options.max_depth), 0.0);
  const double base[] = {0.0, 1.6, 7.0, 18.0, 27.0, 25.0,
                         16.0, 9.0,  4.5, 1.6,  0.45};
  for (size_t d = 1; d < parent_depth_weight.size(); ++d) {
    parent_depth_weight[d] =
        d < std::size(base) ? base[d] : base[std::size(base) - 1] * 0.5;
  }

  // Preferential-attachment pools: a node appears once when created and once
  // more per child it receives, so popular parents grow bushier (real MeSH
  // has heavy-fanout hubs such as "Amino Acids, Peptides, and Proteins").
  std::vector<std::vector<ConceptId>> pa_pool(
      static_cast<size_t>(options.max_depth) + 1);
  for (ConceptId id : by_depth[1]) pa_pool[1].push_back(id);

  std::vector<int> depth_of(h.size(), 0);
  for (ConceptId id : by_depth[1]) depth_of[static_cast<size_t>(id)] = 1;

  int serial = 0;
  while (static_cast<int>(h.size()) < options.target_nodes) {
    // Pick a parent depth, falling back to shallower populated depths.
    size_t d = rng.WeightedIndex(parent_depth_weight);
    while (d >= 1 && by_depth[d].empty()) --d;
    if (d < 1) d = 1;
    BIONAV_CHECK(!by_depth[d].empty());

    ConceptId parent;
    if (rng.Bernoulli(0.35) && !pa_pool[d].empty()) {
      parent = pa_pool[d][rng.Uniform(pa_pool[d].size())];
    } else {
      parent = by_depth[d][rng.Uniform(by_depth[d].size())];
    }

    int child_depth = static_cast<int>(d) + 1;
    ConceptId id = h.AddNode(parent, MakeLabel(&rng, child_depth, serial++));
    by_depth[static_cast<size_t>(child_depth)].push_back(id);
    pa_pool[static_cast<size_t>(child_depth)].push_back(id);
    pa_pool[d].push_back(parent);
    depth_of.push_back(child_depth);
  }

  h.Freeze();
  return h;
}

}  // namespace bionav
