#ifndef BIONAV_HIERARCHY_HIERARCHY_GENERATOR_H_
#define BIONAV_HIERARCHY_HIERARCHY_GENERATOR_H_

#include <cstdint>

#include "hierarchy/concept_hierarchy.h"

namespace bionav {

/// Parameters of the synthetic MeSH-like hierarchy.
///
/// Real MeSH (2008) has ~48,000 descriptor records in 16 top-level
/// categories, is very bushy in the upper levels (the navigation tree of
/// Fig 1 shows 98 children under the root after embedding) and thins out
/// toward depth ~11. The generator reproduces those shape statistics:
/// branching factor decays geometrically with depth, with per-node jitter.
struct HierarchyGeneratorOptions {
  uint64_t seed = 2009;
  /// Approximate number of nodes to generate (the generator stops adding
  /// nodes once the budget is exhausted; the result is within a few percent).
  int target_nodes = 48000;
  /// Number of top-level categories (MeSH has 16: A..N, V, Z).
  int num_categories = 16;
  /// Mean branching factor at depth 1 (category children).
  double top_branching = 28.0;
  /// Geometric decay of the mean branching factor per level.
  double branching_decay = 0.62;
  /// Hard depth limit (root = depth 0). MeSH tree numbers go to ~11 levels.
  int max_depth = 11;
};

/// Generates a frozen MeSH-like ConceptHierarchy. Labels are synthetic but
/// structured ("C04.557 Neoplasms-like term 1234") so examples read sanely.
ConceptHierarchy GenerateMeshLikeHierarchy(const HierarchyGeneratorOptions& options);

}  // namespace bionav

#endif  // BIONAV_HIERARCHY_HIERARCHY_GENERATOR_H_
