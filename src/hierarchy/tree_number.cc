#include "hierarchy/tree_number.h"

#include <cctype>

#include "util/string_util.h"

namespace bionav {

Result<TreeNumber> TreeNumber::Parse(std::string_view text) {
  TreeNumber tn;
  if (text.empty()) return tn;  // Root.
  std::vector<std::string> parts = Split(text, '.');
  for (size_t i = 0; i < parts.size(); ++i) {
    const std::string& p = parts[i];
    if (p.empty()) {
      return Status::InvalidArgument("empty tree-number component in '" +
                                     std::string(text) + "'");
    }
    size_t start = 0;
    if (i == 0 && std::isupper(static_cast<unsigned char>(p[0]))) start = 1;
    if (start == p.size()) {
      return Status::InvalidArgument("tree-number component '" + p +
                                     "' has no digits");
    }
    for (size_t j = start; j < p.size(); ++j) {
      if (!std::isdigit(static_cast<unsigned char>(p[j]))) {
        return Status::InvalidArgument("invalid character in tree-number '" +
                                       std::string(text) + "'");
      }
    }
    tn.components_.push_back(p);
  }
  return tn;
}

TreeNumber TreeNumber::Child(std::string_view component) const {
  TreeNumber tn = *this;
  tn.components_.emplace_back(component);
  return tn;
}

TreeNumber TreeNumber::Parent() const {
  BIONAV_CHECK(!IsRoot()) << "root tree number has no parent";
  TreeNumber tn = *this;
  tn.components_.pop_back();
  return tn;
}

bool TreeNumber::IsAncestorOrSelf(const TreeNumber& other) const {
  if (components_.size() > other.components_.size()) return false;
  for (size_t i = 0; i < components_.size(); ++i) {
    if (components_[i] != other.components_[i]) return false;
  }
  return true;
}

bool TreeNumber::IsProperAncestor(const TreeNumber& other) const {
  return components_.size() < other.components_.size() &&
         IsAncestorOrSelf(other);
}

std::string TreeNumber::ToString() const {
  return Join(components_, ".");
}

}  // namespace bionav
