#ifndef BIONAV_HIERARCHY_TREE_NUMBER_H_
#define BIONAV_HIERARCHY_TREE_NUMBER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace bionav {

/// MeSH-style tree number ("C04.557.337"): a dotted path of fixed-width
/// numeric components encoding a concept's position in the hierarchy, with
/// an optional single-letter category prefix on the first component (as real
/// MeSH descriptors have, e.g. "A01"). Tree numbers give O(1) ancestor tests
/// via prefix comparison and are the on-disk identifier in the hierarchy
/// serialization format.
class TreeNumber {
 public:
  TreeNumber() = default;

  /// Parses a dotted tree number. Each component must be non-empty; the
  /// first may begin with an upper-case category letter; all remaining
  /// characters must be digits.
  static Result<TreeNumber> Parse(std::string_view text);

  /// Builds the root tree number (empty path).
  static TreeNumber Root() { return TreeNumber(); }

  /// Returns a child tree number by appending one component.
  TreeNumber Child(std::string_view component) const;

  /// Number of components; the root has zero.
  size_t Depth() const { return components_.size(); }

  bool IsRoot() const { return components_.empty(); }

  /// Parent tree number; requires !IsRoot().
  TreeNumber Parent() const;

  /// True iff this is a (proper or improper) prefix of `other`.
  bool IsAncestorOrSelf(const TreeNumber& other) const;

  /// True iff this is a proper prefix of `other`.
  bool IsProperAncestor(const TreeNumber& other) const;

  const std::vector<std::string>& components() const { return components_; }

  /// Dotted string form; the root renders as "" (empty).
  std::string ToString() const;

  bool operator==(const TreeNumber& other) const {
    return components_ == other.components_;
  }
  /// Lexicographic component order — matches MeSH browser ordering.
  bool operator<(const TreeNumber& other) const {
    return components_ < other.components_;
  }

 private:
  std::vector<std::string> components_;
};

}  // namespace bionav

#endif  // BIONAV_HIERARCHY_TREE_NUMBER_H_
