#include "hierarchy/mesh_import.h"

#include <algorithm>
#include <fstream>
#include <istream>
#include <set>
#include <vector>

#include "hierarchy/tree_number.h"
#include "util/string_util.h"

namespace bionav {

Result<MeshImportResult> ImportMeshTreeFile(std::istream* in) {
  struct Entry {
    TreeNumber tree_number;
    std::string label;
  };
  std::vector<Entry> entries;
  std::set<std::string> seen_numbers;

  MeshImportResult result;
  std::string line;
  int line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    result.stats.lines++;
    // mtrees format: label;tree-number — the label may itself contain
    // semicolons in odd editions, so split on the *last* one.
    size_t sep = sv.rfind(';');
    if (sep == std::string_view::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected '<label>;<tree-number>'");
    }
    std::string label(StripWhitespace(sv.substr(0, sep)));
    std::string tn_text(StripWhitespace(sv.substr(sep + 1)));
    if (label.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": empty label");
    }
    Result<TreeNumber> tn = TreeNumber::Parse(tn_text);
    if (!tn.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": " + tn.status().message());
    }
    if (tn.ValueOrDie().IsRoot()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": empty tree number");
    }
    if (!seen_numbers.insert(tn_text).second) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": duplicate tree number '" + tn_text +
                                     "'");
    }
    entries.push_back(Entry{tn.TakeValue(), std::move(label)});
  }

  // Parents before children: sort by depth, then lexicographically so the
  // sibling order matches the MeSH browser's.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.tree_number.Depth() != b.tree_number.Depth()) {
      return a.tree_number.Depth() < b.tree_number.Depth();
    }
    return a.tree_number < b.tree_number;
  });

  std::set<std::string> label_seen;
  // Creates (or finds) the node for a tree number, synthesizing missing
  // ancestors labelled with their own tree number. Entries are processed
  // in depth order, so a synthesized ancestor can never be named by a
  // later line (its line, if any, would have sorted earlier).
  auto ensure = [&](auto&& self, const TreeNumber& tn) -> ConceptId {
    std::string key = tn.ToString();
    auto it = result.by_mesh_tree_number.find(key);
    if (it != result.by_mesh_tree_number.end()) return it->second;
    ConceptId parent = ConceptHierarchy::kRoot;
    if (tn.Depth() > 1) parent = self(self, tn.Parent());
    ConceptId id = result.hierarchy.AddNode(parent, key);
    result.by_mesh_tree_number.emplace(key, id);
    result.stats.implicit_parents++;
    result.stats.nodes_created++;
    return id;
  };

  for (const Entry& entry : entries) {
    std::string key = entry.tree_number.ToString();
    BIONAV_CHECK(!result.by_mesh_tree_number.count(key));
    ConceptId parent = ConceptHierarchy::kRoot;
    if (entry.tree_number.Depth() > 1) {
      parent = ensure(ensure, entry.tree_number.Parent());
    }
    ConceptId id = result.hierarchy.AddNode(parent, entry.label);
    result.by_mesh_tree_number.emplace(key, id);
    result.stats.nodes_created++;
    if (!label_seen.insert(entry.label).second) {
      result.stats.polyhierarchy_labels++;
    }
  }

  result.hierarchy.Freeze();
  return result;
}

Result<MeshImportResult> ImportMeshTreeFileFromPath(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ImportMeshTreeFile(&in);
}

}  // namespace bionav
