#ifndef BIONAV_HIERARCHY_CONCEPT_HIERARCHY_H_
#define BIONAV_HIERARCHY_CONCEPT_HIERARCHY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "hierarchy/tree_number.h"
#include "util/status.h"

namespace bionav {

/// Dense identifier of a concept node within one ConceptHierarchy.
using ConceptId = int32_t;
inline constexpr ConceptId kInvalidConcept = -1;

/// A concept hierarchy in the sense of the paper's Definition 1: a labeled
/// tree of concepts, rooted at node 0, where a child's label is more
/// specific than its parent's. This is the substrate for MeSH but carries no
/// biomedical assumptions — the catalog example reuses it for product
/// categories.
///
/// Usage: add nodes with AddNode (parent must already exist), then call
/// Freeze() once. Freeze computes depths, Euler-tour intervals (for O(1)
/// ancestor tests) and canonical MeSH-style tree numbers, and seals the
/// structure. All query methods require a frozen hierarchy.
class ConceptHierarchy {
 public:
  ConceptHierarchy();

  ConceptHierarchy(const ConceptHierarchy&) = delete;
  ConceptHierarchy& operator=(const ConceptHierarchy&) = delete;
  ConceptHierarchy(ConceptHierarchy&&) = default;
  ConceptHierarchy& operator=(ConceptHierarchy&&) = default;

  /// Identifier of the root node ("MeSH").
  static constexpr ConceptId kRoot = 0;

  /// Adds a concept under `parent` and returns its id. The hierarchy must
  /// not be frozen. Labels need not be unique globally, but lookups by label
  /// return the first node added with that label.
  ConceptId AddNode(ConceptId parent, std::string label);

  /// Seals the tree: computes depth, pre/post order, and tree numbers.
  void Freeze();

  /// Replaces a node's display label (allowed after Freeze — labels carry
  /// no structural meaning). Label lookups are updated.
  void RenameNode(ConceptId id, std::string label);

  bool frozen() const { return frozen_; }

  /// Number of nodes, including the root.
  size_t size() const { return labels_.size(); }

  ConceptId parent(ConceptId id) const { return parents_[CheckId(id)]; }
  const std::vector<ConceptId>& children(ConceptId id) const {
    return children_[CheckId(id)];
  }
  const std::string& label(ConceptId id) const { return labels_[CheckId(id)]; }

  /// Depth of the node; the root has depth 0. Requires frozen().
  int depth(ConceptId id) const;

  /// Canonical tree number assigned at Freeze(). The root's is empty.
  const TreeNumber& tree_number(ConceptId id) const;

  /// True iff `a` is an ancestor of `b` or a == b. Requires frozen(). O(1).
  bool IsAncestorOrSelf(ConceptId a, ConceptId b) const;

  /// First node with the given label, or kInvalidConcept.
  ConceptId FindByLabel(std::string_view label) const;

  /// Node with the given tree-number string, or kInvalidConcept.
  /// Requires frozen().
  ConceptId FindByTreeNumber(const std::string& tree_number) const;

  /// Maximum node depth. Requires frozen().
  int height() const { return height_; }

  /// Number of nodes at each depth (index = depth). Requires frozen().
  const std::vector<int>& LevelWidths() const;

  /// Visits nodes in pre-order (parents before children).
  void PreOrder(const std::function<void(ConceptId)>& visit) const;

  /// Visits nodes in post-order (children before parents).
  void PostOrder(const std::function<void(ConceptId)>& visit) const;

  /// All node ids on the path root -> id, inclusive.
  std::vector<ConceptId> PathFromRoot(ConceptId id) const;

  /// All descendant ids of `id` including itself, in pre-order.
  std::vector<ConceptId> Subtree(ConceptId id) const;

 private:
  ConceptId CheckId(ConceptId id) const {
    BIONAV_CHECK_GE(id, 0);
    BIONAV_CHECK_LT(static_cast<size_t>(id), labels_.size());
    return id;
  }

  bool frozen_ = false;
  std::vector<std::string> labels_;
  std::vector<ConceptId> parents_;
  std::vector<std::vector<ConceptId>> children_;

  // Computed at Freeze().
  std::vector<int> depths_;
  std::vector<int> pre_;        // Pre-order entry index.
  std::vector<int> post_;       // Pre-order exit index (subtree interval end).
  std::vector<TreeNumber> tree_numbers_;
  std::vector<int> level_widths_;
  int height_ = 0;
  std::unordered_map<std::string, ConceptId> by_label_;
  std::unordered_map<std::string, ConceptId> by_tree_number_;
};

}  // namespace bionav

#endif  // BIONAV_HIERARCHY_CONCEPT_HIERARCHY_H_
