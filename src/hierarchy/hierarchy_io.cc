#include "hierarchy/hierarchy_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/string_util.h"

namespace bionav {

Status WriteHierarchy(const ConceptHierarchy& hierarchy, std::ostream* out) {
  if (!hierarchy.frozen()) {
    return Status::FailedPrecondition("hierarchy must be frozen");
  }
  bool bad = false;
  hierarchy.PreOrder([&](ConceptId id) {
    *out << hierarchy.tree_number(id).ToString() << '\t'
         << hierarchy.label(id) << '\n';
    if (!*out) bad = true;
  });
  if (bad) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteHierarchyToFile(const ConceptHierarchy& hierarchy,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteHierarchy(hierarchy, &out);
}

Result<ConceptHierarchy> ReadHierarchy(std::istream* in) {
  ConceptHierarchy h;
  std::unordered_map<std::string, ConceptId> by_file_tn;
  by_file_tn.emplace("", ConceptHierarchy::kRoot);

  std::string line;
  int line_no = 0;
  while (std::getline(*in, line)) {
    ++line_no;
    // Do not strip the line as a whole: the root's tree number is empty,
    // so its line legitimately starts with the field separator.
    std::string_view sv = line;
    if (StripWhitespace(sv).empty() || StripWhitespace(sv)[0] == '#') {
      continue;
    }
    size_t tab = sv.find('\t');
    if (tab == std::string_view::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected <tree-number>\\t<label>");
    }
    std::string tn_text(StripWhitespace(sv.substr(0, tab)));
    std::string label(StripWhitespace(sv.substr(tab + 1)));
    Result<TreeNumber> tn = TreeNumber::Parse(tn_text);
    if (!tn.ok()) return tn.status();
    if (tn.ValueOrDie().IsRoot()) continue;  // Root pre-exists.

    std::string parent_tn = tn.ValueOrDie().Parent().ToString();
    auto it = by_file_tn.find(parent_tn);
    if (it == by_file_tn.end()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": parent tree number '" +
          parent_tn + "' not seen before child '" + tn_text + "'");
    }
    ConceptId id = h.AddNode(it->second, std::move(label));
    auto [pos, inserted] = by_file_tn.emplace(tn_text, id);
    (void)pos;
    if (!inserted) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": duplicate tree number '" + tn_text +
                                     "'");
    }
  }
  h.Freeze();
  return h;
}

Result<ConceptHierarchy> ReadHierarchyFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadHierarchy(&in);
}

}  // namespace bionav
