#include "hierarchy/hierarchy_io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <unordered_map>

#include "util/string_util.h"

namespace bionav {

Status WriteHierarchy(const ConceptHierarchy& hierarchy, std::ostream* out) {
  if (!hierarchy.frozen()) {
    return Status::FailedPrecondition("hierarchy must be frozen");
  }
  bool bad = false;
  hierarchy.PreOrder([&](ConceptId id) {
    *out << hierarchy.tree_number(id).ToString() << '\t'
         << hierarchy.label(id) << '\n';
    if (!*out) bad = true;
  });
  if (bad) return Status::IOError("write failed");
  return Status::OK();
}

Status WriteHierarchyToFile(const ConceptHierarchy& hierarchy,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  return WriteHierarchy(hierarchy, &out);
}

namespace {

// Shared parser core. `bounded` reads exactly `line_count` lines (failing
// on early EOF); unbounded reads to EOF.
Result<ConceptHierarchy> ReadHierarchyImpl(std::istream* in, bool bounded,
                                           size_t line_count) {
  ConceptHierarchy h;
  std::unordered_map<std::string, ConceptId> by_file_tn;
  by_file_tn.emplace("", ConceptHierarchy::kRoot);

  std::string line;
  size_t line_no = 0;
  while (true) {
    if (bounded && line_no == line_count) break;
    if (!std::getline(*in, line)) {
      if (bounded) {
        return Status::InvalidArgument("truncated hierarchy section");
      }
      break;
    }
    ++line_no;
    // Do not strip the line as a whole: the root's tree number is empty,
    // so its line legitimately starts with the field separator.
    std::string_view sv = line;
    if (StripWhitespace(sv).empty() || StripWhitespace(sv)[0] == '#') {
      continue;
    }
    size_t tab = sv.find('\t');
    if (tab == std::string_view::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected <tree-number>\\t<label>");
    }
    std::string tn_text(StripWhitespace(sv.substr(0, tab)));
    std::string label(StripWhitespace(sv.substr(tab + 1)));
    Result<TreeNumber> tn = TreeNumber::Parse(tn_text);
    if (!tn.ok()) return tn.status();
    if (tn.ValueOrDie().IsRoot()) continue;  // Root pre-exists.

    std::string parent_tn = tn.ValueOrDie().Parent().ToString();
    auto it = by_file_tn.find(parent_tn);
    if (it == by_file_tn.end()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": parent tree number '" +
          parent_tn + "' not seen before child '" + tn_text + "'");
    }
    ConceptId id = h.AddNode(it->second, std::move(label));
    auto [pos, inserted] = by_file_tn.emplace(tn_text, id);
    (void)pos;
    if (!inserted) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": duplicate tree number '" + tn_text +
                                     "'");
    }
  }
  h.Freeze();
  return h;
}

}  // namespace

Result<ConceptHierarchy> ReadHierarchy(std::istream* in) {
  return ReadHierarchyImpl(in, /*bounded=*/false, 0);
}

Result<ConceptHierarchy> ReadHierarchyLines(std::istream* in,
                                            size_t line_count) {
  return ReadHierarchyImpl(in, /*bounded=*/true, line_count);
}

Result<ConceptHierarchy> ReadHierarchyFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  return ReadHierarchy(&in);
}

}  // namespace bionav
