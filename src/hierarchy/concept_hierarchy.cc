#include "hierarchy/concept_hierarchy.h"

#include <algorithm>

namespace bionav {

ConceptHierarchy::ConceptHierarchy() {
  labels_.push_back("MeSH");
  parents_.push_back(kInvalidConcept);
  children_.emplace_back();
  by_label_.emplace("MeSH", kRoot);
}

ConceptId ConceptHierarchy::AddNode(ConceptId parent, std::string label) {
  BIONAV_CHECK(!frozen_) << "AddNode on a frozen hierarchy";
  CheckId(parent);
  ConceptId id = static_cast<ConceptId>(labels_.size());
  labels_.push_back(std::move(label));
  parents_.push_back(parent);
  children_.emplace_back();
  children_[parent].push_back(id);
  by_label_.emplace(labels_.back(), id);
  return id;
}

void ConceptHierarchy::Freeze() {
  BIONAV_CHECK(!frozen_) << "Freeze called twice";
  const size_t n = labels_.size();
  depths_.assign(n, 0);
  pre_.assign(n, 0);
  post_.assign(n, 0);
  tree_numbers_.assign(n, TreeNumber());
  level_widths_.clear();
  height_ = 0;

  // Iterative DFS assigning pre/post intervals, depths and tree numbers.
  // Tree-number components are 3-digit 1-based child ordinals; the first
  // component carries a category letter cycling A.. for root children, as
  // in MeSH ("A01", "B02", ...).
  int counter = 0;
  struct Frame {
    ConceptId node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({kRoot, 0});
  pre_[kRoot] = counter++;
  while (!stack.empty()) {
    Frame& f = stack.back();
    ConceptId u = f.node;
    if (f.next_child < children_[u].size()) {
      ConceptId c = children_[u][f.next_child++];
      depths_[c] = depths_[u] + 1;
      height_ = std::max(height_, depths_[c]);
      pre_[c] = counter++;
      // Ordinal of c among u's children, 1-based.
      size_t ordinal = f.next_child;  // Already incremented.
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%03zu", ordinal);
      std::string component(buf);
      if (u == kRoot) {
        char cat = static_cast<char>('A' + ((ordinal - 1) % 26));
        // Built in place (erase + insert) rather than via operator+: GCC 12
        // flags the rvalue string concatenation with a bogus -Wrestrict.
        if (component.size() > 2) component.erase(0, component.size() - 2);
        component.insert(component.begin(), cat);
      }
      tree_numbers_[c] = tree_numbers_[u].Child(component);
      stack.push_back({c, 0});
    } else {
      post_[u] = counter;
      stack.pop_back();
    }
  }

  level_widths_.assign(static_cast<size_t>(height_) + 1, 0);
  for (size_t i = 0; i < n; ++i) level_widths_[static_cast<size_t>(depths_[i])]++;

  by_tree_number_.clear();
  for (size_t i = 0; i < n; ++i) {
    by_tree_number_.emplace(tree_numbers_[i].ToString(),
                            static_cast<ConceptId>(i));
  }
  frozen_ = true;
}

void ConceptHierarchy::RenameNode(ConceptId id, std::string label) {
  CheckId(id);
  auto it = by_label_.find(labels_[static_cast<size_t>(id)]);
  if (it != by_label_.end() && it->second == id) by_label_.erase(it);
  labels_[static_cast<size_t>(id)] = std::move(label);
  by_label_.emplace(labels_[static_cast<size_t>(id)], id);
}

int ConceptHierarchy::depth(ConceptId id) const {
  BIONAV_CHECK(frozen_);
  return depths_[CheckId(id)];
}

const TreeNumber& ConceptHierarchy::tree_number(ConceptId id) const {
  BIONAV_CHECK(frozen_);
  return tree_numbers_[CheckId(id)];
}

bool ConceptHierarchy::IsAncestorOrSelf(ConceptId a, ConceptId b) const {
  BIONAV_CHECK(frozen_);
  CheckId(a);
  CheckId(b);
  return pre_[a] <= pre_[b] && post_[b] <= post_[a];
}

ConceptId ConceptHierarchy::FindByLabel(std::string_view label) const {
  auto it = by_label_.find(std::string(label));
  return it == by_label_.end() ? kInvalidConcept : it->second;
}

ConceptId ConceptHierarchy::FindByTreeNumber(
    const std::string& tree_number) const {
  BIONAV_CHECK(frozen_);
  auto it = by_tree_number_.find(tree_number);
  return it == by_tree_number_.end() ? kInvalidConcept : it->second;
}

const std::vector<int>& ConceptHierarchy::LevelWidths() const {
  BIONAV_CHECK(frozen_);
  return level_widths_;
}

void ConceptHierarchy::PreOrder(
    const std::function<void(ConceptId)>& visit) const {
  std::vector<ConceptId> stack = {kRoot};
  while (!stack.empty()) {
    ConceptId u = stack.back();
    stack.pop_back();
    visit(u);
    const auto& ch = children_[u];
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
}

void ConceptHierarchy::PostOrder(
    const std::function<void(ConceptId)>& visit) const {
  struct Frame {
    ConceptId node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({kRoot, 0});
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child < children_[f.node].size()) {
      ConceptId c = children_[f.node][f.next_child++];
      stack.push_back({c, 0});
    } else {
      visit(f.node);
      stack.pop_back();
    }
  }
}

std::vector<ConceptId> ConceptHierarchy::PathFromRoot(ConceptId id) const {
  CheckId(id);
  std::vector<ConceptId> path;
  for (ConceptId u = id; u != kInvalidConcept; u = parents_[u]) {
    path.push_back(u);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<ConceptId> ConceptHierarchy::Subtree(ConceptId id) const {
  CheckId(id);
  std::vector<ConceptId> out;
  std::vector<ConceptId> stack = {id};
  while (!stack.empty()) {
    ConceptId u = stack.back();
    stack.pop_back();
    out.push_back(u);
    const auto& ch = children_[u];
    for (auto it = ch.rbegin(); it != ch.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

}  // namespace bionav
