#ifndef BIONAV_HIERARCHY_MESH_IMPORT_H_
#define BIONAV_HIERARCHY_MESH_IMPORT_H_

#include <iosfwd>
#include <string>
#include <unordered_map>

#include "hierarchy/concept_hierarchy.h"
#include "util/status.h"

namespace bionav {

/// Importer for the NLM MeSH tree file format ("mtrees") — the actual
/// distribution the paper's system loaded (Section VII: "the BioNav
/// database is first populated with the MeSH hierarchy, which is available
/// online"). Each line is
///
///   <descriptor label>;<tree number>
///
/// e.g. "Neoplasms;C04" or "Apoptosis;G04.299.139.500". Lines may appear
/// in any order; missing interior tree numbers are synthesized (labelled
/// with the tree number itself). MeSH is a polyhierarchy — one descriptor
/// can carry several tree numbers; following the paper's Definition 1 (a
/// tree), each tree number becomes its own node and the label is shared.

struct MeshImportStats {
  size_t lines = 0;
  size_t nodes_created = 0;
  /// Interior nodes synthesized because a parent tree number had no line
  /// of its own.
  size_t implicit_parents = 0;
  /// Labels occurring under more than one tree number (polyhierarchy).
  size_t polyhierarchy_labels = 0;
};

/// The imported hierarchy plus the mapping from *original* MeSH tree
/// numbers to concept ids (ConceptHierarchy::Freeze assigns its own
/// canonical tree numbers, so the source numbering is preserved here).
struct MeshImportResult {
  ConceptHierarchy hierarchy;
  std::unordered_map<std::string, ConceptId> by_mesh_tree_number;
  MeshImportStats stats;
};

/// Parses an mtrees stream into a frozen hierarchy. Category roots ("C04",
/// "A01", ...) become children of the hierarchy root.
Result<MeshImportResult> ImportMeshTreeFile(std::istream* in);

/// File-path convenience wrapper.
Result<MeshImportResult> ImportMeshTreeFileFromPath(const std::string& path);

}  // namespace bionav

#endif  // BIONAV_HIERARCHY_MESH_IMPORT_H_
