#ifndef BIONAV_HIERARCHY_HIERARCHY_IO_H_
#define BIONAV_HIERARCHY_HIERARCHY_IO_H_

#include <iosfwd>
#include <string>

#include "hierarchy/concept_hierarchy.h"
#include "util/status.h"

namespace bionav {

/// Text serialization of a concept hierarchy.
///
/// Format (one node per line, pre-order, tab-separated):
///   <tree-number>\t<label>
/// The root line has an empty tree number. This mirrors the ASCII MeSH
/// distribution format (mtrees files: "label;tree-number"), so a real MeSH
/// dump can be converted with a one-line script and loaded here.
Status WriteHierarchy(const ConceptHierarchy& hierarchy, std::ostream* out);

/// Writes to a file path.
Status WriteHierarchyToFile(const ConceptHierarchy& hierarchy,
                            const std::string& path);

/// Parses a hierarchy from the text format. Lines must be in an order where
/// every node's parent tree number appears before the node (pre-order
/// satisfies this). Returns a frozen hierarchy.
Result<ConceptHierarchy> ReadHierarchy(std::istream* in);

/// Same, but consumes exactly `line_count` lines of `in` and leaves the
/// stream positioned after them — so an embedding format (BioNavDatabase)
/// can parse its hierarchy section in place instead of copying it into a
/// second stream. Fails if the stream ends early.
Result<ConceptHierarchy> ReadHierarchyLines(std::istream* in,
                                            size_t line_count);

/// Reads from a file path.
Result<ConceptHierarchy> ReadHierarchyFromFile(const std::string& path);

}  // namespace bionav

#endif  // BIONAV_HIERARCHY_HIERARCHY_IO_H_
