#include "persist/session_snapshot.h"

#include <cstring>

#include "server/protocol.h"

namespace bionav {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char bytes[4];
  bytes[0] = static_cast<char>(v & 0xff);
  bytes[1] = static_cast<char>((v >> 8) & 0xff);
  bytes[2] = static_cast<char>((v >> 16) & 0xff);
  bytes[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(bytes, 4);
}

uint32_t ReadU32(std::string_view data, size_t pos) {
  return static_cast<uint32_t>(static_cast<unsigned char>(data[pos])) |
         static_cast<uint32_t>(static_cast<unsigned char>(data[pos + 1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[pos + 2]))
             << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(data[pos + 3]))
             << 24;
}

void AppendString(std::string* out, std::string_view s) {
  AppendVarint(out, s.size());
  out->append(s);
}

bool ReadString(std::string_view data, size_t* pos, std::string* out) {
  uint64_t len = 0;
  if (!ReadVarint(data, pos, &len)) return false;
  if (len > data.size() - *pos) return false;
  out->assign(data.substr(*pos, static_cast<size_t>(len)));
  *pos += static_cast<size_t>(len);
  return true;
}

Status Corrupt(const std::string& what) {
  return Status::DataLoss("snapshot record " + what);
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xff];
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeSnapshot(const SessionSnapshot& snapshot) {
  std::string payload;
  AppendVarint(&payload, kSnapshotFormatVersion);
  AppendString(&payload, snapshot.token);
  AppendString(&payload, snapshot.query);
  AppendString(&payload, snapshot.strategy_name);
  AppendVarint(&payload, snapshot.result_size);
  AppendVarint(&payload, ZigzagEncode(snapshot.saved_unix_ms));
  AppendVarint(&payload, snapshot.expands.size());
  for (const ExpandRecord& rec : snapshot.expands) {
    AppendVarint(&payload, static_cast<uint64_t>(rec.root));
    AppendVarint(&payload, rec.cut.cut_children.size());
    // Cut children stay in strategy order: ApplyEdgeCut reveals the lower
    // components in cut order, and restore must reproduce it byte-for-byte.
    for (NavNodeId child : rec.cut.cut_children) {
      AppendVarint(&payload, static_cast<uint64_t>(child));
    }
  }
  std::string record;
  record.reserve(kSnapshotHeaderBytes + payload.size());
  record.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU32(&record, static_cast<uint32_t>(payload.size()));
  AppendU32(&record, Crc32(payload));
  record.append(payload);
  return record;
}

Result<SessionSnapshot> DecodeSnapshot(std::string_view record) {
  if (record.size() < kSnapshotHeaderBytes) {
    return Corrupt("truncated before the header (" +
                   std::to_string(record.size()) + " bytes)");
  }
  if (std::memcmp(record.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Corrupt("has no BNS1 magic");
  }
  const uint32_t payload_len = ReadU32(record, 4);
  const uint32_t crc = ReadU32(record, 8);
  if (record.size() - kSnapshotHeaderBytes != payload_len) {
    return Corrupt("length mismatch: header says " +
                   std::to_string(payload_len) + " payload bytes, " +
                   std::to_string(record.size() - kSnapshotHeaderBytes) +
                   " present");
  }
  std::string_view payload = record.substr(kSnapshotHeaderBytes);
  if (Crc32(payload) != crc) {
    return Corrupt("checksum mismatch");
  }

  size_t pos = 0;
  uint64_t version = 0;
  if (!ReadVarint(payload, &pos, &version)) return Corrupt("payload underrun");
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(version));
  }
  SessionSnapshot snap;
  uint64_t saved = 0, count = 0;
  if (!ReadString(payload, &pos, &snap.token) ||
      !ReadString(payload, &pos, &snap.query) ||
      !ReadString(payload, &pos, &snap.strategy_name) ||
      !ReadVarint(payload, &pos, &snap.result_size) ||
      !ReadVarint(payload, &pos, &saved) ||
      !ReadVarint(payload, &pos, &count)) {
    return Corrupt("payload underrun");
  }
  snap.saved_unix_ms = ZigzagDecode(saved);
  // An expand touches at least 2 payload bytes (root + cut size), so a
  // count past the remaining bytes is garbage — reject before reserving.
  if (count > (payload.size() - pos)) return Corrupt("expand count overrun");
  snap.expands.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ExpandRecord rec;
    uint64_t root = 0, cut_size = 0;
    if (!ReadVarint(payload, &pos, &root) ||
        !ReadVarint(payload, &pos, &cut_size)) {
      return Corrupt("payload underrun in expand log");
    }
    if (cut_size > (payload.size() - pos)) {
      return Corrupt("cut size overrun");
    }
    rec.root = static_cast<NavNodeId>(root);
    rec.cut.cut_children.reserve(static_cast<size_t>(cut_size));
    for (uint64_t j = 0; j < cut_size; ++j) {
      uint64_t child = 0;
      if (!ReadVarint(payload, &pos, &child)) {
        return Corrupt("payload underrun in edge cut");
      }
      rec.cut.cut_children.push_back(static_cast<NavNodeId>(child));
    }
    snap.expands.push_back(std::move(rec));
  }
  if (pos != payload.size()) {
    return Corrupt("trailing garbage after the expand log");
  }
  return snap;
}

SessionSnapshot SnapshotSession(const NavigationSession& session,
                                std::string token, int64_t saved_unix_ms) {
  SessionSnapshot snap;
  snap.token = std::move(token);
  snap.query = session.query();
  snap.strategy_name = session.strategy_name();
  snap.result_size = session.result_size();
  snap.saved_unix_ms = saved_unix_ms;
  snap.expands = session.expand_log();
  return snap;
}

Result<std::unique_ptr<NavigationSession>> RestoreSession(
    const SessionSnapshot& snapshot, const EUtilsClient* eutils,
    std::shared_ptr<const QueryArtifacts> artifacts,
    const StrategyFactory& strategy_factory) {
  auto session = std::make_unique<NavigationSession>(
      eutils, std::move(artifacts), snapshot.query, strategy_factory);
  if (session->strategy_name() != snapshot.strategy_name) {
    return Status::FailedPrecondition(
        "snapshot was taken under strategy '" + snapshot.strategy_name +
        "', server runs '" + session->strategy_name() + "'");
  }
  if (session->result_size() != snapshot.result_size) {
    return Status::FailedPrecondition(
        "result set changed since snapshot: " +
        std::to_string(snapshot.result_size) + " citations then, " +
        std::to_string(session->result_size()) + " now");
  }
  for (size_t i = 0; i < snapshot.expands.size(); ++i) {
    const ExpandRecord& rec = snapshot.expands[i];
    Status applied = session->ReplayExpand(rec.root, rec.cut);
    if (!applied.ok()) {
      return Status::DataLoss("snapshot replay failed at expand " +
                              std::to_string(i) + "/" +
                              std::to_string(snapshot.expands.size()) + ": " +
                              applied.ToString());
    }
  }
  return session;
}

}  // namespace bionav
