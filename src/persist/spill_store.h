#ifndef BIONAV_PERSIST_SPILL_STORE_H_
#define BIONAV_PERSIST_SPILL_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace bionav {

/// A flat directory of snapshot records, one file per session token. Writes
/// are atomic (temp file + rename), so a kill -9 mid-spill leaves either
/// the old record or the new one — never a torn file; torn temp files are
/// swept on Init. Tokens map to filenames through a conservative escaping
/// ([A-Za-z0-9_-] verbatim, everything else %XX), so arbitrary token
/// prefixes cannot traverse out of the directory.
///
/// The store also keeps a tiny MANIFEST with the server's token counter:
/// after a warm restart (or a crash) the new process must not mint tokens
/// that collide with sessions still parked on disk.
class SpillStore {
 public:
  explicit SpillStore(std::string dir);

  /// Creates the directory (parents included) and clears stale temp files.
  Status Init();

  const std::string& dir() const { return dir_; }

  /// Atomically writes `record` as the snapshot of `token`.
  Status Put(const std::string& token, std::string_view record);

  /// Reads the snapshot record of `token`. NotFound if absent; IOError on
  /// an unreadable file.
  Result<std::string> Get(const std::string& token);

  /// Removes the snapshot of `token`. False if there was none.
  bool Delete(const std::string& token);

  /// Tokens currently parked in the directory (unordered).
  std::vector<std::string> ListTokens() const;

  /// Persists the token counter (and implicitly "a clean spill finished").
  Status WriteManifest(uint64_t next_token);

  /// Reads the persisted token counter. NotFound when absent or unreadable
  /// — callers fall back to scanning parked tokens.
  Result<uint64_t> ReadManifest() const;

 private:
  std::string PathFor(const std::string& token) const;
  static Status WriteFileAtomic(const std::string& path,
                                std::string_view record);

  std::string dir_;
};

/// Filename-safe escaping of a session token (exposed for tests).
std::string EscapeSpillToken(std::string_view token);
Result<std::string> UnescapeSpillToken(std::string_view name);

}  // namespace bionav

#endif  // BIONAV_PERSIST_SPILL_STORE_H_
